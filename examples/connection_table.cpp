// A connection/session descriptor table on DistIdTable: the classic
// server-side registry workload. Accept tasks allocate session ids,
// worker tasks look sessions up by id on every locale, reaper tasks
// release them — while the table's backing RCUArray grows in place.
//
//   $ ./examples/connection_table [sessions_per_acceptor]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "rcua.hpp"

namespace {

struct Session {
  std::uint64_t peer = 0;
  std::uint64_t opened_at = 0;
  std::uint64_t bytes = 0;
};

/// A pending session teardown: recycling the id is reclamation, so it
/// rides the same QSBR grace period as everything else. Releasing
/// immediately would let an acceptor reuse the slot while a worker that
/// picked the id moments earlier is still accounting against it; deferred
/// through QSBR, the release only runs once every in-flight user has
/// checkpointed.
struct Reap {
  rcua::cont::DistIdTable<Session>* table;
  std::size_t id;
};

void reap_session(void* p) {
  auto* r = static_cast<Reap*>(p);
  r->table->release(r->id);
  delete r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t per_acceptor =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  rcua::rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 6});
  rcua::cont::DistIdTable<Session> sessions(cluster, {.block_size = 256});

  // A shared published-id pool so lookup tasks only touch live ids.
  std::mutex pool_mu;
  std::vector<std::size_t> live_pool;

  std::atomic<std::uint64_t> opened{0}, closed{0}, lookups{0}, bad{0};

  cluster.coforall_tasks(3, [&](std::uint32_t locale, std::uint32_t task) {
    rcua::plat::Xoshiro256 rng(locale * 31 + task + 7);
    if (task == 0) {
      // Acceptor: open sessions, publish their ids.
      for (std::uint64_t i = 0; i < per_acceptor; ++i) {
        const std::size_t id = sessions.allocate(
            Session{.peer = rng.next(), .opened_at = i, .bytes = 0});
        opened.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> guard(pool_mu);
          live_pool.push_back(id);
        }
        if (i % 512 == 0) rcua::reclaim::Qsbr::global().checkpoint();
      }
    } else if (task == 1) {
      // Worker: account traffic against random live sessions.
      for (std::uint64_t i = 0; i < per_acceptor * 2; ++i) {
        std::size_t id;
        {
          std::lock_guard<std::mutex> guard(pool_mu);
          if (live_pool.empty()) continue;
          id = live_pool[rng.next_below(live_pool.size())];
        }
        // Reference write on the lock-free path; workers on every locale
        // hit the same hot sessions, so the accounting add is a relaxed
        // atomic on the field.
        rcua::plat::relaxed_fetch_add(sessions.get(id).bytes,
                                      std::uint64_t{64});
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (i % 512 == 0) rcua::reclaim::Qsbr::global().checkpoint();
      }
    } else {
      // Reaper: close some fraction of sessions.
      for (std::uint64_t i = 0; i < per_acceptor / 2; ++i) {
        std::size_t id = ~std::size_t{0};
        {
          std::lock_guard<std::mutex> guard(pool_mu);
          if (live_pool.size() > 16) {
            id = live_pool.back();
            live_pool.pop_back();
          }
        }
        if (id != ~std::size_t{0}) {
          rcua::reclaim::Qsbr::global().defer_fn(&reap_session,
                                                 new Reap{&sessions, id});
          closed.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 512 == 0) rcua::reclaim::Qsbr::global().checkpoint();
      }
    }
    rcua::reclaim::Qsbr::global().checkpoint();
  });

  // Every task has joined, so no references are in flight: run any still
  // deferred releases before the final accounting.
  rcua::reclaim::Qsbr::global().flush_unsafe();

  std::printf("opened=%llu closed=%llu lookups=%llu\n",
              static_cast<unsigned long long>(opened.load()),
              static_cast<unsigned long long>(closed.load()),
              static_cast<unsigned long long>(lookups.load()));
  std::printf("table: live=%zu high_water=%zu capacity=%zu\n",
              sessions.live(), sessions.high_water(), sessions.capacity());

  if (sessions.live() != opened.load() - closed.load()) {
    std::printf("LIVE-COUNT MISMATCH\n");
    bad.fetch_add(1);
  }
  // Ids from the pool must still resolve.
  std::uint64_t resolved = 0;
  {
    std::lock_guard<std::mutex> guard(pool_mu);
    for (std::size_t id : live_pool) {
      if (sessions.get(id).opened_at != ~std::uint64_t{0}) ++resolved;
    }
    std::printf("resolved %llu/%zu pooled ids\n",
                static_cast<unsigned long long>(resolved), live_pool.size());
  }
  if (bad.load() != 0) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
