// Telemetry ingestion: the "distributed vector" application the paper's
// conclusion motivates. Producer tasks on every locale append samples to
// one DistVector while an analyst thread keeps reading a prefix — the
// vector grows under their feet through RCUArray's parallel-safe resize,
// and nobody ever takes a lock on the read/append fast path.
//
//   $ ./examples/telemetry_ingest [samples_per_producer]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "rcua.hpp"

namespace {

struct Sample {
  std::uint32_t source;
  std::uint32_t kind;
  std::uint64_t value;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t per_producer =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  rcua::rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 4});
  rcua::cont::DistVector<Sample> log(cluster, {.block_size = 512});

  // Analyst: continuously folds the committed prefix.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0};
  std::thread analyst([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = log.size();
      std::uint64_t checksum = 0;
      // Every entry below size() is fully written — push_back publishes
      // slots in order with a release the acquire in size() pairs with
      // (see DistVector docs) — so the whole prefix is scannable.
      for (std::size_t i = 0; i < n; ++i) {
        checksum += log[i].value;
      }
      scans.fetch_add(1, std::memory_order_relaxed);
      rcua::reclaim::Qsbr::global().checkpoint();
      std::this_thread::yield();
    }
  });

  // Producers: 2 tasks on each locale, each appending its stream.
  rcua::plat::Timer timer;
  cluster.coforall_tasks(2, [&](std::uint32_t locale, std::uint32_t task) {
    rcua::plat::Xoshiro256 rng(locale * 17 + task + 1);
    for (std::uint64_t i = 0; i < per_producer; ++i) {
      log.push_back(Sample{.source = locale,
                           .kind = static_cast<std::uint32_t>(task),
                           .value = rng.next_below(1000)});
      if (i % 512 == 0) rcua::reclaim::Qsbr::global().checkpoint();
    }
    rcua::reclaim::Qsbr::global().checkpoint();
  });
  const double seconds = timer.elapsed_s();
  stop.store(true);
  analyst.join();

  const std::uint64_t total = 4 * 2 * per_producer;
  std::printf("ingested %llu samples in %.3f s (%.1f M samples/s wall)\n",
              static_cast<unsigned long long>(total), seconds,
              static_cast<double>(total) / seconds / 1e6);
  std::printf("vector: size=%zu capacity=%zu blocks=%zu resizes=%llu\n",
              log.size(), log.capacity(), log.backing().num_blocks(),
              static_cast<unsigned long long>(log.backing().resize_count()));
  std::printf("analyst scans while growing: %llu\n",
              static_cast<unsigned long long>(scans.load()));

  // Sanity: per-source counts must add up.
  std::uint64_t per_source[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < log.size(); ++i) ++per_source[log[i].source];
  for (int s = 0; s < 4; ++s) {
    std::printf("  source %d: %llu samples\n", s,
                static_cast<unsigned long long>(per_source[s]));
    if (per_source[s] != 2 * per_producer) {
      std::printf("MISMATCH\n");
      return 1;
    }
  }
  std::printf("ok\n");
  return 0;
}
