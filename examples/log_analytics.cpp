// Log analytics over the DSI layer: a DsiArray of fixed-width event
// records is populated with locality-aware parallel loops (forall),
// aggregated with distributed reductions, and *grown while being
// queried* — the "parallel-safe resizable distribution" the paper's
// future work aims Chapel's dmap interface at.
//
//   $ ./examples/log_analytics [events]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/dsi.hpp"
#include "rcua.hpp"

namespace {

struct Event {
  std::uint32_t severity;  // 0..4
  std::uint32_t service;   // 0..15
  std::uint64_t latency_us;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  rcua::rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 4});
  rcua::DsiArray<Event> events(cluster, num_events, {.block_size = 2048});

  // 1. Populate in parallel, each locale writing only its own blocks.
  rcua::plat::Timer timer;
  events.forall([](std::size_t i, Event& e) {
    rcua::plat::SplitMix64 mix(i);
    const std::uint64_t r = mix.next();
    e.severity = static_cast<std::uint32_t>(r % 5);
    e.service = static_cast<std::uint32_t>((r >> 8) % 16);
    e.latency_us = (r >> 16) % 10000;
  });
  std::printf("populated %zu events in %.3f s (locality-aware forall)\n",
              events.size(), timer.elapsed_s());

  // 2. Distributed reductions.
  timer.reset();
  const auto errors = events.reduce(
      std::uint64_t{0},
      [](std::uint64_t acc, const Event& e) {
        return acc + (e.severity >= 3 ? 1 : 0);
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  const auto total_latency = events.reduce(
      std::uint64_t{0},
      [](std::uint64_t acc, const Event& e) { return acc + e.latency_us; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  std::printf("reduced in %.3f s: errors=%llu mean_latency=%.1f us\n",
              timer.elapsed_s(), static_cast<unsigned long long>(errors),
              static_cast<double>(total_latency) /
                  static_cast<double>(events.size()));

  // 3. Grow the domain while a reader keeps scanning the old region.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0}, bad{0};
  std::thread auditor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // The first 1000 events are immutable; re-derive and verify one.
      const std::size_t i = scans.load() % 1000;
      rcua::plat::SplitMix64 mix(i);
      const std::uint64_t r = mix.next();
      if (events.read(i).severity != r % 5) bad.fetch_add(1);
      scans.fetch_add(1, std::memory_order_relaxed);
      if (scans.load() % 256 == 0) rcua::reclaim::Qsbr::global().checkpoint();
    }
    rcua::reclaim::Qsbr::global().checkpoint();
  });
  for (int burst = 0; burst < 10; ++burst) {
    events.resize(events.size() + 4096);  // late-arriving log segments
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  while (scans.load() < 2000) std::this_thread::yield();
  stop.store(true);
  auditor.join();

  std::printf("grew to %zu events across 10 bursts; auditor scans=%llu "
              "violations=%llu\n",
              events.size(), static_cast<unsigned long long>(scans.load()),
              static_cast<unsigned long long>(bad.load()));

  // 4. Layout introspection (the dmap-style queries).
  std::printf("local index ranges on locale 0:");
  int shown = 0;
  for (const auto& [lo, hi] : events.local_indices(0)) {
    if (++shown > 3) {
      std::printf(" ...");
      break;
    }
    std::printf(" [%zu,%zu)", lo, hi);
  }
  std::printf("\n");

  if (bad.load() != 0) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
