// A distributed key-value store on DistHashMap — the "distributed table"
// application from the paper's conclusion. Writer tasks on every locale
// insert and update keys while reader tasks query; the table's slab grows
// through RCUArray's parallel-safe resize whenever collision chains need
// more overflow slots, without ever pausing readers.
//
//   $ ./examples/kv_store [keys]

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "rcua.hpp"

int main(int argc, char** argv) {
  const std::uint64_t num_keys =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  rcua::rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 4});
  rcua::cont::DistHashMap<std::uint64_t, std::uint64_t> store(
      cluster, {.num_buckets = 1024, .block_size = 1024});

  // Phase 1: parallel population, two writer tasks per locale, keys
  // partitioned by task.
  rcua::plat::Timer timer;
  cluster.coforall_tasks(2, [&](std::uint32_t locale, std::uint32_t task) {
    const std::uint64_t writer =
        static_cast<std::uint64_t>(locale) * 2 + task;
    for (std::uint64_t k = writer; k < num_keys; k += 8) {
      store.insert(k, k * 2 + 1);
      if (k % 4096 < 8) rcua::reclaim::Qsbr::global().checkpoint();
    }
    rcua::reclaim::Qsbr::global().checkpoint();
  });
  std::printf("populated %llu keys in %.3f s; slab grew %llu times "
              "(capacity %zu slots)\n",
              static_cast<unsigned long long>(num_keys), timer.elapsed_s(),
              static_cast<unsigned long long>(store.growths()),
              store.slab_capacity());

  // Phase 2: mixed readers + updaters + deleters, concurrent with more
  // growth-inducing inserts.
  std::atomic<std::uint64_t> hits{0}, misses{0}, wrong{0};
  timer.reset();
  cluster.coforall_tasks(3, [&](std::uint32_t locale, std::uint32_t task) {
    rcua::plat::Xoshiro256 rng(locale * 100 + task);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t k = rng.next_below(num_keys * 2);
      switch (rng.next_below(4)) {
        case 0:
          store.insert(k, k * 2 + 1);
          break;
        case 1:
          store.erase(k + num_keys);  // churn the upper half
          break;
        default: {
          const auto v = store.find(k);
          if (!v) {
            misses.fetch_add(1, std::memory_order_relaxed);
          } else if (*v != k * 2 + 1) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          } else {
            hits.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
      }
      if (i % 1024 == 0) rcua::reclaim::Qsbr::global().checkpoint();
    }
    rcua::reclaim::Qsbr::global().checkpoint();
  });
  std::printf("mixed phase: %.3f s, hits=%llu misses=%llu wrong=%llu\n",
              timer.elapsed_s(), static_cast<unsigned long long>(hits.load()),
              static_cast<unsigned long long>(misses.load()),
              static_cast<unsigned long long>(wrong.load()));

  // Verify the permanent keys all survived with correct values.
  std::uint64_t verified = 0;
  for (std::uint64_t k = 0; k < num_keys; ++k) {
    const auto v = store.find(k);
    if (v && *v == k * 2 + 1) ++verified;
  }
  std::printf("verified %llu/%llu permanent keys; table size=%zu\n",
              static_cast<unsigned long long>(verified),
              static_cast<unsigned long long>(num_keys), store.size());
  if (wrong.load() != 0 || verified != num_keys) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
