// Parallel BFS over a distributed CSR graph — a composition exercise for
// the whole library: the CSR offsets come from a distributed
// exclusive_scan over the degree array, adjacency lives in DsiArrays,
// the visited set is a DistBitset (atomic claim), the frontier is a
// DistVector, and per-level statistics come from allreduce.
//
//   $ ./examples/graph_bfs [vertices] [avg_degree]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/scan.hpp"
#include "containers/dist_bitset.hpp"
#include "containers/dist_vector.hpp"
#include "rcua.hpp"
#include "runtime/collectives.hpp"

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::size_t avg_degree =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

  rcua::rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 4});

  // 1. Degrees, then CSR offsets via distributed exclusive scan.
  rcua::DsiArray<std::uint64_t> offsets(cluster, n + 1, {.block_size = 2048});
  offsets.forall([&](std::size_t i, std::uint64_t& d) {
    if (i == n) {
      d = 0;
      return;
    }
    rcua::plat::SplitMix64 mix(i * 2654435761ULL + 1);
    d = mix.next() % (2 * avg_degree) + 1;  // 1 .. 2*avg
  });
  rcua::alg::exclusive_scan(
      offsets, std::uint64_t{0},
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  // Slot n held 0, so after the exclusive scan offsets[n] is the total
  // edge count.
  const std::size_t total_edges = offsets.read(n);
  std::printf("graph: %zu vertices, %zu edges (CSR via exclusive_scan)\n", n,
              total_edges);

  // 2. Adjacency: edge e of vertex v targets a pseudo-random vertex.
  rcua::DsiArray<std::uint32_t> edges(cluster, total_edges,
                                      {.block_size = 4096});
  edges.forall([&](std::size_t e, std::uint32_t& target) {
    rcua::plat::SplitMix64 mix(e * 11400714819323198485ULL + 7);
    target = static_cast<std::uint32_t>(mix.next() % n);
  });

  // 3. BFS from vertex 0.
  rcua::cont::DistBitset<> visited(cluster, n, {.block_size_words = 1024});
  auto* frontier = new rcua::cont::DistVector<std::uint32_t>(
      cluster, {.block_size = 1024});
  rcua::plat::Timer timer;
  visited.set(0);
  frontier->push_back(0);
  std::size_t total_visited = 1;
  int level = 0;

  while (frontier->size() > 0) {
    auto* next = new rcua::cont::DistVector<std::uint32_t>(
        cluster, {.block_size = 1024});
    const std::size_t width = frontier->size();
    // Expand the frontier in parallel across the cluster.
    cluster.coforall_tasks(4, [&](std::uint32_t l, std::uint32_t t) {
      const std::uint32_t stride = cluster.num_locales() * 4;
      for (std::size_t f = l * 4 + t; f < width; f += stride) {
        const std::uint32_t v = (*frontier)[f];
        const std::uint64_t lo = offsets.read(v);
        const std::uint64_t hi = offsets.read(v + 1);
        for (std::uint64_t e = lo; e < hi; ++e) {
          const std::uint32_t w = edges.read(e);
          if (visited.try_claim(w)) {
            next->push_back(w);
          }
        }
      }
      rcua::reclaim::Qsbr::global().checkpoint();
    });
    total_visited += next->size();
    std::printf("  level %d: frontier=%zu discovered=%zu\n", level, width,
                next->size());
    delete frontier;
    frontier = next;
    ++level;
    if (level > 64) break;  // safety
  }
  delete frontier;

  const double seconds = timer.elapsed_s();
  const std::size_t popcount = visited.count();
  std::printf("BFS done in %.3f s: visited=%zu levels=%d (bitset count=%zu)\n",
              seconds, total_visited, level, popcount);

  if (popcount != total_visited || total_visited > n) {
    std::printf("FAILED: visited bookkeeping mismatch\n");
    return 1;
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
  std::printf("ok\n");
  return 0;
}
