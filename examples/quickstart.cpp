// Quickstart: the smallest complete RCUArray program.
//
// Builds a 4-locale simulated cluster, creates an RCUArray, and runs
// readers and updaters concurrently with resizes — the exact operation
// mix that is unsafe on a plain distributed array.
//
//   $ ./examples/quickstart

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "rcua.hpp"

int main() {
  // A "cluster": 4 locales, 4 worker tasks each (all in this process;
  // see DESIGN.md for how this substitutes for real multi-node Chapel).
  rcua::rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 4});

  // A distributed resizable array of u64, one 1024-element block so far.
  // QsbrPolicy is the fast variant; EbrPolicy needs no runtime support.
  rcua::RCUArray<std::uint64_t, rcua::QsbrPolicy> arr(cluster, 1024);
  std::printf("created: capacity=%zu blocks=%zu block_size=%zu\n",
              arr.capacity(), arr.num_blocks(), arr.block_size());

  // Readers and updaters run on every locale WHILE the array grows.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::thread workload([&] {
    cluster.coforall_tasks(4, [&](std::uint32_t locale, std::uint32_t task) {
      rcua::plat::Xoshiro256 rng(locale * 131 + task);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t i = rng.next_below(arr.capacity());
        // index() returns a reference: reads and updates cost the same,
        // and the reference stays valid across a concurrent resize
        // because snapshots recycle blocks (paper Lemma 6). Tasks race on
        // the same slots by design, so accesses go through the relaxed
        // element helpers (the §III-C contract, and what read()/write()
        // do internally).
        std::uint64_t& slot = arr.index(i);
        if (rng.next_below(4) == 0) {
          rcua::plat::relaxed_store<std::uint64_t>(slot, i);  // update
        } else {
          const std::uint64_t v = rcua::plat::relaxed_load(slot);
          if (v != 0 && v != i) std::abort();  // read + invariant
        }
        if (ops.fetch_add(1, std::memory_order_relaxed) % 256 == 0) {
          // QSBR discipline: checkpoint now and then so retired
          // snapshots can be reclaimed.
          rcua::reclaim::Qsbr::global().checkpoint();
        }
      }
      rcua::reclaim::Qsbr::global().checkpoint();
    });
  });

  // Grow the array 16 times, concurrently with all of the above.
  for (int step = 0; step < 16; ++step) {
    arr.resize_add(1024);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  workload.join();

  std::printf("after 16 concurrent resizes: capacity=%zu blocks=%zu\n",
              arr.capacity(), arr.num_blocks());
  std::printf("workload ops completed:      %llu\n",
              static_cast<unsigned long long>(ops.load()));
  std::printf("blocks per locale:           ");
  for (std::uint32_t l = 0; l < cluster.num_locales(); ++l) {
    std::printf("%llu ",
                static_cast<unsigned long long>(cluster.locale(l).allocations()));
  }
  std::printf("\nremote GETs+PUTs observed:   %llu\n",
              static_cast<unsigned long long>(cluster.comm().total_gets() +
                                              cluster.comm().total_puts()));
  std::printf("resizes performed:           %llu\n",
              static_cast<unsigned long long>(arr.resize_count()));
  std::printf("ok\n");
  return 0;
}
