#include "testing/scheduler.hpp"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "testing/sched_point.hpp"

#if !defined(RCUA_SCHED_TEST) || !RCUA_SCHED_TEST
#error "testing/scheduler.cpp must be compiled with RCUA_SCHED_TEST=1"
#endif

namespace rcua::testing {

Mutations& mutations() noexcept {
  static Mutations m;
  return m;
}

// ---------------------------------------------------------------------------
// Scheduler internals
// ---------------------------------------------------------------------------

namespace {
struct Task;
}  // namespace

/// All scheduler state lives behind a shared_ptr so that a schedule
/// abandoned on deadlock/livelock can leak its stuck task threads safely:
/// each thread keeps the Impl (and thus the mutex/condvars it waits on,
/// and the scenario state its body captured) alive even after the
/// Scheduler object and the test that owned it are gone.
struct Scheduler::Impl {
  Scheduler::Options options;

  std::mutex mu;
  std::condition_variable sched_cv;
  std::vector<std::unique_ptr<Task>> tasks;
  bool handoff_back = false;  ///< running task returned control
  bool shutdown = false;      ///< destructor: unstarted tasks must exit
  bool abandoned = false;     ///< deadlock/livelock: stuck threads leak
  bool running = false;

  bool violated = false;
  std::string violation_message;
  std::vector<TraceEntry> trace;
  std::uint64_t steps = 0;
  std::function<void(Scheduler&)> finish;

  void task_entry(Task* t);
  void yield_current(Task* t, const char* site, std::function<bool()> pred);
};

namespace {

struct Task {
  enum class State { kNew, kReady, kBlocked, kDone };

  Scheduler::Impl* impl = nullptr;
  std::size_t id = 0;
  std::string name;
  std::function<void()> body;
  std::thread thread;

  std::condition_variable cv;
  bool can_run = false;
  State state = State::kNew;
  const char* site = "spawn";
  /// Valid while kBlocked; evaluated by the scheduler under `mu` (the
  /// task is paused, so reading its captured state is race-free).
  std::function<bool()> pred;

  std::size_t parent = kNoTask;
  std::size_t pending_children = 0;
};

/// The logical task the calling OS thread embodies, if any. Owning thread
/// keeps the Impl alive via a shared_ptr in its entry frame, so the raw
/// pointers here never dangle.
thread_local Task* tl_current_task = nullptr;

}  // namespace

void Scheduler::Impl::task_entry(Task* t) {
  {
    std::unique_lock<std::mutex> lk(mu);
    t->cv.wait(lk, [&] { return t->can_run || shutdown; });
    if (!t->can_run) {  // shut down before ever being scheduled
      t->state = Task::State::kDone;
      sched_cv.notify_all();
      return;
    }
    t->can_run = false;
  }
  tl_current_task = t;
  t->body();
  tl_current_task = nullptr;
  {
    std::unique_lock<std::mutex> lk(mu);
    t->state = Task::State::kDone;
    if (t->parent != kNoTask) {
      --tasks[t->parent]->pending_children;
    }
    handoff_back = true;
    sched_cv.notify_all();
  }
}

void Scheduler::Impl::yield_current(Task* t, const char* site,
                                    std::function<bool()> pred) {
  std::unique_lock<std::mutex> lk(mu);
  t->site = site;
  t->pred = std::move(pred);
  t->state = t->pred ? Task::State::kBlocked : Task::State::kReady;
  handoff_back = true;
  sched_cv.notify_all();
  t->cv.wait(lk, [&] { return t->can_run; });
  t->can_run = false;
  t->pred = nullptr;
}

Scheduler::Scheduler(Options options) : impl_(std::make_shared<Impl>()) {
  impl_->options = options;
}

Scheduler::~Scheduler() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->shutdown = true;
    for (auto& t : impl_->tasks) {
      if (t->state == Task::State::kNew) t->cv.notify_all();
    }
    // Wait for never-scheduled tasks to exit cleanly; they hold the lock
    // only briefly.
    impl_->sched_cv.wait(lk, [&] {
      for (auto& t : impl_->tasks) {
        if (t->state == Task::State::kNew) return false;
      }
      return true;
    });
    for (auto& t : impl_->tasks) {
      if (!t->thread.joinable()) continue;
      if (t->state == Task::State::kDone) {
        to_join.push_back(std::move(t->thread));
      } else {
        // Abandoned mid-body (deadlock/livelock). The thread blocks on
        // its condvar forever; it holds a shared_ptr to Impl, so leaking
        // it is memory-safe.
        t->thread.detach();
      }
    }
  }
  for (auto& th : to_join) th.join();
}

std::size_t Scheduler::spawn(std::string name, std::function<void()> body) {
  Impl* impl = impl_.get();
  std::unique_lock<std::mutex> lk(impl->mu);
  auto task = std::make_unique<Task>();
  Task* t = task.get();
  t->impl = impl;
  t->id = impl->tasks.size();
  t->name = std::move(name);
  t->body = std::move(body);
  impl->tasks.push_back(std::move(task));
  // The thread parks immediately in task_entry until scheduled. It holds
  // a shared_ptr so an abandoned schedule cannot pull Impl out from under
  // it.
  t->thread = std::thread([impl_keepalive = impl_, t] {
    impl_keepalive->task_entry(t);
  });
  return t->id;
}

void Scheduler::on_finish(std::function<void(Scheduler&)> check) {
  impl_->finish = std::move(check);
}

void Scheduler::violation(std::string message) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  if (!impl_->violated) {
    impl_->violated = true;
    impl_->violation_message = std::move(message);
  }
}

bool Scheduler::violated() const {
  std::unique_lock<std::mutex> lk(impl_->mu);
  return impl_->violated;
}

const std::string& Scheduler::violation_message() const {
  return impl_->violation_message;
}

const std::vector<TraceEntry>& Scheduler::trace() const {
  return impl_->trace;
}

std::uint64_t Scheduler::steps() const { return impl_->steps; }

void Scheduler::run(ScheduleStrategy& strategy) {
  Impl* impl = impl_.get();
  strategy.begin_schedule();
  std::size_t last = kNoTask;
  {
    std::unique_lock<std::mutex> lk(impl->mu);
    impl->running = true;
    for (;;) {
      std::vector<std::size_t> ready;
      bool all_done = true;
      for (auto& t : impl->tasks) {
        switch (t->state) {
          case Task::State::kNew:
          case Task::State::kReady:
            all_done = false;
            ready.push_back(t->id);
            break;
          case Task::State::kBlocked:
            all_done = false;
            if (t->pred && t->pred()) ready.push_back(t->id);
            break;
          case Task::State::kDone:
            break;
        }
      }
      if (all_done) break;
      if (ready.empty()) {
        std::ostringstream os;
        os << "deadlock: no runnable task;";
        for (auto& t : impl->tasks) {
          if (t->state == Task::State::kBlocked) {
            os << " [" << t->name << " blocked at " << t->site << "]";
          }
        }
        if (!impl->violated) {
          impl->violated = true;
          impl->violation_message = os.str();
        }
        impl->abandoned = true;
        impl->running = false;
        return;  // destructor detaches the stuck threads
      }
      if (impl->steps >= impl->options.max_steps) {
        if (!impl->violated) {
          impl->violated = true;
          impl->violation_message =
              "livelock: schedule exceeded max_steps without completing";
        }
        impl->abandoned = true;
        impl->running = false;
        return;
      }
      const std::size_t pick =
          strategy.pick(ready, last, impl->steps);
      Task* t = impl->tasks[ready[pick < ready.size() ? pick : 0]].get();
      impl->trace.push_back({t->name, t->site});
      ++impl->steps;
      last = t->id;
      t->state = Task::State::kReady;
      t->can_run = true;
      impl->handoff_back = false;
      t->cv.notify_all();
      impl->sched_cv.wait(lk, [&] { return impl->handoff_back; });
    }
    impl->running = false;
  }
  for (auto& t : impl->tasks) {
    if (t->thread.joinable()) t->thread.join();
  }
  if (impl->finish) impl->finish(*this);
}

// ---------------------------------------------------------------------------
// Hooks (declared in sched_point.hpp)
// ---------------------------------------------------------------------------

bool sched_task_active() noexcept { return tl_current_task != nullptr; }

std::size_t sched_task_id() noexcept {
  return tl_current_task != nullptr ? tl_current_task->id : 0;
}

void sched_point(const char* site) noexcept {
  Task* t = tl_current_task;
  if (t == nullptr) return;
  t->impl->yield_current(t, site, nullptr);
}

void sched_await(const char* site, std::function<bool()> pred) {
  Task* t = tl_current_task;
  if (t == nullptr) return;
  t->impl->yield_current(t, site, std::move(pred));
}

void sched_fork_join(std::size_t n,
                     const std::function<void(std::size_t)>& body) {
  Task* parent = tl_current_task;
  if (parent == nullptr) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Scheduler::Impl* impl = parent->impl;
  {
    std::unique_lock<std::mutex> lk(impl->mu);
    parent->pending_children += n;
    for (std::size_t i = 0; i < n; ++i) {
      auto task = std::make_unique<Task>();
      Task* t = task.get();
      t->impl = impl;
      t->id = impl->tasks.size();
      t->name = parent->name + "/" + std::to_string(i);
      t->body = [&body, i] { body(i); };
      t->parent = parent->id;
      impl->tasks.push_back(std::move(task));
      // Children borrow the parent's liveness: the parent cannot return
      // (and its frame cannot die) until pending_children drains, so a
      // raw Impl* suffices — but take no chances on abandoned schedules
      // and keep the keepalive pattern anyway.
      t->thread = std::thread([t] { t->impl->task_entry(t); });
    }
  }
  sched_await("coforall.join",
              [parent] { return parent->pending_children == 0; });
}

void sched_violation(const char* message) {
  Task* t = tl_current_task;
  if (t == nullptr) return;
  std::unique_lock<std::mutex> lk(t->impl->mu);
  if (!t->impl->violated) {
    t->impl->violated = true;
    t->impl->violation_message = message;
  }
}

// ---------------------------------------------------------------------------
// DFS strategy
// ---------------------------------------------------------------------------

std::size_t DfsStrategy::pick(const std::vector<std::size_t>& ready,
                              std::size_t last, std::uint64_t) {
  // Default choice: continue the task that just ran when it is still
  // ready (running to the next blocking point is "free"); otherwise the
  // lowest-id ready task.
  std::size_t cont = kNoTask;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (ready[i] == last) {
      cont = i;
      break;
    }
  }
  if (depth_ == plan_.size()) {
    Step s;
    s.cont = cont;
    const std::size_t def = cont != kNoTask ? cont : 0;
    s.alts.push_back(def);
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (i != def) s.alts.push_back(i);
    }
    plan_.push_back(std::move(s));
  }
  const Step& s = plan_[depth_];
  ++depth_;
  const std::size_t choice = s.alts[s.alt_pos];
  return choice < ready.size() ? choice : ready.size() - 1;
}

bool DfsStrategy::advance() {
  while (!plan_.empty()) {
    // Preemptions consumed by the prefix above the step being advanced.
    std::size_t base = 0;
    for (std::size_t i = 0; i + 1 < plan_.size(); ++i) {
      base += step_cost(plan_[i], plan_[i].alts[plan_[i].alt_pos]);
    }
    Step& s = plan_.back();
    std::size_t next = s.alt_pos + 1;
    while (next < s.alts.size() &&
           base + step_cost(s, s.alts[next]) > bound_) {
      ++next;
    }
    if (next < s.alts.size()) {
      s.alt_pos = next;
      return true;
    }
    plan_.pop_back();
  }
  return false;
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

namespace {

std::string format_trace(const std::vector<TraceEntry>& trace) {
  std::ostringstream os;
  const std::size_t n = trace.size();
  const std::size_t head = n > 160 ? 40 : n;
  for (std::size_t i = 0; i < head; ++i) {
    os << "  #" << i << " " << trace[i].task << " @ " << trace[i].site
       << "\n";
  }
  if (n > head) {
    os << "  ... (" << (n - head - 120) << " steps elided) ...\n";
    for (std::size_t i = n - 120; i < n; ++i) {
      os << "  #" << i << " " << trace[i].task << " @ " << trace[i].site
         << "\n";
    }
  }
  return os.str();
}

}  // namespace

std::uint64_t effective_schedule_budget(const ExploreOptions& options) {
  if (std::getenv("RCUA_SCHED_SEED") != nullptr) return 1;
  if (const char* env = std::getenv("RCUA_SCHED_SCHEDULES")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 0);
    if (n > 0) return n;
  }
  return options.schedules;
}

ExploreResult explore(const ExploreOptions& options,
                      const std::function<void(Scheduler&)>& scenario) {
  ExploreResult result;
  result.mode = options.mode;

  std::uint64_t base_seed = options.base_seed;
  std::uint64_t schedules = options.schedules;
  int preemption_bound = options.preemption_bound;
  bool replay = false;
  // Nightly deep-exploration knobs (see the header): a wider budget, a
  // higher preemption bound, or a shifted seed window, all without
  // recompiling the tests.
  if (const char* env = std::getenv("RCUA_SCHED_SCHEDULES")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 0);
    if (n > 0) schedules = n;
  }
  if (const char* env = std::getenv("RCUA_SCHED_PREEMPTION_BOUND")) {
    const long b = std::strtol(env, nullptr, 0);
    if (b >= 0) preemption_bound = static_cast<int>(b);
  }
  if (const char* env = std::getenv("RCUA_SCHED_BASE_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  if (const char* env = std::getenv("RCUA_SCHED_SEED")) {
    // Replay exactly one seed (random mode). DFS is self-reproducing:
    // rerunning the test re-enumerates the identical schedule sequence.
    base_seed = std::strtoull(env, nullptr, 0);
    schedules = 1;
    replay = options.mode == ExploreMode::kRandom;
  }

  const auto run_one = [&](ScheduleStrategy& strategy,
                           std::uint64_t seed) -> bool {
    Scheduler sched(Scheduler::Options{options.max_steps});
    scenario(sched);
    sched.run(strategy);
    ++result.schedules_run;
    if (sched.violated() && !result.found) {
      result.found = true;
      result.seed = seed;
      result.message = sched.violation_message();
      result.trace = format_trace(sched.trace());
    }
    return sched.violated();
  };

  if (options.mode == ExploreMode::kRandom) {
    for (std::uint64_t i = 0; i < schedules; ++i) {
      const std::uint64_t seed = base_seed + i;
      RandomStrategy strategy(seed);
      if (run_one(strategy, seed) && options.stop_on_violation) break;
    }
  } else {
    DfsStrategy strategy(preemption_bound);
    for (std::uint64_t i = 0; i < schedules; ++i) {
      if (run_one(strategy, i) && options.stop_on_violation) break;
      if (!strategy.advance()) {
        result.exhausted = true;
        break;
      }
    }
  }

  if (result.found && !options.quiet) {
    std::fprintf(stderr,
                 "[sched] invariant violation after %llu schedule(s): %s\n",
                 static_cast<unsigned long long>(result.schedules_run),
                 result.message.c_str());
    if (options.mode == ExploreMode::kRandom && !replay) {
      std::fprintf(stderr,
                   "[sched] replay deterministically with: "
                   "RCUA_SCHED_SEED=%llu <test binary>\n",
                   static_cast<unsigned long long>(result.seed));
    }
    std::fprintf(stderr, "[sched] violating schedule:\n%s",
                 result.trace.c_str());
  }
  return result;
}

}  // namespace rcua::testing
