#pragma once

/// Cooperative schedule-exploration hooks (see testing/scheduler.hpp and
/// TESTING.md).
///
/// Protocol-critical code marks its interleaving-sensitive steps with
/// `RCUA_SCHED_POINT("site")` and makes unbounded spin-waits
/// scheduler-aware with `RCUA_SCHED_AWAIT("site", predicate)`. When the
/// library is built without RCUA_SCHED_TEST — the default for release,
/// bench and the tier-1/stress suites — every macro expands to a constant
/// and the hooks vanish entirely: no function call, no TLS lookup, no
/// extra branch. When built with RCUA_SCHED_TEST=1 (the `rcua_sched`
/// library variant the `sched` test tier links against), the hooks hand
/// control to the deterministic scheduler, and still reduce to one
/// thread-local load plus a predicted branch on threads the scheduler
/// does not own.

#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST

#include <cstddef>
#include <functional>

namespace rcua::testing {

/// True iff the calling thread is a logical task owned by a running
/// deterministic scheduler.
[[nodiscard]] bool sched_task_active() noexcept;

/// Creation-order id of the calling logical task; 0 when the calling
/// thread is not a scheduled task. Deterministic across replays — used
/// by the striped EBR to derive its stripe choice from the logical task
/// instead of the (run-varying) OS thread identity.
[[nodiscard]] std::size_t sched_task_id() noexcept;

/// Yield point: hands control to the scheduler, which picks the next
/// logical task to run (possibly this one again). No-op when the calling
/// thread is not a scheduled task.
void sched_point(const char* site) noexcept;

/// Blocks the calling logical task until `pred()` holds. The scheduler
/// re-evaluates the predicate (which must be side-effect free) when
/// choosing the next task to run; between the deciding evaluation and the
/// task's resumption no other task executes, so the condition still holds
/// on return. No-op (returns immediately) when the calling thread is not
/// a scheduled task — use RCUA_SCHED_AWAIT to fall back to a spin loop.
void sched_await(const char* site, std::function<bool()> pred);

/// Runs `body(0..n-1)` as n child tasks of the current logical task and
/// blocks until all of them complete — Cluster::coforall under the
/// scheduler. Children are full scheduling units: their steps interleave
/// with every other task's.
void sched_fork_join(std::size_t n,
                     const std::function<void(std::size_t)>& body);

/// Reports an invariant violation to the running scheduler (records the
/// message and fails the current schedule). Safe to call from scheduled
/// tasks only.
void sched_violation(const char* format_message);

/// Deliberately broken protocol variants. The harness's mutation checks
/// flip one of these and assert that exploration *finds* a violating
/// schedule — proving the harness has teeth, and documenting exactly
/// which protocol line prevents which bug.
struct Mutations {
  /// EBR: skip the read-side epoch re-verification (Algorithm 1 line 13).
  bool ebr_skip_reverify = false;
  /// EBR: reclaim without draining the old-parity reader counter
  /// (Algorithm 1 lines 6-7).
  bool ebr_skip_drain = false;
  /// EBR (striped layout): drop the writer-side seq_cst fence after the
  /// epoch bump. Emulated under the SC scheduler as the StoreLoad hoist
  /// the fence forbids: the drain's first column scan may be satisfied by
  /// values sampled before the bump became visible.
  bool ebr_skip_fence = false;
  /// QSBR: checkpoint reclaims up to the *current* epoch instead of the
  /// minimum observed epoch over all participants (Algorithm 2 lines
  /// 6-8).
  bool qsbr_ignore_min = false;
  /// Watchdog: OverflowRetireList::flush_ready gates each deferred entry
  /// on its own retire parity alone instead of requiring both reader
  /// columns observed empty since the push. Plausible (it mirrors the
  /// blocking drain) but unsound: a timed-out grace period means a
  /// stalled reader on the *other* parity may hold the entry.
  bool watchdog_skip_recheck = false;
  /// Bulk ops: drain the destination aggregation buffers AFTER the
  /// read-side critical section that pinned the snapshot has closed,
  /// instead of before. Plausible (the flush "only copies elements", and
  /// under resize_add recycled blocks keep element pointers valid) but
  /// unsound: once the section closes a concurrent resize_remove's grace
  /// period can complete and free the dropped blocks the buffered
  /// operations still point into.
  bool bulk_flush_after_release = false;
  /// Async bulk ops: ISSUE the aggregation flushes inside the read-side
  /// section but deliver their completions only after it closed.
  /// Plausible (the ops were "sent" while pinned, and sync mode would
  /// have been safe at the same program point) but unsound: an async
  /// completion still holds raw block pointers, and once the section
  /// closes a concurrent resize_remove's grace period can free those
  /// blocks before the drain runs — the §10 completion-drain rule.
  bool async_drain_after_release = false;
  /// Block cache: serve a cached block copy without checking its
  /// snapshot-version and write-generation tags (rt::BlockCache::lookup).
  /// Plausible (the bytes were copied under a pinned snapshot, and
  /// Lemma 6's recycling means the block indices "still mean the same
  /// thing" across a resize_add) but unsound: a resize_remove +
  /// resize_add can free the copied block and put a *different* block at
  /// the same index, and a concurrent write() bumps the generation the
  /// copy was filled under — in both cases the entry is invalidated-but-
  /// present, and serving it is a stale read of reclaimed state
  /// (DESIGN.md §11; tests/test_sched_cache.cpp).
  bool cache_use_after_invalidate = false;
  /// IBR: publish the era reservation AFTER the protected-pointer load,
  /// with no reverify loop — the tempting "load first, reserve what you
  /// saw" order. Plausible (the reservation still covers the loaded
  /// object's birth era) but unsound: between the load and the publish a
  /// writer's retire+scan observes no reservation and frees the loaded
  /// object (tests/test_sched_eras.cpp).
  bool ibr_reserve_after_load = false;
  /// Hazard eras: clear the reservation slot as soon as the protected
  /// pointer is in hand, before the section's last access — the "pointer
  /// is already local" premature release. Plausible (the load itself was
  /// covered) but unsound: the very next retire+scan sees no reservation
  /// and frees the object under the section (tests/test_sched_eras.cpp).
  bool he_clear_before_access = false;
  /// Hazard pointers (baselines/hazard_array.hpp): clear the hazard slot
  /// after the publish-verify loop but before the guarded accesses — the
  /// same premature release expressed against raw pointer slots
  /// (tests/test_sched_hazard.cpp).
  bool hazard_clear_before_access = false;
  /// Shard migration (RCUArray::rehome): publish the replacement spine
  /// BEFORE draining the pipelined block-copy futures. Plausible (the
  /// copies were issued under the in-flight window before the publish,
  /// and "the wire preserves order") but unsound: a reader that loads
  /// the fresh spine between the publish and the copy drain reads
  /// replacement blocks whose contents never arrived — a value the
  /// array never stored (DESIGN.md §14; tests/test_sched_migration.cpp).
  bool migrate_publish_before_copy_complete = false;
  /// Shard migration (RCUArray::rehome): free the replaced source blocks
  /// BEFORE draining the readers of the old block mapping. Plausible
  /// (the new mapping is already published everywhere, so "no new reader
  /// can route to the old blocks") but unsound: a reader whose section
  /// pinned the OLD spine before the publish still holds pointers into
  /// the replaced blocks — the migrate→invalidate→drain ordering rule
  /// (DESIGN.md §14; tests/test_sched_migration.cpp).
  bool migrate_reclaim_before_mapping_drain = false;
};
[[nodiscard]] Mutations& mutations() noexcept;

}  // namespace rcua::testing

#define RCUA_SCHED_POINT(site) ::rcua::testing::sched_point(site)

/// Evaluates to true (after blocking until the predicate holds) when an
/// active scheduler handled the wait; false when the caller must fall
/// back to its spin loop.
#define RCUA_SCHED_AWAIT(site, ...)                              \
  (::rcua::testing::sched_task_active()                          \
       ? (::rcua::testing::sched_await(site, __VA_ARGS__), true) \
       : false)

/// Reads a mutation flag; constant false without RCUA_SCHED_TEST, so the
/// broken variant is compiled out of release code entirely.
#define RCUA_SCHED_MUT(field) (::rcua::testing::mutations().field)

#else  // !RCUA_SCHED_TEST

#define RCUA_SCHED_POINT(site) ((void)0)
#define RCUA_SCHED_AWAIT(site, ...) false
#define RCUA_SCHED_MUT(field) false

#endif  // RCUA_SCHED_TEST
