#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/rng.hpp"
#include "testing/sched_point.hpp"

/// Deterministic schedule-exploration harness for the EBR/QSBR/snapshot
/// protocols.
///
/// The paper's correctness lemmas (at most two live snapshots; parity
/// across epoch overflow; block recycling keeping references valid across
/// Resize) are interleaving-sensitive: wall-clock concurrent tests hit the
/// dangerous orderings only probabilistically. This harness makes them
/// reproducible:
///
///  * Each *logical task* of a scenario runs on its own OS thread, but a
///    baton (one mutex + per-task condition variables) guarantees that at
///    most one task executes at any instant. Tasks hand control back at
///    every `RCUA_SCHED_POINT` the instrumented library (built with
///    RCUA_SCHED_TEST=1) exposes, and at every `RCUA_SCHED_AWAIT`, which
///    replaces unbounded spin-waits with scheduler-visible blocking.
///  * Between two schedule points exactly one thread runs, so a schedule
///    — the sequence of (task, site) choices — fully determines the
///    execution. Replaying the choices replays the run, bit for bit.
///  * A `ScheduleStrategy` decides which ready task runs at each point:
///    `RandomStrategy` performs seeded random walks (the failing seed is
///    printed and replayable), `DfsStrategy` systematically enumerates
///    all schedules of a small scenario up to a preemption bound.
///
/// The model checked is sequential consistency: the baton's mutex orders
/// every step, so weak-memory-only bugs are out of scope (TSan and the
/// stress tier cover those). What the harness *does* find — deterministic
/// protocol-ordering bugs between announce/verify/drain/publish/retire —
/// is demonstrated by the mutation checks in tests/test_sched_*.cpp.
namespace rcua::testing {

inline constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

/// One executed step of a schedule: which task ran, from which site.
struct TraceEntry {
  std::string task;
  const char* site;
};

/// Decides, at every schedule point, which ready task runs next.
class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;

  /// Called once before each schedule starts.
  virtual void begin_schedule() {}

  /// Picks the next task: returns an index into `ready` (task ids in
  /// ascending creation order). `last` is the id of the task that ran the
  /// previous step (kNoTask at the first step).
  virtual std::size_t pick(const std::vector<std::size_t>& ready,
                           std::size_t last, std::uint64_t step) = 0;
};

/// Seeded random walk over the schedule space. The same seed always
/// produces the same schedule.
class RandomStrategy final : public ScheduleStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  void begin_schedule() override { rng_ = plat::Xoshiro256(seed_); }

  std::size_t pick(const std::vector<std::size_t>& ready, std::size_t,
                   std::uint64_t) override {
    return static_cast<std::size_t>(rng_.next_below(ready.size()));
  }

 private:
  std::uint64_t seed_;
  plat::Xoshiro256 rng_;
};

/// Bounded systematic exploration: depth-first enumeration of the
/// schedule tree, pruned by a preemption bound (switching away from a
/// still-ready task costs one preemption; running until a task blocks or
/// finishes is free). With a small scenario this covers *every* schedule
/// with at most `preemption_bound` preemptions — exhaustive, not
/// probabilistic, coverage of the interesting interleavings.
class DfsStrategy final : public ScheduleStrategy {
 public:
  explicit DfsStrategy(int preemption_bound)
      : bound_(preemption_bound < 0 ? 0
                                    : static_cast<std::size_t>(
                                          preemption_bound)) {}

  void begin_schedule() override { depth_ = 0; }

  std::size_t pick(const std::vector<std::size_t>& ready, std::size_t last,
                   std::uint64_t) override;

  /// Advances to the next unexplored schedule. Returns false once the
  /// bounded schedule tree is exhausted.
  bool advance();

 private:
  struct Step {
    /// Alternatives at this point, in exploration order: default choice
    /// first (continue the running task, else lowest id), then the
    /// remaining ready indices ascending.
    std::vector<std::size_t> alts;
    /// Index into `alts` currently being explored.
    std::size_t alt_pos = 0;
    /// Index (into ready) that continues the previously running task;
    /// kNoTask when that task was not ready (its step costs nothing).
    std::size_t cont = kNoTask;
  };

  [[nodiscard]] std::size_t step_cost(const Step& s,
                                      std::size_t choice) const noexcept {
    return (s.cont != kNoTask && choice != s.cont) ? 1 : 0;
  }

  std::size_t bound_;
  std::size_t depth_ = 0;
  std::vector<Step> plan_;
};

/// Runs one scenario — a set of spawned logical tasks — under one
/// schedule. Create, spawn tasks, call run() with a strategy, inspect
/// violations. The `explore()` driver below loops this over many
/// schedules.
class Scheduler {
 public:
  struct Options {
    /// A schedule exceeding this many steps is reported as a livelock.
    std::uint64_t max_steps = 200000;
  };

  explicit Scheduler(Options options);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a logical task. Tasks start suspended; run() interleaves
  /// them. Returns the task id (creation order).
  std::size_t spawn(std::string name, std::function<void()> body);

  /// Registers a check run after every task has finished (skipped when
  /// the schedule was abandoned on deadlock/livelock).
  void on_finish(std::function<void(Scheduler&)> check);

  /// Executes one complete schedule under `strategy`.
  void run(ScheduleStrategy& strategy);

  /// Records an invariant violation (first one wins). Callable from task
  /// bodies, the finish check, or the driving thread.
  void violation(std::string message);

  [[nodiscard]] bool violated() const;
  [[nodiscard]] const std::string& violation_message() const;
  [[nodiscard]] const std::vector<TraceEntry>& trace() const;
  [[nodiscard]] std::uint64_t steps() const;

  struct Impl;

 private:
  std::shared_ptr<Impl> impl_;
};

enum class ExploreMode {
  kRandom,  ///< seeded random walks (`schedules` seeds from `base_seed`)
  kDfs,     ///< systematic DFS up to `preemption_bound` preemptions
};

struct ExploreOptions {
  ExploreMode mode = ExploreMode::kRandom;
  /// Random: number of seeds tried. DFS: cap on enumerated schedules.
  std::uint64_t schedules = 2000;
  /// First seed of the random walk; seed i is base_seed + i. Overridden
  /// by the RCUA_SCHED_SEED environment variable for replay.
  std::uint64_t base_seed = 0x5eedba5e;
  int preemption_bound = 3;
  std::uint64_t max_steps = 200000;
  /// Stop at the first violating schedule (mutation checks) instead of
  /// exploring the full budget.
  bool stop_on_violation = true;
  /// Suppress the replay banner printed on violation.
  bool quiet = false;
};

struct ExploreResult {
  bool found = false;          ///< some schedule violated an invariant
  std::uint64_t seed = 0;      ///< reproducing seed (random mode)
  ExploreMode mode = ExploreMode::kRandom;
  std::string message;         ///< first violation message
  std::string trace;           ///< formatted schedule of the violating run
  std::uint64_t schedules_run = 0;
  bool exhausted = false;      ///< DFS: bounded tree fully enumerated
};

/// Explores schedules of `scenario` (called once per schedule to build
/// fresh state and spawn tasks). On violation, prints the reproducing
/// seed — rerunning with RCUA_SCHED_SEED=<seed> in the environment
/// replays exactly that schedule (random mode; DFS is self-reproducing).
///
/// Environment overrides (the nightly CI tier's deep-exploration knobs):
///   RCUA_SCHED_SCHEDULES        — replaces options.schedules
///   RCUA_SCHED_PREEMPTION_BOUND — replaces options.preemption_bound
///   RCUA_SCHED_BASE_SEED        — replaces options.base_seed (sweeps a
///                                 different seed window per nightly run
///                                 without forcing single-seed replay)
///   RCUA_SCHED_SEED             — replay: forces exactly one schedule,
///                                 wins over all of the above
ExploreResult explore(const ExploreOptions& options,
                      const std::function<void(Scheduler&)>& scenario);

/// The schedule budget explore() will actually run for `options` after
/// the environment overrides above: RCUA_SCHED_SEED forces 1,
/// RCUA_SCHED_SCHEDULES replaces the configured count, otherwise
/// options.schedules. Tests asserting that a negative control consumed
/// its whole budget compare ExploreResult::schedules_run against this
/// instead of the literal, so the nightly deep-budget sweep does not
/// break them. (DFS runs may still stop early with `exhausted` set.)
[[nodiscard]] std::uint64_t effective_schedule_budget(
    const ExploreOptions& options);

/// RAII toggle for one mutation flag (see sched_point.hpp); restores the
/// previous value on scope exit.
class ScopedMutation {
 public:
  explicit ScopedMutation(bool* flag) : flag_(flag), saved_(*flag) {
    *flag_ = true;
  }
  ~ScopedMutation() { *flag_ = saved_; }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  bool* flag_;
  bool saved_;
};

}  // namespace rcua::testing
