#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua::svc {

/// An immutable version of a ShardedCollection's shard-mapping table:
/// shard index -> home locale. The mapping is published through exactly
/// the snapshot-swap machinery the paper proves for the block table
/// (DESIGN.md §14): each locale holds a privatized
/// `std::atomic<ShardMap*>`, a routing read is an RCU read of that
/// pointer, and a remap is a resize-style publication — clone, swap,
/// reclaim the old table through the configured Reclaimer policy once
/// its readers drain.
///
/// The Lemma 6 recycling argument carries over in a *stronger* form:
/// the entries here are locale ids (plain values), not pointers into
/// shared storage, so a reader holding a retired map cannot even
/// observe a dangling entry — the worst a stale table yields is a
/// detour through a shard's previous home, which RCUArray's privatized
/// access path resolves correctly from any locale. Reclamation
/// therefore only has to keep the retired table's *memory* alive until
/// its readers drain, which is precisely what the snapshot machinery
/// already does for spines.
class ShardMap {
 public:
  explicit ShardMap(std::vector<std::uint32_t> home) : home_(std::move(home)) {
    live_.fetch_add(1, std::memory_order_relaxed);
  }

  ~ShardMap() { live_.fetch_sub(1, std::memory_order_relaxed); }

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  /// Clones `old` with shard `shard` re-homed to `dst` — the remap
  /// publication (the clone_append analog for the mapping table).
  /// Charges the same spine-copy model as a snapshot clone.
  static ShardMap* clone_set(const ShardMap& old, std::size_t shard,
                             std::uint32_t dst) {
    assert(shard < old.home_.size());
    auto* m = new ShardMap(old.home_);
    m->version_ = old.version_ + 1;
    m->home_[shard] = dst;
    sim::charge(sim::CostModel::get().spine_copy_ns_per_block *
                static_cast<double>(m->home_.size()));
    RCUA_SCHED_POINT("shard_map.cloned");
    return m;
  }

  /// Home locale of `shard` in this version of the mapping.
  [[nodiscard]] std::uint32_t home(std::size_t shard) const noexcept {
    assert(shard < home_.size());
    return home_[shard];
  }

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return home_.size();
  }

  /// Monotonic version stamp: 0 for the construction-time table, +1 per
  /// published remap (same contract as Snapshot::version).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Live ShardMap tables — the no-leak assertion in tests (the
  /// Snapshot::live_count analog).
  static std::uint64_t live_count() noexcept {
    return live_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint32_t> home_;
  std::uint64_t version_ = 0;
  static inline std::atomic<std::uint64_t> live_{0};
};

}  // namespace rcua::svc
