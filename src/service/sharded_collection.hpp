#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/rcu_array.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/shard_map.hpp"
#include "util/env.hpp"

namespace rcua::svc {

/// The elastic sharded-service layer (DESIGN.md §14): key ranges map
/// onto RCUArray-backed shards, with the shard-mapping table itself an
/// RCU-published snapshot (ShardMap). A ShardedCollection is a drop-in
/// backend for the containers (same constructor shape and method subset
/// as RCUArray), so DistVector / DistHashMap / DistIdTable become shard
/// clients by swapping one template argument.
///
/// Layout: global block g lives in shard `g % shard_count` at local
/// block `g / shard_count` (block-cyclic), so growth lands one block per
/// shard per stride and every shard stays within one block of balanced.
/// Each shard is an RCUArray pinned to a single home locale
/// (Options::home_locale), which is what makes live migration a
/// wholesale move: `migrate(shard, dst)` copies the shard's blocks to
/// `dst` through the §10 async comm path (RCUArray::rehome), publishes a
/// new ShardMap, and retires the old table through the configured
/// Reclaimer policy once its readers drain. Routing a read is an RCU
/// read of the mapping — stale routes are safe because map entries are
/// locale ids (values), not pointers (see ShardMap).
///
/// Ordering rule (§14): migrate -> invalidate -> drain. rehome() owns
/// copy-before-publish and the BlockCache invalidation interlock; the
/// map publication here follows the same resize-style protocol as a
/// spine swap. The remap lock serializes migrations against structural
/// growth (resize_add), which is the serialization the rehome copy
/// phase's concurrency contract requires.
template <typename T, typename Policy = QsbrPolicy>
class ShardedCollection {
 public:
  struct Options {
    /// First two members mirror RCUArray::Options so the containers'
    /// braced `{options.block_size, options.qsbr}` construction works
    /// unchanged against either backend.
    std::size_t block_size = 1024;
    reclaim::Qsbr* qsbr = nullptr;
    /// Number of shards; 0 defers to RCUA_SHARD_COUNT (itself defaulting
    /// to the cluster's locale count — one shard per locale).
    std::size_t shard_count = 0;
    /// Forwarded to every shard's RCUArray (see RCUArray::Options).
    std::size_t cache_capacity_bytes =
        RCUArray<T, Policy>::Options::kCacheCapacityFromEnv;
  };

  using Backend = RCUArray<T, Policy>;
  using BulkOptions = typename Backend::BulkOptions;

  static constexpr bool uses_qsbr = Policy::is_qsbr;

  ShardedCollection(rt::Cluster& cluster, std::size_t initial_capacity = 0,
                    Options options = {})
      : cluster_(cluster),
        block_size_(options.block_size),
        shard_count_(resolve_shard_count(options.shard_count, cluster)),
        qsbr_(options.qsbr),
        pid_(cluster.privatization().create()),
        routed_(cluster.comm().registry().counter("rcua.service.routed",
                                                  cluster.num_locales())),
        routed_remote_(cluster.comm().registry().counter(
            "rcua.service.routed_remote", cluster.num_locales())),
        remaps_(cluster.comm().registry().counter("rcua.service.remaps")),
        migrations_(
            cluster.comm().registry().counter("rcua.service.migrations")),
        migration_rollbacks_(cluster.comm().registry().counter(
            "rcua.service.migration_rollbacks")),
        migrated_blocks_(cluster.comm().registry().counter(
            "rcua.service.migrated_blocks")),
        migrated_bytes_(cluster.comm().registry().counter(
            "rcua.service.migrated_bytes")) {
    if (block_size_ == 0) throw std::invalid_argument("block_size == 0");
    if (shard_count_ == 0) throw std::invalid_argument("shard_count == 0");
    // Initial placement: shard s homed on locale s % num_locales — the
    // balanced block-cyclic start the PressureMonitor perturbs from.
    std::vector<std::uint32_t> home(shard_count_);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      home[s] = static_cast<std::uint32_t>(s % cluster.num_locales());
    }
    shards_.reserve(shard_count_);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      typename Backend::Options shard_opts;
      shard_opts.block_size = block_size_;
      shard_opts.qsbr = options.qsbr;
      shard_opts.cache_capacity_bytes = options.cache_capacity_bytes;
      shard_opts.home_locale = home[s];
      shards_.push_back(std::make_unique<Backend>(cluster, /*capacity=*/0,
                                                  shard_opts));
    }
    cluster_.coforall_locales([&](std::uint32_t l) {
      auto* p = new PerLocale;
      p->map.store(new ShardMap(home), std::memory_order_relaxed);
      cluster_.privatization().set(pid_, l, p);
    });
    if (initial_capacity > 0) resize_add(initial_capacity);
  }

  ~ShardedCollection() {
    // Same contract as RCUArray: external quiescence at destruction.
    for (std::uint32_t l = 0; l < cluster_.num_locales(); ++l) {
      PerLocale* p = &priv_at(l);
      delete p->map.load(std::memory_order_acquire);
      delete p;
    }
    cluster_.privatization().destroy(pid_);
  }

  ShardedCollection(const ShardedCollection&) = delete;
  ShardedCollection& operator=(const ShardedCollection&) = delete;

  // -- Element access (routing read = RCU map read + shard op) ----------

  T& index(std::size_t i) {
    const Route r = route(i);
    return shards_[r.shard]->index(r.local);
  }
  T& operator[](std::size_t i) { return index(i); }

  T& at(std::size_t i) {
    if (i >= capacity()) {
      throw std::out_of_range("ShardedCollection::at: index " +
                              std::to_string(i) + " >= capacity " +
                              std::to_string(capacity()));
    }
    return index(i);
  }

  T read(std::size_t i) {
    const Route r = route(i);
    return shards_[r.shard]->read(r.local);
  }

  void write(std::size_t i, T value) {
    const Route r = route(i);
    shards_[r.shard]->write(r.local, std::move(value));
  }

  // -- Bulk operations ---------------------------------------------------

  /// Per-global-block fan-out to the owning shards' aggregated bulk
  /// paths. Within one shard, consecutive global blocks are consecutive
  /// local blocks, so each shard-level call covers the longest contiguous
  /// same-shard stretch of the range (the whole range when
  /// shard_count == 1).
  void bulk_read(std::size_t first, std::size_t count, T* out,
                 BulkOptions opts = {}) {
    for_each_span(first, count, [&](std::size_t shard, std::size_t local,
                                    std::size_t global, std::size_t len) {
      shards_[shard]->bulk_read(local, len, out + (global - first), opts);
    });
  }

  [[nodiscard]] std::vector<T> bulk_read(std::size_t first, std::size_t count,
                                         BulkOptions opts = {}) {
    std::vector<T> out(count);
    bulk_read(first, count, out.data(), opts);
    return out;
  }

  void bulk_write(std::size_t first, std::span<const T> values,
                  BulkOptions opts = {}) {
    for_each_span(
        first, values.size(),
        [&](std::size_t shard, std::size_t local, std::size_t global,
            std::size_t len) {
          shards_[shard]->bulk_write(local,
                                     values.subspan(global - first, len),
                                     opts);
        });
  }

  // -- Growth ------------------------------------------------------------

  /// Grows total capacity by ceil(num_elements / block_size) blocks,
  /// dealt block-cyclically across the shards. Serialized with
  /// migrations by the remap lock (each shard's resize_add additionally
  /// takes the cluster WriteLock, like any RCUArray resize).
  void resize_add(std::size_t num_elements) {
    const std::size_t nblocks =
        (num_elements + block_size_ - 1) / block_size_;
    if (nblocks == 0) return;
    std::lock_guard<std::mutex> guard(remap_mu_);
    const std::size_t base = total_blocks_.load(std::memory_order_relaxed);
    std::vector<std::size_t> grow(shard_count_, 0);
    for (std::size_t k = 0; k < nblocks; ++k) {
      grow[(base + k) % shard_count_] += 1;
    }
    for (std::size_t s = 0; s < shard_count_; ++s) {
      if (grow[s] != 0) shards_[s]->resize_add(grow[s] * block_size_);
    }
    // Release pairs with capacity()'s acquire: a capacity the caller
    // observes is backed by fully published shard resizes.
    total_blocks_.store(base + nblocks, std::memory_order_release);
  }

  // -- Live migration ----------------------------------------------------

  /// Moves shard `shard` to locale `dst`: block copy + spine swap via
  /// RCUArray::rehome (which owns copy-before-publish, the BlockCache
  /// invalidation interlock, and the reader drain), then the ShardMap
  /// publication below. Returns false when a FaultPlan kKillLocale fault
  /// rolled the copy back — the old mapping stays live and no element
  /// was lost or duplicated.
  bool migrate(std::size_t shard, std::uint32_t dst) {
    if (shard >= shard_count_) {
      throw std::invalid_argument("migrate: shard out of range");
    }
    obs::TraceSpan span("svc.migrate", "service", dst);
    std::lock_guard<std::mutex> guard(remap_mu_);
    Backend& b = *shards_[shard];
    const std::size_t blocks = b.num_blocks();
    if (!b.rehome(dst)) {
      migration_rollbacks_.add();
      return false;
    }
    publish_map(shard, dst);
    migrations_.add();
    migrated_blocks_.add(blocks);
    migrated_bytes_.add(blocks * block_size_ * sizeof(T));
    return true;
  }

  /// Publishes a new ShardMap with shard -> dst WITHOUT moving blocks —
  /// the pure remap (a resize-style publication of the mapping table).
  /// migrate() calls this after the copy lands; it is public so tests
  /// can exercise remap-concurrent-with-lookup in isolation.
  void remap(std::size_t shard, std::uint32_t dst) {
    if (shard >= shard_count_) {
      throw std::invalid_argument("remap: shard out of range");
    }
    std::lock_guard<std::mutex> guard(remap_mu_);
    publish_map(shard, dst);
  }

  // -- Introspection -----------------------------------------------------

  [[nodiscard]] std::size_t capacity() const {
    return total_blocks_.load(std::memory_order_acquire) * block_size_;
  }
  [[nodiscard]] std::size_t num_blocks() const {
    return total_blocks_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  /// Sum of the shards' resize counts (the DistHashMap growths() feed).
  [[nodiscard]] std::uint64_t resize_count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->resize_count();
    return n;
  }
  /// The underlying shard (tests, PressureMonitor).
  [[nodiscard]] Backend& shard(std::size_t s) { return *shards_[s]; }
  /// Routing read of shard `s`'s home in the calling locale's current
  /// mapping (an RCU read of the privatized table).
  [[nodiscard]] std::uint32_t home_of(std::size_t s) {
    return read_map([&](const ShardMap& m) { return m.home(s); });
  }
  /// Version of the calling locale's current mapping table.
  [[nodiscard]] std::uint64_t map_version() {
    return read_map([](const ShardMap& m) { return m.version(); });
  }
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_.value();
  }
  [[nodiscard]] std::uint64_t migration_rollbacks() const noexcept {
    return migration_rollbacks_.value();
  }
  [[nodiscard]] std::uint64_t remaps() const noexcept {
    return remaps_.value();
  }
  [[nodiscard]] std::uint64_t migrated_blocks() const noexcept {
    return migrated_blocks_.value();
  }
  [[nodiscard]] std::uint64_t routed() const noexcept {
    return routed_.value();
  }
  [[nodiscard]] std::uint64_t routed_remote() const noexcept {
    return routed_remote_.value();
  }
  [[nodiscard]] rt::Cluster& cluster() noexcept { return cluster_; }

 private:
  struct alignas(plat::kCacheLine) PerLocale {
    std::atomic<ShardMap*> map{nullptr};
    // The mapping table's own reclaimer instance, same policy shape as
    // the spine's (one stripe under QSBR, where it is never exercised).
    typename Policy::Reclaimer ebr{0, Policy::is_qsbr ? std::size_t{1}
                                                      : std::size_t{0}};
  };

  struct Route {
    std::size_t shard;
    std::size_t local;
  };

  static std::size_t resolve_shard_count(std::size_t opt,
                                         rt::Cluster& cluster) {
    if (opt != 0) return opt;
    return static_cast<std::size_t>(
        util::env_u64("RCUA_SHARD_COUNT", cluster.num_locales()));
  }

  [[nodiscard]] PerLocale& priv() const { return priv_at(cluster_.here()); }
  [[nodiscard]] PerLocale& priv_at(std::uint32_t locale) const {
    auto* p =
        static_cast<PerLocale*>(cluster_.privatization().get(pid_, locale));
    assert(p != nullptr);
    return *p;
  }

  /// The RCU read of the mapping table: pins the calling locale's table
  /// under the policy's read-side protocol (the exact index_rw idiom),
  /// runs `fn` against it, and releases. `fn` must not escape pointers
  /// into the table — locale ids are values, copy them out.
  template <typename F>
  auto read_map(F&& fn) {
    PerLocale& p = priv();
    if constexpr (Policy::is_qsbr) {
      qsbr().ensure_participant();
      return fn(*p.map.load(std::memory_order_acquire));
    } else if constexpr (Policy::is_interval) {
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      return fn(*guard.protect(p.map));
    } else {
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      return fn(*p.map.load(std::memory_order_acquire));
    }
  }

  [[nodiscard]] reclaim::Qsbr& qsbr() const noexcept {
    return qsbr_ != nullptr ? *qsbr_ : reclaim::Qsbr::global();
  }

  /// Block-cyclic routing + the routing metrics: one routed count per
  /// element op, routed_remote when the mapping says the shard's home is
  /// not the calling locale.
  Route route(std::size_t i) {
    const std::size_t g = i / block_size_;
    const std::size_t shard = g % shard_count_;
    const std::size_t local =
        (g / shard_count_) * block_size_ + (i % block_size_);
    const std::uint32_t here = cluster_.here();
    routed_.add_at(here);
    const std::uint32_t home =
        read_map([&](const ShardMap& m) { return m.home(shard); });
    if (home != here) routed_remote_.add_at(here);
    return Route{shard, local};
  }

  /// Decomposes [first, first+count) into maximal spans that stay inside
  /// one shard's contiguous local range; calls
  /// fn(shard, local_first, global_first, len) per span.
  template <typename F>
  void for_each_span(std::size_t first, std::size_t count, F&& fn) {
    if (count == 0) return;
    if (first + count < first || first + count > capacity()) {
      throw std::out_of_range("ShardedCollection: bulk range beyond capacity");
    }
    std::size_t i = first;
    const std::size_t end = first + count;
    while (i < end) {
      const std::size_t g = i / block_size_;
      const std::size_t shard = g % shard_count_;
      std::size_t span_end = std::min(end, (g + 1) * block_size_);
      if (shard_count_ == 1) span_end = end;
      const std::size_t local =
          (g / shard_count_) * block_size_ + (i % block_size_);
      fn(shard, local, i, span_end - i);
      i = span_end;
    }
  }

  /// The resize-style mapping publication: per locale, clone the table
  /// with the shard re-homed, swap, and reclaim the old table through the
  /// configured policy once that locale's routing readers drain.
  /// Deliberately BLOCKING under the era policies too (like
  /// resize_remove): tables are a few dozen bytes and remaps are rare,
  /// so a bounded wait beats threading the overflow machinery through a
  /// second object type. Caller holds remap_mu_.
  void publish_map(std::size_t shard, std::uint32_t dst) {
    cluster_.coforall_locales([&](std::uint32_t l) {
      PerLocale& p = priv_at(l);
      ShardMap* old = p.map.load(std::memory_order_relaxed);
      ShardMap* fresh = ShardMap::clone_set(*old, shard, dst);
      RCUA_SCHED_POINT("svc.remap.publish");
      p.map.store(fresh, std::memory_order_release);
      RCUA_SCHED_POINT("svc.remap.published");
      obs::trace_instant("svc.remap.publish", "service", l);
      if constexpr (Policy::is_qsbr) {
        qsbr().defer_delete(old);
      } else if constexpr (Policy::is_interval) {
        const std::uint64_t fence = p.ebr.advance_era();
        p.ebr.wait_for_readers(fence);
        delete old;
      } else {
        const auto epoch = p.ebr.advance_epoch();
        p.ebr.wait_for_readers(epoch);
        delete old;
      }
    });
    remaps_.add();
  }

  rt::Cluster& cluster_;
  std::size_t block_size_;
  std::size_t shard_count_;
  reclaim::Qsbr* qsbr_;
  int pid_;
  std::vector<std::unique_ptr<Backend>> shards_;
  std::atomic<std::size_t> total_blocks_{0};
  /// Serializes migrations, remaps and collection-level growth.
  std::mutex remap_mu_;
  obs::Counter& routed_;
  obs::Counter& routed_remote_;
  obs::Counter& remaps_;
  obs::Counter& migrations_;
  obs::Counter& migration_rollbacks_;
  obs::Counter& migrated_blocks_;
  obs::Counter& migrated_bytes_;
};

}  // namespace rcua::svc
