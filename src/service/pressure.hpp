#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"
#include "service/sharded_collection.hpp"

namespace rcua::svc {

/// Watches per-locale memory pressure through the obs registry's gauges
/// and triggers ShardedCollection migrations automatically: when the
/// hottest locale carries more than `imbalance_ratio` times the bytes of
/// the coldest, one shard homed on the hottest locale migrates to the
/// coldest. Polling is explicit (`tick()`), so behaviour is
/// deterministic under the sim clock and the sched harness — a service
/// loop calls tick() at its own cadence.
///
/// The gauges feed the same registry the §12 health gauges live in
/// (`rcua.service.pressure.bytes.<locale>`), so an operator sees the
/// imbalance the monitor is acting on in the ordinary stats dump.
template <typename T, typename Policy = QsbrPolicy>
class PressureMonitor {
 public:
  struct Options {
    /// Hottest/coldest bytes ratio that arms a migration (must be > 1).
    double imbalance_ratio = 2.0;
    /// Below this many bytes on the hottest locale nothing migrates —
    /// rebalancing empty locales is churn, not relief.
    std::uint64_t min_bytes = 1;
    /// Upper bound on migrations per tick (one keeps each tick cheap and
    /// re-evaluates pressure between moves).
    std::size_t max_migrations_per_tick = 1;
  };

  /// What one tick decided, for tests and logs.
  struct Decision {
    std::size_t shard;
    std::uint32_t from;
    std::uint32_t to;
    bool completed;  ///< false = the migration rolled back (fault)
  };

  PressureMonitor(ShardedCollection<T, Policy>& coll, Options options = {})
      : coll_(coll), options_(options) {
    rt::Cluster& cluster = coll.cluster();
    gauges_.reserve(cluster.num_locales());
    for (std::uint32_t l = 0; l < cluster.num_locales(); ++l) {
      gauges_.push_back(&cluster.comm().registry().gauge(
          "rcua.service.pressure.bytes." + std::to_string(l)));
    }
  }

  PressureMonitor(const PressureMonitor&) = delete;
  PressureMonitor& operator=(const PressureMonitor&) = delete;

  /// Refreshes the pressure gauges and migrates up to
  /// max_migrations_per_tick shards off the hottest locale. Returns the
  /// decisions taken (empty = balanced or nothing eligible).
  std::vector<Decision> tick() {
    std::vector<Decision> decisions;
    for (std::size_t n = 0; n < options_.max_migrations_per_tick; ++n) {
      refresh_gauges();
      std::optional<Decision> d = evaluate();
      if (!d) break;
      d->completed = coll_.migrate(d->shard, d->to);
      decisions.push_back(*d);
      if (!d->completed) break;  // faulted destination: stop churning
    }
    // Leave the gauges reflecting the post-migration picture, so the
    // stats dump an operator reads matches what the tick actually did.
    refresh_gauges();
    return decisions;
  }

  /// Pure decision step (no side effects beyond reading gauges): the
  /// shard the current pressure picture would migrate, or nullopt when
  /// balanced. Exposed so tests can pin the policy without migrating.
  std::optional<Decision> evaluate() {
    rt::Cluster& cluster = coll_.cluster();
    std::uint32_t hot = 0;
    std::uint32_t cold = 0;
    std::uint64_t hot_bytes = 0;
    std::uint64_t cold_bytes = UINT64_MAX;
    for (std::uint32_t l = 0; l < cluster.num_locales(); ++l) {
      const std::uint64_t bytes = cluster.locale(l).bytes_live();
      if (bytes > hot_bytes) {
        hot_bytes = bytes;
        hot = l;
      }
      if (bytes < cold_bytes) {
        cold_bytes = bytes;
        cold = l;
      }
    }
    if (hot == cold || hot_bytes < options_.min_bytes) return std::nullopt;
    if (static_cast<double>(hot_bytes) <
        options_.imbalance_ratio * static_cast<double>(cold_bytes)) {
      return std::nullopt;
    }
    // First shard homed on the hot locale, by the CALLING locale's
    // mapping — a stale route here only delays rebalance by one tick.
    for (std::size_t s = 0; s < coll_.shard_count(); ++s) {
      if (coll_.home_of(s) == hot) {
        return Decision{s, hot, cold, false};
      }
    }
    return std::nullopt;
  }

 private:
  void refresh_gauges() {
    rt::Cluster& cluster = coll_.cluster();
    for (std::uint32_t l = 0; l < cluster.num_locales(); ++l) {
      gauges_[l]->set(cluster.locale(l).bytes_live());
    }
  }

  ShardedCollection<T, Policy>& coll_;
  Options options_;
  std::vector<obs::Gauge*> gauges_;
};

}  // namespace rcua::svc
