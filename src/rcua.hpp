#pragma once

/// Umbrella header for the RCUArray library.
///
/// Layering (bottom to top):
///   platform/ — alignment, backoff, locks, RNG, timing
///   sim/      — virtual-time cluster performance model
///   runtime/  — the Chapel-like substrate: cluster, locales, tasking,
///               privatization, comm, TLSList, cluster-wide lock
///   reclaim/  — EBR (paper Algorithm 1), QSBR (Algorithm 2), hazard ptrs
///   core/     — RCUArray (Algorithm 3), Snapshot/Block, RcuCell
///   baselines/— UnsafeArray (ChapelArray), SyncArray, RwlockArray,
///               HazardArray
///   containers/ — DistVector, DistIdTable, DistHashMap

#include "algorithms/histogram.hpp"
#include "algorithms/scan.hpp"
#include "baselines/hazard_array.hpp"
#include "baselines/rwlock_array.hpp"
#include "baselines/sync_array.hpp"
#include "baselines/unsafe_array.hpp"
#include "containers/dist_bitset.hpp"
#include "containers/dist_hash_map.hpp"
#include "containers/dist_id_table.hpp"
#include "containers/dist_vector.hpp"
#include "containers/rcu_list.hpp"
#include "core/dsi.hpp"
#include "core/rcu_array.hpp"
#include "core/rcu_cell.hpp"
#include "platform/align.hpp"
#include "platform/atomics.hpp"
#include "platform/backoff.hpp"
#include "platform/barrier.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "platform/timing.hpp"
#include "platform/topology.hpp"
#include "reclaim/auto_checkpoint.hpp"
#include "reclaim/call_rcu.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/qsbr.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "runtime/global_lock.hpp"
#include "runtime/this_task.hpp"
#include "runtime/thread_registry.hpp"
#include "sim/cost_model.hpp"
#include "sim/resource.hpp"
#include "sim/task_clock.hpp"
