#pragma once

// Unified metrics registry (DESIGN.md §12).
//
// The paper's claims are all about invisible time — grace-period waits,
// epoch lag, remote-op latency — so the instrumentation that measures
// them is always compiled in and must cost near nothing when nobody is
// looking. The registry holds three metric kinds under one naming
// scheme (`rcua.<subsystem>.<metric>[_<unit>]`):
//
//  * Counter   — monotonically increasing, sharded over cache-line
//                padded cells (stripe = locale for comm metrics, thread
//                hash otherwise). The hot path is ONE relaxed fetch_add
//                on a padded cell — exactly what the old ad-hoc
//                CommStats atomics cost. `value()` sums (or maxes, for
//                high-water counters) the cells on read.
//  * Gauge     — a single padded cell with set / add / update_max.
//  * Histogram — fixed log2 buckets (bucket b holds values with
//                bit_width == b), relaxed adds; percentile estimates
//                resolve to the bucket lower bound.
//
// Lookup by name takes a lock and is NOT for hot paths: call sites
// resolve their handle once (member reference or function-local static)
// and hammer the returned object. Handles stay valid for the registry's
// lifetime — metrics are never erased.
//
// Two registries exist by convention: `Registry::global()` for
// process-wide reclamation/health metrics, and one instance owned by
// each rt::CommLayer so concurrently-live clusters never mix counts and
// `CommLayer::reset()` stays cluster-local.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "platform/align.hpp"
#include "platform/spinlock.hpp"
#include "platform/topology.hpp"

namespace rcua::obs {

/// How a striped Counter folds its cells on read.
enum class Agg : int {
  kSum = 0,  ///< cells are partial sums (the default)
  kMax = 1,  ///< cells are high-water marks (e.g. per-locale in-flight)
};

/// Striped monotonic counter. Writers pick a cell — by explicit stripe
/// (exact per-locale attribution) or by thread hash — and do one relaxed
/// RMW on it; readers fold the cells.
class Counter {
 public:
  Counter(std::string name, std::size_t stripes, Agg agg);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n` on the calling thread's hash-selected cell.
  void add(std::uint64_t n = 1) noexcept {
    cells_[plat::stripe_index(stripes_)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Adds `n` on cell `stripe` (mod the stripe count). Use when the
  /// stripe has meaning (locale id) so `at()` reads back exact values.
  void add_at(std::size_t stripe, std::uint64_t n = 1) noexcept {
    cells_[stripe & mask_].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Raises cell `stripe` to at least `v` (kMax counters).
  void raise_at(std::size_t stripe, std::uint64_t v) noexcept {
    auto& cell = cells_[stripe & mask_].value;
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (cur < v && !cell.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t at(std::size_t stripe) const noexcept {
    return cells_[stripe & mask_].value.load(std::memory_order_relaxed);
  }

  /// Snapshot-on-read aggregate: sum (kSum) or max (kMax) of the cells.
  [[nodiscard]] std::uint64_t value() const noexcept;

  void reset() noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t stripes() const noexcept { return stripes_; }
  [[nodiscard]] Agg agg() const noexcept { return agg_; }

 private:
  using Cell = plat::CacheAligned<std::atomic<std::uint64_t>>;

  std::string name_;
  std::size_t stripes_;  // power of two
  std::size_t mask_;
  Agg agg_;
  std::unique_ptr<Cell[]> cells_;
};

/// Single-cell instantaneous value with a relaxed hot path.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::uint64_t v) noexcept {
    value_.value.store(v, std::memory_order_relaxed);
  }
  void add(std::uint64_t n = 1) noexcept {
    value_.value.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::uint64_t n = 1) noexcept {
    value_.value.fetch_sub(n, std::memory_order_relaxed);
  }
  /// Raises the gauge to at least `v` (high-water semantics).
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.value.load(std::memory_order_relaxed);
    while (cur < v && !value_.value.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.value.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  plat::CacheAligned<std::atomic<std::uint64_t>> value_{0ULL};
};

/// Fixed-bucket log-scale histogram: bucket b counts values whose
/// bit_width is b (bucket 0 holds exactly the value 0), so the bucket
/// lower bound is 1 << (b - 1). 65 buckets cover the whole uint64 range
/// with no allocation and no configuration; `record` is one relaxed RMW
/// on the bucket plus two on count/sum.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  /// Smallest value the bucket admits (0 for bucket 0).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower_bound(
      std::size_t b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    return b < kBuckets ? buckets_[b].load(std::memory_order_relaxed) : 0;
  }

  /// Lower bound of the bucket containing the q-quantile (q in [0, 1])
  /// of a snapshot of the counts; 0 when empty. A log-bucket estimate —
  /// exact percentiles for the bench gate come from raw samples, this is
  /// the cheap always-on view.
  [[nodiscard]] std::uint64_t percentile_lower_bound(double q) const noexcept;

  void reset() noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Find-or-create registry of named metrics. Handles returned by
/// counter()/gauge()/histogram() remain valid and hot-path-safe for the
/// registry's lifetime; the name lookup itself takes a spinlock and
/// belongs in setup code, not per-op paths.
class Registry {
 public:
  /// `default_stripes` sizes counters created without an explicit stripe
  /// count; 0 means hardware threads rounded to a power of two.
  explicit Registry(std::size_t default_stripes = 0);
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry (reclamation + health metrics).
  static Registry& global();

  /// Find-or-create. `stripes` of 0 uses the registry default; if the
  /// counter already exists its original stripe count and aggregation
  /// win (callers agree by naming convention).
  Counter& counter(std::string_view name, std::size_t stripes = 0,
                   Agg agg = Agg::kSum);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// One metric's folded value at snapshot time.
  struct Snapshot {
    enum class Kind : int { kCounter = 0, kGauge = 1, kHistogram = 2 };
    std::string name;
    Kind kind = Kind::kCounter;
    /// Counter aggregate / gauge value / histogram count.
    std::uint64_t value = 0;
    /// Histogram only: sum of recorded values.
    std::uint64_t sum = 0;
    /// Histogram only: non-empty (bucket_index, count) pairs ascending.
    std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
  };

  /// Point-in-time aggregation of every metric, sorted by name. Each
  /// metric is read atomically per cell; the collection is not a global
  /// atomic cut (concurrent increments may land between reads), which is
  /// the documented snapshot-on-read semantics.
  [[nodiscard]] std::vector<Snapshot> snapshot() const;

  /// Zeroes every metric (counters, gauges, histogram buckets).
  void reset();

  [[nodiscard]] std::size_t default_stripes() const noexcept {
    return default_stripes_;
  }

 private:
  std::size_t default_stripes_;
  mutable plat::Spinlock mu_;
  // std::map keeps deterministic name order for snapshot(); unique_ptr
  // keeps handles stable across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// True when opt-in detailed metrics (read-side dwell histograms and
/// other per-op read-path recording) are on: RCUA_METRICS=1, or tests
/// via set_detailed_metrics. Off by default so the read hot path pays
/// exactly one relaxed load + predicted branch.
[[nodiscard]] bool detailed_metrics_enabled() noexcept;
void set_detailed_metrics(bool on) noexcept;

/// Machine-readable `prefix key=value ...` line builder — THE one
/// formatting path for bench_stat / comm_stat / obs_stat emission, so
/// every bench feeds scripts/run_benchmarks.py through the same code
/// instead of bespoke printf blocks.
class StatLine {
 public:
  explicit StatLine(const char* prefix) : line_(prefix) {}

  StatLine& kv(const char* key, std::uint64_t v);
  StatLine& kv(const char* key, const char* v);
  StatLine& kv(const char* key, const std::string& v) {
    return kv(key, v.c_str());
  }
  /// Fixed-precision double (config identifiers like theta=0.99).
  StatLine& kv_fixed(const char* key, double v, int precision);

  [[nodiscard]] const std::string& str() const noexcept { return line_; }
  /// Prints the line + '\n' to stdout.
  void print() const;

 private:
  std::string line_;
};

}  // namespace rcua::obs
