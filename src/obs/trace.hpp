#pragma once

// Per-task trace spans (DESIGN.md §12).
//
// A trace is the "why was it slow" companion to the metrics registry: a
// stream of begin/end spans and instant events — read-section
// enter/exit, epoch bump, drain wait, overflow defer, comm
// issue/complete, cache hit/fill/evict, resize publish/reclaim —
// recorded into per-thread lock-free ring buffers and exported as
// Chrome `trace_event` JSON (set RCUA_TRACE=out.json, open the file in
// Perfetto / chrome://tracing).
//
// Cost discipline: tracing is OFF by default and every record site is
// one relaxed load + predicted not-taken branch (`trace_enabled()`)
// when off. When on, a record is a handful of plain stores into a
// thread-owned slot — no locks, no allocation after the first event per
// thread, and never a virtual-time charge, so enabling a trace does not
// perturb the simulated timeline it measures.
//
// Determinism rule: timestamps are VIRTUAL nanoseconds whenever a
// sim::TaskClock is attached (bench measured regions, sched-harness
// scenarios) and only fall back to wall time otherwise; the recording
// task id is the deterministic scheduler task id when the sched harness
// owns the thread. Two runs under the same RCUA_SCHED_SEED therefore
// produce identical event sequences (tests/test_sched_trace.cpp).
//
// Rings are single-writer (the owning thread) and sized by
// RCUA_TRACE_CAP events (default 8192); on overflow the OLDEST events
// are discarded, keeping the end of the story — the part that explains
// the slow tail. Snapshot/export read the rings without synchronising
// with writers, so call them at quiescence (after joining workers),
// which every exporter in this repo does.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcua::obs {

/// One recorded event. `name` / `cat` must be string literals (stored
/// by pointer, never copied).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;  ///< virtual ns when a clock is attached, else wall
  std::uint64_t arg = 0;    ///< one numeric payload (exported as args.v)
  std::uint32_t tid = 0;    ///< sched task id under the harness, else thread id
  char phase = 'i';         ///< 'B' begin span, 'E' end span, 'i' instant
};

namespace detail {
/// Global on/off switch, read relaxed on every record site.
inline std::atomic<bool> g_trace_enabled{false};
/// Out-of-line record path; call only when tracing is enabled.
void trace_record_slow(const char* name, const char* cat, char phase,
                       std::uint64_t arg) noexcept;
}  // namespace detail

[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Records one event if tracing is on; the entire cost when off is the
/// enabled check.
inline void trace_event(const char* name, const char* cat, char phase,
                        std::uint64_t arg = 0) noexcept {
  if (trace_enabled()) detail::trace_record_slow(name, cat, phase, arg);
}

/// Instant event ("i", rendered as a tick mark in Perfetto).
inline void trace_instant(const char* name, const char* cat,
                          std::uint64_t arg = 0) noexcept {
  trace_event(name, cat, 'i', arg);
}

/// RAII begin/end span. Arms only if tracing was enabled at entry so a
/// mid-span toggle cannot emit an unmatched 'E'.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat,
            std::uint64_t arg = 0) noexcept
      : name_(name), cat_(cat), armed_(trace_enabled()) {
    if (armed_) detail::trace_record_slow(name_, cat_, 'B', arg);
  }
  ~TraceSpan() {
    if (armed_) detail::trace_record_slow(name_, cat_, 'E', 0);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  bool armed_;
};

/// Turns recording on/off (RCUA_TRACE=path does this at startup and
/// exports at exit; tests toggle it directly).
void set_trace_enabled(bool on) noexcept;

/// Clears every ring (events and drop counts). Call at quiescence.
void trace_reset();

/// Events currently held, ordered by (tid, record order). Oldest
/// events of an overflowed ring are gone — see trace_dropped().
[[nodiscard]] std::vector<TraceEvent> trace_snapshot();

/// Total events discarded to ring overflow since the last reset.
[[nodiscard]] std::uint64_t trace_dropped();

/// Per-thread ring capacity in events (RCUA_TRACE_CAP, default 8192).
[[nodiscard]] std::size_t trace_capacity() noexcept;

/// Writes the Chrome trace_event JSON ({"traceEvents":[...]}) for the
/// current snapshot. The path variant returns false if the file cannot
/// be opened.
void trace_write_json(std::ostream& os);
bool trace_write_json(const std::string& path);

}  // namespace rcua::obs
