#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "util/env.hpp"

namespace rcua::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n && p < 256) p <<= 1;
  return p;
}

}  // namespace

Counter::Counter(std::string name, std::size_t stripes, Agg agg)
    : name_(std::move(name)),
      stripes_(round_up_pow2(stripes == 0 ? 1 : stripes)),
      mask_(stripes_ - 1),
      agg_(agg),
      cells_(new Cell[stripes_]) {}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t folded = 0;
  for (std::size_t i = 0; i < stripes_; ++i) {
    const std::uint64_t v =
        cells_[i].value.load(std::memory_order_relaxed);
    folded = agg_ == Agg::kSum ? folded + v : std::max(folded, v);
  }
  return folded;
}

void Counter::reset() noexcept {
  for (std::size_t i = 0; i < stripes_; ++i) {
    cells_[i].value.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::percentile_lower_bound(double q) const noexcept {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  // Rank of the q-quantile, 1-based, clamped into [1, total].
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1)) + 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += counts[b];
    if (cum >= rank) return bucket_lower_bound(b);
  }
  return bucket_lower_bound(kBuckets - 1);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry::Registry(std::size_t default_stripes)
    : default_stripes_(round_up_pow2(
          default_stripes != 0
              ? default_stripes
              : static_cast<std::size_t>(plat::hardware_threads()))) {}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // immortal
  return *reg;
}

Counter& Registry::counter(std::string_view name, std::size_t stripes,
                           Agg agg) {
  std::lock_guard<plat::Spinlock> guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(
                          std::string(name),
                          stripes != 0 ? stripes : default_stripes_, agg))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<plat::Spinlock> guard(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<plat::Spinlock> guard(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::vector<Registry::Snapshot> Registry::snapshot() const {
  std::vector<Snapshot> out;
  std::lock_guard<plat::Spinlock> guard(mu_);
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Snapshot s;
    s.name = name;
    s.kind = Snapshot::Kind::kCounter;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    Snapshot s;
    s.name = name;
    s.kind = Snapshot::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot s;
    s.name = name;
    s.kind = Snapshot::Kind::kHistogram;
    s.value = h->count();
    s.sum = h->sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n != 0) s.buckets.emplace_back(b, n);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset() {
  std::lock_guard<plat::Spinlock> guard(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {
std::atomic<bool> g_detailed_metrics{[] {
  return util::env_bool("RCUA_METRICS", false);
}()};
}  // namespace

bool detailed_metrics_enabled() noexcept {
  return g_detailed_metrics.load(std::memory_order_relaxed);
}

void set_detailed_metrics(bool on) noexcept {
  g_detailed_metrics.store(on, std::memory_order_relaxed);
}

StatLine& StatLine::kv(const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, v);
  line_ += buf;
  return *this;
}

StatLine& StatLine::kv(const char* key, const char* v) {
  line_ += ' ';
  line_ += key;
  line_ += '=';
  line_ += v;
  return *this;
}

StatLine& StatLine::kv_fixed(const char* key, double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.*f", key, precision, v);
  line_ += buf;
  return *this;
}

void StatLine::print() const { std::printf("%s\n", line_.c_str()); }

}  // namespace rcua::obs
