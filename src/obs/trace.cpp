#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <tuple>

#include "platform/timing.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"
#include "util/env.hpp"

namespace rcua::obs {

namespace {

/// Single-writer event ring. The owning thread is the only mutator;
/// snapshot/export read at quiescence (threads joined), so plain fields
/// suffice and a writer never waits.
struct Ring {
  std::uint32_t tid = 0;
  std::uint64_t next = 0;  ///< events ever recorded; slot = next % cap
  std::vector<TraceEvent> slots;
};

struct Global {
  std::mutex mu;
  std::vector<Ring*> rings;  // registration order; never freed (threads
                             // may exit while their events are pending)
  std::size_t cap = 8192;
  std::uint32_t next_tid = 1;
  std::uint64_t origin_ns = plat::now_ns();
  std::string export_path;  // RCUA_TRACE destination; empty = none
};

Global& g() {
  static Global* gp = new Global();  // immortal
  return *gp;
}

thread_local Ring* t_ring = nullptr;

Ring* ring_for_thread() {
  Ring* r = t_ring;
  if (r == nullptr) {
    auto& gl = g();
    r = new Ring();
    std::lock_guard<std::mutex> lock(gl.mu);
    r->tid = gl.next_tid++;
    r->slots.resize(gl.cap);
    gl.rings.push_back(r);
    t_ring = r;
  }
  return r;
}

/// Virtual ns when a sim::TaskClock is attached (deterministic under
/// the sched harness and in bench measured regions); wall ns since
/// process start otherwise.
std::uint64_t timestamp_ns() noexcept {
  if (sim::enabled()) return sim::now_v();
  return plat::now_ns() - g().origin_ns;
}

std::uint32_t current_tid(const Ring* r) noexcept {
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (rcua::testing::sched_task_active()) {
    return static_cast<std::uint32_t>(rcua::testing::sched_task_id());
  }
#endif
  return r->tid;
}

void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      os << '\\' << *s;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << *s;
    }
  }
  os << '"';
}

void export_at_exit() {
  auto& gl = g();
  if (gl.export_path.empty()) return;
  const std::uint64_t dropped = trace_dropped();
  const std::size_t events = trace_snapshot().size();
  if (trace_write_json(gl.export_path)) {
    std::fprintf(stderr,
                 "rcua: trace written to %s (%zu events, %llu dropped)\n",
                 gl.export_path.c_str(), events,
                 static_cast<unsigned long long>(dropped));
  } else {
    std::fprintf(stderr, "rcua: failed to write trace to %s\n",
                 gl.export_path.c_str());
  }
}

/// Startup knobs: RCUA_TRACE=out.json enables recording and installs
/// the at-exit exporter; RCUA_TRACE_CAP sizes each ring. Lives in this
/// TU so any instrumented code (which references trace_record_slow)
/// pulls the initializer into the link.
struct EnvInit {
  EnvInit() {
    auto& gl = g();
    gl.cap = static_cast<std::size_t>(
        rcua::util::env_u64("RCUA_TRACE_CAP", 8192));
    if (gl.cap < 2) gl.cap = 2;
    if (auto path = rcua::util::env_str("RCUA_TRACE");
        path.has_value() && !path->empty()) {
      gl.export_path = *path;
      detail::g_trace_enabled.store(true, std::memory_order_relaxed);
      std::atexit(&export_at_exit);
    }
  }
};
EnvInit g_env_init;

}  // namespace

namespace detail {

void trace_record_slow(const char* name, const char* cat, char phase,
                       std::uint64_t arg) noexcept {
  Ring* r = ring_for_thread();
  TraceEvent& e = r->slots[r->next % r->slots.size()];
  e.name = name;
  e.cat = cat;
  e.ts_ns = timestamp_ns();
  e.arg = arg;
  e.tid = current_tid(r);
  e.phase = phase;
  ++r->next;
}

}  // namespace detail

void set_trace_enabled(bool on) noexcept {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void trace_reset() {
  auto& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  for (Ring* r : gl.rings) r->next = 0;
}

std::vector<TraceEvent> trace_snapshot() {
  auto& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  std::vector<Ring*> rings = gl.rings;
  std::sort(rings.begin(), rings.end(),
            [](const Ring* a, const Ring* b) { return a->tid < b->tid; });
  std::vector<TraceEvent> out;
  for (const Ring* r : rings) {
    const std::uint64_t cap = r->slots.size();
    const std::uint64_t count = std::min<std::uint64_t>(r->next, cap);
    for (std::uint64_t i = r->next - count; i < r->next; ++i) {
      out.push_back(r->slots[i % cap]);
    }
  }
  return out;
}

std::uint64_t trace_dropped() {
  auto& gl = g();
  std::lock_guard<std::mutex> lock(gl.mu);
  std::uint64_t dropped = 0;
  for (const Ring* r : gl.rings) {
    const std::uint64_t cap = r->slots.size();
    if (r->next > cap) dropped += r->next - cap;
  }
  return dropped;
}

std::size_t trace_capacity() noexcept { return g().cap; }

void trace_write_json(std::ostream& os) {
  // Sort key (ts, tid, per-ring order): Chrome requires non-decreasing
  // ts within a tid for B/E nesting; per-ring order breaks ties so
  // same-virtual-timestamp events keep their causal recording order.
  struct Row {
    TraceEvent e;
    std::uint64_t seq;
  };
  std::vector<Row> rows;
  {
    auto& gl = g();
    std::lock_guard<std::mutex> lock(gl.mu);
    std::uint64_t seq = 0;
    std::vector<Ring*> rings = gl.rings;
    std::sort(rings.begin(), rings.end(), [](const Ring* a, const Ring* b) {
      return a->tid < b->tid;
    });
    for (const Ring* r : rings) {
      const std::uint64_t cap = r->slots.size();
      const std::uint64_t count = std::min<std::uint64_t>(r->next, cap);
      for (std::uint64_t i = r->next - count; i < r->next; ++i) {
        rows.push_back({r->slots[i % cap], seq++});
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(a.e.ts_ns, a.e.tid, a.seq) <
           std::tie(b.e.ts_ns, b.e.tid, b.seq);
  });

  os << "{\"traceEvents\":[";
  bool first = true;
  char ts_buf[32];
  for (const Row& row : rows) {
    const TraceEvent& e = row.e;
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_escaped(os, e.name != nullptr ? e.name : "?");
    os << ",\"cat\":";
    write_escaped(os, e.cat != nullptr ? e.cat : "rcua");
    os << ",\"ph\":\"" << e.phase << "\"";
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    // Chrome timestamps are microseconds; three decimals keeps them
    // nanosecond-exact.
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                  static_cast<double>(e.ts_ns) / 1000.0);
    os << ",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":" << ts_buf;
    if (e.arg != 0) os << ",\"args\":{\"v\":" << e.arg << "}";
    os << "}";
  }
  os << "\n]}\n";
}

bool trace_write_json(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  trace_write_json(out);
  return out.good();
}

}  // namespace rcua::obs
