#pragma once

// RCU health metrics (DESIGN.md §12): the handful of signals that tell
// you whether reclamation is keeping up, named once here so every
// subsystem records into the same registry entries.
//
// All handles live in Registry::global() (process-wide, like the
// reclamation domains that feed them) and are resolved once through a
// function-local static — the hot path is the metric's own relaxed RMW.
// Comm-side health (async in-flight depth, cache hit ratio) lives in
// the per-CommLayer registry instead; see runtime/comm.hpp.

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace rcua::obs::health {

/// Grace-period duration: how long writers waited for readers, from
/// EBR wait_for_readers / try_wait_for_readers, Qsbr::try_synchronize
/// and call_rcu's helper drain. Timed-out waits record the full
/// deadline — the tail of this histogram is the stalled-reader signal.
inline Histogram& grace_ns() {
  static Histogram& h = Registry::global().histogram("rcua.rcu.grace_ns");
  return h;
}

/// Read-side critical-section dwell time. Recorded only when
/// detailed_metrics_enabled() (RCUA_METRICS=1): the read path is the
/// one place where even two extra clock reads are measurable.
inline Histogram& reader_dwell_ns() {
  static Histogram& h =
      Registry::global().histogram("rcua.rcu.reader_dwell_ns");
  return h;
}

/// High-water epoch lag: max over observations of (global epoch -
/// slowest participant's epoch). A growing value means some reader or
/// laggard task is pinning reclamation further and further behind.
inline Gauge& epoch_lag() {
  static Gauge& gv = Registry::global().gauge("rcua.rcu.epoch_lag");
  return gv;
}

/// High-water bytes parked on overflow retire lists (the §9 watchdog's
/// bounded-memory guarantee, measured). Fed by StallMonitor.
inline Gauge& overflow_bytes_hwm() {
  static Gauge& gv =
      Registry::global().gauge("rcua.reclaim.overflow_bytes_hwm");
  return gv;
}

/// High-water retired-but-unreclaimed bytes for one era-based
/// reclamation policy ("ibr" / "he") — the bounded-by-construction
/// claim, measured. Fed by BasicEraReclaimer on every retire; unlike
/// the static handles above the name varies per policy, so callers
/// resolve once (the reclaimer constructor caches the reference).
inline Gauge& unreclaimed_bytes_hwm(std::string_view policy) {
  std::string name = "rcua.reclaim.unreclaimed_bytes.";
  name.append(policy);
  return Registry::global().gauge(name);
}

/// Era-reclaimer scan latency (BasicEraReclaimer::scan): reservation
/// snapshot + retire-list sweep. The scheme's write-side overhead lives
/// here — where EBR pays grace_ns, IBR/HE pay era_scan_ns.
inline Histogram& era_scan_ns() {
  static Histogram& h =
      Registry::global().histogram("rcua.reclaim.era_scan_ns");
  return h;
}

/// Grace-period waits that hit their deadline and were diagnosed.
inline Counter& stalls() {
  static Counter& c = Registry::global().counter("rcua.reclaim.stalls");
  return c;
}

/// Overflow-budget escalations (StallMonitor::escalate).
inline Counter& escalations() {
  static Counter& c =
      Registry::global().counter("rcua.reclaim.escalations");
  return c;
}

}  // namespace rcua::obs::health
