#pragma once

#include <cstddef>
#include <vector>

#include "core/dsi.hpp"

namespace rcua::alg {

/// Distributed parallel prefix operations over a DsiArray: the canonical
/// three-phase block scan —
///   1. fold each block to a per-block partial,
///   2. the initiator exclusive-scans the block partials (tiny, serial),
///   3. rewrite each block with its block's offset applied.
/// Phases 1 and 3 run on the initiator over RCUArray::for_each_block:
/// each phase resolves the snapshot once, pins it for the duration, and
/// drains remote spans destination-aggregated (one remote execution per
/// destination flush instead of one GET/PUT per element — see
/// DESIGN.md §9). With the default async BulkOptions the flushes are
/// additionally PIPELINED (DESIGN.md §10): block fetches to one
/// destination overlap with the folds of blocks already delivered from
/// the others, and all completions still land inside each phase's pinned
/// section. Not safe concurrently with writers or resizes (the
/// iteration space and values are taken as-of entry), like any bulk
/// transform. `opts` tunes the aggregation/pipelining (its `mutate`
/// flag is set internally per phase).

/// In-place inclusive scan: a[i] <- op(a[0..i]). `identity` is op's
/// neutral element.
template <typename T, typename Policy, typename Op>
void inclusive_scan(DsiArray<T, Policy>& arr, T identity, Op op,
                    typename RCUArray<T, Policy>::BulkOptions opts = {}) {
  const std::size_t n = arr.size();
  const std::size_t bs = arr.block_size();
  if (n == 0) return;
  const std::size_t nblocks = (n + bs - 1) / bs;

  // Phase 1: per-block fold, aggregated + pipelined pull. for_each_block
  // spans never cross a block boundary, so each span maps to exactly one
  // partial.
  std::vector<T> block_totals(nblocks, identity);
  opts.mutate = false;
  arr.backing().for_each_block(
      0, n,
      [&](std::size_t base, T* data, std::size_t len) {
        T acc = identity;
        for (std::size_t i = 0; i < len; ++i) acc = op(acc, data[i]);
        block_totals[base / bs] = acc;
      },
      opts);

  // Phase 2: exclusive scan of block totals at the initiator.
  std::vector<T> block_offsets(nblocks, identity);
  T running = identity;
  for (std::size_t b = 0; b < nblocks; ++b) {
    block_offsets[b] = running;
    running = op(running, block_totals[b]);
  }

  // Phase 3: apply offsets, scanning within each block (aggregated +
  // pipelined push).
  opts.mutate = true;
  arr.backing().for_each_block(
      0, n,
      [&](std::size_t base, T* data, std::size_t len) {
        T acc = block_offsets[base / bs];
        for (std::size_t i = 0; i < len; ++i) {
          acc = op(acc, data[i]);
          data[i] = acc;
        }
      },
      opts);
}

/// In-place exclusive scan: a[i] <- op(a[0..i-1]), a[0] <- identity.
template <typename T, typename Policy, typename Op>
void exclusive_scan(DsiArray<T, Policy>& arr, T identity, Op op,
                    typename RCUArray<T, Policy>::BulkOptions opts = {}) {
  const std::size_t n = arr.size();
  const std::size_t bs = arr.block_size();
  if (n == 0) return;
  const std::size_t nblocks = (n + bs - 1) / bs;

  std::vector<T> block_totals(nblocks, identity);
  opts.mutate = false;
  arr.backing().for_each_block(
      0, n,
      [&](std::size_t base, T* data, std::size_t len) {
        T acc = identity;
        for (std::size_t i = 0; i < len; ++i) acc = op(acc, data[i]);
        block_totals[base / bs] = acc;
      },
      opts);

  std::vector<T> block_offsets(nblocks, identity);
  T running = identity;
  for (std::size_t b = 0; b < nblocks; ++b) {
    block_offsets[b] = running;
    running = op(running, block_totals[b]);
  }

  opts.mutate = true;
  arr.backing().for_each_block(
      0, n,
      [&](std::size_t base, T* data, std::size_t len) {
        T acc = block_offsets[base / bs];
        for (std::size_t i = 0; i < len; ++i) {
          const T input = data[i];
          data[i] = acc;
          acc = op(acc, input);
        }
      },
      opts);
}

/// Sum of the logical elements (convenience over DsiArray::reduce).
template <typename T, typename Policy>
[[nodiscard]] T sum(DsiArray<T, Policy>& arr) {
  return arr.reduce(
      T{}, [](T acc, const T& v) { return acc + v; },
      [](T a, T b) { return a + b; });
}

}  // namespace rcua::alg
