#pragma once

#include <cstddef>
#include <vector>

#include "core/dsi.hpp"

namespace rcua::alg {

/// Distributed parallel prefix operations over a DsiArray: the canonical
/// three-phase block scan —
///   1. each locale folds its own blocks to per-block partials (parallel,
///      locality-aware),
///   2. the initiator exclusive-scans the block partials (tiny, serial),
///   3. each locale rewrites its blocks with its block's offset applied
///      (parallel).
/// Not safe concurrently with writers or resizes (the iteration space
/// and values are taken as-of entry), like any bulk transform.

/// In-place inclusive scan: a[i] <- op(a[0..i]). `identity` is op's
/// neutral element.
template <typename T, typename Policy, typename Op>
void inclusive_scan(DsiArray<T, Policy>& arr, T identity, Op op) {
  const std::size_t n = arr.size();
  const std::size_t bs = arr.block_size();
  if (n == 0) return;
  const std::size_t nblocks = (n + bs - 1) / bs;

  // Phase 1: per-block fold.
  std::vector<T> block_totals(nblocks, identity);
  arr.backing().for_each_block_local([&](std::size_t b, Block<T>& blk) {
    const std::size_t base = b * bs;
    if (base >= n) return;
    const std::size_t limit = n - base < bs ? n - base : bs;
    T acc = identity;
    for (std::size_t i = 0; i < limit; ++i) acc = op(acc, blk[i]);
    block_totals[b] = acc;
  });

  // Phase 2: exclusive scan of block totals at the initiator.
  std::vector<T> block_offsets(nblocks, identity);
  T running = identity;
  for (std::size_t b = 0; b < nblocks; ++b) {
    block_offsets[b] = running;
    running = op(running, block_totals[b]);
  }

  // Phase 3: apply offsets, scanning within each block.
  arr.backing().for_each_block_local([&](std::size_t b, Block<T>& blk) {
    const std::size_t base = b * bs;
    if (base >= n) return;
    const std::size_t limit = n - base < bs ? n - base : bs;
    T acc = block_offsets[b];
    for (std::size_t i = 0; i < limit; ++i) {
      acc = op(acc, blk[i]);
      blk[i] = acc;
    }
  });
}

/// In-place exclusive scan: a[i] <- op(a[0..i-1]), a[0] <- identity.
template <typename T, typename Policy, typename Op>
void exclusive_scan(DsiArray<T, Policy>& arr, T identity, Op op) {
  const std::size_t n = arr.size();
  const std::size_t bs = arr.block_size();
  if (n == 0) return;
  const std::size_t nblocks = (n + bs - 1) / bs;

  std::vector<T> block_totals(nblocks, identity);
  arr.backing().for_each_block_local([&](std::size_t b, Block<T>& blk) {
    const std::size_t base = b * bs;
    if (base >= n) return;
    const std::size_t limit = n - base < bs ? n - base : bs;
    T acc = identity;
    for (std::size_t i = 0; i < limit; ++i) acc = op(acc, blk[i]);
    block_totals[b] = acc;
  });

  std::vector<T> block_offsets(nblocks, identity);
  T running = identity;
  for (std::size_t b = 0; b < nblocks; ++b) {
    block_offsets[b] = running;
    running = op(running, block_totals[b]);
  }

  arr.backing().for_each_block_local([&](std::size_t b, Block<T>& blk) {
    const std::size_t base = b * bs;
    if (base >= n) return;
    const std::size_t limit = n - base < bs ? n - base : bs;
    T acc = block_offsets[b];
    for (std::size_t i = 0; i < limit; ++i) {
      const T input = blk[i];
      blk[i] = acc;
      acc = op(acc, input);
    }
  });
}

/// Sum of the logical elements (convenience over DsiArray::reduce).
template <typename T, typename Policy>
[[nodiscard]] T sum(DsiArray<T, Policy>& arr) {
  return arr.reduce(
      T{}, [](T acc, const T& v) { return acc + v; },
      [](T a, T b) { return a + b; });
}

}  // namespace rcua::alg
