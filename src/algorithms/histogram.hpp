#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dsi.hpp"

namespace rcua::alg {

/// Distributed histogram: buckets the logical elements of a DsiArray by
/// `bucket_of(elem)` into `num_buckets` counters. The initiator pulls
/// the elements through RCUArray::for_each_block — one snapshot
/// resolution and one read section for the whole pass, remote spans
/// drained destination-aggregated (one remote execution per destination
/// flush instead of one GET per element), and with the default async
/// BulkOptions the block fetches are PIPELINED against the folds
/// (DESIGN.md §10): while one destination's spans are still in flight,
/// spans already delivered from the others are being bucketed, and every
/// completion still lands inside the pinned section. Span-ops run on the
/// initiating task, so no mutex and no per-locale partials are needed;
/// what used to be the two-level reduction's merge step is now just the
/// aggregator's drain order. `opts` tunes the aggregation/pipelining.
template <typename T, typename Policy, typename BucketFn>
std::vector<std::uint64_t> histogram(
    DsiArray<T, Policy>& arr, std::size_t num_buckets, BucketFn bucket_of,
    typename RCUArray<T, Policy>::BulkOptions opts = {}) {
  const std::size_t n = arr.size();
  std::vector<std::uint64_t> total(num_buckets, 0);
  if (n == 0) return total;

  opts.mutate = false;
  arr.backing().for_each_block(
      0, n,
      [&](std::size_t, T* data, std::size_t len) {
        for (std::size_t i = 0; i < len; ++i) {
          const std::size_t bucket = bucket_of(data[i]);
          if (bucket < num_buckets) ++total[bucket];
        }
      },
      opts);
  return total;
}

}  // namespace rcua::alg
