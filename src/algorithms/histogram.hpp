#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/dsi.hpp"

namespace rcua::alg {

/// Distributed histogram: buckets the logical elements of a DsiArray by
/// `bucket_of(elem)` into `num_buckets` counters. Each locale folds its
/// own blocks into a private histogram (no sharing, no atomics on the
/// hot path); the per-locale partials are merged at the initiator —
/// the standard two-level reduction.
template <typename T, typename Policy, typename BucketFn>
std::vector<std::uint64_t> histogram(DsiArray<T, Policy>& arr,
                                     std::size_t num_buckets,
                                     BucketFn bucket_of) {
  const std::size_t n = arr.size();
  const std::size_t bs = arr.block_size();
  std::mutex mu;
  std::vector<std::uint64_t> total(num_buckets, 0);

  arr.cluster().coforall_locales([&](std::uint32_t l) {
    std::vector<std::uint64_t> partial(num_buckets, 0);
    // Fold this locale's blocks only, inline on this (placed) task.
    arr.backing().for_each_local_block_inline(l, [&](std::size_t b,
                                                     Block<T>& blk) {
      const std::size_t base = b * bs;
      if (base >= n) return;
      const std::size_t limit = n - base < bs ? n - base : bs;
      for (std::size_t i = 0; i < limit; ++i) {
        const std::size_t bucket = bucket_of(blk[i]);
        if (bucket < num_buckets) ++partial[bucket];
      }
    });
    std::lock_guard<std::mutex> guard(mu);
    for (std::size_t i = 0; i < num_buckets; ++i) total[i] += partial[i];
  });
  return total;
}

}  // namespace rcua::alg
