#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/snapshot.hpp"
#include "reclaim/hazard.hpp"
#include "runtime/global_lock.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rcua::baseline {

/// Hazard-pointer-protected resizable block array: the reclamation
/// alternative the paper's introduction weighs and rejects for the
/// read-mostly case ("a balanced but noticeable overhead to both read and
/// write operations ... unsuitable when the performance of reads is far
/// more important"). Each read publishes the snapshot pointer to a hazard
/// slot and re-validates it — two ordered memory operations per access —
/// before touching the element. Used by the reclaimer ablation bench.
///
/// Single shared spine (no per-locale privatization): part of what the
/// ablation shows is the cost of *not* having RCUArray's replicated
/// metadata.
template <typename T>
class HazardArray {
 public:
  HazardArray(rt::Cluster& cluster, std::size_t initial_capacity = 0,
              std::size_t block_size = 1024,
              reclaim::HazardDomain* domain = nullptr)
      : cluster_(cluster),
        block_size_(block_size),
        domain_(domain != nullptr ? domain : &reclaim::HazardDomain::global()),
        write_lock_(cluster, 0),
        snapshot_(new Snapshot<T>()) {
    if (block_size_ == 0) throw std::invalid_argument("block_size == 0");
    if (initial_capacity > 0) resize_add(initial_capacity);
  }

  ~HazardArray() {
    Snapshot<T>* s = snapshot_.load(std::memory_order_acquire);
    for (Block<T>* b : s->blocks()) {
      cluster_.locale(b->owner()).note_free(b->capacity() * sizeof(T));
      delete b;
    }
    delete s;
  }

  HazardArray(const HazardArray&) = delete;
  HazardArray& operator=(const HazardArray&) = delete;

  T read(std::size_t i) {
    const auto& m = sim::CostModel::get();
    sim::charge(m.rcua_index_ns + 2 * m.atomic_rmw_ns);  // publish+validate
    reclaim::HazardDomain::Guard<Snapshot<T>> guard(*domain_, snapshot_);
    return element(*guard.get(), i, false);
  }

  void write(std::size_t i, T value) {
    const auto& m = sim::CostModel::get();
    sim::charge(m.rcua_index_ns + 2 * m.atomic_rmw_ns);
    reclaim::HazardDomain::Guard<Snapshot<T>> guard(*domain_, snapshot_);
    element(*guard.get(), i, true) = std::move(value);
  }

  void resize_add(std::size_t num_elements) {
    if (num_elements == 0) return;
    const std::size_t nblocks =
        (num_elements + block_size_ - 1) / block_size_;
    const auto& m = sim::CostModel::get();
    std::vector<Block<T>*> new_blocks;
    new_blocks.reserve(nblocks);
    std::lock_guard<rt::GlobalLock> guard(write_lock_);
    std::uint32_t loc = next_locale_;
    for (std::size_t k = 0; k < nblocks; ++k) {
      cluster_.comm().record_execute(cluster_.here(), loc);
      new_blocks.push_back(new Block<T>(cluster_.locale(loc), block_size_));
      sim::charge(m.alloc_block_ns);
      loc = (loc + 1) % cluster_.num_locales();
    }
    next_locale_ = loc;
    Snapshot<T>* old = snapshot_.load(std::memory_order_relaxed);
    Snapshot<T>* fresh = Snapshot<T>::clone_append(*old, new_blocks);
    snapshot_.store(fresh, std::memory_order_release);
    domain_->retire(old);  // freed once no hazard slot protects it
  }

  [[nodiscard]] std::size_t capacity() {
    reclaim::HazardDomain::Guard<Snapshot<T>> guard(*domain_, snapshot_);
    return guard.get()->capacity();
  }

  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

 private:
  T& element(Snapshot<T>& s, std::size_t i, bool is_write) {
    const std::size_t bidx = i / block_size_;
    const std::size_t off = i % block_size_;
    Block<T>* b = s.block(bidx);
    const std::uint32_t here = cluster_.here();
    cluster_.comm().record_access(here, b->owner(), is_write);
    // Same snapshot-spine indirection as RCUArray (and unlike BlockDist's
    // direct address computation).
    sim::touch_block(b->id(), b->owner() != here, is_write,
                     sim::CostModel::get().rcua_spine_miss_ns);
    return (*b)[off];
  }

  rt::Cluster& cluster_;
  std::size_t block_size_;
  reclaim::HazardDomain* domain_;
  rt::GlobalLock write_lock_;
  std::atomic<Snapshot<T>*> snapshot_;
  std::uint32_t next_locale_ = 0;
};

}  // namespace rcua::baseline
