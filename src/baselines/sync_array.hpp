#pragma once

#include <cstddef>
#include <mutex>
#include <utility>

#include "baselines/unsafe_array.hpp"
#include "runtime/global_lock.hpp"

namespace rcua::baseline {

/// The paper's SyncArray: the block-distributed array made "safe" the
/// blunt way — every operation, read or write or resize, takes one
/// cluster-wide lock (Chapel `sync` variable semantics). It exists to
/// show what RCUArray buys: SyncArray does not scale, and *degrades* as
/// more locales add remote contenders on the one lock (Figure 2a/2b).
template <typename T>
class SyncArray {
 public:
  SyncArray(rt::Cluster& cluster, std::size_t initial_capacity = 0,
            std::size_t block_size = 1024)
      : impl_(cluster, 0, block_size), lock_(cluster, /*owner_locale=*/0) {
    // Initial sizing happens pre-publication; still lock for uniformity.
    if (initial_capacity > 0) {
      std::lock_guard<rt::GlobalLock> guard(lock_);
      impl_.resize_add(initial_capacity);
    }
  }

  SyncArray(const SyncArray&) = delete;
  SyncArray& operator=(const SyncArray&) = delete;

  T read(std::size_t i) {
    std::lock_guard<rt::GlobalLock> guard(lock_);
    return impl_.read(i);
  }

  void write(std::size_t i, T value) {
    std::lock_guard<rt::GlobalLock> guard(lock_);
    impl_.write(i, std::move(value));
  }

  void resize_add(std::size_t num_elements) {
    std::lock_guard<rt::GlobalLock> guard(lock_);
    impl_.resize_add(num_elements);
  }

  [[nodiscard]] std::size_t capacity() {
    std::lock_guard<rt::GlobalLock> guard(lock_);
    return impl_.capacity();
  }

  [[nodiscard]] std::size_t block_size() const noexcept {
    return impl_.block_size();
  }
  [[nodiscard]] rt::GlobalLock& lock() noexcept { return lock_; }

 private:
  UnsafeArray<T> impl_;
  rt::GlobalLock lock_;
};

}  // namespace rcua::baseline
