#pragma once

#include <cstddef>
#include <shared_mutex>
#include <utility>

#include "baselines/unsafe_array.hpp"
#include "sim/cost_model.hpp"
#include "sim/resource.hpp"
#include "sim/task_clock.hpp"

namespace rcua::baseline {

/// Reader-writer-lock variant — the half-measure the paper's introduction
/// dismisses: "Reader-writer locks take a step in the right direction by
/// allowing concurrent readers, but have the drawback of enforcing mutual
/// exclusion with a single writer." Readers proceed concurrently, but
/// every reader still performs an RMW on the shared lock word, so the
/// read path serializes on the lock's cache line even without a writer —
/// which is what the ablation bench demonstrates against EBR/QSBR.
template <typename T>
class RwlockArray {
 public:
  RwlockArray(rt::Cluster& cluster, std::size_t initial_capacity = 0,
              std::size_t block_size = 1024)
      : impl_(cluster, initial_capacity, block_size) {}

  RwlockArray(const RwlockArray&) = delete;
  RwlockArray& operator=(const RwlockArray&) = delete;

  T read(std::size_t i) {
    charge_reader_rmw();
    std::shared_lock<std::shared_mutex> guard(mu_);
    return impl_.read(i);
  }

  void write(std::size_t i, T value) {
    charge_reader_rmw();  // shared lock: updates don't exclude each other
    std::shared_lock<std::shared_mutex> guard(mu_);
    impl_.write(i, std::move(value));
  }

  void resize_add(std::size_t num_elements) {
    const auto& m = sim::CostModel::get();
    word_.use(m.lock_handoff_ns);  // exclusive acquisition drains readers
    std::unique_lock<std::shared_mutex> guard(mu_);
    impl_.resize_add(num_elements);
    if (sim::enabled()) word_.extend_until(sim::now_v());
  }

  [[nodiscard]] std::size_t capacity() {
    std::shared_lock<std::shared_mutex> guard(mu_);
    return impl_.capacity();
  }

  [[nodiscard]] std::size_t block_size() const noexcept {
    return impl_.block_size();
  }

 private:
  void charge_reader_rmw() {
    const auto& m = sim::CostModel::get();
    // Acquire + release both hit the lock word; with a reader on every
    // core the line is structurally contended.
    word_.use(m.rmw_transfer_ns);
    word_.use(m.rmw_transfer_ns);
  }

  UnsafeArray<T> impl_;
  std::shared_mutex mu_;
  sim::VirtualResource word_;
};

}  // namespace rcua::baseline
