#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/block.hpp"
#include "platform/atomics.hpp"
#include "runtime/cluster.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rcua::baseline {

/// The paper's ChapelArray / UnsafeArray: a naive block-distributed array
/// in the style of Chapel's BlockDist. Reads and updates are concurrent
/// (they are plain memory operations) but resizing is NOT parallel-safe —
/// a resize reallocates the storage and copies every element into it,
/// which is precisely the work RCUArray's recycling clone avoids and the
/// source of the 4x resize gap in Figure 3.
///
/// Access charges Chapel's dsiAccess translation overhead on top of the
/// element touch; there is no privatized metadata chain, so no spine-miss
/// surcharge (the block-dist target address is computed directly).
template <typename T>
class UnsafeArray {
 public:
  UnsafeArray(rt::Cluster& cluster, std::size_t initial_capacity = 0,
              std::size_t block_size = 1024)
      : cluster_(cluster), block_size_(block_size) {
    if (block_size_ == 0) throw std::invalid_argument("block_size == 0");
    if (initial_capacity > 0) resize_add(initial_capacity);
  }

  ~UnsafeArray() { release_blocks(blocks_); }

  UnsafeArray(const UnsafeArray&) = delete;
  UnsafeArray& operator=(const UnsafeArray&) = delete;

  T& index(std::size_t i) { return index_rw(i, false); }
  T& operator[](std::size_t i) { return index_rw(i, false); }

  T& at(std::size_t i) {
    if (i >= capacity()) {
      throw std::out_of_range("UnsafeArray::at: index " + std::to_string(i) +
                              " >= capacity " + std::to_string(capacity()));
    }
    return index_rw(i, false);
  }

  /// Same relaxed element contract as RCUArray::read/write: concurrent
  /// access to one index is defined for machine-word T (what makes this
  /// baseline "unsafe" is resize, not element access).
  T read(std::size_t i) {
    T& slot = index_rw(i, false);
    if constexpr (plat::relaxed_capable_v<T>) {
      return plat::relaxed_load(slot);
    } else {
      return slot;
    }
  }
  void write(std::size_t i, T value) {
    T& slot = index_rw(i, true);
    if constexpr (plat::relaxed_capable_v<T>) {
      plat::relaxed_store(slot, std::move(value));
    } else {
      slot = std::move(value);
    }
  }

  /// Grows by `num_elements` (whole blocks): reallocates the full storage
  /// and copies every existing element — Chapel's domain-reassignment
  /// resize, which is several cluster-wide phases: (1) broadcast the new
  /// domain, (2) allocate the replacement array on every locale, (3) copy
  /// the old contents across, (4) publish and free the old storage. The
  /// repeated all-locale phases plus the deep copy are exactly the work
  /// RCUArray's recycling clone avoids (Figure 3's >= 4x gap).
  /// NOT safe concurrently with any other operation.
  void resize_add(std::size_t num_elements) {
    if (num_elements == 0) return;
    const std::size_t added =
        (num_elements + block_size_ - 1) / block_size_;
    const auto& m = sim::CostModel::get();
    const std::size_t old_count = blocks_.size();
    const std::size_t new_count = old_count + added;

    // Phase 1: domain reassignment — every locale learns the new bounds.
    cluster_.coforall_locales(
        [&](std::uint32_t) { sim::charge(m.atomic_load_ns); });

    // Phase 2: allocate the replacement storage, block-cyclic as before;
    // each locale allocates its own blocks.
    std::vector<Block<T>*> fresh(new_count, nullptr);
    cluster_.coforall_locales([&](std::uint32_t l) {
      for (std::size_t k = l; k < new_count;
           k += cluster_.num_locales()) {
        fresh[k] = new Block<T>(cluster_.locale(l), block_size_);
        sim::charge(m.alloc_block_ns);
      }
    });

    // Phase 3: copy — every locale copies the old blocks it now owns.
    cluster_.coforall_locales([&](std::uint32_t l) {
      for (std::size_t k = 0; k < old_count; ++k) {
        if (fresh[k]->owner() != l) continue;
        std::memcpy(static_cast<void*>(fresh[k]->data()),
                    static_cast<const void*>(blocks_[k]->data()),
                    block_size_ * sizeof(T));
        sim::charge(m.bulk_copy_ns_per_elem *
                    static_cast<double>(block_size_));
      }
    });

    // Phase 4: publish the new array and release the old storage.
    cluster_.coforall_locales([&](std::uint32_t l) {
      for (std::size_t k = l; k < old_count; k += cluster_.num_locales()) {
        sim::charge(m.atomic_load_ns);
      }
    });
    release_blocks(blocks_);
    blocks_ = std::move(fresh);
    next_locale_ = new_count % cluster_.num_locales();
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return blocks_.size() * block_size_;
  }
  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }
  [[nodiscard]] std::uint32_t block_owner(std::size_t i) const {
    return blocks_[i / block_size_]->owner();
  }
  [[nodiscard]] rt::Cluster& cluster() noexcept { return cluster_; }

 private:
  static_assert(std::is_trivially_copyable_v<T>,
                "UnsafeArray's copy-resize uses memcpy");

  T& index_rw(std::size_t i, bool is_write) {
    const auto& m = sim::CostModel::get();
    sim::charge(m.chapel_dsi_ns);
    const std::size_t bidx = i / block_size_;
    const std::size_t off = i % block_size_;
    assert(bidx < blocks_.size());
    Block<T>* b = blocks_[bidx];
    const std::uint32_t here = cluster_.here();
    cluster_.comm().record_access(here, b->owner(), is_write);
    sim::touch_block(b->id(), b->owner() != here, is_write);
    return (*b)[off];
  }

  void release_blocks(std::vector<Block<T>*>& blocks) {
    for (Block<T>* b : blocks) {
      cluster_.locale(b->owner()).note_free(b->capacity() * sizeof(T));
      delete b;
    }
    blocks.clear();
  }

  rt::Cluster& cluster_;
  std::size_t block_size_;
  std::vector<Block<T>*> blocks_;
  std::uint32_t next_locale_ = 0;
};

}  // namespace rcua::baseline
