#pragma once

#include <atomic>
#include <cstdint>

#include "platform/align.hpp"

namespace rcua::sim {

/// A serialized virtual resource: a contended cache line, a lock word, a
/// NIC command queue — anything where concurrent users queue and are
/// serviced one at a time.
///
/// Model: the resource remembers the virtual time at which it next becomes
/// free. A task that wants `service_ns` of it starts at
/// max(task_now, next_free), occupies it for service_ns, and its clock
/// advances to the completion time. The k-th near-simultaneous contender
/// therefore waits ~k service times — exactly cache-line ping-pong / lock
/// convoy behaviour, and the term that turns per-op overhead into the
/// paper's throughput collapse under 44 tasks per node.
///
/// The CAS loop makes the reservation linearizable across real threads, so
/// the model composes with genuinely concurrent execution.
///
/// Bookings are ABSOLUTE virtual times and the ownership token is the
/// attached TaskClock's identity, so a resource is only meaningful within
/// one virtual timeline: every clock that touches it must share a zero
/// point. Measuring repeated regions against fresh clocks (each restarting
/// at t=0) compares new clocks against stale bookings — use one clock and
/// take deltas, or reset() the resource at region boundaries.
class VirtualResource {
 public:
  VirtualResource() = default;
  VirtualResource(const VirtualResource&) = delete;
  VirtualResource& operator=(const VirtualResource&) = delete;

  /// Pure reservation function: reserves `service_ns` starting no earlier
  /// than `now_v`, returns the completion time. Thread-safe.
  std::uint64_t acquire_at(std::uint64_t now_v,
                           std::uint64_t service_ns) noexcept {
    std::uint64_t free_at = next_free_.value.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t start = free_at > now_v ? free_at : now_v;
      const std::uint64_t done = start + service_ns;
      if (next_free_.value.compare_exchange_weak(free_at, done,
                                                 std::memory_order_relaxed)) {
        return done;
      }
      // free_at was reloaded by the failed CAS; retry.
    }
  }

  /// Charges the calling task's clock for one queued use of this resource.
  /// No-op when no virtual clock is attached.
  void use(double service_ns) noexcept;

  /// Ownership-aware use, modelling a contended atomic's cache line: if
  /// the calling task was also the previous user, the line is still in its
  /// cache and the op costs `owned_ns`; otherwise the line must be
  /// transferred and the op queues for `contended_ns` of service. A solo
  /// task therefore pays near-uncontended cost while N alternating tasks
  /// serialize at 1/contended_ns — the regime split behind the paper's
  /// EBR results. No-op when no virtual clock is attached.
  void use_owned(double contended_ns, double owned_ns) noexcept;

  /// Extends the busy period to at least `t` (lock release: the critical
  /// section occupied the resource until the holder's current time).
  void extend_until(std::uint64_t t) noexcept {
    std::uint64_t cur = next_free_.value.load(std::memory_order_relaxed);
    while (cur < t && !next_free_.value.compare_exchange_weak(
                          cur, t, std::memory_order_relaxed)) {
    }
  }

  /// Virtual time at which the resource next becomes free.
  [[nodiscard]] std::uint64_t next_free() const noexcept {
    return next_free_.value.load(std::memory_order_relaxed);
  }

  /// Resets to the free state (benchmark config boundaries).
  void reset() noexcept {
    next_free_.value.store(0, std::memory_order_relaxed);
    owner_.value.store(0, std::memory_order_relaxed);
  }

 private:
  plat::CacheAligned<std::atomic<std::uint64_t>> next_free_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> owner_{0ULL};
};

}  // namespace rcua::sim
