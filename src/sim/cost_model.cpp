#include "sim/cost_model.hpp"

#include "util/env.hpp"

namespace rcua::sim {

void CostModel::load_env() {
  using util::env_f64;
  local_cached_ns = env_f64("RCUA_COST_LOCAL_CACHED_NS", local_cached_ns);
  dram_miss_ns = env_f64("RCUA_COST_DRAM_MISS_NS", dram_miss_ns);
  remote_get_ns = env_f64("RCUA_COST_REMOTE_GET_NS", remote_get_ns);
  remote_put_ns = env_f64("RCUA_COST_REMOTE_PUT_NS", remote_put_ns);
  remote_stream_ns = env_f64("RCUA_COST_REMOTE_STREAM_NS", remote_stream_ns);
  bulk_copy_ns_per_elem =
      env_f64("RCUA_COST_BULK_COPY_NS_PER_ELEM", bulk_copy_ns_per_elem);
  alloc_block_ns = env_f64("RCUA_COST_ALLOC_BLOCK_NS", alloc_block_ns);
  spine_copy_ns_per_block =
      env_f64("RCUA_COST_SPINE_COPY_NS_PER_BLOCK", spine_copy_ns_per_block);
  cache_lookup_ns = env_f64("RCUA_COST_CACHE_LOOKUP_NS", cache_lookup_ns);
  cache_copy_ns_per_elem =
      env_f64("RCUA_COST_CACHE_COPY_NS_PER_ELEM", cache_copy_ns_per_elem);
  remote_execute_ns = env_f64("RCUA_COST_REMOTE_EXECUTE_NS", remote_execute_ns);
  task_spawn_ns = env_f64("RCUA_COST_TASK_SPAWN_NS", task_spawn_ns);
  async_issue_ns = env_f64("RCUA_COST_ASYNC_ISSUE_NS", async_issue_ns);
  atomic_load_ns = env_f64("RCUA_COST_ATOMIC_LOAD_NS", atomic_load_ns);
  atomic_rmw_ns = env_f64("RCUA_COST_ATOMIC_RMW_NS", atomic_rmw_ns);
  rmw_transfer_ns = env_f64("RCUA_COST_RMW_TRANSFER_NS", rmw_transfer_ns);
  lock_handoff_ns = env_f64("RCUA_COST_LOCK_HANDOFF_NS", lock_handoff_ns);
  epoch_drain_ns = env_f64("RCUA_COST_EPOCH_DRAIN_NS", epoch_drain_ns);
  chapel_dsi_ns = env_f64("RCUA_COST_CHAPEL_DSI_NS", chapel_dsi_ns);
  rcua_index_ns = env_f64("RCUA_COST_RCUA_INDEX_NS", rcua_index_ns);
  rcua_spine_miss_ns =
      env_f64("RCUA_COST_RCUA_SPINE_MISS_NS", rcua_spine_miss_ns);
  qsbr_checkpoint_per_thread_ns = env_f64(
      "RCUA_COST_QSBR_CHECKPOINT_PER_THREAD_NS", qsbr_checkpoint_per_thread_ns);
  qsbr_defer_ns = env_f64("RCUA_COST_QSBR_DEFER_NS", qsbr_defer_ns);
}

CostModel& CostModel::mutable_instance() {
  static CostModel model = [] {
    CostModel m;
    m.load_env();
    return m;
  }();
  return model;
}

const CostModel& CostModel::get() { return mutable_instance(); }

CostModelOverride::CostModelOverride() : saved_(CostModel::mutable_instance()) {}

CostModelOverride::~CostModelOverride() {
  CostModel::mutable_instance() = saved_;
}

}  // namespace rcua::sim
