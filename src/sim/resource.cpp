#include "sim/resource.hpp"

#include "sim/task_clock.hpp"

namespace rcua::sim {

void VirtualResource::use(double service_ns) noexcept {
  TaskClock* c = current();
  if (c == nullptr) return;
  const auto svc = static_cast<std::uint64_t>(service_ns);
  const std::uint64_t done = acquire_at(c->vtime_ns, svc);
  c->vtime_ns = done;
  owner_.value.store(reinterpret_cast<std::uintptr_t>(c),
                     std::memory_order_relaxed);
  ++c->charge_events;
}

void VirtualResource::use_owned(double contended_ns, double owned_ns) noexcept {
  TaskClock* c = current();
  if (c == nullptr) return;
  const auto token = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(c));
  if (owner_.value.load(std::memory_order_relaxed) == token) {
    // Line still cached by this task: cheap path. The line sits idle in
    // our cache — NOT booked — so other contenders may take it from any
    // point; our next use then pays the transfer again.
    c->vtime_ns += static_cast<std::uint64_t>(owned_ns);
  } else {
    const std::uint64_t done =
        acquire_at(c->vtime_ns, static_cast<std::uint64_t>(contended_ns));
    c->vtime_ns = done;
    owner_.value.store(token, std::memory_order_relaxed);
  }
  ++c->charge_events;
}

}  // namespace rcua::sim
