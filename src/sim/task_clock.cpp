#include "sim/task_clock.hpp"

#include "sim/cost_model.hpp"

namespace rcua::sim {

namespace {
thread_local TaskClock* tl_clock = nullptr;
}  // namespace

bool enabled() noexcept { return tl_clock != nullptr; }

TaskClock* current() noexcept { return tl_clock; }

void charge(double ns) noexcept {
  if (TaskClock* c = tl_clock) {
    c->vtime_ns += static_cast<std::uint64_t>(ns);
    ++c->charge_events;
  }
}

std::uint64_t now_v() noexcept { return tl_clock ? tl_clock->vtime_ns : 0; }

void advance_to(std::uint64_t t) noexcept {
  if (TaskClock* c = tl_clock) {
    if (t > c->vtime_ns) c->vtime_ns = t;
  }
}

void touch_block(std::uint64_t block_id, bool remote, bool is_write,
                 double extra_on_miss_ns) noexcept {
  TaskClock* c = tl_clock;
  if (c == nullptr) return;
  const CostModel& m = CostModel::get();
  double ns;
  if (c->last_block_id == block_id) {
    ns = remote ? m.remote_stream_ns : m.local_cached_ns;
  } else {
    ns = (remote ? (is_write ? m.remote_put_ns : m.remote_get_ns)
                 : m.dram_miss_ns) +
         extra_on_miss_ns;
  }
  c->last_block_id = block_id;
  c->vtime_ns += static_cast<std::uint64_t>(ns);
  ++c->charge_events;
}

ClockScope::ClockScope(TaskClock& clock) noexcept : prev_(tl_clock) {
  tl_clock = &clock;
}

ClockScope::~ClockScope() { tl_clock = prev_; }

}  // namespace rcua::sim
