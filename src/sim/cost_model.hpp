#pragma once

namespace rcua::sim {

/// The virtual-time cost model: every charge the simulation makes is a
/// named constant here, in nanoseconds of *virtual* time.
///
/// This table is the substitute for the paper's Cray XC50 testbed (32
/// nodes, 44-core Broadwell, Aries interconnect). The real algorithm code
/// decides *which* charges occur — retries, remote blocks touched, lock
/// acquisitions, epoch drains — and this model decides how much each one
/// costs. Defaults are calibrated so the benchmark harness reproduces the
/// shapes and headline ratios of the paper's Figures 2-4 (see
/// EXPERIMENTS.md for the calibration notes).
///
/// Every field can be overridden at process start with an environment
/// variable: `RCUA_COST_<UPPER_SNAKE_NAME>` (e.g. RCUA_COST_REMOTE_GET_NS).
struct CostModel {
  // -- Memory hierarchy -----------------------------------------------
  /// Access to a line already cached by this task (same block as the
  /// previous access).
  double local_cached_ns = 1.5;
  /// First access to a local block (DRAM / LLC miss).
  double dram_miss_ns = 70.0;
  /// One-sided GET of a remote element, first touch of that block.
  double remote_get_ns = 4000.0;
  /// One-sided PUT of a remote element, first touch of that block.
  double remote_put_ns = 4000.0;
  /// Subsequent consecutive access to the same remote block: the NIC
  /// pipelines back-to-back small messages to one target.
  double remote_stream_ns = 1000.0;
  /// Aggregated bulk copy, per element (used by ChapelArray's
  /// copy-into-larger-storage resize path).
  double bulk_copy_ns_per_elem = 8.0;
  /// Allocating one block on a locale's heap.
  double alloc_block_ns = 3000.0;
  /// Copying one block *pointer* while cloning a snapshot spine.
  double spine_copy_ns_per_block = 1.0;
  /// Probing the per-locale block cache (rt::BlockCache): one hash
  /// lookup plus the version/generation tag compare. Paid on every
  /// cache-eligible access, hit or miss — it is what a miss costs over
  /// the uncached path.
  double cache_lookup_ns = 25.0;
  /// Copying one element between a cached block copy and the caller
  /// (node-local memcpy bandwidth; cheaper than bulk_copy_ns_per_elem,
  /// which models wire bandwidth).
  double cache_copy_ns_per_elem = 2.0;

  // -- Tasking and communication --------------------------------------
  /// Spawning a task on a *remote* locale (active message + scheduling).
  double remote_execute_ns = 60000.0;
  /// Spawning/joining one task in a coforall on the local locale.
  double task_spawn_ns = 60000.0;
  /// CPU-side cost of *injecting* one asynchronous remote operation
  /// (descriptor build + NIC doorbell). Modeled as a carve-out of the
  /// op's latency, never an addition: an async issue charges
  /// min(async_issue_ns, latency) and the remainder lands in the
  /// completion time, so at window=1 async totals exactly match the
  /// synchronous charges and pipelining can only win (DESIGN.md §10).
  double async_issue_ns = 500.0;

  // -- Atomics and locks ----------------------------------------------
  /// Atomic load with acquire/seq_cst ordering.
  double atomic_load_ns = 2.0;
  /// Uncontended seq_cst read-modify-write.
  double atomic_rmw_ns = 20.0;
  /// *Service time* of one RMW on a heavily contended line: the cache
  /// line must be transferred exclusively between cores/sockets per
  /// operation, so contended RMWs serialize at this rate. This is the
  /// term that produces the paper's EBR collapse (EpochReaders are
  /// hammered by 44 tasks per node).
  double rmw_transfer_ns = 1800.0;
  /// Service time of one cluster-lock handoff (lock word ping-pong plus
  /// network hop for remote acquirers). SyncArray serializes here.
  double lock_handoff_ns = 1200.0;
  /// A writer waiting for the reader counter of the retired epoch parity
  /// to drain (EBR RCU_Write lines 6-7).
  double epoch_drain_ns = 5000.0;

  // -- Implementation-specific translation overheads ------------------
  /// ChapelArray (BlockDist) dsiAccess: domain query, per-dimension
  /// divide, locality test, wide-pointer arithmetic.
  double chapel_dsi_ns = 750.0;
  /// RCUArray Index(): privatized-copy lookup plus div/mod.
  double rcua_index_ns = 50.0;
  /// Extra snapshot-spine misses RCUArray pays on a *random* access
  /// (privatized instance, snapshot pointer, block table — three chains
  /// that the direct address computation of BlockDist does not have).
  double rcua_spine_miss_ns = 850.0;
  /// QSBR checkpoint: scanning one TLSList record.
  double qsbr_checkpoint_per_thread_ns = 4.0;
  /// QSBR checkpoint fixed part (observing StateEpoch, list split).
  double qsbr_defer_ns = 50.0;

  /// Loads RCUA_COST_* overrides from the environment.
  void load_env();

  /// The process-wide instance (mutable for tests and calibration).
  static CostModel& mutable_instance();
  /// Read-only accessor used by charge sites.
  static const CostModel& get();
};

/// RAII guard that saves and restores the global cost model; used by tests
/// that poke individual fields.
class CostModelOverride {
 public:
  CostModelOverride();
  ~CostModelOverride();
  CostModelOverride(const CostModelOverride&) = delete;
  CostModelOverride& operator=(const CostModelOverride&) = delete;

 private:
  CostModel saved_;
};

}  // namespace rcua::sim
