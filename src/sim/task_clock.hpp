#pragma once

#include <cstdint>

namespace rcua::sim {

/// Per-task virtual clock.
///
/// Benchmark tasks each own one of these and attach it to their thread for
/// the duration of the measured region (ClockScope). All charge sites in
/// the library are no-ops when no clock is attached — unit tests and
/// example programs run at native speed — and accumulate virtual
/// nanoseconds when one is. A configuration's throughput is
///   total_ops / max over tasks of vtime
/// which is exactly the makespan of the simulated cluster execution.
struct TaskClock {
  /// Accumulated virtual nanoseconds.
  std::uint64_t vtime_ns = 0;
  /// Identity of the last data block this task touched; drives the
  /// cached/streamed vs missed/first-touch cost split.
  std::uint64_t last_block_id = ~0ULL;
  /// Number of charge events (observability / tests).
  std::uint64_t charge_events = 0;

  void reset() noexcept {
    vtime_ns = 0;
    last_block_id = ~0ULL;
    charge_events = 0;
  }
};

/// True when a virtual clock is attached to the calling thread.
bool enabled() noexcept;

/// The attached clock, or nullptr.
TaskClock* current() noexcept;

/// Adds `ns` virtual nanoseconds to the attached clock; no-op when none.
void charge(double ns) noexcept;

/// Current virtual time of the attached clock (0 when none).
std::uint64_t now_v() noexcept;

/// Advances the attached clock to at least `t` (used by resources when a
/// queued acquisition completes later than the task's own time).
void advance_to(std::uint64_t t) noexcept;

/// Models one element access to a data block.
///
/// `block_id` must be globally unique per block (pointer value works);
/// `remote` is whether the block lives on another locale. The cost is
/// selected by whether the task's previous access hit the same block:
///   same block:   local_cached_ns        / remote_stream_ns
///   other block:  dram_miss_ns           / remote_get_ns (or PUT)
/// so sequential scans become cheap and random access becomes expensive
/// without the data structure ever being told the access pattern.
/// `extra_on_miss_ns` is added only on a block switch (e.g. RCUArray's
/// snapshot-spine chain misses, which a hot loop over one block amortizes
/// away).
void touch_block(std::uint64_t block_id, bool remote, bool is_write,
                 double extra_on_miss_ns = 0.0) noexcept;

/// RAII attachment of a clock to the calling thread. Nests (restores the
/// previous clock on destruction).
class ClockScope {
 public:
  explicit ClockScope(TaskClock& clock) noexcept;
  ~ClockScope();
  ClockScope(const ClockScope&) = delete;
  ClockScope& operator=(const ClockScope&) = delete;

 private:
  TaskClock* prev_;
};

}  // namespace rcua::sim
