#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/align.hpp"

namespace rcua::rt {

class FaultPlan;

/// Per-locale communication counters. In Chapel these PUT/GET operations
/// happen behind the scenes; the counters make the "behind the scenes"
/// observable — tests assert on locality properties (e.g. RCUArray
/// metadata privatization keeps reads node-local) and benches report
/// communication volume next to throughput.
struct CommStats {
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> executes{0};

  void reset() noexcept {
    gets.store(0, std::memory_order_relaxed);
    puts.store(0, std::memory_order_relaxed);
    executes.store(0, std::memory_order_relaxed);
  }
};

/// The cluster's communication layer: counts one-sided operations by
/// *initiating* locale and charges virtual time for explicit remote
/// executions (element-access charging lives at the data-structure touch
/// sites via sim::touch_block, which sees cache behaviour the comm layer
/// cannot).
class CommLayer {
 public:
  explicit CommLayer(std::uint32_t num_locales);

  /// Records an element access from locale `src` to a block owned by
  /// `dst`; local accesses are not counted (they are not communication).
  void record_access(std::uint32_t src, std::uint32_t dst,
                     bool is_write) noexcept;

  /// Records and charges a remote task execution (`on` statement body).
  /// Same-locale executions are free and uncounted.
  void record_execute(std::uint32_t src, std::uint32_t dst) noexcept;

  [[nodiscard]] std::uint64_t gets(std::uint32_t locale) const noexcept;
  [[nodiscard]] std::uint64_t puts(std::uint32_t locale) const noexcept;
  [[nodiscard]] std::uint64_t executes(std::uint32_t locale) const noexcept;

  [[nodiscard]] std::uint64_t total_gets() const noexcept;
  [[nodiscard]] std::uint64_t total_puts() const noexcept;
  [[nodiscard]] std::uint64_t total_executes() const noexcept;

  void reset() noexcept;

  [[nodiscard]] std::uint32_t num_locales() const noexcept {
    return static_cast<std::uint32_t>(stats_.size());
  }

  /// Chaos hook: a kSlowRemote rule matching the *destination* locale
  /// charges extra virtual time on each remote execute targeting it.
  /// Installed via Cluster::set_fault_plan.
  void set_fault_plan(FaultPlan* plan) noexcept {
    fault_plan_.store(plan, std::memory_order_release);
  }

 private:
  std::vector<plat::CacheAligned<CommStats>> stats_;
  std::atomic<FaultPlan*> fault_plan_{nullptr};
};

}  // namespace rcua::rt
