#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rcua::rt {

class FaultPlan;

/// Snapshot of one locale's communication counters. In Chapel these
/// PUT/GET operations happen behind the scenes; the counters make the
/// "behind the scenes" observable — tests assert on locality properties
/// (e.g. RCUArray metadata privatization keeps reads node-local) and
/// benches report communication volume next to throughput.
///
/// The live counters are obs::Counter cells in the CommLayer's metrics
/// registry (one stripe per locale); this struct is the thin plain-value
/// view read back through CommLayer::stats_at.
struct CommStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t executes = 0;
  // Async comm layer (rt::AsyncComm) counters. `async_issued` /
  // `async_completed` / `async_cancelled` are lifetime totals;
  // `async_max_inflight` is the high-water mark of ops outstanding to a
  // single destination from this locale. The exactly-once invariant is
  //   async_issued == async_completed + async_cancelled
  // once every session on the locale has drained or been destroyed.
  std::uint64_t async_issued = 0;
  std::uint64_t async_completed = 0;
  std::uint64_t async_cancelled = 0;
  std::uint64_t async_max_inflight = 0;
  // Per-locale block cache (rt::BlockCache) counters. Deterministic for
  // a fixed workload with one consumer task per locale (the bench-gate
  // configs); a hit replaces a would-be remote GET/execute, a fill is
  // the one remote execute that fetched the whole block, an eviction is
  // a capacity- or staleness-driven entry drop.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_evictions = 0;
};

/// The cluster's communication layer: counts one-sided operations by
/// *initiating* locale and charges virtual time for explicit remote
/// executions (element-access charging lives at the data-structure touch
/// sites via sim::touch_block, which sees cache behaviour the comm layer
/// cannot).
///
/// Every counter lives in a per-cluster obs::Registry (`registry()`)
/// with one cache-line-padded cell per locale, so the hot path is the
/// same single relaxed fetch_add the old ad-hoc atomics paid, while
/// snapshot(), the per-locale accessors, and the totals are all views
/// over the same cells — one aggregation path instead of three.
class CommLayer {
 public:
  explicit CommLayer(std::uint32_t num_locales);

  /// Records an element access from locale `src` to a block owned by
  /// `dst`; local accesses are not counted (they are not communication).
  void record_access(std::uint32_t src, std::uint32_t dst,
                     bool is_write) noexcept;

  /// Records and charges a remote task execution (`on` statement body).
  /// Same-locale executions are free and uncounted.
  void record_execute(std::uint32_t src, std::uint32_t dst) noexcept;

  /// Counts a remote execution WITHOUT charging — the async comm layer
  /// charges through its channel model instead (issue carve-out at the
  /// initiator, launch latency folded into the completion time). Keeps
  /// the `executes` counter identical between sync and async modes so
  /// the bench gate's deterministic counters do not depend on the mode.
  void record_execute_async(std::uint32_t src, std::uint32_t dst) noexcept;

  /// Pipelined fan-out launch (coforall bodies): counts the execute,
  /// charges only the CPU-side issue carve-out
  /// (min(async_issue_ns, remote_execute_ns)), and returns the remainder
  /// of the launch latency — the part that overlaps with the other
  /// branches' launches — including any kSlowRemote fault delay.
  /// Same-locale launches are free, uncounted, and return 0.
  std::uint64_t issue_execute(std::uint32_t src, std::uint32_t dst) noexcept;

  /// Consults the installed FaultPlan's kSlowRemote rule for `dst` once
  /// and returns the extra delay (0 when no plan or the rule does not
  /// fire). FaultPlan rules are stateful (nth-consultation counting), so
  /// an async op must consult exactly once at issue — mirroring the one
  /// consultation per synchronous record_execute — to keep fault
  /// schedules deterministic across sync/async modes.
  std::uint64_t slow_remote_delay(std::uint32_t dst) noexcept;

  // Async counter hooks (called by rt::AsyncComm).
  void note_async_issued(std::uint32_t locale) noexcept;
  void note_async_completed(std::uint32_t locale) noexcept;
  void note_async_cancelled(std::uint32_t locale) noexcept;
  /// Raises the locale's in-flight high-water mark to at least `depth`.
  void note_async_inflight(std::uint32_t locale, std::size_t depth) noexcept;

  // Block-cache counter hooks (called by rt::BlockCache).
  void note_cache_hit(std::uint32_t locale) noexcept;
  void note_cache_miss(std::uint32_t locale) noexcept;
  void note_cache_fill(std::uint32_t locale) noexcept;
  void note_cache_evictions(std::uint32_t locale, std::uint64_t n) noexcept;

  // Per-locale accessors: thin views over the registry counters' cells.
  [[nodiscard]] std::uint64_t gets(std::uint32_t locale) const noexcept {
    return gets_.at(locale);
  }
  [[nodiscard]] std::uint64_t puts(std::uint32_t locale) const noexcept {
    return puts_.at(locale);
  }
  [[nodiscard]] std::uint64_t executes(std::uint32_t locale) const noexcept {
    return executes_.at(locale);
  }
  [[nodiscard]] std::uint64_t async_issued(
      std::uint32_t locale) const noexcept {
    return async_issued_.at(locale);
  }
  [[nodiscard]] std::uint64_t async_completed(
      std::uint32_t locale) const noexcept {
    return async_completed_.at(locale);
  }
  [[nodiscard]] std::uint64_t async_cancelled(
      std::uint32_t locale) const noexcept {
    return async_cancelled_.at(locale);
  }
  [[nodiscard]] std::uint64_t async_max_inflight(
      std::uint32_t locale) const noexcept {
    return async_max_inflight_.at(locale);
  }
  [[nodiscard]] std::uint64_t cache_hits(std::uint32_t locale) const noexcept {
    return cache_hits_.at(locale);
  }
  [[nodiscard]] std::uint64_t cache_misses(
      std::uint32_t locale) const noexcept {
    return cache_misses_.at(locale);
  }
  [[nodiscard]] std::uint64_t cache_fills(std::uint32_t locale) const noexcept {
    return cache_fills_.at(locale);
  }
  [[nodiscard]] std::uint64_t cache_evictions(
      std::uint32_t locale) const noexcept {
    return cache_evictions_.at(locale);
  }

  /// All of one locale's counters as a plain snapshot struct.
  [[nodiscard]] CommStats stats_at(std::uint32_t locale) const noexcept;

  // Totals: the registry counters' fold (sum; max for the high-water).
  [[nodiscard]] std::uint64_t total_gets() const noexcept {
    return gets_.value();
  }
  [[nodiscard]] std::uint64_t total_puts() const noexcept {
    return puts_.value();
  }
  [[nodiscard]] std::uint64_t total_executes() const noexcept {
    return executes_.value();
  }
  [[nodiscard]] std::uint64_t total_async_issued() const noexcept {
    return async_issued_.value();
  }
  [[nodiscard]] std::uint64_t total_async_completed() const noexcept {
    return async_completed_.value();
  }
  [[nodiscard]] std::uint64_t total_async_cancelled() const noexcept {
    return async_cancelled_.value();
  }
  /// Max over locales (a high-water mark does not sum meaningfully).
  [[nodiscard]] std::uint64_t max_async_inflight() const noexcept {
    return async_max_inflight_.value();
  }
  [[nodiscard]] std::uint64_t total_cache_hits() const noexcept {
    return cache_hits_.value();
  }
  [[nodiscard]] std::uint64_t total_cache_misses() const noexcept {
    return cache_misses_.value();
  }
  [[nodiscard]] std::uint64_t total_cache_fills() const noexcept {
    return cache_fills_.value();
  }
  [[nodiscard]] std::uint64_t total_cache_evictions() const noexcept {
    return cache_evictions_.value();
  }

  void reset() noexcept { registry_.reset(); }

  [[nodiscard]] std::uint32_t num_locales() const noexcept {
    return num_locales_;
  }

  /// This cluster's metrics registry. Comm/cache/async counters live
  /// here (NOT in obs::Registry::global()) so concurrently-live clusters
  /// never mix counts and reset() stays cluster-local.
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  /// Chaos hook: a kSlowRemote rule matching the *destination* locale
  /// charges extra virtual time on each remote execute targeting it.
  /// Installed via Cluster::set_fault_plan.
  void set_fault_plan(FaultPlan* plan) noexcept {
    fault_plan_.store(plan, std::memory_order_release);
  }

 private:
  std::uint32_t num_locales_;
  obs::Registry registry_;  // declared before the counter handles
  obs::Counter& gets_;
  obs::Counter& puts_;
  obs::Counter& executes_;
  obs::Counter& async_issued_;
  obs::Counter& async_completed_;
  obs::Counter& async_cancelled_;
  obs::Counter& async_max_inflight_;  // Agg::kMax
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& cache_fills_;
  obs::Counter& cache_evictions_;
  std::atomic<FaultPlan*> fault_plan_{nullptr};
};

class AsyncComm;

namespace detail {

/// Type-erased per-op bookkeeping shared between a future and its
/// session. Not thread-safe by design: an AsyncComm session and every
/// future it hands out belong to ONE task (same contract as Aggregator).
struct AsyncOpCore {
  std::uint64_t completion_vtime = 0;  ///< virtual time the op lands
  std::uint32_t dst = 0;
  bool completed = false;
  bool cancelled = false;
  /// The issuing session; only dereferenced while !completed &&
  /// !cancelled, and the session's destructor cancels everything still
  /// pending, so a future can never reach a dangling session.
  AsyncComm* session = nullptr;
};

template <typename T>
struct AsyncOpState : AsyncOpCore {
  std::optional<T> value;
};

template <>
struct AsyncOpState<void> : AsyncOpCore {};

}  // namespace detail

/// Handle to one asynchronous comm operation issued through AsyncComm.
/// Copyable (shared state); `wait()` retires channel completions until
/// this op lands, `get()` additionally returns the GET value. Waiting on
/// a cancelled op throws — cancellation (session unwind/destruction)
/// means the op never ran and has no result.
template <typename T>
class future {
 public:
  future() = default;

  /// True when this future refers to an operation (default-constructed
  /// futures do not).
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool done() const noexcept {
    return state_ != nullptr && state_->completed;
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return state_ != nullptr && state_->cancelled;
  }

  /// Blocks (in virtual time: retires completions) until the op lands.
  void wait();
  /// wait(), then returns the operation's value (void for PUT/execute
  /// closures returning void).
  T get();

 private:
  friend class AsyncComm;
  explicit future(std::shared_ptr<detail::AsyncOpState<T>> state) noexcept
      : state_(std::move(state)) {}

  std::shared_ptr<detail::AsyncOpState<T>> state_;
};

struct AsyncCommOptions {
  /// Max ops in flight per destination before an issue stalls (retiring
  /// the destination's oldest completion first). 0 = read the
  /// RCUA_COMM_WINDOW environment variable (default 32); values are
  /// clamped to at least 1. window=1 degenerates to the synchronous
  /// model with *identical* virtual-time charges (see DESIGN.md §10).
  std::size_t window = 0;
};

/// Per-task asynchronous communication session (the futures/pipelining
/// layer of Jenkins' follow-up paper, modeled on bounded in-flight async
/// RPC): GET/PUT/execute return immediately with an rt::future after
/// paying only a CPU-side issue cost; the wire time occupies the
/// per-destination channel and the launch latency overlaps across
/// outstanding ops. Completions are delivered in issue order per
/// destination when the window fills, at `wait()`, or at `drain()`.
///
/// Contract (mirrors Aggregator):
///  * One session per task — NOT thread-safe.
///  * Local-destination ops run inline and return ready futures (local
///    work is not communication).
///  * Completion closures may touch memory pinned by an enclosing
///    read-side critical section, so ALL completions must be drained
///    before that section closes (DESIGN.md §10). The destructor
///    therefore CANCELS — never delivers — ops still pending, making
///    exception unwind out of the section safe.
class AsyncComm {
 public:
  using Options = AsyncCommOptions;

  /// Per-session counters (the per-locale aggregates live in CommStats).
  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::size_t max_inflight = 0;  ///< high-water, single destination
  };

  AsyncComm(CommLayer& comm, std::uint32_t here, Options options = {});
  ~AsyncComm();
  AsyncComm(const AsyncComm&) = delete;
  AsyncComm& operator=(const AsyncComm&) = delete;

  /// Async one-sided GET of `*src` owned by locale `dst`.
  template <typename T>
  future<T> get(std::uint32_t dst, const T* src) {
    auto state = std::make_shared<detail::AsyncOpState<T>>();
    if (dst == here_) {
      state->value.emplace(*src);
      state->completed = true;
      return future<T>(std::move(state));
    }
    comm_.record_access(here_, dst, /*is_write=*/false);
    issue(dst, /*weight=*/1, sim::CostModel::get().remote_get_ns, state,
          [state, src] { state->value.emplace(*src); });
    return future<T>(std::move(state));
  }

  /// Async one-sided PUT of `value` into `*dest` owned by locale `dst`.
  template <typename T>
  future<void> put(std::uint32_t dst, T* dest, T value) {
    auto state = std::make_shared<detail::AsyncOpState<void>>();
    if (dst == here_) {
      *dest = std::move(value);
      state->completed = true;
      return future<void>(std::move(state));
    }
    comm_.record_access(here_, dst, /*is_write=*/true);
    issue(dst, /*weight=*/1, sim::CostModel::get().remote_put_ns, state,
          [dest, v = std::move(value)]() mutable { *dest = std::move(v); });
    return future<void>(std::move(state));
  }

  /// Async remote execution of `fn` on locale `dst`, shipping `weight`
  /// elements' worth of payload (charged as wire time on the channel).
  /// Counts one `executes` per remote call — identical to the
  /// synchronous record_execute — so mode choice never shifts the bench
  /// gate's counters.
  template <typename F>
  auto execute(std::uint32_t dst, std::size_t weight, F&& fn)
      -> future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto state = std::make_shared<detail::AsyncOpState<R>>();
    if (dst == here_) {
      if constexpr (std::is_void_v<R>) {
        fn();
      } else {
        state->value.emplace(fn());
      }
      state->completed = true;
      return future<R>(std::move(state));
    }
    comm_.record_execute_async(here_, dst);
    issue(dst, weight, sim::CostModel::get().remote_execute_ns, state,
          [state, f = std::forward<F>(fn)]() mutable {
            if constexpr (std::is_void_v<R>) {
              f();
            } else {
              state->value.emplace(f());
            }
          });
    return future<R>(std::move(state));
  }

  /// Retires every in-flight completion, in global issue order. MUST run
  /// inside the read-side section pinning whatever the completion
  /// closures touch (DESIGN.md §10).
  void drain();

  /// Marks every pending op cancelled and drops its completion closure
  /// without running it. Returns the number cancelled. Used by the
  /// destructor (exception unwind) — a cancelled future's wait() throws.
  std::size_t cancel_pending() noexcept;

  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] std::size_t inflight(std::uint32_t dst) const noexcept {
    return channels_[dst].inflight.size();
  }
  [[nodiscard]] std::size_t total_inflight() const noexcept {
    std::size_t n = 0;
    for (const Channel& ch : channels_) n += ch.inflight.size();
    return n;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  template <typename T>
  friend class future;

  struct Pending {
    std::shared_ptr<detail::AsyncOpCore> core;
    std::function<void()> deliver;
  };

  struct Channel {
    std::deque<Pending> inflight;
    /// Virtual time the destination's wire frees up: back-to-back sends
    /// to one locale serialize at bulk_copy_ns_per_elem per element,
    /// while sends to different locales overlap.
    std::uint64_t wire_ready = 0;
    /// Virtual time the destination finishes *processing* its last
    /// delivered op: a completion closure's own charges run on the
    /// destination's timeline (measured under a sub-clock at delivery),
    /// serializing per destination but overlapping across destinations.
    std::uint64_t proc_done = 0;
  };

  void issue(std::uint32_t dst, std::size_t weight, double latency_ns,
             std::shared_ptr<detail::AsyncOpCore> core,
             std::function<void()> deliver);
  /// Delivers the channel's oldest in-flight op (advancing the clock to
  /// its completion time).
  void retire_head(Channel& ch);
  /// Retires `core`'s channel in order until `core` completes.
  void await(detail::AsyncOpCore& core);

  CommLayer& comm_;
  std::uint32_t here_;
  std::size_t window_;
  std::vector<Channel> channels_;
  /// Issue order across all channels; drain() retires in this order so
  /// delivery is deterministic regardless of per-channel completion
  /// times. Entries already retired by window pressure or wait() are
  /// skipped.
  std::deque<std::shared_ptr<detail::AsyncOpCore>> issue_order_;
  Stats stats_;
};

template <typename T>
void future<T>::wait() {
  if (!state_) {
    throw std::logic_error("rt::future: wait() on an empty future");
  }
  if (state_->cancelled) {
    throw std::runtime_error(
        "rt::future: operation was cancelled before completing (session "
        "unwound?)");
  }
  if (!state_->completed) state_->session->await(*state_);
}

template <typename T>
T future<T>::get() {
  wait();
  if constexpr (!std::is_void_v<T>) {
    return std::move(*state_->value);
  }
}

}  // namespace rcua::rt
