#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "sim/resource.hpp"
#include "testing/sched_point.hpp"

namespace rcua::rt {

class Cluster;

/// The cluster-wide WriteLock of Listing 1: "a lock that is wrapped in
/// some class allocated on a single node, used to provide mutual
/// exclusion with respect to all [locales] during resize operations."
///
/// Real mutual exclusion is a mutex; the virtual-time model adds what the
/// paper's SyncArray measurements show: every handoff transfers the lock
/// word (network hop for remote acquirers), and the whole critical
/// section serializes — the holder extends the lock resource's busy
/// period until its release time, so queued acquirers line up behind the
/// full CS, not just the handoff.
class GlobalLock {
 public:
  explicit GlobalLock(Cluster& cluster, std::uint32_t owner_locale = 0);
  GlobalLock(const GlobalLock&) = delete;
  GlobalLock& operator=(const GlobalLock&) = delete;

  void lock();
  void unlock();
  bool try_lock();

  [[nodiscard]] std::uint32_t owner_locale() const noexcept {
    return owner_locale_;
  }
  [[nodiscard]] std::uint64_t acquisitions() const noexcept {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t remote_acquisitions() const noexcept {
    return remote_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  void charge_acquire();

  Cluster& cluster_;
  std::uint32_t owner_locale_;
  std::mutex mu_;
  sim::VirtualResource word_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> remote_acquisitions_{0};
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  /// Scheduler gate: under the deterministic scheduler a task may hold
  /// the lock across schedule points, so contenders must wait through the
  /// scheduler (a blocked pthread mutex would wedge the one-runnable-task
  /// baton). The gate serializes scheduled tasks before they ever touch
  /// mu_, which therefore stays uncontended among them.
  std::atomic<bool> sched_gate_{false};
#endif
};

}  // namespace rcua::rt
