#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace rcua::rt {

/// The privatization registry: Chapel's `chpl_getPrivatizedCopy`.
///
/// A privatized class allocates a shallow copy on every locale; the
/// privatization id (PID) is the descriptor used to reach the copy local
/// to wherever the accessing task runs, eliminating inter-node
/// communication on the metadata path. RCUArray's per-locale snapshot,
/// epoch state and NextLocaleId all live behind a PID.
///
/// The slot table is allocated once at construction so `get()` is a
/// single indexed atomic load with no locking — it is on the read path of
/// every array access.
class PrivatizationRegistry {
 public:
  static constexpr std::uint32_t kDefaultMaxPids = 4096;

  explicit PrivatizationRegistry(std::uint32_t num_locales,
                                 std::uint32_t max_pids = kDefaultMaxPids);

  /// Claims a fresh PID (recycling destroyed ones). Aborts when the table
  /// is exhausted.
  int create();

  /// Installs the privatized instance for (pid, locale).
  void set(int pid, std::uint32_t locale, void* instance) noexcept;

  /// The privatized instance for (pid, locale). Lock-free.
  [[nodiscard]] void* get(int pid, std::uint32_t locale) const noexcept {
    return slots_[slot_index(pid, locale)].load(std::memory_order_acquire);
  }

  /// Clears all of `pid`'s slots and recycles the id. The caller owns the
  /// instances and must have freed them.
  void destroy(int pid);

  [[nodiscard]] std::uint32_t num_locales() const noexcept {
    return num_locales_;
  }
  [[nodiscard]] std::uint32_t live_pids() const noexcept;

 private:
  [[nodiscard]] std::size_t slot_index(int pid,
                                       std::uint32_t locale) const noexcept {
    return static_cast<std::size_t>(pid) * num_locales_ + locale;
  }

  std::uint32_t num_locales_;
  std::uint32_t max_pids_;
  std::unique_ptr<std::atomic<void*>[]> slots_;
  std::mutex mu_;
  std::vector<int> free_pids_;
  int next_pid_ = 0;
  std::uint32_t live_ = 0;
};

}  // namespace rcua::rt
