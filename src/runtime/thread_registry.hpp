#pragma once

#include <atomic>
#include <cstdint>

#include "platform/align.hpp"
#include "platform/spinlock.hpp"
#include "reclaim/retire_list.hpp"

namespace rcua::rt {

/// Interface a reclamation domain (e.g. reclaim::Qsbr) exposes to the
/// registry so parking can do per-domain housekeeping without a
/// dependency cycle.
class EpochDomain {
 public:
  virtual ~EpochDomain() = default;
  /// The domain's current StateEpoch.
  [[nodiscard]] virtual std::uint64_t current_epoch() const noexcept = 0;
};

/// Per-(thread, domain) state: the paper's thread-specific metadata.
struct DomainSlot {
  /// The newest StateEpoch this thread promised quiescence up to.
  std::atomic<std::uint64_t> observed_epoch{0};
  /// Set once the thread participates in the domain (defer or checkpoint);
  /// inactive slots are excluded from the safe-epoch minimum.
  std::atomic<bool> active{false};
  /// Thread-owned LIFO of deferred reclamations, descending safe epoch
  /// (Lemma 4). In the paper's design only the owning thread touches it;
  /// this implementation adds `flush_slot_unsafe` / domain teardown which
  /// drain *other* threads' lists, so list access takes the (normally
  /// uncontended) spinlock below. The fast path cost is one
  /// non-contended TTAS pair.
  reclaim::DeferList defer_list;
  plat::Spinlock list_lock;
};

/// Per-thread record reachable through the runtime's TLSList (§III-B).
/// Records are insert-only; a thread that exits is parked, never unlinked,
/// so lock-free traversal is always safe.
struct ThreadRecord {
  static constexpr std::size_t kMaxDomains = 8;

  DomainSlot slots[kMaxDomains];
  /// Parked threads are idle and hold no protected references; they are
  /// excluded from every domain's safe-epoch minimum.
  std::atomic<bool> parked{false};
  /// Intrusive TLSList link.
  ThreadRecord* next = nullptr;
};

/// The runtime's TLSList: a registry of thread records plus the domain
/// slot allocator. Instantiable so tests can run isolated domains; the
/// process-wide instance is `ThreadRegistry::global()`.
class ThreadRegistry {
 public:
  ThreadRegistry();
  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;
  ~ThreadRegistry();

  /// The process-wide registry (used by reclaim::Qsbr::global()).
  static ThreadRegistry& global();

  /// The calling thread's record in this registry, registering on first
  /// use. When the thread exits, the record is parked automatically
  /// (unless the registry died first).
  ThreadRecord& local_record();

  /// Head of the TLSList for iteration.
  [[nodiscard]] ThreadRecord* head() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Number of records (== threads that ever registered).
  [[nodiscard]] std::uint64_t record_count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Number of currently non-parked records (model input for checkpoint
  /// cost; observability).
  [[nodiscard]] std::uint64_t live_record_count() const noexcept;

  // -- Domain slots ----------------------------------------------------

  /// Claims a domain slot; aborts if all kMaxDomains are taken.
  std::size_t register_domain(EpochDomain& domain);

  /// Releases a slot. Flushes every record's pending deferrals for the
  /// slot — only call when the domain is quiescent (its destructor).
  void unregister_domain(std::size_t slot);

  /// Minimum observed epoch over all active, non-parked records for
  /// `slot`; returns `ceiling` when there are none.
  [[nodiscard]] std::uint64_t min_observed_epoch(
      std::size_t slot, std::uint64_t ceiling) const noexcept;

  /// Same, also reporting how many live (non-parked) records the scan
  /// visited — the checkpoint cost driver in the performance model.
  [[nodiscard]] std::uint64_t min_observed_epoch_counted(
      std::size_t slot, std::uint64_t ceiling,
      std::uint64_t& live_visited) const noexcept;

  // -- Parking (the paper's idle-thread support) ------------------------

  /// Marks the calling thread idle: for each domain it participates in,
  /// observe the newest state, reclaim what its own list allows, then
  /// exclude the thread from all minima until unpark.
  void park_current_thread();

  /// Re-admits the calling thread, observing every domain's current
  /// epoch *before* becoming visible.
  void unpark_current_thread();

  /// Reclaims every pending deferral in every record of `slot`. ONLY safe
  /// when no thread holds protected references.
  void flush_slot_unsafe(std::size_t slot);

 private:
  friend struct RegistryCacheTls;

  std::atomic<ThreadRecord*> head_{nullptr};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<EpochDomain*> domains_[ThreadRecord::kMaxDomains];
  std::uint64_t id_;  // unique, never reused; guards stale TLS caches
};

}  // namespace rcua::rt
