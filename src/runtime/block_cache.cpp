#include "runtime/block_cache.hpp"

#include "runtime/comm.hpp"
#include "testing/sched_point.hpp"
#include "util/env.hpp"

namespace rcua::rt {

BlockCache::BlockCache(CommLayer& comm, std::uint32_t locale,
                       std::size_t capacity_bytes)
    : comm_(comm), locale_(locale), capacity_(capacity_bytes) {}

std::size_t BlockCache::capacity_from_env() noexcept {
  return static_cast<std::size_t>(
      util::env_u64("RCUA_CACHE_CAPACITY_BYTES", 0));
}

std::shared_ptr<const std::byte[]> BlockCache::lookup(
    std::uint64_t array_id, std::uint64_t block_index,
    std::uint64_t pinned_version, std::uint64_t generation) {
  // Sched points sit OUTSIDE the lock: the deterministic scheduler may
  // park a task at a point, and parking while holding mu_ would wedge
  // every other task on this locale's cache.
  RCUA_SCHED_POINT("cache.lookup");
  std::lock_guard<std::mutex> guard(mu_);
  auto it = map_.find(Key{array_id, block_index});
  if (it == map_.end()) {
    ++stats_.misses;
    comm_.note_cache_miss(locale_);
    return nullptr;
  }
  // MUTATION (sched harness only): cache_use_after_invalidate serves the
  // entry without the version/generation compare — the
  // invalidated-but-present entry a resize or a remote write left behind
  // is then returned as if fresh (tests/test_sched_cache.cpp proves the
  // explorer catches the stale read this produces).
  if (!RCUA_SCHED_MUT(cache_use_after_invalidate) &&
      (it->second.version != pinned_version ||
       it->second.generation != generation)) {
    // Stale under the caller's pin: treat as a miss and lazily evict.
    evict_locked(it);
    ++stats_.misses;
    comm_.note_cache_miss(locale_);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  comm_.note_cache_hit(locale_);
  return it->second.data;
}

void BlockCache::insert(std::uint64_t array_id, std::uint64_t block_index,
                        std::uint64_t version, std::uint64_t generation,
                        std::shared_ptr<const std::byte[]> data,
                        std::size_t bytes) {
  RCUA_SCHED_POINT("cache.insert");
  std::lock_guard<std::mutex> guard(mu_);
  if (bytes > capacity_) return;  // can never fit; do not thrash the LRU
  const Key key{array_id, block_index};
  if (auto it = map_.find(key); it != map_.end()) {
    // A concurrent task on this locale filled the same block first (or a
    // stale entry lingers). Replace it: this fill's tags are current.
    evict_locked(it);
  }
  while (used_ + bytes > capacity_ && !lru_.empty()) {
    evict_locked(map_.find(lru_.back()));
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{version, generation, bytes, std::move(data),
                          lru_.begin()});
  used_ += bytes;
  stats_.inserted_bytes += bytes;
}

void BlockCache::note_fill() {
  std::lock_guard<std::mutex> guard(mu_);
  ++stats_.fills;
  comm_.note_cache_fill(locale_);
}

std::size_t BlockCache::invalidate_tail(std::uint64_t array_id,
                                        std::uint64_t first_block) {
  RCUA_SCHED_POINT("cache.invalidate");
  std::lock_guard<std::mutex> guard(mu_);
  std::size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.array_id == array_id &&
        it->first.block_index >= first_block) {
      auto victim = it++;
      evict_locked(victim);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t BlockCache::bytes_used() const {
  std::lock_guard<std::mutex> guard(mu_);
  return used_;
}

std::size_t BlockCache::entries() const {
  std::lock_guard<std::mutex> guard(mu_);
  return map_.size();
}

BlockCache::Stats BlockCache::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

void BlockCache::evict_locked(
    std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  used_ -= it->second.bytes;
  stats_.evicted_bytes += it->second.bytes;
  ++stats_.evictions;
  comm_.note_cache_evictions(locale_, 1);
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

}  // namespace rcua::rt
