#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "runtime/cluster.hpp"

namespace rcua::rt {

/// Cluster-wide collectives over the tasking layer — the utility
/// operations a distributed-array application keeps reaching for
/// (Chapel's reductions and `Barrier` module). All of them are
/// implemented with `coforall_locales`, so the initiator's virtual clock
/// pays the fan-out plus the slowest participant, like any other
/// cluster-wide phase.

/// Runs one empty task on every locale and waits: a full cluster barrier
/// (every locale has reached this program point).
inline void cluster_barrier(Cluster& cluster) {
  cluster.coforall_locales([](std::uint32_t) {});
}

/// All-reduce: evaluates `per_locale(l)` on each locale (on that locale)
/// and combines the results with `op`, returning the total to the
/// caller.
template <typename T, typename Op>
T allreduce(Cluster& cluster, const std::function<T(std::uint32_t)>& per_locale,
            T identity, Op op) {
  std::mutex mu;
  T total = identity;
  cluster.coforall_locales([&](std::uint32_t l) {
    T local = per_locale(l);
    std::lock_guard<std::mutex> guard(mu);
    total = op(std::move(total), std::move(local));
  });
  return total;
}

/// Gather: evaluates `per_locale(l)` on each locale, returns the results
/// indexed by locale id.
template <typename T>
std::vector<T> gather(Cluster& cluster,
                      const std::function<T(std::uint32_t)>& per_locale) {
  std::vector<T> out(cluster.num_locales());
  cluster.coforall_locales(
      [&](std::uint32_t l) { out[l] = per_locale(l); });
  return out;
}

/// Broadcast: runs `receive(l, value)` on every locale with a copy of
/// `value` (Chapel's replication idiom; used to push configuration or
/// privatized seeds).
template <typename T>
void broadcast(Cluster& cluster, const T& value,
               const std::function<void(std::uint32_t, const T&)>& receive) {
  cluster.coforall_locales([&](std::uint32_t l) { receive(l, value); });
}

}  // namespace rcua::rt
