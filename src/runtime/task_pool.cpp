#include "runtime/task_pool.hpp"

#include "runtime/cluster.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/this_task.hpp"
#include "runtime/thread_registry.hpp"

namespace rcua::rt {

void TaskPool::Group::add(std::size_t n) {
  std::lock_guard<std::mutex> guard(mu_);
  pending_ += n;
}

void TaskPool::Group::finish() {
  std::lock_guard<std::mutex> guard(mu_);
  if (--pending_ == 0) cv_.notify_all();
}

void TaskPool::Group::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return pending_ == 0; });
}

TaskPool::TaskPool(Cluster& cluster, std::uint32_t num_locales,
                   std::uint32_t workers_per_locale)
    : cluster_(cluster), workers_per_locale_(workers_per_locale) {
  queues_.reserve(num_locales);
  for (std::uint32_t l = 0; l < num_locales; ++l) {
    queues_.push_back(std::make_unique<LocaleQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(num_locales) * workers_per_locale);
  for (std::uint32_t l = 0; l < num_locales; ++l) {
    for (std::uint32_t w = 0; w < workers_per_locale; ++w) {
      workers_.emplace_back([this, l, w] { worker_main(l, w); });
    }
  }
}

TaskPool::~TaskPool() {
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> guard(q->mu);
    q->stop = true;
    q->cv.notify_all();
  }
  for (auto& t : workers_) t.join();
  // Wait out any overflow threads still finishing.
  std::unique_lock<std::mutex> lock(overflow_mu_);
  overflow_cv_.wait(lock, [&] { return overflow_live_ == 0; });
}

std::uint32_t TaskPool::idle_workers(std::uint32_t locale) const noexcept {
  return queues_[locale]->idle.load(std::memory_order_relaxed);
}

void TaskPool::submit(std::uint32_t locale, Group* group, Task task) {
  Task wrapped =
      group == nullptr
          ? std::move(task)
          : Task([group, t = std::move(task)]() mutable {
              t();
              group->finish();
            });
  LocaleQueue& q = *queues_[locale];
  {
    std::lock_guard<std::mutex> guard(q.mu);
    // Queue only when a spare idle worker exists beyond the tasks already
    // waiting; otherwise fall through to an overflow thread so nested
    // parallelism can never deadlock the fixed team.
    if (q.idle.load(std::memory_order_relaxed) > q.tasks.size()) {
      q.tasks.push_back(std::move(wrapped));
      q.cv.notify_one();
      return;
    }
  }
  run_overflow(locale, std::move(wrapped));
}

void TaskPool::run_overflow(std::uint32_t locale, Task task) {
  overflow_tasks_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(overflow_mu_);
    ++overflow_live_;
  }
  std::thread([this, locale, task = std::move(task)]() mutable {
    {
      LocaleScope scope(cluster_, locale, /*worker_id=*/~0u);
      task();
    }
    std::lock_guard<std::mutex> guard(overflow_mu_);
    if (--overflow_live_ == 0) overflow_cv_.notify_all();
  }).detach();
}

void TaskPool::worker_main(std::uint32_t locale, std::uint32_t worker_id) {
  LocaleScope scope(cluster_, locale, worker_id);
  ThreadRegistry::global().local_record();  // register with the TLSList
  LocaleQueue& q = *queues_[locale];
  for (;;) {
    // Chaos hook: an injected kKillWorker fault makes this worker die as
    // a crashed thread would — except queued tasks are handed to
    // overflow threads first, so submitted work still completes and no
    // Group::wait hangs on a task nobody will run.
    if (FaultPlan* plan = cluster_.fault_plan();
        plan != nullptr &&
        plan->fires(FaultPlan::Action::kKillWorker, locale)) {
      std::deque<Task> orphaned;
      {
        std::lock_guard<std::mutex> guard(q.mu);
        orphaned.swap(q.tasks);
      }
      killed_workers_.fetch_add(1, std::memory_order_relaxed);
      for (Task& t : orphaned) run_overflow(locale, std::move(t));
      return;
    }
    Task task;
    {
      std::unique_lock<std::mutex> lock(q.mu);
      if (q.tasks.empty() && !q.stop) {
        // Going idle: park (final QSBR housekeeping + leave the minima).
        q.idle.fetch_add(1, std::memory_order_relaxed);
        ThreadRegistry::global().park_current_thread();
        q.cv.wait(lock, [&] { return q.stop || !q.tasks.empty(); });
        ThreadRegistry::global().unpark_current_thread();
        q.idle.fetch_sub(1, std::memory_order_relaxed);
      }
      if (q.tasks.empty()) {
        if (q.stop) return;
        continue;  // spurious wake relative to another worker's grab
      }
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    task();
  }
}

}  // namespace rcua::rt
