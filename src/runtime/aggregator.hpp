#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/comm.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua::rt {

/// Destination-buffered operation aggregation (the copy-aggregation idea
/// of Dewan & Jenkins, arXiv:2112.00068, applied to this runtime's comm
/// model): instead of paying one recorded GET/PUT per remote element, a
/// task coalesces the operations it wants to run on each destination
/// locale into a per-destination buffer and ships each buffer as ONE
/// remote execution (`record_execute`) plus a per-element wire cost
/// (`bulk_copy_ns_per_elem`), amortizing the launch latency across the
/// whole buffer.
///
/// Contract:
///  * One Aggregator per task — it is NOT thread-safe. Cheap to
///    construct; intended to live for the duration of one bulk
///    operation.
///  * Operations for the *calling* locale execute immediately at push()
///    (local work is not communication and gains nothing from
///    buffering).
///  * Remote operations are buffered and run, in push order per
///    destination, at flush()/flush_all() — or automatically when a
///    destination's buffered weight reaches `Options::capacity`.
///  * The destructor DISCARDS unflushed operations rather than running
///    them. This is deliberate: callers buffer operations that
///    dereference memory pinned by an enclosing read-side critical
///    section (see RCUArray::bulk_visit), and an exception unwinding out
///    of that section must not execute them after the pin is gone.
///    Callers that want the operations to happen must flush explicitly
///    before the section closes.
struct AggregatorOptions {
  /// Element-ops buffered per destination before an automatic flush.
  /// 1 degenerates to flush-per-push (still one execute per *span*,
  /// never per element). 0 is treated as 1.
  /// (Namespace-scope rather than nested so it can carry a default
  /// member initializer AND serve as a default constructor argument —
  /// a nested class's NSDMIs are not usable in the enclosing class's
  /// default arguments.)
  std::size_t capacity = 1024;
  /// Pipeline flushes through rt::AsyncComm: each flush issues an async
  /// remote execute (paying only the issue carve-out) and its launch
  /// latency + wire time overlap with subsequent flushes; completions
  /// land at drain()/destruction-cancel. false = the PR 4 synchronous
  /// model (one blocking execute + wire charge per flush). Counters are
  /// identical in both modes.
  bool async = true;
  /// Per-destination in-flight window for async mode; 0 defers to the
  /// RCUA_COMM_WINDOW environment variable (see AsyncCommOptions).
  std::size_t window = 0;
};

class Aggregator {
 public:
  using Options = AggregatorOptions;

  struct Stats {
    std::uint64_t ops = 0;          ///< push() calls
    std::uint64_t local_ops = 0;    ///< ran immediately (dst == here)
    std::uint64_t flushes = 0;      ///< non-empty buffer sends
    std::uint64_t auto_flushes = 0; ///< flushes triggered by capacity
  };

  explicit Aggregator(Cluster& cluster, Options options = {})
      : cluster_(cluster),
        capacity_(options.capacity == 0 ? 1 : options.capacity),
        here_(cluster.here()),
        buffers_(cluster.num_locales()) {
    if (options.async) {
      async_.emplace(cluster.comm(), here_,
                     AsyncCommOptions{.window = options.window});
    }
  }

  /// Unflushed buffered ops are dropped (see class comment), and — via
  /// ~AsyncComm — every in-flight async flush is CANCELLED, never
  /// delivered: an exception unwinding out of the pinned section must
  /// not run completions against unpinned blocks or a destroyed caller
  /// buffer. Callers that want the ops must flush_all() + drain() inside
  /// the section.
  ~Aggregator() = default;
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Queues `op` (covering `weight` element accesses) for destination
  /// locale `dst`. Local destinations run inline; remote destinations
  /// buffer, auto-flushing once the destination's pending weight reaches
  /// the configured capacity.
  void push(std::uint32_t dst, std::size_t weight,
            std::function<void()> op) {
    ++stats_.ops;
    if (dst == here_) {
      ++stats_.local_ops;
      op();
      return;
    }
    Buffer& buf = buffers_[dst];
    buf.weight += weight;
    buf.ops.push_back(std::move(op));
    if (buf.weight >= capacity_) {
      ++stats_.auto_flushes;
      flush(dst);
    }
  }

  /// Ships destination `dst`'s buffer: one remote execution charge plus
  /// the per-element wire cost, then the buffered ops in push order.
  void flush(std::uint32_t dst) {
    Buffer& buf = buffers_[dst];
    if (buf.ops.empty()) return;
    RCUA_SCHED_POINT("agg.flush");
    ++stats_.flushes;
    // Swap out first so an op that pushes to the same destination (none
    // do today) cannot interleave with the buffer being cleared.
    std::vector<std::function<void()>> ops = std::move(buf.ops);
    buf.ops.clear();
    const std::size_t weight = buf.weight;
    buf.weight = 0;
    if (async_) {
      // Pipelined: the execute's launch latency and per-element wire
      // time live in the channel model (overlapping with later flushes)
      // instead of being charged up front; the buffered ops run at the
      // completion, still in push order (per-destination delivery is
      // FIFO in issue order).
      async_->execute(dst, weight, [ops = std::move(ops)]() mutable {
        for (auto& op : ops) op();
      });
      return;
    }
    cluster_.comm().record_execute(here_, dst);
    sim::charge(sim::CostModel::get().bulk_copy_ns_per_elem *
                static_cast<double>(weight));
    for (auto& op : ops) op();
  }

  /// Flushes every destination with pending operations.
  void flush_all() {
    for (std::uint32_t dst = 0;
         dst < static_cast<std::uint32_t>(buffers_.size()); ++dst) {
      flush(dst);
    }
  }

  /// Retires every in-flight async flush completion (no-op in sync mode
  /// or when nothing is pending). MUST be called inside the read-side
  /// section that pins the memory the buffered ops touch — the §10
  /// completion-drain rule; RCUArray::bulk_visit is the reference
  /// caller.
  void drain() {
    if (async_) async_->drain();
  }

  [[nodiscard]] std::size_t pending_weight(std::uint32_t dst) const {
    return buffers_[dst].weight;
  }
  [[nodiscard]] std::size_t pending_destinations() const {
    std::size_t n = 0;
    for (const Buffer& b : buffers_) n += b.ops.empty() ? 0 : 1;
    return n;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// The async session (nullptr in sync mode) — window/in-flight/stat
  /// observability for tests.
  [[nodiscard]] const AsyncComm* async_comm() const noexcept {
    return async_ ? &*async_ : nullptr;
  }

 private:
  struct Buffer {
    std::vector<std::function<void()>> ops;
    std::size_t weight = 0;
  };

  Cluster& cluster_;
  std::size_t capacity_;
  std::uint32_t here_;
  std::vector<Buffer> buffers_;
  std::optional<AsyncComm> async_;
  Stats stats_;
};

}  // namespace rcua::rt
