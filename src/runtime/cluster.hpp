#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/privatization.hpp"
#include "runtime/task_pool.hpp"

namespace rcua::rt {

/// One simulated node: identity plus allocation accounting. All memory is
/// of course in one address space; the owner tag is what drives the
/// communication model and the locality assertions in tests.
class Locale {
 public:
  explicit Locale(std::uint32_t id) noexcept : id_(id) {}
  Locale(const Locale&) = delete;
  Locale& operator=(const Locale&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  void note_alloc(std::size_t bytes) noexcept {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_free(std::size_t bytes) noexcept {
    frees_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return allocs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frees() const noexcept {
    return frees_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_live() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t id_;
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

struct ClusterConfig {
  std::uint32_t num_locales = 4;
  std::uint32_t workers_per_locale = 2;
  std::uint32_t max_pids = PrivatizationRegistry::kDefaultMaxPids;
};

class FaultPlan;

/// The simulated cluster: the substrate standing in for Chapel's multi-
/// locale execution. Owns the locales, the communication layer, the
/// privatization registry and the tasking layer, and provides the
/// Chapel-shaped control constructs the paper's Algorithm 3 uses:
/// `on` (run on a locale), `coforall_locales` (one task per locale, join),
/// and `coforall_tasks` (a task team per locale, join).
class Cluster {
 public:
  /// Throws std::invalid_argument on a degenerate config
  /// (num_locales == 0 or workers_per_locale == 0).
  explicit Cluster(ClusterConfig config);
  ~Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::uint32_t num_locales() const noexcept {
    return static_cast<std::uint32_t>(locales_.size());
  }
  [[nodiscard]] Locale& locale(std::uint32_t id) noexcept {
    return *locales_[id];
  }
  [[nodiscard]] CommLayer& comm() noexcept { return comm_; }
  [[nodiscard]] PrivatizationRegistry& privatization() noexcept {
    return priv_;
  }
  [[nodiscard]] TaskPool& pool() noexcept { return *pool_; }

  /// The locale the calling task runs on — locale 0 for threads outside
  /// this cluster (the "launcher" runs on node 0, as in Chapel).
  [[nodiscard]] std::uint32_t here() const noexcept;

  /// Runs `fn` on `locale` and waits. Runs inline when the caller is
  /// already there (Chapel's `on` is a no-op for the current locale);
  /// otherwise charges a remote execution and dispatches to the pool.
  void on(std::uint32_t locale, const std::function<void()>& fn);

  /// Runs `fn(locale_id)` concurrently on every locale and waits. The
  /// initiator's virtual clock advances by the fan-out cost plus the
  /// longest body (each body runs under its own clock when the initiator
  /// is being simulated).
  void coforall_locales(const std::function<void(std::uint32_t)>& fn);

  /// Runs `fn(locale_id, task_id)` for task_id in [0, tasks_per_locale)
  /// on every locale, and waits.
  void coforall_tasks(std::uint32_t tasks_per_locale,
                      const std::function<void(std::uint32_t, std::uint32_t)>& fn);

  // -- Chaos injection ---------------------------------------------------

  /// Installs a fault plan consulted by the runtime's chaos hooks (the
  /// comm layer, the task pool, and RCUArray's read/replication paths);
  /// nullptr clears. Pool workers consult the plan between tasks, so the
  /// plan must outlive the Cluster (whose destructor joins them):
  /// clearing is a plain pointer store and does NOT wait for in-flight
  /// consultations. Declare the plan before the Cluster.
  void set_fault_plan(FaultPlan* plan) noexcept;

  [[nodiscard]] FaultPlan* fault_plan() const noexcept {
    return fault_plan_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::unique_ptr<Locale>> locales_;
  CommLayer comm_;
  PrivatizationRegistry priv_;
  std::unique_ptr<TaskPool> pool_;
  std::atomic<FaultPlan*> fault_plan_{nullptr};
};

}  // namespace rcua::rt
