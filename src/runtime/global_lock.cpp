#include "runtime/global_lock.hpp"

#include "runtime/cluster.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rcua::rt {

GlobalLock::GlobalLock(Cluster& cluster, std::uint32_t owner_locale)
    : cluster_(cluster), owner_locale_(owner_locale) {}

void GlobalLock::charge_acquire() {
  const auto& m = sim::CostModel::get();
  const bool remote = cluster_.here() != owner_locale_;
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (remote) remote_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  // Queue for the lock word: a remote acquirer's handoff includes the
  // network hop, so a mostly-remote contender mix degrades service rate —
  // the SyncArray curve of Figure 2a/2b.
  const double service =
      m.lock_handoff_ns + (remote ? m.remote_stream_ns : 0.0);
  word_.use_owned(service, m.atomic_rmw_ns);
}

void GlobalLock::lock() {
  charge_acquire();
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active()) {
    testing::sched_await("global_lock.acquire", [this] {
      return !sched_gate_.load(std::memory_order_relaxed);
    });
    sched_gate_.store(true, std::memory_order_relaxed);
  }
#endif
  mu_.lock();
}

bool GlobalLock::try_lock() {
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active() &&
      sched_gate_.load(std::memory_order_relaxed)) {
    return false;
  }
#endif
  if (!mu_.try_lock()) return false;
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active()) {
    sched_gate_.store(true, std::memory_order_relaxed);
  }
#endif
  charge_acquire();
  return true;
}

void GlobalLock::unlock() {
  // The critical section occupied the lock until now; queued acquirers
  // start after it.
  if (sim::enabled()) word_.extend_until(sim::now_v());
  mu_.unlock();
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active()) {
    sched_gate_.store(false, std::memory_order_relaxed);
  }
#endif
}

}  // namespace rcua::rt
