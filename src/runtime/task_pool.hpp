#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rcua::rt {

class Cluster;

/// The tasking layer: a fixed team of worker threads per locale, in the
/// spirit of Chapel's qthreads shim. Tasks are arbitrary callables bound
/// to a locale; workers run with that locale's TaskContext so placement-
/// sensitive code (privatization, comm counting) behaves as if the task
/// were on that node.
///
/// Idle workers *park* in the thread registry (flushing their QSBR defer
/// lists and leaving every safe-epoch minimum), exactly the paper's
/// park/unpark support, and unpark before running the next task.
///
/// Oversubscription guard: if a task is submitted to a locale with no
/// idle worker, the pool runs it on a temporary thread instead of
/// queueing, so nested coforalls (a resize inside a read workload) can
/// never deadlock the fixed team.
class TaskPool {
 public:
  using Task = std::function<void()>;

  /// Join handle for a batch of tasks.
  class Group {
   public:
    void add(std::size_t n = 1);
    void finish();
    void wait();

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
  };

  TaskPool(Cluster& cluster, std::uint32_t num_locales,
           std::uint32_t workers_per_locale);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Submits `task` to run on `locale`. If `group` is non-null it must
  /// have been add()ed for this task; the pool calls finish() after the
  /// task returns (even if it throws — exceptions terminate, by design:
  /// tasks are internal and must not throw).
  void submit(std::uint32_t locale, Group* group, Task task);

  [[nodiscard]] std::uint32_t num_locales() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }
  [[nodiscard]] std::uint32_t workers_per_locale() const noexcept {
    return workers_per_locale_;
  }
  /// Currently idle workers on `locale` (approximate, racy by nature).
  [[nodiscard]] std::uint32_t idle_workers(std::uint32_t locale) const noexcept;

  /// Total tasks ever run on temporary overflow threads (observability).
  [[nodiscard]] std::uint64_t overflow_tasks() const noexcept {
    return overflow_tasks_.load(std::memory_order_relaxed);
  }

  /// Workers killed by an injected kKillWorker fault (chaos layer). A
  /// killed worker hands its queued tasks to overflow threads before
  /// exiting, so submitted work always completes — the pool degrades to
  /// overflow-thread execution rather than hanging a Group::wait.
  [[nodiscard]] std::uint64_t killed_workers() const noexcept {
    return killed_workers_.load(std::memory_order_relaxed);
  }

 private:
  struct LocaleQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> tasks;
    std::atomic<std::uint32_t> idle{0};
    bool stop = false;
  };

  void worker_main(std::uint32_t locale, std::uint32_t worker_id);
  void run_overflow(std::uint32_t locale, Task task);

  Cluster& cluster_;
  std::uint32_t workers_per_locale_;
  std::vector<std::unique_ptr<LocaleQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> overflow_tasks_{0};
  std::atomic<std::uint64_t> killed_workers_{0};
  // Overflow threads are detached-with-join-tracking: each registers here
  // and the destructor waits for all of them.
  std::mutex overflow_mu_;
  std::condition_variable overflow_cv_;
  std::size_t overflow_live_ = 0;
};

}  // namespace rcua::rt
