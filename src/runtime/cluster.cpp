#include "runtime/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/fault_plan.hpp"
#include "runtime/this_task.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua::rt {

namespace {
/// Rejects degenerate configs before any member construction: a
/// zero-locale or zero-worker cluster would deadlock the first coforall
/// instead of failing with a diagnosable error.
const ClusterConfig& validated(const ClusterConfig& config) {
  if (config.num_locales == 0) {
    throw std::invalid_argument(
        "ClusterConfig: num_locales == 0 (a cluster needs at least one "
        "locale)");
  }
  if (config.workers_per_locale == 0) {
    throw std::invalid_argument(
        "ClusterConfig: workers_per_locale == 0 (each locale needs at "
        "least one worker)");
  }
  if (config.max_pids == 0) {
    throw std::invalid_argument(
        "ClusterConfig: max_pids == 0 (privatization needs PID slots)");
  }
  return config;
}
}  // namespace

Cluster::Cluster(ClusterConfig config)
    : comm_(validated(config).num_locales),
      priv_(config.num_locales, config.max_pids) {
  locales_.reserve(config.num_locales);
  for (std::uint32_t l = 0; l < config.num_locales; ++l) {
    locales_.push_back(std::make_unique<Locale>(l));
  }
  pool_ = std::make_unique<TaskPool>(*this, config.num_locales,
                                     config.workers_per_locale);
}

void Cluster::set_fault_plan(FaultPlan* plan) noexcept {
  fault_plan_.store(plan, std::memory_order_release);
  comm_.set_fault_plan(plan);
}

std::uint32_t Cluster::here() const noexcept {
  const TaskContext& ctx = this_task();
  return ctx.cluster == this ? ctx.locale_id : 0;
}

void Cluster::on(std::uint32_t locale, const std::function<void()>& fn) {
  const TaskContext& ctx = this_task();
  if (ctx.cluster == this && ctx.locale_id == locale) {
    fn();  // Chapel: `on here` runs in place.
    return;
  }
  comm_.record_execute(here(), locale);
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  // Under the deterministic scheduler the TaskPool's worker threads are
  // invisible scheduling units; run the body as a child scheduler task so
  // interleavings with it are explored (and so the pool can't deadlock
  // against paused tasks).
  if (testing::sched_task_active()) {
    testing::sched_fork_join(1, [&](std::size_t) {
      LocaleScope scope(*this, locale);
      fn();
    });
    return;
  }
#endif
  const bool simulated = sim::enabled();
  sim::TaskClock body_clock;
  TaskPool::Group group;
  group.add(1);
  pool_->submit(locale, &group, [&] {
    if (simulated) {
      sim::ClockScope scope(body_clock);
      fn();
    } else {
      fn();
    }
  });
  group.wait();
  if (simulated) sim::charge(static_cast<double>(body_clock.vtime_ns));
}

void Cluster::coforall_locales(const std::function<void(std::uint32_t)>& fn) {
  const std::uint32_t n = num_locales();
  const std::uint32_t src = here();
  const bool simulated = sim::enabled();
  const auto& m = sim::CostModel::get();

#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active()) {
    for (std::uint32_t l = 0; l < n; ++l) comm_.record_execute(src, l);
    testing::sched_fork_join(n, [&](std::size_t l) {
      LocaleScope scope(*this, static_cast<std::uint32_t>(l));
      fn(static_cast<std::uint32_t>(l));
    });
    return;
  }
#endif

  std::vector<sim::TaskClock> clocks(simulated ? n : 0);
  // Pipelined fan-out: each remote launch charges only the CPU-side
  // issue carve-out at the initiator; the launch latency remainder
  // (remote_execute_ns - issue, plus any kSlowRemote delay) overlaps
  // across branches and delays each branch's start, so the join below
  // folds it into the longest-branch term instead of summing it.
  std::vector<std::uint64_t> launch_tail(n, 0);
  TaskPool::Group group;
  group.add(n);
  for (std::uint32_t l = 0; l < n; ++l) {
    sim::charge(m.task_spawn_ns);
    launch_tail[l] = comm_.issue_execute(src, l);
    pool_->submit(l, &group, [&, l] {
      if (simulated) {
        sim::ClockScope scope(clocks[l]);
        fn(l);
      } else {
        fn(l);
      }
    });
  }
  group.wait();
  if (simulated) {
    std::uint64_t longest = 0;
    for (std::uint32_t l = 0; l < n; ++l) {
      longest = std::max(longest, launch_tail[l] + clocks[l].vtime_ns);
    }
    sim::charge(static_cast<double>(longest));
  }
}

void Cluster::coforall_tasks(
    std::uint32_t tasks_per_locale,
    const std::function<void(std::uint32_t, std::uint32_t)>& fn) {
  const std::uint32_t n = num_locales();
  const std::uint32_t src = here();
  const bool simulated = sim::enabled();
  const auto& m = sim::CostModel::get();
  const std::size_t total =
      static_cast<std::size_t>(n) * tasks_per_locale;

#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active()) {
    for (std::uint32_t l = 0; l < n; ++l) comm_.record_execute(src, l);
    testing::sched_fork_join(total, [&](std::size_t slot) {
      const auto l = static_cast<std::uint32_t>(slot / tasks_per_locale);
      const auto t = static_cast<std::uint32_t>(slot % tasks_per_locale);
      LocaleScope scope(*this, l);
      fn(l, t);
    });
    return;
  }
#endif

  std::vector<sim::TaskClock> clocks(simulated ? total : 0);
  TaskPool::Group group;
  group.add(total);
  // Fan-out model: one pipelined remote launch per locale (the initiator
  // pays only the issue carve-out each; the launch remainders overlap),
  // then each locale spawns its own team in parallel — so the initiator
  // pays one locale's worth of task-spawn cost, not the sum.
  std::vector<std::uint64_t> launch_tail(n, 0);
  sim::charge(m.task_spawn_ns * tasks_per_locale);
  for (std::uint32_t l = 0; l < n; ++l) {
    launch_tail[l] = comm_.issue_execute(src, l);
    for (std::uint32_t t = 0; t < tasks_per_locale; ++t) {
      const std::size_t slot = static_cast<std::size_t>(l) * tasks_per_locale + t;
      pool_->submit(l, &group, [&, l, t, slot] {
        if (simulated) {
          sim::ClockScope scope(clocks[slot]);
          fn(l, t);
        } else {
          fn(l, t);
        }
      });
    }
  }
  group.wait();
  if (simulated) {
    std::uint64_t longest = 0;
    for (std::size_t slot = 0; slot < total; ++slot) {
      const auto l = static_cast<std::uint32_t>(slot / tasks_per_locale);
      longest = std::max(longest, launch_tail[l] + clocks[slot].vtime_ns);
    }
    sim::charge(static_cast<double>(longest));
  }
}

}  // namespace rcua::rt
