#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace rcua::rt {

class CommLayer;

/// Per-locale, capacity-bounded cache of REMOTE block contents (the
/// caching lever of the ROADMAP's four scaling levers; locale-local
/// caching of remote global-view state per Dewan & Jenkins,
/// arXiv:2112.00068). Entries are whole-block byte copies keyed by
/// (array id, block index) and tagged with two coherence stamps sampled
/// at fill time under the filler's pinned snapshot:
///
///  * the snapshot VERSION pinned when the fill happened — any resize
///    publishes a new version, so an entry tagged older than the pinned
///    version is treated as a miss and lazily evicted (a resize_remove +
///    resize_add may have replaced the block behind the index);
///  * the block's write GENERATION — writers bump it (release) after
///    their store lands, so an entry holding a pre-write value always
///    carries a pre-write generation and the compare invalidates it.
///
/// Write-through + self-invalidate: no invalidation broadcast ever
/// happens, so the deterministic comm counters stay an exact function of
/// the workload (DESIGN.md §11 has the full coherence argument).
///
/// Thread safety: one instance is shared by every task on its locale; all
/// operations take an internal lock. lookup() hands back SHARED ownership
/// of the entry bytes, so a concurrent eviction can never free a copy out
/// from under a reader serving from it. Capacity 0 disables the cache
/// (enabled() == false); callers must not consult a disabled cache, which
/// keeps the cache-off access path bit-identical to the uncached one.
///
/// The cache never touches Block/Snapshot types: callers copy element
/// data in and out (with whatever per-element atomicity their T needs)
/// and pass the tags in. Virtual-time charging also stays with the
/// caller, next to its other touch sites.
class BlockCache {
 public:
  /// Counters, all guarded by the cache lock. The byte ledger satisfies
  ///   inserted_bytes == evicted_bytes + bytes_used()
  /// at any quiescent point: every entry drop — capacity eviction, lazy
  /// staleness eviction, or resize invalidation — is accounted as an
  /// eviction.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserted_bytes = 0;
    std::uint64_t evicted_bytes = 0;
  };

  /// `capacity_bytes == 0` disables the cache. Counters mirror into
  /// `comm`'s per-locale CommStats (cache_hits/misses/fills/evictions).
  BlockCache(CommLayer& comm, std::uint32_t locale,
             std::size_t capacity_bytes);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// RCUA_CACHE_CAPACITY_BYTES (default 0 = off).
  [[nodiscard]] static std::size_t capacity_from_env() noexcept;

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }

  /// Returns the entry's bytes when (array_id, block_index) is present
  /// AND its tags match the caller's pinned snapshot version and the
  /// block's current write generation; nullptr otherwise. A tag mismatch
  /// lazily evicts the stale entry. Counts one hit or one miss.
  [[nodiscard]] std::shared_ptr<const std::byte[]> lookup(
      std::uint64_t array_id, std::uint64_t block_index,
      std::uint64_t pinned_version, std::uint64_t generation);

  /// Inserts a freshly filled whole-block copy under the filler's pinned
  /// version and the generation sampled BEFORE the copy. Evicts LRU
  /// entries until the copy fits; a copy larger than the whole cache is
  /// dropped without evicting anything. Entries only ever appear here,
  /// complete — a fill that dies mid-flight (exception unwind, cancelled
  /// async op) simply never inserts, so no partial-block entry can exist.
  void insert(std::uint64_t array_id, std::uint64_t block_index,
              std::uint64_t version, std::uint64_t generation,
              std::shared_ptr<const std::byte[]> data, std::size_t bytes);

  /// Counts one block fill (the remote fetch itself is issued and charged
  /// by the caller through AsyncComm).
  void note_fill();

  /// Drops every entry of `array_id` with block_index >= first_block.
  /// Called by resize_remove BEFORE the dropped blocks are freed: the
  /// eviction interlock that extends the drain-before-release rule to
  /// cached copies (DESIGN.md §11). Returns entries dropped.
  std::size_t invalidate_tail(std::uint64_t array_id,
                              std::uint64_t first_block);

  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] Stats stats() const;

 private:
  struct Key {
    std::uint64_t array_id;
    std::uint64_t block_index;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // splitmix-style combine; good enough for a per-locale map.
      std::uint64_t x = k.array_id * 0x9E3779B97F4A7C15ull ^ k.block_index;
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Entry {
    std::uint64_t version;
    std::uint64_t generation;
    std::size_t bytes;
    std::shared_ptr<const std::byte[]> data;
    std::list<Key>::iterator lru_it;  ///< position in lru_ (front = MRU)
  };

  /// Drops `it`'s entry, accounting it as one eviction. Lock held.
  void evict_locked(std::unordered_map<Key, Entry, KeyHash>::iterator it);

  CommLayer& comm_;
  std::uint32_t locale_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::list<Key> lru_;
  std::size_t used_ = 0;
  Stats stats_;
};

}  // namespace rcua::rt
