#include "runtime/comm.hpp"

#include "runtime/fault_plan.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rcua::rt {

CommLayer::CommLayer(std::uint32_t num_locales) : stats_(num_locales) {}

void CommLayer::record_access(std::uint32_t src, std::uint32_t dst,
                              bool is_write) noexcept {
  if (src == dst) return;
  CommStats& s = stats_[src].value;
  if (is_write) {
    s.puts.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.gets.fetch_add(1, std::memory_order_relaxed);
  }
}

void CommLayer::record_execute(std::uint32_t src, std::uint32_t dst) noexcept {
  if (src == dst) return;
  stats_[src].value.executes.fetch_add(1, std::memory_order_relaxed);
  sim::charge(sim::CostModel::get().remote_execute_ns);
  if (FaultPlan* plan = fault_plan_.load(std::memory_order_acquire)) {
    std::uint64_t delay = 0;
    if (plan->fires(FaultPlan::Action::kSlowRemote, dst, &delay) &&
        delay != 0) {
      sim::charge(static_cast<double>(delay));
    }
  }
}

std::uint64_t CommLayer::gets(std::uint32_t locale) const noexcept {
  return stats_[locale].value.gets.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::puts(std::uint32_t locale) const noexcept {
  return stats_[locale].value.puts.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::executes(std::uint32_t locale) const noexcept {
  return stats_[locale].value.executes.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::total_gets() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += gets(l);
  return n;
}

std::uint64_t CommLayer::total_puts() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += puts(l);
  return n;
}

std::uint64_t CommLayer::total_executes() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += executes(l);
  return n;
}

void CommLayer::reset() noexcept {
  for (auto& s : stats_) s.value.reset();
}

}  // namespace rcua::rt
