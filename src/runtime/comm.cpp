#include "runtime/comm.hpp"

#include <algorithm>

#include "runtime/fault_plan.hpp"
#include "testing/sched_point.hpp"
#include "util/env.hpp"

namespace rcua::rt {

namespace {
/// Default per-destination in-flight window when neither the ctor nor
/// RCUA_COMM_WINDOW picks one. Large enough that a whole-array scan's
/// flushes to one destination pipeline freely; small enough to model a
/// real NIC's bounded injection queue.
constexpr std::uint64_t kDefaultWindow = 32;
}  // namespace

CommLayer::CommLayer(std::uint32_t num_locales) : stats_(num_locales) {}

void CommLayer::record_access(std::uint32_t src, std::uint32_t dst,
                              bool is_write) noexcept {
  if (src == dst) return;
  CommStats& s = stats_[src].value;
  if (is_write) {
    s.puts.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.gets.fetch_add(1, std::memory_order_relaxed);
  }
}

void CommLayer::record_execute(std::uint32_t src, std::uint32_t dst) noexcept {
  if (src == dst) return;
  stats_[src].value.executes.fetch_add(1, std::memory_order_relaxed);
  sim::charge(sim::CostModel::get().remote_execute_ns);
  if (FaultPlan* plan = fault_plan_.load(std::memory_order_acquire)) {
    std::uint64_t delay = 0;
    if (plan->fires(FaultPlan::Action::kSlowRemote, dst, &delay) &&
        delay != 0) {
      sim::charge(static_cast<double>(delay));
    }
  }
}

void CommLayer::record_execute_async(std::uint32_t src,
                                     std::uint32_t dst) noexcept {
  if (src == dst) return;
  stats_[src].value.executes.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t CommLayer::issue_execute(std::uint32_t src,
                                       std::uint32_t dst) noexcept {
  if (src == dst) return 0;
  stats_[src].value.executes.fetch_add(1, std::memory_order_relaxed);
  const auto& m = sim::CostModel::get();
  const double issue = std::min(m.async_issue_ns, m.remote_execute_ns);
  sim::charge(issue);
  return static_cast<std::uint64_t>(m.remote_execute_ns - issue) +
         slow_remote_delay(dst);
}

std::uint64_t CommLayer::slow_remote_delay(std::uint32_t dst) noexcept {
  if (FaultPlan* plan = fault_plan_.load(std::memory_order_acquire)) {
    std::uint64_t delay = 0;
    if (plan->fires(FaultPlan::Action::kSlowRemote, dst, &delay)) {
      return delay;
    }
  }
  return 0;
}

void CommLayer::note_async_issued(std::uint32_t locale) noexcept {
  stats_[locale].value.async_issued.fetch_add(1, std::memory_order_relaxed);
}

void CommLayer::note_async_completed(std::uint32_t locale) noexcept {
  stats_[locale].value.async_completed.fetch_add(1, std::memory_order_relaxed);
}

void CommLayer::note_async_cancelled(std::uint32_t locale) noexcept {
  stats_[locale].value.async_cancelled.fetch_add(1, std::memory_order_relaxed);
}

void CommLayer::note_async_inflight(std::uint32_t locale,
                                    std::size_t depth) noexcept {
  auto& hwm = stats_[locale].value.async_max_inflight;
  std::uint64_t cur = hwm.load(std::memory_order_relaxed);
  while (cur < depth &&
         !hwm.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
  }
}

void CommLayer::note_cache_hit(std::uint32_t locale) noexcept {
  stats_[locale].value.cache_hits.fetch_add(1, std::memory_order_relaxed);
}

void CommLayer::note_cache_miss(std::uint32_t locale) noexcept {
  stats_[locale].value.cache_misses.fetch_add(1, std::memory_order_relaxed);
}

void CommLayer::note_cache_fill(std::uint32_t locale) noexcept {
  stats_[locale].value.cache_fills.fetch_add(1, std::memory_order_relaxed);
}

void CommLayer::note_cache_evictions(std::uint32_t locale,
                                     std::uint64_t n) noexcept {
  if (n == 0) return;
  stats_[locale].value.cache_evictions.fetch_add(n,
                                                 std::memory_order_relaxed);
}

std::uint64_t CommLayer::gets(std::uint32_t locale) const noexcept {
  return stats_[locale].value.gets.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::puts(std::uint32_t locale) const noexcept {
  return stats_[locale].value.puts.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::executes(std::uint32_t locale) const noexcept {
  return stats_[locale].value.executes.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::async_issued(std::uint32_t locale) const noexcept {
  return stats_[locale].value.async_issued.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::async_completed(std::uint32_t locale) const noexcept {
  return stats_[locale].value.async_completed.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::async_cancelled(std::uint32_t locale) const noexcept {
  return stats_[locale].value.async_cancelled.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::async_max_inflight(
    std::uint32_t locale) const noexcept {
  return stats_[locale].value.async_max_inflight.load(
      std::memory_order_relaxed);
}

std::uint64_t CommLayer::cache_hits(std::uint32_t locale) const noexcept {
  return stats_[locale].value.cache_hits.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::cache_misses(std::uint32_t locale) const noexcept {
  return stats_[locale].value.cache_misses.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::cache_fills(std::uint32_t locale) const noexcept {
  return stats_[locale].value.cache_fills.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::cache_evictions(std::uint32_t locale) const noexcept {
  return stats_[locale].value.cache_evictions.load(std::memory_order_relaxed);
}

std::uint64_t CommLayer::total_gets() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += gets(l);
  return n;
}

std::uint64_t CommLayer::total_puts() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += puts(l);
  return n;
}

std::uint64_t CommLayer::total_executes() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += executes(l);
  return n;
}

std::uint64_t CommLayer::total_async_issued() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += async_issued(l);
  return n;
}

std::uint64_t CommLayer::total_async_completed() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += async_completed(l);
  return n;
}

std::uint64_t CommLayer::total_async_cancelled() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += async_cancelled(l);
  return n;
}

std::uint64_t CommLayer::max_async_inflight() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) {
    n = std::max(n, async_max_inflight(l));
  }
  return n;
}

std::uint64_t CommLayer::total_cache_hits() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += cache_hits(l);
  return n;
}

std::uint64_t CommLayer::total_cache_misses() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += cache_misses(l);
  return n;
}

std::uint64_t CommLayer::total_cache_fills() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += cache_fills(l);
  return n;
}

std::uint64_t CommLayer::total_cache_evictions() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t l = 0; l < num_locales(); ++l) n += cache_evictions(l);
  return n;
}

void CommLayer::reset() noexcept {
  for (auto& s : stats_) s.value.reset();
}

AsyncComm::AsyncComm(CommLayer& comm, std::uint32_t here, Options options)
    : comm_(comm),
      here_(here),
      window_(options.window != 0
                  ? options.window
                  : static_cast<std::size_t>(
                        util::env_u64("RCUA_COMM_WINDOW", kDefaultWindow))),
      channels_(comm.num_locales()) {
  if (window_ == 0) window_ = 1;
}

AsyncComm::~AsyncComm() { cancel_pending(); }

void AsyncComm::issue(std::uint32_t dst, std::size_t weight,
                      double latency_ns,
                      std::shared_ptr<detail::AsyncOpCore> core,
                      std::function<void()> deliver) {
  Channel& ch = channels_[dst];
  // Bounded window: once `window_` ops are outstanding to this
  // destination, the issuer stalls — i.e. retires the oldest completion
  // first. Safe here because issuing happens inside whatever read-side
  // section pins the completion's targets (DESIGN.md §10).
  while (ch.inflight.size() >= window_) retire_head(ch);
  RCUA_SCHED_POINT("comm.async.issue");

  const auto& m = sim::CostModel::get();
  // The issue cost is a carve-out of the op's latency, not an addition:
  // at window=1 (or a lone op) issue + remainder sums to exactly the
  // synchronous charge, so async mode can never be slower (§10).
  const double issue_ns = std::min(m.async_issue_ns, latency_ns);
  sim::charge(issue_ns);
  // Consult the fault plan exactly once per op (rules are stateful).
  const std::uint64_t fault_delay = comm_.slow_remote_delay(dst);

  const std::uint64_t send_start = std::max(sim::now_v(), ch.wire_ready);
  const double wire_ns =
      m.bulk_copy_ns_per_elem * static_cast<double>(weight);
  ch.wire_ready = send_start + static_cast<std::uint64_t>(wire_ns);

  core->dst = dst;
  core->session = this;
  core->completion_vtime = ch.wire_ready +
                           static_cast<std::uint64_t>(latency_ns - issue_ns) +
                           fault_delay;

  ch.inflight.push_back(Pending{core, std::move(deliver)});
  issue_order_.push_back(std::move(core));
  ++stats_.issued;
  comm_.note_async_issued(here_);
  const std::size_t depth = ch.inflight.size();
  stats_.max_inflight = std::max(stats_.max_inflight, depth);
  comm_.note_async_inflight(here_, depth);
}

void AsyncComm::retire_head(Channel& ch) {
  Pending p = std::move(ch.inflight.front());
  ch.inflight.pop_front();
  RCUA_SCHED_POINT("comm.async.complete");
  // Mark completed BEFORE delivering: if the closure throws, the op
  // still counts as delivered exactly once (never re-run), and the
  // session destructor cancels — not delivers — whatever remains.
  p.core->completed = true;
  ++stats_.completed;
  comm_.note_async_completed(here_);
  if (!p.deliver) {
    sim::advance_to(p.core->completion_vtime);
    return;
  }
  if (!sim::enabled()) {
    p.deliver();
    return;
  }
  // The closure executes on the DESTINATION's timeline: measure its own
  // charges under a sub-clock and chain them per destination (one
  // remote locale processes its deliveries serially), so processing for
  // different destinations overlaps while the issuer only advances to
  // this op's processing-done time. With a single destination at
  // window=1 this degenerates to exactly the synchronous serialization.
  const std::uint64_t proc_start =
      std::max(p.core->completion_vtime, ch.proc_done);
  sim::TaskClock remote_clock;
  {
    sim::ClockScope scope(remote_clock);
    p.deliver();
  }
  ch.proc_done = proc_start + remote_clock.vtime_ns;
  sim::advance_to(ch.proc_done);
}

void AsyncComm::await(detail::AsyncOpCore& core) {
  Channel& ch = channels_[core.dst];
  while (!core.completed) {
    if (ch.inflight.empty()) {
      throw std::logic_error(
          "rt::AsyncComm: awaited op is neither completed nor in flight");
    }
    retire_head(ch);
  }
}

void AsyncComm::drain() {
  while (!issue_order_.empty()) {
    std::shared_ptr<detail::AsyncOpCore> core =
        std::move(issue_order_.front());
    issue_order_.pop_front();
    if (!core->completed && !core->cancelled) await(*core);
  }
}

std::size_t AsyncComm::cancel_pending() noexcept {
  std::size_t n = 0;
  for (Channel& ch : channels_) {
    for (Pending& p : ch.inflight) {
      p.core->cancelled = true;
      ++stats_.cancelled;
      comm_.note_async_cancelled(here_);
      ++n;
    }
    ch.inflight.clear();
  }
  issue_order_.clear();
  return n;
}

}  // namespace rcua::rt
