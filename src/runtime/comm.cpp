#include "runtime/comm.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/fault_plan.hpp"
#include "testing/sched_point.hpp"
#include "util/env.hpp"

namespace rcua::rt {

namespace {
/// Default per-destination in-flight window when neither the ctor nor
/// RCUA_COMM_WINDOW picks one. Large enough that a whole-array scan's
/// flushes to one destination pipeline freely; small enough to model a
/// real NIC's bounded injection queue.
constexpr std::uint64_t kDefaultWindow = 32;
}  // namespace

CommLayer::CommLayer(std::uint32_t num_locales)
    : num_locales_(num_locales),
      registry_(num_locales),
      gets_(registry_.counter("rcua.comm.gets")),
      puts_(registry_.counter("rcua.comm.puts")),
      executes_(registry_.counter("rcua.comm.executes")),
      async_issued_(registry_.counter("rcua.comm.async_issued")),
      async_completed_(registry_.counter("rcua.comm.async_completed")),
      async_cancelled_(registry_.counter("rcua.comm.async_cancelled")),
      async_max_inflight_(registry_.counter("rcua.comm.async_max_inflight",
                                            0, obs::Agg::kMax)),
      cache_hits_(registry_.counter("rcua.cache.hits")),
      cache_misses_(registry_.counter("rcua.cache.misses")),
      cache_fills_(registry_.counter("rcua.cache.fills")),
      cache_evictions_(registry_.counter("rcua.cache.evictions")) {}

void CommLayer::record_access(std::uint32_t src, std::uint32_t dst,
                              bool is_write) noexcept {
  if (src == dst) return;
  if (is_write) {
    puts_.add_at(src);
    obs::trace_instant("comm.put", "comm", dst);
  } else {
    gets_.add_at(src);
    obs::trace_instant("comm.get", "comm", dst);
  }
}

void CommLayer::record_execute(std::uint32_t src, std::uint32_t dst) noexcept {
  if (src == dst) return;
  executes_.add_at(src);
  obs::TraceSpan span("comm.execute", "comm", dst);
  sim::charge(sim::CostModel::get().remote_execute_ns);
  if (FaultPlan* plan = fault_plan_.load(std::memory_order_acquire)) {
    std::uint64_t delay = 0;
    if (plan->fires(FaultPlan::Action::kSlowRemote, dst, &delay) &&
        delay != 0) {
      sim::charge(static_cast<double>(delay));
    }
  }
}

void CommLayer::record_execute_async(std::uint32_t src,
                                     std::uint32_t dst) noexcept {
  if (src == dst) return;
  executes_.add_at(src);
}

std::uint64_t CommLayer::issue_execute(std::uint32_t src,
                                       std::uint32_t dst) noexcept {
  if (src == dst) return 0;
  executes_.add_at(src);
  obs::trace_instant("comm.execute_issue", "comm", dst);
  const auto& m = sim::CostModel::get();
  const double issue = std::min(m.async_issue_ns, m.remote_execute_ns);
  sim::charge(issue);
  return static_cast<std::uint64_t>(m.remote_execute_ns - issue) +
         slow_remote_delay(dst);
}

std::uint64_t CommLayer::slow_remote_delay(std::uint32_t dst) noexcept {
  if (FaultPlan* plan = fault_plan_.load(std::memory_order_acquire)) {
    std::uint64_t delay = 0;
    if (plan->fires(FaultPlan::Action::kSlowRemote, dst, &delay)) {
      return delay;
    }
  }
  return 0;
}

void CommLayer::note_async_issued(std::uint32_t locale) noexcept {
  async_issued_.add_at(locale);
}

void CommLayer::note_async_completed(std::uint32_t locale) noexcept {
  async_completed_.add_at(locale);
}

void CommLayer::note_async_cancelled(std::uint32_t locale) noexcept {
  async_cancelled_.add_at(locale);
}

void CommLayer::note_async_inflight(std::uint32_t locale,
                                    std::size_t depth) noexcept {
  async_max_inflight_.raise_at(locale, depth);
}

void CommLayer::note_cache_hit(std::uint32_t locale) noexcept {
  cache_hits_.add_at(locale);
  obs::trace_instant("cache.hit", "cache", locale);
}

void CommLayer::note_cache_miss(std::uint32_t locale) noexcept {
  cache_misses_.add_at(locale);
  obs::trace_instant("cache.miss", "cache", locale);
}

void CommLayer::note_cache_fill(std::uint32_t locale) noexcept {
  cache_fills_.add_at(locale);
  obs::trace_instant("cache.fill", "cache", locale);
}

void CommLayer::note_cache_evictions(std::uint32_t locale,
                                     std::uint64_t n) noexcept {
  if (n == 0) return;
  cache_evictions_.add_at(locale, n);
  obs::trace_instant("cache.evict", "cache", n);
}

CommStats CommLayer::stats_at(std::uint32_t locale) const noexcept {
  CommStats s;
  s.gets = gets(locale);
  s.puts = puts(locale);
  s.executes = executes(locale);
  s.async_issued = async_issued(locale);
  s.async_completed = async_completed(locale);
  s.async_cancelled = async_cancelled(locale);
  s.async_max_inflight = async_max_inflight(locale);
  s.cache_hits = cache_hits(locale);
  s.cache_misses = cache_misses(locale);
  s.cache_fills = cache_fills(locale);
  s.cache_evictions = cache_evictions(locale);
  return s;
}

AsyncComm::AsyncComm(CommLayer& comm, std::uint32_t here, Options options)
    : comm_(comm),
      here_(here),
      window_(options.window != 0
                  ? options.window
                  : static_cast<std::size_t>(
                        util::env_u64("RCUA_COMM_WINDOW", kDefaultWindow))),
      channels_(comm.num_locales()) {
  if (window_ == 0) window_ = 1;
}

AsyncComm::~AsyncComm() { cancel_pending(); }

void AsyncComm::issue(std::uint32_t dst, std::size_t weight,
                      double latency_ns,
                      std::shared_ptr<detail::AsyncOpCore> core,
                      std::function<void()> deliver) {
  Channel& ch = channels_[dst];
  // Bounded window: once `window_` ops are outstanding to this
  // destination, the issuer stalls — i.e. retires the oldest completion
  // first. Safe here because issuing happens inside whatever read-side
  // section pins the completion's targets (DESIGN.md §10).
  while (ch.inflight.size() >= window_) retire_head(ch);
  RCUA_SCHED_POINT("comm.async.issue");
  obs::trace_instant("comm.async.issue", "comm", dst);

  const auto& m = sim::CostModel::get();
  // The issue cost is a carve-out of the op's latency, not an addition:
  // at window=1 (or a lone op) issue + remainder sums to exactly the
  // synchronous charge, so async mode can never be slower (§10).
  const double issue_ns = std::min(m.async_issue_ns, latency_ns);
  sim::charge(issue_ns);
  // Consult the fault plan exactly once per op (rules are stateful).
  const std::uint64_t fault_delay = comm_.slow_remote_delay(dst);

  const std::uint64_t send_start = std::max(sim::now_v(), ch.wire_ready);
  const double wire_ns =
      m.bulk_copy_ns_per_elem * static_cast<double>(weight);
  ch.wire_ready = send_start + static_cast<std::uint64_t>(wire_ns);

  core->dst = dst;
  core->session = this;
  core->completion_vtime = ch.wire_ready +
                           static_cast<std::uint64_t>(latency_ns - issue_ns) +
                           fault_delay;

  ch.inflight.push_back(Pending{core, std::move(deliver)});
  issue_order_.push_back(std::move(core));
  ++stats_.issued;
  comm_.note_async_issued(here_);
  const std::size_t depth = ch.inflight.size();
  stats_.max_inflight = std::max(stats_.max_inflight, depth);
  comm_.note_async_inflight(here_, depth);
}

void AsyncComm::retire_head(Channel& ch) {
  Pending p = std::move(ch.inflight.front());
  ch.inflight.pop_front();
  RCUA_SCHED_POINT("comm.async.complete");
  obs::trace_instant("comm.async.complete", "comm", p.core->dst);
  // Mark completed BEFORE delivering: if the closure throws, the op
  // still counts as delivered exactly once (never re-run), and the
  // session destructor cancels — not delivers — whatever remains.
  p.core->completed = true;
  ++stats_.completed;
  comm_.note_async_completed(here_);
  if (!p.deliver) {
    sim::advance_to(p.core->completion_vtime);
    return;
  }
  if (!sim::enabled()) {
    p.deliver();
    return;
  }
  // The closure executes on the DESTINATION's timeline: measure its own
  // charges under a sub-clock and chain them per destination (one
  // remote locale processes its deliveries serially), so processing for
  // different destinations overlaps while the issuer only advances to
  // this op's processing-done time. With a single destination at
  // window=1 this degenerates to exactly the synchronous serialization.
  const std::uint64_t proc_start =
      std::max(p.core->completion_vtime, ch.proc_done);
  sim::TaskClock remote_clock;
  {
    sim::ClockScope scope(remote_clock);
    p.deliver();
  }
  ch.proc_done = proc_start + remote_clock.vtime_ns;
  sim::advance_to(ch.proc_done);
}

void AsyncComm::await(detail::AsyncOpCore& core) {
  Channel& ch = channels_[core.dst];
  while (!core.completed) {
    if (ch.inflight.empty()) {
      throw std::logic_error(
          "rt::AsyncComm: awaited op is neither completed nor in flight");
    }
    retire_head(ch);
  }
}

void AsyncComm::drain() {
  while (!issue_order_.empty()) {
    std::shared_ptr<detail::AsyncOpCore> core =
        std::move(issue_order_.front());
    issue_order_.pop_front();
    if (!core->completed && !core->cancelled) await(*core);
  }
}

std::size_t AsyncComm::cancel_pending() noexcept {
  std::size_t n = 0;
  for (Channel& ch : channels_) {
    for (Pending& p : ch.inflight) {
      p.core->cancelled = true;
      ++stats_.cancelled;
      comm_.note_async_cancelled(here_);
      ++n;
    }
    ch.inflight.clear();
  }
  issue_order_.clear();
  return n;
}

}  // namespace rcua::rt
