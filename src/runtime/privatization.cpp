#include "runtime/privatization.hpp"

#include <cstdio>
#include <cstdlib>

#include "testing/sched_point.hpp"

namespace rcua::rt {

PrivatizationRegistry::PrivatizationRegistry(std::uint32_t num_locales,
                                             std::uint32_t max_pids)
    : num_locales_(num_locales),
      max_pids_(max_pids),
      slots_(new std::atomic<void*>[static_cast<std::size_t>(num_locales) *
                                    max_pids]) {
  const std::size_t n = static_cast<std::size_t>(num_locales) * max_pids;
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].store(nullptr, std::memory_order_relaxed);
  }
}

int PrivatizationRegistry::create() {
  std::lock_guard<std::mutex> guard(mu_);
  int pid;
  if (!free_pids_.empty()) {
    pid = free_pids_.back();
    free_pids_.pop_back();
  } else if (next_pid_ < static_cast<int>(max_pids_)) {
    pid = next_pid_++;
  } else {
    std::fprintf(stderr, "rcua: privatization table exhausted (%u pids)\n",
                 max_pids_);
    std::abort();
  }
  ++live_;
  return pid;
}

void PrivatizationRegistry::set(int pid, std::uint32_t locale,
                                void* instance) noexcept {
  RCUA_SCHED_POINT("priv.set");
  slots_[slot_index(pid, locale)].store(instance, std::memory_order_release);
}

void PrivatizationRegistry::destroy(int pid) {
  for (std::uint32_t l = 0; l < num_locales_; ++l) {
    slots_[slot_index(pid, l)].store(nullptr, std::memory_order_release);
  }
  std::lock_guard<std::mutex> guard(mu_);
  free_pids_.push_back(pid);
  --live_;
}

std::uint32_t PrivatizationRegistry::live_pids() const noexcept {
  return live_;
}

}  // namespace rcua::rt
