#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/rng.hpp"
#include "platform/spinlock.hpp"

namespace rcua::rt {

/// Deterministic, seeded fault injection for the simulated cluster — the
/// chaos layer that proves the stall-tolerant reclamation actually
/// tolerates stalls. A plan is a set of rules; runtime hooks consult the
/// plan at well-defined sites (read-side critical sections, worker loop
/// tops, remote executes, privatization broadcasts) and a rule *fires*
/// on a chosen window of matching consultations:
///
///   fire_from  — 1-based consultation index where firing starts,
///   fire_count — how many consecutive consultations fire (UINT64_MAX =
///                forever),
///   probability — an extra seeded coin on top of the window (1.0 =
///                always), so stochastic chaos stays replayable per seed.
///
/// Consultation counting is per rule and only counts consultations whose
/// locale matches the rule's filter, so "kill the 3rd worker wake on
/// locale 1" is expressible and deterministic. Under the sched harness,
/// hooks consult in logical-task order, so seeds replay there too.
///
/// Thread-safe; hooks are wait-free except for a short spinlock hold.
class FaultPlan {
 public:
  static constexpr std::uint32_t kAnyLocale = UINT32_MAX;

  enum class Action : int {
    /// Stall a task mid-read-section (consulted by RCUArray's index
    /// path inside the EBR/QSBR critical window).
    kStallReader = 0,
    /// Kill a TaskPool worker: it drains its queue to overflow threads
    /// and exits, as if the underlying thread died.
    kKillWorker = 1,
    /// Slow a locale's remote executes: CommLayer::record_execute
    /// charges `delay_ns` of extra virtual time for matching targets.
    kSlowRemote = 2,
    /// Drop one locale's privatization broadcast step: RCUArray's
    /// resize replication skips that locale and must retry.
    kDropBroadcast = 3,
    /// Kill a locale mid-shard-migration: the migration's copy loop
    /// consults this rule (filtered on the DESTINATION locale) between
    /// block copies, and a fire means the destination died before the
    /// new mapping was published — the migration must roll back (free
    /// the unpublished replacement blocks, keep the old mapping) with
    /// no lost or duplicated elements (DESIGN.md §14).
    kKillLocale = 4,
  };
  static constexpr int kNumActions = 5;

  struct Rule {
    Action action = Action::kStallReader;
    /// Locale filter (kAnyLocale matches everywhere).
    std::uint32_t locale = kAnyLocale;
    std::uint64_t fire_from = 1;
    std::uint64_t fire_count = 1;
    double probability = 1.0;
    /// Stall/slowdown duration for kStallReader / kSlowRemote.
    std::uint64_t delay_ns = 0;
  };

  explicit FaultPlan(std::uint64_t seed = 0x0defacedULL) noexcept
      : rng_(seed) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  FaultPlan& add(const Rule& rule) {
    std::lock_guard<plat::Spinlock> guard(mu_);
    rules_.push_back(RuleState{rule, 0});
    return *this;
  }

  /// Consults every rule for `action` at `locale`; returns true when one
  /// fires. When `delay_ns` is non-null it receives the firing rule's
  /// delay (0 when none fired).
  bool fires(Action action, std::uint32_t locale,
             std::uint64_t* delay_ns = nullptr);

  /// Actuates a kStallReader fault for the calling task: when a rule
  /// fires, stalls for its delay — a bounded loop of schedule points
  /// under the deterministic scheduler, a real sleep plus a virtual-time
  /// charge otherwise. Call inside a read-side critical section.
  void stall_here(std::uint32_t locale);

  struct Stats {
    std::uint64_t consulted = 0;
    std::uint64_t fired[kNumActions] = {0, 0, 0, 0, 0};
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard<plat::Spinlock> guard(mu_);
    return stats_;
  }
  [[nodiscard]] std::uint64_t fired(Action action) const {
    std::lock_guard<plat::Spinlock> guard(mu_);
    return stats_.fired[static_cast<int>(action)];
  }

 private:
  struct RuleState {
    Rule rule;
    std::uint64_t hits;
  };

  mutable plat::Spinlock mu_;
  std::vector<RuleState> rules_;
  plat::Xoshiro256 rng_;
  Stats stats_;
};

}  // namespace rcua::rt
