#include "runtime/fault_plan.hpp"

#include <chrono>
#include <thread>

#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua::rt {

bool FaultPlan::fires(Action action, std::uint32_t locale,
                      std::uint64_t* delay_ns) {
  if (delay_ns != nullptr) *delay_ns = 0;
  std::lock_guard<plat::Spinlock> guard(mu_);
  ++stats_.consulted;
  bool fired = false;
  for (RuleState& rs : rules_) {
    const Rule& r = rs.rule;
    if (r.action != action) continue;
    if (r.locale != kAnyLocale && r.locale != locale) continue;
    const std::uint64_t hit = ++rs.hits;
    if (hit < r.fire_from) continue;
    if (r.fire_count != UINT64_MAX && hit >= r.fire_from + r.fire_count) {
      continue;
    }
    if (r.probability < 1.0) {
      // Seeded coin: deterministic per (seed, consultation order).
      if (rng_.next_double() >= r.probability) continue;
    }
    fired = true;
    if (delay_ns != nullptr && r.delay_ns != 0) *delay_ns = r.delay_ns;
  }
  if (fired) ++stats_.fired[static_cast<int>(action)];
  return fired;
}

void FaultPlan::stall_here(std::uint32_t locale) {
  std::uint64_t delay = 0;
  if (!fires(Action::kStallReader, locale, &delay)) return;
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active()) {
    // Deterministic stall: hand control to the scheduler a bounded
    // number of times so other tasks can interleave with the stalled
    // read section; wall clocks would break seed replay.
    for (int i = 0; i < 8; ++i) RCUA_SCHED_POINT("fault.stall_reader");
    sim::charge(static_cast<double>(delay));
    return;
  }
#endif
  if (delay != 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    sim::charge(static_cast<double>(delay));
  }
}

}  // namespace rcua::rt
