#include "runtime/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "testing/sched_point.hpp"

namespace rcua::rt {

namespace {

/// Liveness table: registry ids that still exist. A thread exiting after a
/// registry died must not touch that registry's records; the table (under
/// its mutex) makes the check race-free against registry destruction.
std::mutex& liveness_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<std::uint64_t>& live_registries() {
  static std::unordered_set<std::uint64_t> s;
  return s;
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// Per-thread cache of (registry id, record) pairs. On thread exit, parks
/// the thread's record in every still-live registry so it stops gating
/// safe-epoch minima.
struct RegistryCacheTls {
  struct Entry {
    std::uint64_t registry_id;
    ThreadRecord* record;
  };
  std::vector<Entry> entries;

  ThreadRecord* find(std::uint64_t id) const noexcept {
    for (const Entry& e : entries) {
      if (e.registry_id == id) return e.record;
    }
    return nullptr;
  }

  ~RegistryCacheTls() {
    std::lock_guard<std::mutex> guard(liveness_mutex());
    for (const Entry& e : entries) {
      if (live_registries().contains(e.registry_id)) {
        e.record->parked.store(true, std::memory_order_release);
      }
    }
  }
};

namespace {
thread_local RegistryCacheTls tl_cache;
}  // namespace

ThreadRegistry::ThreadRegistry() : id_(next_registry_id()) {
  for (auto& d : domains_) d.store(nullptr, std::memory_order_relaxed);
  std::lock_guard<std::mutex> guard(liveness_mutex());
  live_registries().insert(id_);
}

ThreadRegistry::~ThreadRegistry() {
  {
    std::lock_guard<std::mutex> guard(liveness_mutex());
    live_registries().erase(id_);
  }
  ThreadRecord* r = head_.exchange(nullptr, std::memory_order_acq_rel);
  while (r != nullptr) {
    ThreadRecord* next = r->next;
    for (auto& slot : r->slots) {
      reclaim::DeferList::reclaim_chain(slot.defer_list.pop_all());
    }
    delete r;
    r = next;
  }
}

ThreadRegistry& ThreadRegistry::global() {
  static ThreadRegistry* registry = new ThreadRegistry;  // immortal
  return *registry;
}

ThreadRecord& ThreadRegistry::local_record() {
  if (ThreadRecord* cached = tl_cache.find(id_)) return *cached;
  auto* r = new ThreadRecord;
  ThreadRecord* old_head = head_.load(std::memory_order_relaxed);
  do {
    r->next = old_head;
  } while (!head_.compare_exchange_weak(old_head, r,
                                        std::memory_order_release,
                                        std::memory_order_relaxed));
  count_.fetch_add(1, std::memory_order_relaxed);
  tl_cache.entries.push_back({id_, r});
  return *r;
}

std::uint64_t ThreadRegistry::live_record_count() const noexcept {
  std::uint64_t n = 0;
  for (ThreadRecord* r = head(); r != nullptr; r = r->next) {
    if (!r->parked.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

std::size_t ThreadRegistry::register_domain(EpochDomain& domain) {
  for (std::size_t i = 0; i < ThreadRecord::kMaxDomains; ++i) {
    EpochDomain* expected = nullptr;
    if (domains_[i].compare_exchange_strong(expected, &domain,
                                            std::memory_order_acq_rel)) {
      return i;
    }
  }
  std::fprintf(stderr,
               "rcua: ThreadRegistry domain slots exhausted (max %zu)\n",
               ThreadRecord::kMaxDomains);
  std::abort();
}

void ThreadRegistry::unregister_domain(std::size_t slot) {
  flush_slot_unsafe(slot);
  // Deactivate the slot in every record so a future domain reusing the
  // index starts clean.
  for (ThreadRecord* r = head(); r != nullptr; r = r->next) {
    r->slots[slot].active.store(false, std::memory_order_relaxed);
    r->slots[slot].observed_epoch.store(0, std::memory_order_relaxed);
  }
  domains_[slot].store(nullptr, std::memory_order_release);
}

std::uint64_t ThreadRegistry::min_observed_epoch(
    std::size_t slot, std::uint64_t ceiling) const noexcept {
  std::uint64_t visited = 0;
  return min_observed_epoch_counted(slot, ceiling, visited);
}

std::uint64_t ThreadRegistry::min_observed_epoch_counted(
    std::size_t slot, std::uint64_t ceiling,
    std::uint64_t& live_visited) const noexcept {
  std::uint64_t min = ceiling;
  bool found = false;
  live_visited = 0;
  for (ThreadRecord* r = head(); r != nullptr; r = r->next) {
    const DomainSlot& s = r->slots[slot];
    if (r->parked.load(std::memory_order_acquire)) continue;
    ++live_visited;
    if (!s.active.load(std::memory_order_acquire)) continue;
    const std::uint64_t seen = s.observed_epoch.load(std::memory_order_acquire);
    if (!found || seen < min) {
      min = seen;
      found = true;
    }
  }
  return min;
}

void ThreadRegistry::park_current_thread() {
  ThreadRecord& rec = local_record();
  RCUA_SCHED_POINT("registry.park.begin");
  for (std::size_t i = 0; i < ThreadRecord::kMaxDomains; ++i) {
    DomainSlot& slot = rec.slots[i];
    if (!slot.active.load(std::memory_order_relaxed)) continue;
    EpochDomain* dom = domains_[i].load(std::memory_order_acquire);
    if (dom == nullptr) continue;
    // Observe the newest state, then reclaim whatever our own list allows.
    const std::uint64_t e = dom->current_epoch();
    slot.observed_epoch.store(e, std::memory_order_release);
    const std::uint64_t min = min_observed_epoch(i, e);
    reclaim::DeferNode* chain;
    {
      std::lock_guard<plat::Spinlock> list_guard(slot.list_lock);
      chain = slot.defer_list.pop_less_equal(min);
    }
    reclaim::DeferList::reclaim_chain(chain);
  }
  RCUA_SCHED_POINT("registry.park.final");
  rec.parked.store(true, std::memory_order_release);
}

void ThreadRegistry::unpark_current_thread() {
  ThreadRecord& rec = local_record();
  // Observe current epochs *before* becoming visible so the thread never
  // appears to lag behind reclamations performed while it was parked.
  for (std::size_t i = 0; i < ThreadRecord::kMaxDomains; ++i) {
    DomainSlot& slot = rec.slots[i];
    if (!slot.active.load(std::memory_order_relaxed)) continue;
    EpochDomain* dom = domains_[i].load(std::memory_order_acquire);
    if (dom == nullptr) continue;
    slot.observed_epoch.store(dom->current_epoch(), std::memory_order_release);
  }
  RCUA_SCHED_POINT("registry.unpark");
  rec.parked.store(false, std::memory_order_release);
}

void ThreadRegistry::flush_slot_unsafe(std::size_t slot) {
  for (ThreadRecord* r = head(); r != nullptr; r = r->next) {
    reclaim::DeferNode* chain;
    {
      std::lock_guard<plat::Spinlock> list_guard(r->slots[slot].list_lock);
      chain = r->slots[slot].defer_list.pop_all();
    }
    reclaim::DeferList::reclaim_chain(chain);
  }
}

}  // namespace rcua::rt
