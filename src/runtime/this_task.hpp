#pragma once

#include <cstdint>

namespace rcua::rt {

class Cluster;

/// Chapel-style execution context: which cluster and locale the current
/// task is (conceptually) running on. Worker threads of a TaskPool set
/// this for the duration of each task; code outside any cluster sees the
/// default context (no cluster, locale 0).
struct TaskContext {
  Cluster* cluster = nullptr;
  std::uint32_t locale_id = 0;
  std::uint32_t worker_id = 0;
};

/// The calling thread's context (mutable; prefer LocaleScope).
TaskContext& this_task() noexcept;

/// RAII context switch — the moral equivalent of Chapel's `on` statement
/// body: inside the scope, `this_task()` reports the given placement.
class LocaleScope {
 public:
  LocaleScope(Cluster& cluster, std::uint32_t locale_id,
              std::uint32_t worker_id = 0) noexcept;
  ~LocaleScope();
  LocaleScope(const LocaleScope&) = delete;
  LocaleScope& operator=(const LocaleScope&) = delete;

 private:
  TaskContext saved_;
};

}  // namespace rcua::rt
