#include "runtime/this_task.hpp"

namespace rcua::rt {

namespace {
thread_local TaskContext tl_context;
}  // namespace

TaskContext& this_task() noexcept { return tl_context; }

LocaleScope::LocaleScope(Cluster& cluster, std::uint32_t locale_id,
                         std::uint32_t worker_id) noexcept
    : saved_(tl_context) {
  tl_context = TaskContext{&cluster, locale_id, worker_id};
}

LocaleScope::~LocaleScope() { tl_context = saved_; }

}  // namespace rcua::rt
