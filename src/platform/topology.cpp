#include "platform/topology.hpp"

#include <thread>

namespace rcua::plat {

std::uint32_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : static_cast<std::uint32_t>(n);
}

bool oversubscribed(std::uint32_t desired) noexcept {
  return desired > hardware_threads();
}

}  // namespace rcua::plat
