#include "platform/topology.hpp"

#include <functional>
#include <thread>

#include "platform/rng.hpp"

namespace rcua::plat {

std::uint32_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : static_cast<std::uint32_t>(n);
}

bool oversubscribed(std::uint32_t desired) noexcept {
  return desired > hardware_threads();
}

std::size_t stripe_index(std::size_t num_stripes) noexcept {
  // std::this_thread::get_id() is pthread_self() underneath — a register
  // read, not TLS machinery — and is stable for the thread's lifetime.
  // Its raw value is pointer-like (aligned), so mix before masking.
  const std::size_t raw =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(raw))) &
         (num_stripes - 1);
}

}  // namespace rcua::plat
