#pragma once

#include <atomic>
#include <cstdint>

#include "platform/align.hpp"
#include "platform/backoff.hpp"

namespace rcua::plat {

/// Test-and-test-and-set spinlock with exponential backoff.
/// Satisfies Lockable, so std::lock_guard / std::scoped_lock apply (CP.20).
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      // Test first: spin on a cached read, not on the RMW.
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      backoff.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  [[nodiscard]] bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// FIFO ticket lock: fair under contention, used where starvation of a
/// resize would otherwise stall reclamation indefinitely.
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    const std::uint32_t my = next_->fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_->load(std::memory_order_acquire) != my) backoff.pause();
  }

  bool try_lock() noexcept {
    std::uint32_t cur = serving_->load(std::memory_order_relaxed);
    std::uint32_t expected = cur;
    // Only succeed if no one else holds a ticket.
    return next_->compare_exchange_strong(expected, cur + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() noexcept {
    serving_->store(serving_->load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }

 private:
  CacheAligned<std::atomic<std::uint32_t>> next_{0u};
  CacheAligned<std::atomic<std::uint32_t>> serving_{0u};
};

}  // namespace rcua::plat
