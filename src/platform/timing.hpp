#pragma once

#include <cstdint>

namespace rcua::plat {

/// Monotonic wall clock in nanoseconds (CLOCK_MONOTONIC).
std::uint64_t now_ns() noexcept;

/// Per-thread CPU time in nanoseconds (CLOCK_THREAD_CPUTIME_ID).
std::uint64_t thread_cpu_ns() noexcept;

/// Busy-waits for approximately `ns` nanoseconds of wall time. Only used by
/// the optional wall-clock benchmark mode; the virtual-time mode never
/// spins.
void spin_for_ns(std::uint64_t ns) noexcept;

/// Simple scope timer.
class Timer {
 public:
  Timer() noexcept : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return now_ns() - start_;
  }
  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace rcua::plat
