#pragma once

#include <atomic>
#include <type_traits>

namespace rcua::plat {

/// Relaxed atomic access to ordinary (non-std::atomic) storage.
///
/// The paper's §III-C relaxation makes concurrent element reads and
/// updates on the *same* index a supported operation mix: the array
/// guarantees the access lands on valid storage, and the element value is
/// whatever the interleaving produced. In C++ terms that contract is a
/// relaxed atomic access, not a plain one — plain racing loads/stores are
/// undefined behavior and (correctly) flagged by TSan. These helpers give
/// element paths that contract with zero overhead where it is free: a
/// relaxed load/store of a machine-word type compiles to the same mov a
/// plain access would.
///
/// Usable only where `std::atomic_ref` is lock-free for T; callers with
/// larger element types keep plain accesses and the single-writer
/// discipline those imply (see `relaxed_capable_v`).
template <typename T>
inline constexpr bool relaxed_capable_v =
    std::is_trivially_copyable_v<T> &&
    std::atomic_ref<T>::is_always_lock_free;

template <typename T>
[[nodiscard]] inline T relaxed_load(const T& slot) noexcept {
  static_assert(relaxed_capable_v<T>);
  // atomic_ref<const T> arrives only post-C++20; the cast is sound
  // because atomic_ref never mutates through a pure load.
  return std::atomic_ref<T>(const_cast<T&>(slot))
      .load(std::memory_order_relaxed);
}

template <typename T>
inline void relaxed_store(T& slot, T value) noexcept {
  static_assert(relaxed_capable_v<T>);
  std::atomic_ref<T>(slot).store(value, std::memory_order_relaxed);
}

template <typename T>
inline T relaxed_fetch_add(T& slot, T delta) noexcept {
  static_assert(relaxed_capable_v<T> && std::is_integral_v<T>);
  return std::atomic_ref<T>(slot).fetch_add(delta,
                                            std::memory_order_relaxed);
}

}  // namespace rcua::plat
