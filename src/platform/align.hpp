#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rcua::plat {

/// Size of a destructive-interference cache line. We hardcode 64 bytes
/// (x86-64, most ARM server parts) rather than relying on
/// std::hardware_destructive_interference_size, which libstdc++ gates
/// behind a warning and which varies per TU with -mtune.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps a T in storage padded out to a full cache line so that adjacent
/// instances never share a line. Used for per-thread counters and the
/// EpochReaders pair, whose whole point is to isolate RMW traffic.
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value{};

  CacheAligned() = default;

  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Trailing pad so sizeof is a multiple of kCacheLine even when
  // alignof(T) < kCacheLine and T is small.
  static constexpr std::size_t kPad =
      (sizeof(T) % kCacheLine) ? kCacheLine - (sizeof(T) % kCacheLine) : 0;
  [[maybe_unused]] std::byte pad_[kPad == 0 ? 1 : kPad];
};

static_assert(alignof(CacheAligned<int>) == kCacheLine);

/// Rounds n up to the next multiple of `to` (a power of two).
constexpr std::size_t round_up_pow2(std::size_t n, std::size_t to) noexcept {
  return (n + to - 1) & ~(to - 1);
}

/// True iff n is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace rcua::plat
