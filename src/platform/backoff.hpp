#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace rcua::plat {

/// Hint the CPU that we are in a spin-wait loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Truncated exponential backoff for contended CAS loops.
///
/// Starts with `cpu_relax` bursts and escalates to `std::this_thread::yield`
/// once the burst budget exceeds `yield_threshold`. Yielding matters a lot
/// on oversubscribed hosts (more runnable threads than cores): a pure pause
/// loop would burn an entire scheduler quantum waiting for a writer that is
/// not currently running.
class Backoff {
 public:
  explicit Backoff(std::uint32_t yield_threshold = 64) noexcept
      : limit_(1), yield_threshold_(yield_threshold) {}

  /// One backoff step. Doubles the burst length up to the yield threshold,
  /// after which every step is a thread yield.
  void pause() noexcept {
    if (limit_ >= yield_threshold_) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    limit_ *= 2;
  }

  /// Resets the schedule after a successful acquisition.
  void reset() noexcept { limit_ = 1; }

  /// True once the backoff has escalated to yielding.
  [[nodiscard]] bool is_yielding() const noexcept {
    return limit_ >= yield_threshold_;
  }

 private:
  std::uint32_t limit_;
  std::uint32_t yield_threshold_;
};

}  // namespace rcua::plat
