#pragma once

#include <atomic>
#include <cstdint>

#include "platform/align.hpp"
#include "platform/backoff.hpp"

namespace rcua::plat {

/// Sense-reversing spin barrier for a fixed set of participants.
///
/// Unlike std::barrier this never allocates after construction and spins
/// with escalation to yields, which is what we want for benchmark phase
/// alignment on an oversubscribed host.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants) noexcept
      : participants_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants have arrived. Safe to reuse immediately.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.value.load(std::memory_order_relaxed);
    if (count_.value.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      count_.value.store(0, std::memory_order_relaxed);
      sense_.value.store(my_sense, std::memory_order_release);
      return;
    }
    Backoff backoff(/*yield_threshold=*/8);
    while (sense_.value.load(std::memory_order_acquire) != my_sense) {
      backoff.pause();
    }
  }

  [[nodiscard]] std::uint32_t participants() const noexcept {
    return participants_;
  }

 private:
  const std::uint32_t participants_;
  CacheAligned<std::atomic<std::uint32_t>> count_{0u};
  CacheAligned<std::atomic<bool>> sense_{false};
};

}  // namespace rcua::plat
