#pragma once

#include <cstdint>

namespace rcua::plat {

/// Number of hardware execution contexts available to this process
/// (respects the cpuset / affinity mask). Never returns 0.
std::uint32_t hardware_threads() noexcept;

/// True when the process is oversubscribed for `desired` runnable threads,
/// i.e. desired exceeds the hardware thread count. Spin loops consult this
/// to decide how aggressively to yield.
bool oversubscribed(std::uint32_t desired) noexcept;

}  // namespace rcua::plat
