#pragma once

#include <cstddef>
#include <cstdint>

namespace rcua::plat {

/// Number of hardware execution contexts available to this process
/// (respects the cpuset / affinity mask). Never returns 0.
std::uint32_t hardware_threads() noexcept;

/// True when the process is oversubscribed for `desired` runnable threads,
/// i.e. desired exceeds the hardware thread count. Spin loops consult this
/// to decide how aggressively to yield.
bool oversubscribed(std::uint32_t desired) noexcept;

/// TLS-free stripe selector for per-core counter banks: hashes the calling
/// thread's identity (one TCB register read plus a mix, no thread_local
/// slot and no syscall) into [0, num_stripes). A thread therefore always
/// lands on the same stripe, which is what keeps the stripe's cache line
/// resident in that core's cache. `num_stripes` must be a power of two.
std::size_t stripe_index(std::size_t num_stripes) noexcept;

}  // namespace rcua::plat
