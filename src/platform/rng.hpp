#pragma once

#include <cstdint>

namespace rcua::plat {

/// SplitMix64: used to seed xoshiro and as a cheap stateless mixer.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Mixes a 64-bit value through the SplitMix64 finalizer; handy for turning
/// (seed, index) pairs into independent streams without carrying state.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, and entirely
/// deterministic: every benchmark task derives its own stream from
/// (global seed, task id), so runs are reproducible regardless of
/// scheduling.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply-shift; the small bias of the plain variant is
    // irrelevant for workload generation but we keep the rejection loop
    // for exactness in tests that rely on uniformity.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace rcua::plat
