#include "platform/timing.hpp"

#include <ctime>

#include "platform/backoff.hpp"

namespace rcua::plat {

namespace {
std::uint64_t read_clock(clockid_t id) noexcept {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}
}  // namespace

std::uint64_t now_ns() noexcept { return read_clock(CLOCK_MONOTONIC); }

std::uint64_t thread_cpu_ns() noexcept {
  return read_clock(CLOCK_THREAD_CPUTIME_ID);
}

void spin_for_ns(std::uint64_t ns) noexcept {
  const std::uint64_t deadline = now_ns() + ns;
  while (now_ns() < deadline) cpu_relax();
}

}  // namespace rcua::plat
