#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "runtime/cluster.hpp"

namespace rcua {

/// One fixed-capacity block of array storage, allocated "on" a specific
/// locale (Listing 1: each block is an array with a capacity of
/// BlockSize).
///
/// Blocks are the unit of distribution *and* the unit of recycling: a
/// snapshot clone shares block pointers rather than copying elements
/// (Lemma 6), so assignments through outstanding references stay visible
/// across resizes. Blocks are therefore never owned by a snapshot — the
/// RCUArray owns them and frees them at destruction.
template <typename T>
class Block {
 public:
  Block(rt::Locale& owner, std::size_t capacity)
      : data_(std::make_unique<T[]>(capacity)),
        capacity_(capacity),
        owner_(owner.id()),
        id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {
    owner.note_alloc(capacity * sizeof(T));
    live_.fetch_add(1, std::memory_order_relaxed);
  }

  ~Block() { live_.fetch_sub(1, std::memory_order_relaxed); }

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  T& operator[](std::size_t i) noexcept {
    assert(i < capacity_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < capacity_);
    return data_[i];
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t owner() const noexcept { return owner_; }
  /// Globally unique block identity (drives the locality cost model).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Write-generation stamp for the per-locale block cache (DESIGN.md
  /// §11): writers bump it (release) AFTER their element store lands, and
  /// a cache fill samples it (acquire) BEFORE copying — so a cached copy
  /// holding a pre-write value is always tagged with a pre-write
  /// generation, and the next lookup's compare invalidates it. No
  /// broadcast: the stamp lives with the block, not with any cache.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }
  void bump_generation() noexcept {
    generation_.fetch_add(1, std::memory_order_release);
  }
  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }

  /// Number of live Block<T> instances — leak assertions in tests.
  static std::uint64_t live_count() noexcept {
    return live_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<T[]> data_;
  std::size_t capacity_;
  std::uint32_t owner_;
  std::uint64_t id_;
  std::atomic<std::uint64_t> generation_{0};

  static inline std::atomic<std::uint64_t> next_id_{1};
  static inline std::atomic<std::uint64_t> live_{0};
};

}  // namespace rcua
