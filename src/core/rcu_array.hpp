#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/snapshot.hpp"
#include "obs/trace.hpp"
#include "platform/align.hpp"
#include "platform/atomics.hpp"
#include "platform/backoff.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/eras.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/stall_monitor.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/cluster.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/global_lock.hpp"
#include "runtime/this_task.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua {

/// Compile-time reclamation policy — the paper's `isQSBR` param, plus
/// the concrete EBR reclaimer type so the reader-bank layout (striped vs
/// the paper's legacy 2-counter pair) can be A/B'd at the array level.
struct EbrPolicy {
  static constexpr bool is_qsbr = false;
  static constexpr bool is_interval = false;
  static constexpr const char* name = "EBR";
  using Reclaimer = reclaim::Ebr;
};
/// EBR with the paper's original collective EpochReaders[2] layout
/// (all-seq_cst, one pair per locale) — the ablation baseline.
struct LegacyEbrPolicy {
  static constexpr bool is_qsbr = false;
  static constexpr bool is_interval = false;
  static constexpr const char* name = "EBR-legacy";
  using Reclaimer = reclaim::LegacyEbr;
};
struct QsbrPolicy {
  static constexpr bool is_qsbr = true;
  static constexpr bool is_interval = false;
  static constexpr const char* name = "QSBR";
  // Unused under QSBR; declared so PerLocale has a uniform shape.
  using Reclaimer = reclaim::Ebr;
};
/// Interval-based reclamation: readers publish [entry era, current era]
/// reservations, spines carry [birth, retire] era tags, and retirement
/// scans the live reservations instead of waiting for them — unreclaimed
/// memory stays bounded under a stalled reader by construction
/// (DESIGN.md §13; the reclamation tier Brown's EBR critique calls for).
struct IbrPolicy {
  static constexpr bool is_qsbr = false;
  static constexpr bool is_interval = true;
  static constexpr const char* name = "IBR";
  using Reclaimer = reclaim::Ibr;
};
/// Hazard eras: single-era reservations republished on every protect —
/// the hazard-pointer-like point of the era spectrum, same bounded-
/// memory guarantee and retire/scan machinery as IBR.
struct HazardErasPolicy {
  static constexpr bool is_qsbr = false;
  static constexpr bool is_interval = true;
  static constexpr const char* name = "HE";
  using Reclaimer = reclaim::HazardEras;
};

/// RCUArray: a parallel-safe distributed resizable array (the paper's
/// primary contribution). Reads and updates proceed concurrently with a
/// resize via Read-Copy-Update over immutable snapshots of the block
/// table; blocks are distributed round-robin across the cluster's
/// locales, and the metadata (snapshot pointer, epoch state,
/// NextLocaleId) is privatized per locale so the access path is entirely
/// node-local.
///
/// Key relaxations inherited from the paper:
///  * `index()` returns a *reference* so updates cost the same as reads
///    (§III-C). The reference stays valid across resizes because snapshot
///    clones recycle blocks (Lemma 6) — only the spine is ever reclaimed.
///  * Resizing only expands, in whole blocks (§IV-B fn.12).
///
/// Thread-safety contract:
///  * index/read/write: parallel-safe, including concurrently with resize.
///  * resize_add: parallel-safe against everything (serialized by the
///    cluster-wide WriteLock).
///  * QSBR policy: callers must invoke `reclaim::Qsbr::checkpoint()`
///    periodically (or rely on pool workers parking) and must not hold a
///    reference obtained *from a dropped spine's blocks*— note blocks are
///    recycled so element references are fine; the QSBR discipline only
///    gates the spine.
///  * destruction: requires external quiescence (no in-flight ops).
template <typename T, typename Policy = QsbrPolicy>
class RCUArray {
 public:
  struct Options {
    std::size_t block_size = 1024;
    /// QSBR domain; defaults to the process-wide one. Ignored under EBR.
    reclaim::Qsbr* qsbr = nullptr;
    /// Deadline/backoff for the EBR spine drain in resize. The default
    /// is env-configured and blocking (deadline 0) — the paper's
    /// behaviour — unless RCUA_STALL_DEADLINE_NS is set. With a
    /// deadline, a resize whose readers stall defers the old spine onto
    /// a per-locale overflow retire list instead of blocking.
    reclaim::StallPolicy stall_policy = reclaim::StallPolicy::from_env();
    /// Watchdog receiving stall diagnostics and bounding overflow bytes
    /// (nullptr = the process-wide StallMonitor::global()).
    reclaim::StallMonitor* stall_monitor = nullptr;
    /// Resize publish attempts that consult the fault plan; past this
    /// many injected broadcast drops the plan is ignored, so resize_add
    /// terminates under any plan.
    std::uint32_t max_publish_attempts = 64;
    /// Sentinel for cache_capacity_bytes: defer to the environment.
    static constexpr std::size_t kCacheCapacityFromEnv =
        static_cast<std::size_t>(-1);
    /// Per-locale remote-block cache capacity in BYTES (rt::BlockCache).
    /// 0 disables the cache entirely — every access takes exactly the
    /// uncached path, bit-identical charges and comm counters. The
    /// default defers to RCUA_CACHE_CAPACITY_BYTES (itself defaulting
    /// to 0 = off). See DESIGN.md §11.
    std::size_t cache_capacity_bytes = kCacheCapacityFromEnv;
    /// Sentinel for home_locale: distribute blocks round-robin.
    static constexpr std::uint32_t kNoHomeLocale = UINT32_MAX;
    /// Pin every block allocation to ONE locale instead of round-robin —
    /// the shard-placement mode (DESIGN.md §14): a ShardedCollection
    /// shard is an RCUArray homed on one locale, so live migration
    /// (rehome) can move it wholesale. The default keeps the paper's
    /// round-robin distribution.
    std::uint32_t home_locale = kNoHomeLocale;
  };

  static constexpr bool uses_qsbr = Policy::is_qsbr;
  static constexpr bool uses_interval = Policy::is_interval;

  RCUArray(rt::Cluster& cluster, std::size_t initial_capacity = 0,
           Options options = {})
      : cluster_(cluster),
        block_size_(options.block_size),
        qsbr_(options.qsbr != nullptr ? options.qsbr
                                      : &reclaim::Qsbr::global()),
        stall_policy_(options.stall_policy),
        monitor_(options.stall_monitor != nullptr
                     ? options.stall_monitor
                     : &reclaim::StallMonitor::global()),
        max_publish_attempts_(options.max_publish_attempts),
        cache_capacity_(options.cache_capacity_bytes ==
                                Options::kCacheCapacityFromEnv
                            ? rt::BlockCache::capacity_from_env()
                            : options.cache_capacity_bytes),
        home_locale_(options.home_locale),
        write_lock_(cluster, /*owner_locale=*/0),
        pid_(cluster.privatization().create()) {
    if (block_size_ == 0) throw std::invalid_argument("block_size == 0");
    if (home_locale_ != Options::kNoHomeLocale &&
        home_locale_ >= cluster.num_locales()) {
      throw std::invalid_argument("home_locale >= num_locales");
    }
    cluster_.coforall_locales([&](std::uint32_t l) {
      auto* p = new PerLocale;
      p->global_snapshot.store(new Snapshot<T>(), std::memory_order_relaxed);
      p->cache = std::make_unique<rt::BlockCache>(cluster_.comm(), l,
                                                  cache_capacity_);
      cluster_.privatization().set(pid_, l, p);
    });
    if (initial_capacity > 0) resize_add(initial_capacity);
  }

  ~RCUArray() {
    // Contract: no concurrent operations. Locale 0's snapshot holds the
    // complete block set (resizes only append, replicated everywhere).
    std::vector<Block<T>*> blocks =
        priv_at(0).global_snapshot.load(std::memory_order_acquire)->blocks();
    for (std::uint32_t l = 0; l < cluster_.num_locales(); ++l) {
      PerLocale* p = &priv_at(l);
      if constexpr (Policy::is_interval) {
        // External quiescence: every era-pending spine is freeable now.
        p->ebr.flush_unsafe();
      }
      // External quiescence means every deferred spine is freeable now.
      const auto flushed = p->overflow.free_all();
      if (flushed.objects != 0) {
        cluster_.locale(l).note_free(flushed.bytes);
        monitor_->note_flushed(flushed.bytes, flushed.objects);
      }
      delete p->global_snapshot.load(std::memory_order_acquire);
      delete p;
    }
    cluster_.privatization().destroy(pid_);
    for (Block<T>* b : blocks) {
      cluster_.locale(b->owner()).note_free(b->capacity() * sizeof(T));
      delete b;
    }
  }

  RCUArray(const RCUArray&) = delete;
  RCUArray& operator=(const RCUArray&) = delete;

  // -- Indexing (Algorithm 3, Index) -----------------------------------

  /// Returns a reference to element `i`, valid across concurrent resizes.
  /// Both reads and updates go through this reference.
  T& index(std::size_t i) { return index_rw(i, /*is_write=*/false); }
  T& operator[](std::size_t i) { return index_rw(i, /*is_write=*/false); }

  /// Bounds-checked access.
  T& at(std::size_t i) {
    if (i >= capacity()) {
      throw std::out_of_range("RCUArray::at: index " + std::to_string(i) +
                              " >= capacity " + std::to_string(capacity()));
    }
    return index_rw(i, false);
  }

  /// Convenience value read / write (the paper's "update" is the write).
  /// For machine-word elements these are relaxed atomics, so concurrent
  /// read/write mixes on the same index are defined (§III-C contract);
  /// larger element types fall back to plain accesses and inherit the
  /// single-writer-per-index discipline those imply.
  ///
  /// With the block cache enabled (Options::cache_capacity_bytes > 0),
  /// read() consults the calling locale's rt::BlockCache inside the
  /// read-side section: a hit is charged a node-local copy instead of
  /// remote traffic, a miss fills the whole block through AsyncComm and
  /// caches it under the pinned snapshot version. The cached path is
  /// bounds-checked (throws std::out_of_range) because cache tests race
  /// reads against resize_remove; the uncached path keeps the paper's
  /// assert-only contract.
  T read(std::size_t i) {
    if (!cache_enabled()) {
      // The load happens INSIDE the read-side section (unlike index(),
      // whose returned reference deliberately escapes it): value ops
      // must stay safe against rehome(), which — unlike resize — really
      // does reclaim the replaced blocks once readers drain.
      return with_slot(i, /*is_write=*/false, [](T& slot, Block<T>*) -> T {
        if constexpr (plat::relaxed_capable_v<T>) {
          return plat::relaxed_load(slot);
        } else {
          return slot;
        }
      });
    }
    return read_cached(i);
  }
  void write(std::size_t i, T value) {
    // Store + generation bump both land INSIDE the section for the same
    // migration-safety reason as read(): a rehome drain that completes
    // between a section exit and a post-section store would free the
    // block out from under the store. §III-C's escaping-reference
    // relaxation only covers recycled blocks (resize), not reclaimed
    // ones (rehome).
    with_slot(i, /*is_write=*/true, [&](T& slot, Block<T>* b) {
      if constexpr (plat::relaxed_capable_v<T>) {
        plat::relaxed_store(slot, std::move(value));
      } else {
        slot = std::move(value);
      }
      // Write-through coherence (DESIGN.md §11): the PUT above already
      // updated the block; bumping its write generation AFTER the store
      // lands (release) invalidates every cached copy of the block on
      // its next lookup. No broadcast — the stamp travels with the
      // block.
      if (cache_enabled()) b->bump_generation();
    });
  }

  // -- Resizing (Algorithm 3, Resize) ----------------------------------

  /// Expands by `num_elements`, rounded up to whole blocks, distributing
  /// the new blocks round-robin across locales and replicating the
  /// snapshot swap on every locale. Parallel-safe against all operations.
  void resize_add(std::size_t num_elements) {
    if (num_elements == 0) return;
    const std::size_t nblocks =
        (num_elements + block_size_ - 1) / block_size_;
    obs::TraceSpan resize_span("rcua.resize_add", "rcua", nblocks);

    std::vector<Block<T>*> new_blocks;  // line 9
    new_blocks.reserve(nblocks);
    write_lock_.lock();  // line 10
    const std::uint32_t here = cluster_.here();
    std::uint32_t loc = priv().next_locale_id;  // line 11
    // Allocate and distribute new blocks (lines 12-16), pipelined: each
    // remote `on Locales[locId]` allocation is issued asynchronously so
    // its launch latency overlaps with the other allocations (and same-
    // locale allocations run inline), instead of paying one full
    // round-trip per block. All futures are collected before the
    // broadcast below, preserving the round-robin block order.
    {
      rt::AsyncComm async(cluster_.comm(), here);
      std::vector<rt::future<Block<T>*>> pending;
      pending.reserve(nblocks);
      const bool pinned = home_locale_ != Options::kNoHomeLocale;
      for (std::size_t k = 0; k < nblocks; ++k) {
        const std::uint32_t target = pinned ? home_locale_ : loc;
        pending.push_back(
            async.execute(target, /*weight=*/0, [this, target]() {
              Block<T>* b =
                  new Block<T>(cluster_.locale(target), block_size_);
              sim::charge(sim::CostModel::get().alloc_block_ns);
              return b;
            }));
        if (!pinned) loc = (loc + 1) % cluster_.num_locales();
      }
      for (auto& f : pending) new_blocks.push_back(f.get());
    }
    const std::uint32_t final_loc = loc;

    // Update performed on each node (lines 18-28), retried against
    // injected broadcast faults: a locale whose swap step the fault plan
    // drops is re-broadcast with backoff until every locale has
    // published. `done` makes the per-locale body idempotent across
    // attempts, and after max_publish_attempts_ the plan is no longer
    // consulted, so resize_add terminates under any plan.
    std::vector<std::atomic<bool>> done(cluster_.num_locales());
    std::uint32_t attempt = 0;
    plat::Backoff publish_backoff;
    for (;;) {
      cluster_.coforall_locales([&](std::uint32_t l) {
        if (done[l].load(std::memory_order_acquire)) return;
        if (rt::FaultPlan* plan = cluster_.fault_plan();
            plan != nullptr && attempt < max_publish_attempts_ &&
            plan->fires(rt::FaultPlan::Action::kDropBroadcast, l)) {
          RCUA_SCHED_POINT("rcua.resize.broadcast_dropped");
          return;  // injected lost broadcast: this locale missed the swap
        }
        PerLocale& p = priv_at(l);
        flush_overflow_at(l);  // opportunistic retry of deferred spines
        Snapshot<T>* old =
            p.global_snapshot.load(std::memory_order_relaxed);
        Snapshot<T>* fresh = Snapshot<T>::clone_append(*old, new_blocks);
        RCUA_SCHED_POINT("rcua.resize.publish");
        if constexpr (Policy::is_qsbr) {
          // Handle RCU directly with QSBR (lines 21-25).
          p.global_snapshot.store(fresh, std::memory_order_release);
          RCUA_SCHED_POINT("rcua.resize.published");
          obs::trace_instant("rcua.resize.publish", "rcua", l);
          qsbr_->defer_delete(old);
        } else if constexpr (Policy::is_interval) {
          // Era protocol: sample the fresh spine's birth era BEFORE the
          // publish, so any reader that can load `fresh` holds a
          // reservation at >= its birth (the Lemma 6 generalization,
          // DESIGN.md §13). The retire stamps `old` with the interval
          // [its own birth, now] and scans — no grace-period wait.
          const std::uint64_t fresh_birth = p.ebr.current_era();
          p.global_snapshot.store(fresh, std::memory_order_release);
          RCUA_SCHED_POINT("rcua.resize.published");
          obs::trace_instant("rcua.resize.publish", "rcua", l);
          retire_spine_interval(
              p, l, old, std::exchange(p.spine_birth_era, fresh_birth));
        } else {
          // RCU_Write (Algorithm 1 lines 1-8); the clone/λ already ran.
          p.global_snapshot.store(fresh, std::memory_order_release);
          RCUA_SCHED_POINT("rcua.resize.published");
          obs::trace_instant("rcua.resize.publish", "rcua", l);
          retire_spine_ebr(p, l, old);
        }
        p.next_locale_id = final_loc;  // line 28
        done[l].store(true, std::memory_order_release);
      });
      bool all_published = true;
      for (auto& d : done) {
        all_published = all_published && d.load(std::memory_order_acquire);
      }
      if (all_published) break;
      ++attempt;
      broadcast_retries_.fetch_add(1, std::memory_order_relaxed);
      publish_backoff.pause();
    }
    resizes_.fetch_add(1, std::memory_order_relaxed);
    write_lock_.unlock();  // line 29
  }

  /// EXTENSION (beyond the paper, which covers expansion only): shrinks
  /// the array by `num_elements`, rounded DOWN to whole blocks, from the
  /// tail. Parallel-safe against index/read/write *to the surviving
  /// region*; references into the removed region are invalidated once
  /// reclamation completes. The removed blocks are reclaimed through the
  /// same machinery as spines: synchronously after the EBR drain, or via
  /// QSBR deferral.
  void resize_remove(std::size_t num_elements) {
    const std::size_t remove_blocks = num_elements / block_size_;
    if (remove_blocks == 0) return;
    obs::TraceSpan resize_span("rcua.resize_remove", "rcua", remove_blocks);
    const auto& m = sim::CostModel::get();
    write_lock_.lock();
    Snapshot<T>* current =
        priv_at(0).global_snapshot.load(std::memory_order_acquire);
    const std::size_t old_blocks = current->num_blocks();
    const std::size_t keep =
        remove_blocks >= old_blocks ? 0 : old_blocks - remove_blocks;
    // The blocks being dropped (identical in every locale's spine).
    std::vector<Block<T>*> dropped(current->blocks().begin() +
                                       static_cast<std::ptrdiff_t>(keep),
                                   current->blocks().end());
    cluster_.coforall_locales([&](std::uint32_t l) {
      PerLocale& p = priv_at(l);
      flush_overflow_at(l);  // opportunistic retry of deferred spines
      Snapshot<T>* old = p.global_snapshot.load(std::memory_order_relaxed);
      Snapshot<T>* fresh = Snapshot<T>::clone_truncate(*old, keep);
      RCUA_SCHED_POINT("rcua.resize.publish");
      p.global_snapshot.store(fresh, std::memory_order_release);
      RCUA_SCHED_POINT("rcua.resize.published");
      obs::trace_instant("rcua.resize.publish", "rcua", l);
      if (p.cache->enabled()) {
        // Eviction interlock (DESIGN.md §11): drop this locale's cached
        // copies of the dropped blocks BEFORE the reclamation below can
        // free them — the drain-before-release rule extended to cache
        // entries. Any fill still in flight for a dropped block drains
        // inside its reader's pinned section, which the (blocking) EBR
        // drain / QSBR checkpoint below waits out; after that the stale
        // version tag turns every surviving entry into a lazy miss, but
        // the ledger must not carry "live" bytes for freed blocks.
        p.cache->invalidate_tail(array_id(), keep);
      }
      if constexpr (Policy::is_qsbr) {
        qsbr_->defer_delete(old);
      } else if constexpr (Policy::is_interval) {
        // The old spine rides the era retire list like any other; the
        // dropped BLOCKS are shared by every locale's spine, so they
        // cannot — mint a fence era and wait out every read section
        // that entered before it, the same deliberately blocking drain
        // the EBR branch pays (DESIGN.md §8/§13). A stalled reader
        // therefore delays resize_remove (an extension path), never
        // resize_add.
        retire_spine_interval(
            p, l, old,
            std::exchange(p.spine_birth_era, p.ebr.current_era()));
        const std::uint64_t fence = p.ebr.advance_era();
        RCUA_SCHED_POINT("rcua.resize.epoch_bumped");
        p.ebr.wait_for_readers(fence);
        RCUA_SCHED_POINT("rcua.resize.retire_spine");
        // All pre-fence sections are gone; the scan frees whatever they
        // were holding (including the spine retired just above).
        p.ebr.scan();
      } else {
        // Unlike resize_add, this drain stays BLOCKING even under a
        // non-blocking stall policy: the dropped blocks freed below are
        // shared by every locale's spine, so their reclamation needs
        // every locale's readers drained — the per-locale parity tag the
        // overflow list relies on cannot cover them (DESIGN.md §8). A
        // stalled reader therefore delays resize_remove (an extension
        // path), never resize_add.
        const auto epoch = p.ebr.advance_epoch();
        RCUA_SCHED_POINT("rcua.resize.epoch_bumped");
        p.ebr.wait_for_readers(epoch);
        RCUA_SCHED_POINT("rcua.resize.retire_spine");
        delete old;
      }
    });
    // Every locale has swapped; no snapshot reaches the dropped blocks.
    for (Block<T>* b : dropped) {
      RCUA_SCHED_POINT("rcua.resize.recycle_block");
      cluster_.locale(b->owner()).note_free(b->capacity() * sizeof(T));
      sim::charge(m.alloc_block_ns / 2);
      if constexpr (Policy::is_qsbr) {
        // Outstanding references (paper-style relaxed reads) may still
        // target these blocks until their holders checkpoint.
        qsbr_->defer_delete(b);
      } else {
        // EBR already drained all readers on every locale above.
        delete b;
      }
    }
    resizes_.fetch_add(1, std::memory_order_relaxed);
    write_lock_.unlock();
  }

  // -- Live migration (DESIGN.md §14) -----------------------------------

  /// EXTENSION: live migration of every block of this array to locale
  /// `dst` — the shard-migration primitive behind
  /// service::ShardedCollection. Protocol, in order:
  ///
  ///   1. COPY: allocate replacement blocks on `dst` and copy the source
  ///      contents into them through the async comm path, pipelined
  ///      under the in-flight window (§10). The replacements are
  ///      unpublished — no reader can observe them — so a mid-copy
  ///      destination death (FaultPlan kKillLocale, consulted between
  ///      block copies) rolls back by freeing them and returning false
  ///      with the array untouched.
  ///   2. PUBLISH: every copy completion has drained; each locale swaps
  ///      in a clone_replace spine and invalidates its BlockCache
  ///      entries for this array (the §11 eviction interlock — cached
  ///      copies of replaced blocks must leave the ledger before the
  ///      frees below).
  ///   3. DRAIN + RECLAIM: wait out every locale's readers of the old
  ///      block mapping (blocking, like resize_remove: the replaced
  ///      blocks are shared by every locale's old spine), then free the
  ///      replaced source blocks. Old spines ride the configured policy
  ///      (EBR drain / QSBR deferral / era retire) like any resize.
  ///
  /// The migrate→invalidate→drain ordering is the §14 rule; the two
  /// sched mutations (`migrate_publish_before_copy_complete`,
  /// `migrate_reclaim_before_mapping_drain`) each break one arrow and
  /// tests/test_sched_migration.cpp proves the harness catches both.
  ///
  /// Concurrency contract: VALUE ops (read/write/bulk/View) are safe
  /// throughout, on every locale — they complete inside their read-side
  /// section (with_slot). Escaping REFERENCES (index/operator[]/at) are
  /// NOT migration-safe: §III-C lets them outlive the section only
  /// because resize recycles blocks, and rehome reclaims the replaced
  /// blocks once readers drain — a reference obtained before the drain
  /// and dereferenced after it reads freed memory. Don't hold element
  /// references across a migration of this array. Element WRITES
  /// concurrent with the copy phase may land in a replaced block after
  /// its contents were copied and be lost — structural writers must
  /// serialize against migration (ShardedCollection's remap lock does)
  /// or tolerate last-writer-wins. Returns true when the migration
  /// published, false on a fault-injected rollback.
  bool rehome(std::uint32_t dst) {
    if (dst >= cluster_.num_locales()) {
      throw std::invalid_argument("rehome: dst locale out of range");
    }
    obs::TraceSpan span("rcua.rehome", "rcua", dst);
    const auto& m = sim::CostModel::get();
    write_lock_.lock();
    const std::uint32_t here = cluster_.here();
    Snapshot<T>* cur =
        priv_at(0).global_snapshot.load(std::memory_order_acquire);
    const std::vector<Block<T>*> old_blocks = cur->blocks();
    // Indices whose block lives somewhere other than `dst`; blocks
    // already homed there are kept in place (nothing to copy or free).
    std::vector<std::size_t> moved;
    for (std::size_t i = 0; i < old_blocks.size(); ++i) {
      if (old_blocks[i]->owner() != dst) moved.push_back(i);
    }
    if (moved.empty()) {
      home_locale_ = dst;
      write_lock_.unlock();
      return true;
    }

    // -- 1. COPY ---------------------------------------------------------
    std::vector<Block<T>*> fresh(old_blocks);
    rt::AsyncComm async(cluster_.comm(), here);
    {
      std::vector<rt::future<Block<T>*>> allocs;
      allocs.reserve(moved.size());
      for (std::size_t k = 0; k < moved.size(); ++k) {
        allocs.push_back(async.execute(dst, /*weight=*/0, [this, dst]() {
          Block<T>* b = new Block<T>(cluster_.locale(dst), block_size_);
          sim::charge(sim::CostModel::get().alloc_block_ns);
          return b;
        }));
      }
      for (std::size_t k = 0; k < moved.size(); ++k) {
        fresh[moved[k]] = allocs[k].get();
      }
    }
    std::vector<rt::future<void>> copies;
    copies.reserve(moved.size());
    bool killed = false;
    for (std::size_t i : moved) {
      // Chaos: the destination dies mid-copy. Everything issued so far
      // is unpublished, so the rollback is purely local.
      if (rt::FaultPlan* plan = cluster_.fault_plan();
          plan != nullptr &&
          plan->fires(rt::FaultPlan::Action::kKillLocale, dst)) {
        RCUA_SCHED_POINT("rcua.rehome.killed");
        killed = true;
        break;
      }
      RCUA_SCHED_POINT("rcua.rehome.copy_issue");
      Block<T>* src = old_blocks[i];
      Block<T>* rep = fresh[i];
      const std::size_t n = block_size_;
      copies.push_back(async.execute(dst, /*weight=*/n, [src, rep, n]() {
        RCUA_SCHED_POINT("rcua.rehome.copy_block");
        const T* s = src->data();
        T* d = rep->data();
        if constexpr (plat::relaxed_capable_v<T>) {
          for (std::size_t k = 0; k < n; ++k) {
            plat::relaxed_store(d[k], plat::relaxed_load(s[k]));
          }
        } else if constexpr (std::is_trivially_copyable_v<T>) {
          std::memcpy(static_cast<void*>(d), static_cast<const void*>(s),
                      n * sizeof(T));
        } else {
          std::copy(s, s + n, d);
        }
        sim::charge(sim::CostModel::get().bulk_copy_ns_per_elem *
                    static_cast<double>(n));
      }));
    }
    if (killed) {
      async.cancel_pending();
      for (std::size_t i : moved) {
        cluster_.locale(dst).note_free(fresh[i]->capacity() * sizeof(T));
        delete fresh[i];
      }
      rehome_rollbacks_.fetch_add(1, std::memory_order_relaxed);
      obs::trace_instant("rcua.rehome.rollback", "rcua", dst);
      write_lock_.unlock();
      return false;
    }
    if (!RCUA_SCHED_MUT(migrate_publish_before_copy_complete)) {
      // Copy-before-publish: the replacement blocks hold the full
      // contents BEFORE any reader can be routed to them.
      for (auto& f : copies) f.wait();
      RCUA_SCHED_POINT("rcua.rehome.copies_drained");
    }

    // -- 2. PUBLISH + invalidate -----------------------------------------
    std::vector<Snapshot<T>*> retired(cluster_.num_locales(), nullptr);
    cluster_.coforall_locales([&](std::uint32_t l) {
      PerLocale& p = priv_at(l);
      flush_overflow_at(l);
      Snapshot<T>* old = p.global_snapshot.load(std::memory_order_relaxed);
      Snapshot<T>* nw = Snapshot<T>::clone_replace(*old, fresh);
      RCUA_SCHED_POINT("rcua.rehome.publish");
      if constexpr (Policy::is_interval) {
        const std::uint64_t fresh_birth = p.ebr.current_era();
        p.global_snapshot.store(nw, std::memory_order_release);
        RCUA_SCHED_POINT("rcua.rehome.published");
        retire_spine_interval(
            p, l, old, std::exchange(p.spine_birth_era, fresh_birth));
      } else {
        p.global_snapshot.store(nw, std::memory_order_release);
        RCUA_SCHED_POINT("rcua.rehome.published");
        if constexpr (Policy::is_qsbr) {
          qsbr_->defer_delete(old);
        } else {
          retired[l] = old;  // reclaimed after this locale's drain below
        }
      }
      obs::trace_instant("rcua.rehome.publish", "rcua", l);
      if (p.cache->enabled()) {
        // Eviction interlock (§11, extended to migration): every cached
        // copy of this array leaves the ledger before the frees below —
        // replaced blocks change identity per index, and surviving
        // entries would only ever be version-stale lazy misses.
        p.cache->invalidate_tail(array_id(), 0);
      }
    });
    if (RCUA_SCHED_MUT(migrate_publish_before_copy_complete)) {
      // MUTATION (sched harness only): the replacement spine is already
      // visible on every locale; only now do the pipelined copy
      // completions land — a reader in the window saw values the array
      // never stored.
      for (auto& f : copies) f.wait();
    }

    // -- 3. DRAIN + reclaim ----------------------------------------------
    auto free_moved = [&]() {
      for (std::size_t i : moved) {
        Block<T>* b = old_blocks[i];
        RCUA_SCHED_POINT("rcua.rehome.free_block");
        cluster_.locale(b->owner()).note_free(b->capacity() * sizeof(T));
        sim::charge(m.alloc_block_ns / 2);
        if constexpr (Policy::is_qsbr) {
          qsbr_->defer_delete(b);
        } else {
          delete b;
        }
      }
    };
    bool freed_early = false;
    if (RCUA_SCHED_MUT(migrate_reclaim_before_mapping_drain)) {
      // MUTATION (sched harness only): reclaim the replaced source
      // blocks before the old mapping's readers drained — a section
      // that pinned the old spine still holds pointers into them.
      free_moved();
      freed_early = true;
    }
    cluster_.coforall_locales([&](std::uint32_t l) {
      PerLocale& p = priv_at(l);
      if constexpr (Policy::is_qsbr) {
        // Deferral gates reclamation; nothing to drain here.
        (void)p;
      } else if constexpr (Policy::is_interval) {
        // Replaced blocks are shared by every locale's old spine: mint a
        // fence era and wait it out, exactly like resize_remove.
        const std::uint64_t fence = p.ebr.advance_era();
        RCUA_SCHED_POINT("rcua.rehome.epoch_bumped");
        p.ebr.wait_for_readers(fence);
        RCUA_SCHED_POINT("rcua.rehome.drained");
        p.ebr.scan();
      } else {
        // Deliberately BLOCKING even under a non-blocking stall policy,
        // for the same reason as resize_remove (DESIGN.md §8).
        const auto epoch = p.ebr.advance_epoch();
        RCUA_SCHED_POINT("rcua.rehome.epoch_bumped");
        p.ebr.wait_for_readers(epoch);
        RCUA_SCHED_POINT("rcua.rehome.drained");
        delete retired[l];
      }
    });
    if (!freed_early) free_moved();
    home_locale_ = dst;
    rehomes_.fetch_add(1, std::memory_order_relaxed);
    write_lock_.unlock();
    return true;
  }

  /// This array's pinned home locale (Options::home_locale, updated by
  /// rehome); Options::kNoHomeLocale when blocks distribute round-robin.
  [[nodiscard]] std::uint32_t home_locale() const noexcept {
    return home_locale_;
  }
  /// Completed rehome() migrations.
  [[nodiscard]] std::uint64_t rehomes() const noexcept {
    return rehomes_.load(std::memory_order_relaxed);
  }
  /// rehome() calls rolled back by an injected kKillLocale fault.
  [[nodiscard]] std::uint64_t rehome_rollbacks() const noexcept {
    return rehome_rollbacks_.load(std::memory_order_relaxed);
  }

  // -- Snapshot views ----------------------------------------------------

  /// A pinned, read-only view of one snapshot: amortizes the read-side
  /// protocol over many accesses and guarantees a *consistent* block
  /// table (capacity cannot change under the view). Under EBR the view
  /// holds the read-side critical section open, so writers wait for it —
  /// keep views short-lived. Under QSBR validity follows the usual rule:
  /// the view dies at the holder's next checkpoint.
  class View {
   public:
    explicit View(RCUArray& arr)
        : arr_(arr), snapshot_(nullptr), guard_(nullptr) {
      PerLocale& p = arr.priv();
      if constexpr (Policy::is_qsbr) {
        arr.qsbr_->ensure_participant();
        snapshot_ = p.global_snapshot.load(std::memory_order_acquire);
      } else if constexpr (Policy::is_interval) {
        guard_ = std::make_unique<typename Policy::Reclaimer::ReadGuard>(
            p.ebr);
        // The protect loop IS the snapshot load: the era reservation it
        // publishes is what keeps this spine pending for the view's
        // lifetime.
        snapshot_ = guard_->protect(p.global_snapshot);
      } else {
        guard_ = std::make_unique<typename Policy::Reclaimer::ReadGuard>(
            p.ebr);
        snapshot_ = p.global_snapshot.load(std::memory_order_acquire);
      }
      // Hoist the pinned snapshot version onto the guard once: every
      // consumer (cache tags, charging) reads this value instead of
      // re-deriving it from the snapshot per access.
      version_ = snapshot_->version();
      sim::charge(sim::CostModel::get().atomic_load_ns);
    }

    [[nodiscard]] std::size_t capacity() const noexcept {
      return snapshot_->capacity();
    }
    [[nodiscard]] std::size_t num_blocks() const noexcept {
      return snapshot_->num_blocks();
    }
    /// The snapshot version pinned at construction (DESIGN.md §11).
    [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

    const T& operator[](std::size_t i) const {
      const std::size_t bidx = i / arr_.block_size_;
      const std::size_t off = i % arr_.block_size_;
      Block<T>* b = snapshot_->block(bidx);
      const std::uint32_t here = arr_.cluster_.here();
      arr_.cluster_.comm().record_access(here, b->owner(), false);
      sim::touch_block(b->id(), b->owner() != here, false);
      return (*b)[off];
    }

   private:
    RCUArray& arr_;
    Snapshot<T>* snapshot_;
    std::uint64_t version_ = 0;
    std::unique_ptr<typename Policy::Reclaimer::ReadGuard> guard_;
  };

  /// Pins the calling locale's current snapshot (see View).
  [[nodiscard]] View view() { return View(*this); }

  // -- Bulk / parallel operations ----------------------------------------

  /// Tuning for the destination-aggregated bulk operations below.
  struct BulkOptions {
    /// Element-ops buffered per destination locale before the aggregator
    /// auto-flushes (rt::Aggregator::Options::capacity). 1 degenerates to
    /// one remote execution per *span* (still never per element).
    std::size_t buffer_capacity = 1024;
    /// for_each_block only: the callback writes elements, so spans are
    /// charged as writes in the locality model. bulk_read/bulk_write set
    /// their direction themselves and ignore this.
    bool mutate = false;
    /// Pipeline the aggregator's flushes through the async comm layer
    /// (rt::AsyncComm): remote executions overlap instead of
    /// serializing, and their completions are drained inside the same
    /// read-side section (DESIGN.md §10). false = PR 4's synchronous
    /// flush model. Results and comm counters are identical either way.
    bool async = true;
    /// Per-destination in-flight window for async mode; 0 defers to the
    /// RCUA_COMM_WINDOW environment variable (default 32).
    std::size_t window = 0;
  };

  /// Copies elements [first, first+count) into `out[0..count)` with ONE
  /// snapshot resolution and one read-side critical section for the whole
  /// range, draining remote spans through a destination aggregator: the
  /// communication cost is one remote execution per destination flush —
  /// O(blocks touched), not O(count) GETs. Safe concurrently with
  /// resize_add (the pinned snapshot plus Lemma 6's recycled blocks; see
  /// DESIGN.md §9). Throws std::out_of_range (before copying anything)
  /// when the range exceeds the snapshot's capacity.
  void bulk_read(std::size_t first, std::size_t count, T* out,
                 BulkOptions opts = {}) {
    bulk_visit(first, count, /*is_write=*/false, opts,
               [out, first](std::size_t base, T* data, std::size_t len) {
                 T* dst = out + (base - first);
                 if constexpr (plat::relaxed_capable_v<T>) {
                   for (std::size_t k = 0; k < len; ++k) {
                     dst[k] = plat::relaxed_load(data[k]);
                   }
                 } else {
                   std::copy(data, data + len, dst);
                 }
               });
  }

  /// Convenience overload returning the elements in a fresh vector.
  [[nodiscard]] std::vector<T> bulk_read(std::size_t first,
                                         std::size_t count,
                                         BulkOptions opts = {}) {
    std::vector<T> out(count);
    bulk_read(first, count, out.data(), opts);
    return out;
  }

  /// Writes `values` over elements [first, first+values.size()) under
  /// the same single-snapshot / aggregated-drain regime as bulk_read.
  /// Writes into recycled blocks, so they stay visible across concurrent
  /// resize_adds (Lemma 6). Element-level atomicity matches write():
  /// relaxed per-element stores for machine-word T, plain stores
  /// otherwise.
  void bulk_write(std::size_t first, std::span<const T> values,
                  BulkOptions opts = {}) {
    bulk_visit(first, values.size(), /*is_write=*/true, opts,
               [values, first](std::size_t base, T* data, std::size_t len) {
                 const T* src = values.data() + (base - first);
                 if constexpr (plat::relaxed_capable_v<T>) {
                   for (std::size_t k = 0; k < len; ++k) {
                     plat::relaxed_store(data[k], src[k]);
                   }
                 } else {
                   std::copy(src, src + len, data);
                 }
               });
  }

  /// Runs `fn(base_index, T* data, len)` over the maximal contiguous
  /// per-block spans covering [first, first+count), resolved against one
  /// pinned snapshot and drained destination-aggregated: spans of blocks
  /// owned by the calling locale run inline; remote spans are shipped in
  /// destination buffers, one remote execution per flush. `fn` runs for
  /// every span exactly once, but span order is the aggregator's drain
  /// order, not index order. `fn` MUST NOT touch this array (the
  /// read-side section is open) and must not retain `data` past its own
  /// invocation.
  template <typename F>
  void for_each_block(std::size_t first, std::size_t count, F&& fn,
                      BulkOptions opts = {}) {
    bulk_visit(first, count, /*is_write=*/opts.mutate, opts,
               std::forward<F>(fn));
  }

  /// Runs `fn(global_block_index, Block<T>&)` for every block, each on a
  /// task on the block's OWNING locale — the locality-aware loop the
  /// paper's DSI future work calls for. Not concurrent-resize-safe (the
  /// iteration space is fixed at entry).
  template <typename F>
  void for_each_block_local(F&& fn) {
    cluster_.coforall_locales([&](std::uint32_t l) {
      PerLocale& p = priv_at(l);
      Snapshot<T>* s = p.global_snapshot.load(std::memory_order_acquire);
      for (std::size_t b = 0; b < s->num_blocks(); ++b) {
        Block<T>* blk = s->block(b);
        if (blk->owner() != l) continue;
        sim::touch_block(blk->id(), false, true);
        fn(b, *blk);
      }
    });
  }

  /// Like for_each_block_local but runs on the CALLING task for a single
  /// locale's blocks — for use inside an enclosing coforall body that is
  /// already placed on `locale`.
  template <typename F>
  void for_each_local_block_inline(std::uint32_t locale, F&& fn) {
    PerLocale& p = priv_at(locale);
    Snapshot<T>* s = p.global_snapshot.load(std::memory_order_acquire);
    for (std::size_t b = 0; b < s->num_blocks(); ++b) {
      Block<T>* blk = s->block(b);
      if (blk->owner() != locale) continue;
      sim::touch_block(blk->id(), false, false);
      fn(b, *blk);
    }
  }

  /// Parallel fill, executed with full locality.
  void fill(const T& value) {
    const auto& m = sim::CostModel::get();
    for_each_block_local([&](std::size_t, Block<T>& blk) {
      for (std::size_t i = 0; i < blk.capacity(); ++i) blk[i] = value;
      sim::charge(m.bulk_copy_ns_per_elem *
                  static_cast<double>(blk.capacity()));
    });
  }

  /// Parallel reduction: `fn(acc, element)` folds each locale's local
  /// elements, partials combined with `combine`. T and R must be
  /// copyable; the array must not be resized concurrently.
  template <typename R, typename Fold, typename Combine>
  [[nodiscard]] R reduce(R init, Fold&& fn, Combine&& combine) {
    std::mutex mu;
    R total = init;
    const auto& m = sim::CostModel::get();
    cluster_.coforall_locales([&](std::uint32_t l) {
      PerLocale& p = priv_at(l);
      Snapshot<T>* s = p.global_snapshot.load(std::memory_order_acquire);
      R partial = init;
      for (std::size_t b = 0; b < s->num_blocks(); ++b) {
        Block<T>* blk = s->block(b);
        if (blk->owner() != l) continue;
        sim::touch_block(blk->id(), false, false);
        for (std::size_t i = 0; i < blk->capacity(); ++i) {
          partial = fn(std::move(partial), (*blk)[i]);
        }
        sim::charge(m.bulk_copy_ns_per_elem *
                    static_cast<double>(blk->capacity()) / 4.0);
      }
      std::lock_guard<std::mutex> guard(mu);
      total = combine(std::move(total), std::move(partial));
    });
    return total;
  }

  // -- Introspection ----------------------------------------------------

  /// Element capacity of the current locale's snapshot.
  [[nodiscard]] std::size_t capacity() const {
    return with_snapshot(
        [](const Snapshot<T>& s) { return s.capacity(); });
  }

  [[nodiscard]] std::size_t num_blocks() const {
    return with_snapshot(
        [](const Snapshot<T>& s) { return s.num_blocks(); });
  }

  /// Locale owning the block that holds element `i`.
  [[nodiscard]] std::uint32_t block_owner(std::size_t i) const {
    const std::size_t bidx = i / block_size_;
    return with_snapshot(
        [&](const Snapshot<T>& s) { return s.block(bidx)->owner(); });
  }

  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

  // -- Block cache observability (rt::BlockCache; DESIGN.md §11) --------

  /// True when the per-locale remote-block cache is active (capacity>0).
  [[nodiscard]] bool cache_enabled() const noexcept {
    return cache_capacity_ > 0;
  }
  [[nodiscard]] std::size_t cache_capacity_bytes() const noexcept {
    return cache_capacity_;
  }
  [[nodiscard]] rt::BlockCache::Stats cache_stats_at(
      std::uint32_t locale) const {
    return priv_at(locale).cache->stats();
  }
  [[nodiscard]] std::size_t cache_bytes_used_at(std::uint32_t locale) const {
    return priv_at(locale).cache->bytes_used();
  }
  [[nodiscard]] std::size_t cache_entries_at(std::uint32_t locale) const {
    return priv_at(locale).cache->entries();
  }
  [[nodiscard]] std::uint64_t resize_count() const noexcept {
    return resizes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] rt::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] int pid() const noexcept { return pid_; }
  [[nodiscard]] rt::GlobalLock& write_lock() noexcept { return write_lock_; }

  /// Read-side stats of the calling locale's EBR instance (EBR policy).
  /// `reads`/`read_retries` require a -DRCUA_STATS=ON build (zero
  /// otherwise); `epoch_advances` is always live.
  [[nodiscard]] typename Policy::Reclaimer::Stats ebr_stats_at(
      std::uint32_t locale) const {
    return priv_at(locale).ebr.stats();
  }

  // -- Stall tolerance observability ------------------------------------

  /// Resize publish rounds repeated because a locale's broadcast step
  /// was dropped (injected fault) — each increment is one retry sweep.
  [[nodiscard]] std::uint64_t broadcast_retries() const noexcept {
    return broadcast_retries_.load(std::memory_order_relaxed);
  }
  /// Spines deferred onto an overflow list because their drain timed out.
  [[nodiscard]] std::uint64_t stalled_spines() const noexcept {
    return stalled_spines_.load(std::memory_order_relaxed);
  }
  /// Bytes currently parked on overflow lists across all locales.
  [[nodiscard]] std::size_t overflow_pending_bytes() const {
    std::size_t total = 0;
    for (std::uint32_t l = 0; l < cluster_.num_locales(); ++l) {
      total += priv_at(l).overflow.pending_bytes();
    }
    return total;
  }
  /// Spines currently parked on overflow lists across all locales.
  [[nodiscard]] std::size_t overflow_pending_objects() const {
    std::size_t total = 0;
    for (std::uint32_t l = 0; l < cluster_.num_locales(); ++l) {
      total += priv_at(l).overflow.pending_objects();
    }
    return total;
  }
  /// The watchdog this array reports to.
  [[nodiscard]] reclaim::StallMonitor& stall_monitor() noexcept {
    return *monitor_;
  }

  /// Retired-but-unreclaimed spine bytes across all locales, whatever
  /// list they live on: EBR overflow lists, or the (bounded) era retire
  /// lists of the interval policies. QSBR deferral is process-global and
  /// not counted here.
  [[nodiscard]] std::size_t reclaim_pending_bytes() const {
    std::size_t total = 0;
    for (std::uint32_t l = 0; l < cluster_.num_locales(); ++l) {
      if constexpr (Policy::is_interval) {
        total += priv_at(l).ebr.pending_bytes();
      } else {
        total += priv_at(l).overflow.pending_bytes();
      }
    }
    return total;
  }
  /// Spine count behind reclaim_pending_bytes().
  [[nodiscard]] std::size_t reclaim_pending_objects() const {
    std::size_t total = 0;
    for (std::uint32_t l = 0; l < cluster_.num_locales(); ++l) {
      if constexpr (Policy::is_interval) {
        total += priv_at(l).ebr.pending_objects();
      } else {
        total += priv_at(l).overflow.pending_objects();
      }
    }
    return total;
  }

  /// Manually retries reclamation of every locale's deferred spines
  /// (resizes do this opportunistically anyway). Returns spines freed.
  std::size_t reclaim_overflow() {
    write_lock_.lock();
    std::atomic<std::size_t> before{0};
    std::atomic<std::size_t> after{0};
    auto pending_at = [&](PerLocale& p) {
      if constexpr (Policy::is_interval) {
        return p.ebr.pending_objects();
      } else {
        return p.overflow.pending_objects();
      }
    };
    cluster_.coforall_locales([&](std::uint32_t l) {
      PerLocale& p = priv_at(l);
      before.fetch_add(pending_at(p), std::memory_order_relaxed);
      flush_overflow_at(l);
      after.fetch_add(pending_at(p), std::memory_order_relaxed);
    });
    write_lock_.unlock();
    return before.load(std::memory_order_relaxed) -
           after.load(std::memory_order_relaxed);
  }

 private:
  /// The privatized per-locale copy (Listing 1's RCUArrayMetaData).
  struct alignas(plat::kCacheLine) PerLocale {
    std::atomic<Snapshot<T>*> global_snapshot{nullptr};
    // Under QSBR the reclaimer is never exercised; pin it to one stripe
    // so the (per-locale) instance does not allocate a full bank.
    typename Policy::Reclaimer ebr{0, Policy::is_qsbr ? std::size_t{1}
                                                      : std::size_t{0}};
    std::uint32_t next_locale_id = 0;
    /// Era policies: the era current when this locale's LIVE spine was
    /// allocated — becomes its lifetime's lower tag when the next resize
    /// retires it. Written only under the write lock; the initial
    /// snapshot is born at era 0, matching the zero init.
    std::uint64_t spine_birth_era = 0;
    /// Spines whose grace-period drain timed out, parked until both
    /// reader columns have been observed empty since the push. Per-
    /// locale is sufficient: a spine on locale l is only ever
    /// dereferenced under locale l's EBR instance (the snapshot pointer
    /// is privatized).
    reclaim::OverflowRetireList overflow;
    /// Per-locale remote-block cache (DESIGN.md §11); constructed with
    /// the array, disabled when capacity is 0.
    std::unique_ptr<rt::BlockCache> cache;
  };

  [[nodiscard]] static std::size_t spine_bytes(
      const Snapshot<T>& s) noexcept {
    return sizeof(Snapshot<T>) + s.num_blocks() * sizeof(Block<T>*);
  }

  /// EBR spine retirement with stall tolerance (RCU_Write lines 5-8,
  /// deadline-bounded). Returns true when the drain completed and `old`
  /// was freed; false when the deadline expired and `old` was deferred
  /// onto locale `l`'s overflow list (bytes accounted on the locale and
  /// against the watchdog budget).
  bool retire_spine_ebr(PerLocale& p, std::uint32_t l, Snapshot<T>* old) {
    const auto epoch = p.ebr.advance_epoch();
    RCUA_SCHED_POINT("rcua.resize.epoch_bumped");
    const reclaim::DrainResult drain =
        p.ebr.try_wait_for_readers(epoch, stall_policy_);
    // The drained fast path is only sound while the overflow list is
    // empty: a pending entry means an earlier grace period on this
    // domain never completed, so a reader announced on the *other*
    // parity may have loaded `old` before this resize unpublished it
    // (DESIGN.md §8). With entries pending, `old` joins the overflow
    // list and waits for both columns like everything else.
    if (drain.drained && p.overflow.pending_objects() == 0) {
      RCUA_SCHED_POINT("rcua.resize.retire_spine");
      obs::trace_instant("rcua.resize.reclaim", "rcua", l);
      delete old;
      return true;
    }
    reclaim::StallDiagnostic diag;
    diag.kind = reclaim::StallDiagnostic::Kind::kEbrReader;
    diag.domain = &p.ebr;
    diag.locale = l;
    diag.epoch = static_cast<std::uint64_t>(epoch);
    diag.stripe = drain.stuck_stripe;
    diag.stuck_readers = drain.stuck_readers;
    diag.waited_ns = drain.waited_ns;
    // Only an expired deadline is a stall; a drained-but-deferred spine
    // (premise broken by an earlier stall) is bookkeeping, not news.
    if (!drain.drained) monitor_->record_stall(diag);
    const std::size_t bytes = spine_bytes(*old);
    if (monitor_->would_exceed(bytes)) {
      monitor_->escalate(diag);  // aborts under kFatal
      if (monitor_->escalation() ==
          reclaim::StallMonitor::Escalation::kBlock) {
        // Hard memory bound: refuse the overflow and pay the blocking
        // drain instead — memory stays bounded, resize latency degrades.
        // Draining the overflow list first restores the fast-path
        // premise, after which this spine's own column gates it.
        plat::Backoff backoff(/*yield_threshold=*/4);
        for (;;) {
          flush_overflow_at(l);
          if (p.overflow.pending_objects() == 0 &&
              p.ebr.readers_at(static_cast<std::size_t>(epoch % 2)) == 0) {
            break;
          }
          backoff.pause();
        }
        RCUA_SCHED_POINT("rcua.resize.retire_spine");
        obs::trace_instant("rcua.resize.reclaim", "rcua", l);
        delete old;
        return true;
      }
      // kWarn: budget waived by configuration; fall through and defer.
    }
    stalled_spines_.fetch_add(1, std::memory_order_relaxed);
    monitor_->note_overflow(bytes);
    cluster_.locale(l).note_alloc(bytes);
    p.overflow.push([](void* s) { delete static_cast<Snapshot<T>*>(s); },
                    old, bytes, static_cast<std::uint64_t>(epoch));
    RCUA_SCHED_POINT("rcua.resize.overflow_spine");
    return false;
  }

  /// Era spine retirement (IBR / hazard eras): stamps the spine's
  /// [birth, retire] interval, ticks the era clock and scans — never
  /// waits on readers and never defers to the overflow list. A stalled
  /// reservation is a fixed interval, so it keeps at most the spines
  /// whose lifetime overlaps it pending (≤ 2 per locale, independent of
  /// how many resizes run past it; DESIGN.md §13) — the bound holds by
  /// construction, with no budget to escalate. The StallMonitor still
  /// hears about the stalled reader, as a purely diagnostic
  /// kEraReservation once the laggard trails by kEraStallLagThreshold.
  static constexpr std::uint64_t kEraStallLagThreshold = 3;

  void retire_spine_interval(PerLocale& p, std::uint32_t l,
                             Snapshot<T>* old, std::uint64_t birth_era) {
    const std::size_t bytes = spine_bytes(*old);
    const reclaim::RetireResult res = p.ebr.retire(
        [](void* s) { delete static_cast<Snapshot<T>*>(s); }, old, bytes,
        birth_era);
    obs::trace_instant("rcua.resize.reclaim", "rcua", l);
    if (res.pending_objects > 0 &&
        res.reservation_lag >= kEraStallLagThreshold) {
      obs::health::epoch_lag().update_max(res.reservation_lag);
      reclaim::StallDiagnostic diag;
      diag.kind = reclaim::StallDiagnostic::Kind::kEraReservation;
      diag.domain = &p.ebr;
      diag.locale = l;
      diag.epoch = res.era;
      diag.stripe = res.laggard_slot;
      diag.era_lag = res.reservation_lag;
      diag.overflow_bytes = res.pending_bytes;
      monitor_->record_stall(diag);
    }
  }

  /// Frees locale `l`'s deferred spines that have seen both reader
  /// columns empty since deferral (the "retry reclamation
  /// opportunistically" half of the watchdog design; called from every
  /// resize path and reclaim_overflow()). Era policies have no overflow
  /// list — their pending spines live on the reclaimer's own (bounded)
  /// retire list, and a scan is the retry.
  void flush_overflow_at(std::uint32_t l) {
    PerLocale& p = priv_at(l);
    if constexpr (Policy::is_interval) {
      if (p.ebr.pending_objects() != 0) p.ebr.scan();
    } else {
      if (p.overflow.pending_objects() == 0) return;
      const auto flushed = p.overflow.flush_ready(
          [&](std::size_t parity) { return p.ebr.readers_at(parity) == 0; });
      if (flushed.objects != 0) {
        cluster_.locale(l).note_free(flushed.bytes);
        monitor_->note_flushed(flushed.bytes, flushed.objects);
      }
    }
  }

  [[nodiscard]] PerLocale& priv() const {
    return priv_at(cluster_.here());
  }
  [[nodiscard]] PerLocale& priv_at(std::uint32_t locale) const {
    // chpl_getPrivatizedCopy(PID)
    auto* p = static_cast<PerLocale*>(
        cluster_.privatization().get(pid_, locale));
    assert(p != nullptr);
    return *p;
  }

  /// Shared engine of bulk_read/bulk_write/for_each_block. Resolves the
  /// calling locale's snapshot ONCE, partitions [first, first+count)
  /// into per-block spans, and pushes one span-op per block region into
  /// a destination aggregator keyed by the owning locale. The whole
  /// partition-and-drain runs under a single read-side critical section
  /// (EBR ReadGuard / QSBR participant), and the aggregator is drained
  /// BEFORE that section closes — the span-ops capture raw block
  /// pointers, and the pinned snapshot is exactly what keeps a
  /// concurrent resize_remove's grace period from freeing the blocks
  /// under them (DESIGN.md §9). The `bulk_flush_after_release` mutation
  /// moves the drain past the section close; the sched harness proves
  /// that variant loses (tests/test_sched_bulk.cpp).
  ///
  /// `span_fn(base_index, T* data, len)` must not re-enter this array.
  template <typename SpanFn>
  void bulk_visit(std::size_t first, std::size_t count, bool is_write,
                  const BulkOptions& opts, SpanFn&& span_fn) {
    if (count == 0) return;
    const auto& m = sim::CostModel::get();
    PerLocale& p = priv();
    const std::uint32_t here = cluster_.here();
    rt::Aggregator agg(cluster_,
                       rt::Aggregator::Options{.capacity = opts.buffer_capacity,
                                               .async = opts.async,
                                               .window = opts.window});

    auto body = [&](Snapshot<T>* s) {
      sim::charge(m.atomic_load_ns);
      RCUA_SCHED_POINT("rcua.bulk.pinned");
      const std::size_t end = first + count;
      if (end < first || end > s->capacity()) {
        throw std::out_of_range(
            "RCUArray::bulk: range [" + std::to_string(first) + ", " +
            std::to_string(first) + "+" + std::to_string(count) +
            ") exceeds capacity " + std::to_string(s->capacity()));
      }
      // The pinned snapshot version, hoisted ONCE — the cache tags below
      // and the sched/charge paths all read this same value instead of
      // re-deriving it per span.
      const std::uint64_t pinned_version = s->version();
      const bool use_cache = cache_enabled() && !is_write;
      const bool bump_gens = cache_enabled() && is_write;
      // Cache-miss fills in flight. Each block appears in at most one
      // span (spans are maximal per-block runs), so no per-block dedup
      // is needed; fills PIPELINE under the async window alongside each
      // other and are served after the drain below, still in-section.
      std::vector<BlockFill> fills;
      std::optional<rt::AsyncComm> fill_async;
      const double copy_ns = m.bulk_copy_ns_per_elem;
      std::size_t i = first;
      while (i < end) {
        const std::size_t bidx = i / block_size_;
        const std::size_t off = i % block_size_;
        const std::size_t len = std::min(block_size_ - off, end - i);
        Block<T>* b = s->block(bidx);
        // Everything the deferred op needs, captured by VALUE: the op
        // must not chase the spine (which this call's pin does not
        // outlive) when it finally runs.
        T* data = b->data() + off;
        const std::uint64_t bid = b->id();
        const std::uint32_t owner = b->owner();
        const std::size_t base = i;
        if (use_cache && owner != here) {
          sim::charge(m.cache_lookup_ns);
          const std::uint64_t gen = b->generation();
          if (auto cached =
                  p.cache->lookup(array_id(), bidx, pinned_version, gen)) {
            // Hit: serve the span inline from the node-local copy. The
            // const_cast is sound because is_write is false — span_fn
            // only reads through the pointer (bulk_read/for_each_block
            // contract).
            sim::charge(m.cache_copy_ns_per_elem *
                        static_cast<double>(len));
            span_fn(base,
                    const_cast<T*>(reinterpret_cast<const T*>(
                        cached.get())) + off,
                    len);
          } else {
            if (!fill_async) {
              fill_async.emplace(cluster_.comm(), here,
                                 rt::AsyncComm::Options{.window = opts.window});
            }
            BlockFill f = issue_fill(*fill_async, p, *b, bidx);
            f.base = base;
            f.off = off;
            f.len = len;
            fills.push_back(std::move(f));
          }
          i += len;
          continue;
        }
        agg.push(owner, len, [=, &span_fn]() {
          sim::touch_block(bid, owner != here, is_write);
          sim::charge(copy_ns * static_cast<double>(len));
          span_fn(base, data, len);
          // Write-through coherence: the stores above landed; bumping
          // the generation now invalidates every locale's cached copy
          // of this block on its next lookup (DESIGN.md §11).
          if (bump_gens) b->bump_generation();
        });
        i += len;
      }
      if (!RCUA_SCHED_MUT(bulk_flush_after_release)) {
        // Flush AND drain while the snapshot is still pinned — the
        // correct protocol. In async mode the flush only *issues* the
        // remote executions; drain() is what runs their completions
        // against the pinned blocks, so it must also land inside the
        // section (the §10 completion-drain rule). Capacity-triggered
        // auto-flushes already happened inside the section too.
        agg.flush_all();
        if (!RCUA_SCHED_MUT(async_drain_after_release)) {
          agg.drain();
        }
      }
      // Cache fills always complete INSIDE the section, unconditionally:
      // the aggregator mutations above model aggregator bugs, and each
      // fill's completion copies out of a pinned block. insert() only
      // ever sees the completed copy — a fill that unwinds (exception,
      // cancelled session) never inserts, so no partial-block entry can
      // exist.
      for (BlockFill& f : fills) {
        const std::uint64_t fill_gen = f.done.get();
        p.cache->insert(array_id(), f.bidx, pinned_version, fill_gen, f.buf,
                        block_size_ * sizeof(T));
        sim::charge(m.cache_copy_ns_per_elem * static_cast<double>(f.len));
        span_fn(f.base, reinterpret_cast<T*>(f.buf.get()) + f.off, f.len);
      }
    };

    if constexpr (Policy::is_qsbr) {
      qsbr_->ensure_participant();
      body(p.global_snapshot.load(std::memory_order_acquire));
    } else if constexpr (Policy::is_interval) {
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      body(guard.protect(p.global_snapshot));
    } else {
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      body(p.global_snapshot.load(std::memory_order_acquire));
    }
    RCUA_SCHED_POINT("rcua.bulk.released");
    if (RCUA_SCHED_MUT(bulk_flush_after_release)) {
      // MUTATION (sched harness only): the buffered ops run after the
      // read-side section closed — a concurrent resize_remove may have
      // freed the blocks they point into.
      agg.flush_all();
      agg.drain();
    } else if (RCUA_SCHED_MUT(async_drain_after_release)) {
      // MUTATION (sched harness only): the flushes were ISSUED inside
      // the section, but their completions are delivered only now — the
      // async reopening of exactly the same use-after-reclaim window
      // (DESIGN.md §10; tests/test_sched_async.cpp).
      agg.drain();
    }
  }

  /// Runs `fn(slot, block)` against element `i` INSIDE the read-side
  /// section — the migration-safe twin of index_rw. Charges, sched
  /// points and comm accounting are identical to index_rw (the bench
  /// gate counts on it); the only difference is where the caller's
  /// access lands relative to the section exit. read()/write() use this
  /// so value ops stay correct concurrent with rehome(), whose replaced
  /// blocks are reclaimed (not recycled) after the drain — the §III-C
  /// escaping-reference relaxation that index() relies on does not
  /// survive a migration.
  template <typename F>
  decltype(auto) with_slot(std::size_t i, bool is_write, F&& fn) {
    const auto& m = sim::CostModel::get();
    sim::charge(m.rcua_index_ns);
    PerLocale& p = priv();
    const std::size_t bidx = i / block_size_;
    const std::size_t off = i % block_size_;
    const std::uint32_t here = cluster_.here();

    auto helper = [&](Snapshot<T>* s) -> decltype(auto) {
      RCUA_SCHED_POINT("rcua.index.deref_spine");
      assert(bidx < s->num_blocks() && "index beyond current capacity");
      Block<T>* b = s->block(bidx);
      cluster_.comm().record_access(here, b->owner(), is_write);
      sim::touch_block(b->id(), b->owner() != here, is_write,
                       m.rcua_spine_miss_ns);
      return fn((*b)[off], b);
    };

    if constexpr (Policy::is_qsbr) {
      qsbr_->ensure_participant();
      Snapshot<T>* s = p.global_snapshot.load(std::memory_order_acquire);
      sim::charge(m.atomic_load_ns);
      if (rt::FaultPlan* plan = cluster_.fault_plan()) {
        plan->stall_here(here);  // chaos: stall while holding the snapshot
      }
      return helper(s);
    } else if constexpr (Policy::is_interval) {
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      sim::charge(m.atomic_load_ns);
      Snapshot<T>* s = guard.protect(p.global_snapshot);
      if (rt::FaultPlan* plan = cluster_.fault_plan()) {
        plan->stall_here(here);  // chaos: stall while holding a reservation
      }
      return helper(s);
    } else {
      return p.ebr.read([&]() -> decltype(auto) {
        sim::charge(m.atomic_load_ns);
        if (rt::FaultPlan* plan = cluster_.fault_plan()) {
          plan->stall_here(here);  // chaos: stall mid-read-section
        }
        return helper(p.global_snapshot.load(std::memory_order_acquire));
      });
    }
  }

  T& index_rw(std::size_t i, bool is_write, Block<T>** out_block = nullptr) {
    const auto& m = sim::CostModel::get();
    sim::charge(m.rcua_index_ns);
    PerLocale& p = priv();
    const std::size_t bidx = i / block_size_;   // line 1
    const std::size_t off = i % block_size_;    // line 2
    const std::uint32_t here = cluster_.here();

    auto helper = [&](Snapshot<T>* s) -> T& {  // nested proc Helper
      RCUA_SCHED_POINT("rcua.index.deref_spine");
      assert(bidx < s->num_blocks() && "index beyond current capacity");
      Block<T>* b = s->block(bidx);
      if (out_block != nullptr) *out_block = b;
      cluster_.comm().record_access(here, b->owner(), is_write);
      sim::touch_block(b->id(), b->owner() != here, is_write,
                       m.rcua_spine_miss_ns);
      return (*b)[off];  // line 3
    };

    if constexpr (Policy::is_qsbr) {
      // line 6: safe to use the snapshot directly — it will not be
      // reclaimed before this thread's next checkpoint. The thread must
      // be visible to the safe-epoch minimum first (the paper's "all
      // threads act as participants").
      qsbr_->ensure_participant();
      Snapshot<T>* s = p.global_snapshot.load(std::memory_order_acquire);
      sim::charge(m.atomic_load_ns);
      if (rt::FaultPlan* plan = cluster_.fault_plan()) {
        plan->stall_here(here);  // chaos: stall while holding the snapshot
      }
      return helper(s);
    } else if constexpr (Policy::is_interval) {
      // Era read section: the reservation published by protect() covers
      // the spine until the guard dies. The returned reference escapes
      // the section deliberately, same as EBR below (§III-C): it points
      // into a recycled block, not the reclaimed spine.
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      sim::charge(m.atomic_load_ns);
      Snapshot<T>* s = guard.protect(p.global_snapshot);
      if (rt::FaultPlan* plan = cluster_.fault_plan()) {
        plan->stall_here(here);  // chaos: stall while holding a reservation
      }
      return helper(s);
    } else {
      // line 8: RCU_Read with Helper as the λ. The returned reference
      // escapes the critical section deliberately (§III-C): it points
      // into a recycled block, not the reclaimed spine.
      return p.ebr.read([&]() -> T& {
        sim::charge(m.atomic_load_ns);
        if (rt::FaultPlan* plan = cluster_.fault_plan()) {
          plan->stall_here(here);  // chaos: stall mid-read-section
        }
        return helper(p.global_snapshot.load(std::memory_order_acquire));
      });
    }
  }

  // -- Block cache machinery (DESIGN.md §11) ---------------------------

  /// Cache key namespace: one id per array instance (pids are unique for
  /// the cluster's lifetime, and per-locale caches die with the array).
  [[nodiscard]] std::uint64_t array_id() const noexcept {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid_));
  }

  /// One in-flight whole-block cache fill. The future resolves — at
  /// completion, which always lands inside the filler's pinned section —
  /// to the write generation sampled immediately BEFORE the copy, so a
  /// cached copy holding a pre-write value always carries a pre-write
  /// generation (the stale-tag direction the coherence argument needs).
  struct BlockFill {
    rt::future<std::uint64_t> done;
    std::shared_ptr<std::byte[]> buf;
    std::size_t bidx = 0;
    // The span that missed, served from `buf` after the fill drains
    // (bulk path; read() serves the single element itself).
    std::size_t base = 0;
    std::size_t off = 0;
    std::size_t len = 0;
  };

  /// Issues ONE whole-block fetch of `b` through `async` and counts one
  /// fill: the single remote execute that replaces O(elements) remote
  /// traffic for every later hit. The completion closure runs on the
  /// destination's timeline, inside the caller's pinned section, and
  /// copies with per-element relaxed loads (§III-C element races stay
  /// defined).
  BlockFill issue_fill(rt::AsyncComm& async, PerLocale& p, Block<T>& b,
                       std::size_t bidx) {
    BlockFill f;
    f.bidx = bidx;
    const std::size_t n = block_size_;
    f.buf = std::shared_ptr<std::byte[]>(new std::byte[n * sizeof(T)]);
    T* dst = reinterpret_cast<T*>(f.buf.get());
    Block<T>* bp = &b;
    p.cache->note_fill();
    f.done = async.execute(
        b.owner(), /*weight=*/n, [bp, dst, n]() -> std::uint64_t {
          RCUA_SCHED_POINT("rcua.cache.fill_copy");
          const std::uint64_t gen = bp->generation();  // BEFORE the copy
          const T* src = bp->data();
          if constexpr (plat::relaxed_capable_v<T>) {
            for (std::size_t k = 0; k < n; ++k) {
              dst[k] = plat::relaxed_load(src[k]);
            }
          } else {
            std::copy(src, src + n, dst);
          }
          sim::charge(sim::CostModel::get().cache_copy_ns_per_elem *
                      static_cast<double>(n));
          return gen;
        });
    return f;
  }

  /// read() with the cache enabled: consult the calling locale's
  /// BlockCache inside the read-side section; a hit costs one lookup
  /// plus one node-local element copy, a miss fills the whole block and
  /// inserts it under the pinned snapshot version. Local blocks take
  /// exactly the uncached charging (caching one's own blocks would only
  /// add a copy).
  T read_cached(std::size_t i) {
    const auto& m = sim::CostModel::get();
    sim::charge(m.rcua_index_ns);
    PerLocale& p = priv();
    const std::size_t bidx = i / block_size_;
    const std::size_t off = i % block_size_;
    const std::uint32_t here = cluster_.here();

    auto body = [&](Snapshot<T>* s) -> T {
      sim::charge(m.atomic_load_ns);
      if (rt::FaultPlan* plan = cluster_.fault_plan()) {
        plan->stall_here(here);  // chaos: stall while holding the snapshot
      }
      RCUA_SCHED_POINT("rcua.index.deref_spine");
      if (bidx >= s->num_blocks()) {
        throw std::out_of_range(
            "RCUArray::read: index " + std::to_string(i) + " >= capacity " +
            std::to_string(s->capacity()));
      }
      // The pinned version is hoisted off the snapshot ONCE — the cache
      // tag, the sched points and the charges below all read this value.
      const std::uint64_t pinned_version = s->version();
      Block<T>* b = s->block(bidx);
      if (b->owner() == here) {
        cluster_.comm().record_access(here, here, false);
        sim::touch_block(b->id(), false, false, m.rcua_spine_miss_ns);
        if constexpr (plat::relaxed_capable_v<T>) {
          return plat::relaxed_load((*b)[off]);
        } else {
          return (*b)[off];
        }
      }
      sim::charge(m.cache_lookup_ns);
      const std::uint64_t gen = b->generation();
      auto cached = p.cache->lookup(array_id(), bidx, pinned_version, gen);
      if (cached == nullptr) {
        // Miss: fill the whole block. The future drains HERE, inside
        // the section — the copy source is the pinned snapshot's block
        // (the drain-before-release rule extended to fills).
        rt::AsyncComm async(cluster_.comm(), here);
        BlockFill f = issue_fill(async, p, *b, bidx);
        const std::uint64_t fill_gen = f.done.get();
        p.cache->insert(array_id(), bidx, pinned_version, fill_gen, f.buf,
                        block_size_ * sizeof(T));
        cached = f.buf;
      }
      sim::charge(m.cache_copy_ns_per_elem);
      return reinterpret_cast<const T*>(cached.get())[off];
    };

    if constexpr (Policy::is_qsbr) {
      qsbr_->ensure_participant();
      return body(p.global_snapshot.load(std::memory_order_acquire));
    } else if constexpr (Policy::is_interval) {
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      return body(guard.protect(p.global_snapshot));
    } else {
      // Explicit guard (not ebr.read): the bounds check above may throw,
      // and the guard's destructor retracts on unwind.
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      return body(p.global_snapshot.load(std::memory_order_acquire));
    }
  }

  template <typename F>
  [[nodiscard]] auto with_snapshot(F&& fn) const {
    PerLocale& p = priv();
    if constexpr (Policy::is_qsbr) {
      qsbr_->ensure_participant();
      return fn(*p.global_snapshot.load(std::memory_order_acquire));
    } else if constexpr (Policy::is_interval) {
      typename Policy::Reclaimer::ReadGuard guard(p.ebr);
      return fn(*guard.protect(p.global_snapshot));
    } else {
      return p.ebr.read([&] {
        return fn(*p.global_snapshot.load(std::memory_order_acquire));
      });
    }
  }

  rt::Cluster& cluster_;
  std::size_t block_size_;
  reclaim::Qsbr* qsbr_;
  reclaim::StallPolicy stall_policy_;
  reclaim::StallMonitor* monitor_;
  std::uint32_t max_publish_attempts_;
  std::size_t cache_capacity_;
  std::uint32_t home_locale_;
  rt::GlobalLock write_lock_;
  int pid_;
  std::atomic<std::uint64_t> resizes_{0};
  std::atomic<std::uint64_t> broadcast_retries_{0};
  std::atomic<std::uint64_t> stalled_spines_{0};
  std::atomic<std::uint64_t> rehomes_{0};
  std::atomic<std::uint64_t> rehome_rollbacks_{0};
};

}  // namespace rcua
