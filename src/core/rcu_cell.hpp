#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "reclaim/ebr.hpp"

namespace rcua {

/// A single RCU-protected object using the paper's TLS-free EBR,
/// decoupled from RCUArray — the "future work" the conclusion names
/// ("the decoupling of EBR from RCUArray can be performed easily ... and
/// can even be used in other languages that lack official support for
/// TLS").
///
/// Readers run a function against a stable snapshot of the object;
/// writers copy-mutate-swap and synchronously reclaim the old version
/// after the read-side drains (classic RCU write-side responsibility).
template <typename T>
class RcuCell {
 public:
  explicit RcuCell(T initial = T{})
      : ptr_(new T(std::move(initial))) {}

  ~RcuCell() { delete ptr_.load(std::memory_order_acquire); }

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  /// Runs `fn(const T&)` inside a read-side critical section and returns
  /// its result. The reference passed to `fn` is only valid inside `fn`.
  template <typename F>
  decltype(auto) read(F&& fn) const {
    return ebr_.read([&]() -> decltype(auto) {
      return std::forward<F>(fn)(
          *ptr_.load(std::memory_order_acquire));
    });
  }

  /// Copies the current value out.
  [[nodiscard]] T load() const {
    return read([](const T& v) { return v; });
  }

  /// RCU_Write: clones the current value, applies `mutate(T&)` to the
  /// clone, publishes it, waits for readers of the old version, deletes
  /// it. Writers serialize on an internal lock (the paper's WriteLock).
  template <typename F>
  void update(F&& mutate) {
    std::lock_guard<std::mutex> guard(write_mu_);
    T* old_snapshot = ptr_.load(std::memory_order_relaxed);  // line 1
    T* fresh = new T(*old_snapshot);                         // line 2
    std::forward<F>(mutate)(*fresh);                         // line 3
    ptr_.store(fresh, std::memory_order_release);            // line 4
    const auto epoch = ebr_.advance_epoch();                 // line 5
    ebr_.wait_for_readers(epoch);                            // lines 6-7
    delete old_snapshot;                                     // line 8
  }

  /// Replaces the value outright (update() with assignment).
  void store(T value) {
    update([&](T& v) { v = std::move(value); });
  }

  [[nodiscard]] const reclaim::Ebr& ebr() const noexcept { return ebr_; }

 private:
  mutable reclaim::Ebr ebr_;
  std::atomic<T*> ptr_;
  std::mutex write_mu_;
};

}  // namespace rcua
