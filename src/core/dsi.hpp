#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "core/rcu_array.hpp"

namespace rcua {

/// A DSI-flavored array: the paper's last future-work item is
/// "compatibility of RCUArray and Chapel's Domain map Standard Interface
/// ... to provide users with a parallel-safe resizable distribution".
/// DsiArray is that interface in library form — a *logical* dense index
/// space [0, size()) with a block-cyclic layout over the cluster, backed
/// by an RCUArray whose whole-block growth is hidden behind element-wise
/// semantics:
///
///  * `resize(n)` sets the logical size to any element count (the backing
///    array grows/shrinks by whole blocks underneath, parallel-safely);
///  * `forall(fn)` runs fn(i, elem) for every logical index, one task per
///    locale, each iterating only its locally-owned blocks;
///  * domain queries (`owner_of`, `local_indices`) expose the layout the
///    way Chapel dmaps do.
///
/// Resizing is serialized against itself (internal lock) but concurrent
/// with element access, exactly like the backing RCUArray. `forall`
/// captures the logical size at entry.
template <typename T, typename Policy = QsbrPolicy>
class DsiArray {
 public:
  using Options = typename RCUArray<T, Policy>::Options;

  DsiArray(rt::Cluster& cluster, std::size_t size, Options options = {})
      : arr_(cluster, size, options), size_(size) {}

  DsiArray(const DsiArray&) = delete;
  DsiArray& operator=(const DsiArray&) = delete;

  // -- Element access ----------------------------------------------------

  T& operator[](std::size_t i) {
    assert(i < size_.value.load(std::memory_order_acquire));
    return arr_.index(i);
  }

  T& at(std::size_t i) {
    if (i >= size()) throw std::out_of_range("DsiArray::at beyond size");
    return arr_.index(i);
  }

  T read(std::size_t i) { return at(i); }
  void write(std::size_t i, T value) { at(i) = std::move(value); }

  // -- Domain shape -------------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.value.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return arr_.capacity(); }
  [[nodiscard]] std::size_t block_size() const noexcept {
    return arr_.block_size();
  }

  /// The locale owning logical index `i`.
  [[nodiscard]] std::uint32_t owner_of(std::size_t i) const {
    return arr_.block_owner(i);
  }

  /// The index ranges [first, last) of `locale`'s locally-owned elements,
  /// in ascending order — Chapel's localSubdomain.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  local_indices(std::uint32_t locale) const {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const std::size_t bs = arr_.block_size();
    const std::size_t n = size();
    const std::uint32_t locales = cluster().num_locales();
    for (std::size_t start = static_cast<std::size_t>(locale) * bs;
         start < n;
         start += static_cast<std::size_t>(locales) * bs) {
      ranges.emplace_back(start, std::min(start + bs, n));
    }
    return ranges;
  }

  /// Grows or shrinks the logical size. Growth allocates whole blocks as
  /// needed; shrink releases whole trailing blocks once the logical size
  /// has left them.
  void resize(std::size_t new_size) {
    std::lock_guard<std::mutex> guard(resize_mu_);
    const std::size_t bs = arr_.block_size();
    if (new_size > arr_.capacity()) {
      arr_.resize_add(new_size - arr_.capacity());
    }
    size_.value.store(new_size, std::memory_order_release);
    // Whole blocks now entirely beyond the logical size can go.
    const std::size_t needed_blocks = (new_size + bs - 1) / bs;
    const std::size_t have_blocks = arr_.num_blocks();
    if (have_blocks > needed_blocks) {
      arr_.resize_remove((have_blocks - needed_blocks) * bs);
    }
  }

  // -- Parallel iteration --------------------------------------------------

  /// fn(global_index, T&) for every logical element; one task per locale,
  /// each visiting only locally-owned blocks (Chapel's forall over a
  /// distributed domain). The iteration space is the logical size at
  /// entry.
  template <typename F>
  void forall(F&& fn) {
    const std::size_t n = size();
    const std::size_t bs = arr_.block_size();
    arr_.for_each_block_local([&](std::size_t b, Block<T>& blk) {
      const std::size_t base = b * bs;
      if (base >= n) return;
      const std::size_t limit = std::min(bs, n - base);
      for (std::size_t i = 0; i < limit; ++i) {
        fn(base + i, blk[i]);
      }
    });
  }

  /// Parallel fold over the logical elements.
  template <typename R, typename Fold, typename Combine>
  [[nodiscard]] R reduce(R init, Fold&& fn, Combine&& combine) {
    const std::size_t n = size();
    const std::size_t bs = arr_.block_size();
    std::mutex mu;
    R total = init;
    arr_.for_each_block_local([&](std::size_t b, Block<T>& blk) {
      const std::size_t base = b * bs;
      if (base >= n) return;
      const std::size_t limit = std::min(bs, n - base);
      R partial = init;
      for (std::size_t i = 0; i < limit; ++i) {
        partial = fn(std::move(partial), blk[i]);
      }
      std::lock_guard<std::mutex> guard(mu);
      total = combine(std::move(total), std::move(partial));
    });
    return total;
  }

  [[nodiscard]] rt::Cluster& cluster() const noexcept {
    return const_cast<RCUArray<T, Policy>&>(arr_).cluster();
  }
  [[nodiscard]] RCUArray<T, Policy>& backing() noexcept { return arr_; }

 private:
  RCUArray<T, Policy> arr_;
  plat::CacheAligned<std::atomic<std::size_t>> size_{std::size_t{0}};
  std::mutex resize_mu_;
};

}  // namespace rcua
