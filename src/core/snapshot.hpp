#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/block.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua {

/// An immutable version of the RCUArray's metadata: the block pointer
/// table (Listing 1's RCUArraySnapshot). "Immutable" applies to the spine
/// only — the *blocks* the spine points at are mutable shared storage,
/// recycled from snapshot to snapshot.
///
/// The clone used by every resize (Figure 1) produces a longer spine
/// sharing all existing block pointers: s' = (b1..bN, bN+1..bM), making s
/// a subsequence of s' — which is exactly why updates through references
/// obtained from s remain visible in s' (Lemma 6), and why reclaiming a
/// retired spine never touches element storage.
template <typename T>
class Snapshot {
 public:
  Snapshot() { live_.fetch_add(1, std::memory_order_relaxed); }

  explicit Snapshot(std::vector<Block<T>*> blocks) : blocks_(std::move(blocks)) {
    live_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Monotonic per-array version stamp: 0 for the construction-time empty
  /// spine, +1 on every clone (i.e. every published resize). The stamp is
  /// the coherence tag of the per-locale block cache (DESIGN.md §11): a
  /// cached block copy is tagged with the version pinned at fill time, and
  /// any entry tagged older than the pinned version is treated as a miss.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  ~Snapshot() {
    // Spine only; blocks are owned by the array.
    live_.fetch_sub(1, std::memory_order_relaxed);
  }

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Clones `old`, recycling every block pointer, and appends
  /// `new_blocks`. Charges the spine-copy cost.
  static Snapshot* clone_append(const Snapshot& old,
                                std::span<Block<T>* const> new_blocks) {
    auto* s = new Snapshot;
    s->version_ = old.version_ + 1;
    s->blocks_.reserve(old.blocks_.size() + new_blocks.size());
    s->blocks_.insert(s->blocks_.end(), old.blocks_.begin(), old.blocks_.end());
    s->blocks_.insert(s->blocks_.end(), new_blocks.begin(), new_blocks.end());
    sim::charge(sim::CostModel::get().spine_copy_ns_per_block *
                static_cast<double>(s->blocks_.size()));
    RCUA_SCHED_POINT("snapshot.cloned");
    return s;
  }

  /// Clones `old` with the SAME block count but every pointer replaced by
  /// `blocks` — the shard-migration publication (DESIGN.md §14): the new
  /// spine is *not* a superset of the old one (unlike clone_append), so
  /// the publisher must copy the element contents into the replacement
  /// blocks BEFORE publishing and drain the old spine's readers before
  /// freeing the replaced blocks. RCUArray::rehome owns that ordering.
  static Snapshot* clone_replace(const Snapshot& old,
                                 std::vector<Block<T>*> blocks) {
    assert(blocks.size() == old.blocks_.size());
    auto* s = new Snapshot;
    s->version_ = old.version_ + 1;
    s->blocks_ = std::move(blocks);
    sim::charge(sim::CostModel::get().spine_copy_ns_per_block *
                static_cast<double>(s->blocks_.size()));
    RCUA_SCHED_POINT("snapshot.cloned");
    return s;
  }

  /// Clones `old` truncated to its first `keep_blocks` blocks (recycling
  /// the kept pointers). Used by the shrink extension.
  static Snapshot* clone_truncate(const Snapshot& old,
                                  std::size_t keep_blocks) {
    auto* s = new Snapshot;
    s->version_ = old.version_ + 1;
    keep_blocks = keep_blocks < old.blocks_.size() ? keep_blocks
                                                   : old.blocks_.size();
    s->blocks_.assign(old.blocks_.begin(),
                      old.blocks_.begin() +
                          static_cast<std::ptrdiff_t>(keep_blocks));
    sim::charge(sim::CostModel::get().spine_copy_ns_per_block *
                static_cast<double>(keep_blocks));
    RCUA_SCHED_POINT("snapshot.cloned");
    return s;
  }

  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return blocks_.size();
  }

  [[nodiscard]] Block<T>* block(std::size_t i) const noexcept {
    assert(i < blocks_.size());
    return blocks_[i];
  }

  [[nodiscard]] const std::vector<Block<T>*>& blocks() const noexcept {
    return blocks_;
  }

  /// Total element capacity across the spine (all blocks share one size).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return blocks_.empty() ? 0 : blocks_.size() * blocks_.front()->capacity();
  }

  /// True iff `prefix` is a spine-prefix of *this (the Lemma 6 invariant
  /// tests assert after a clone).
  [[nodiscard]] bool has_prefix(const Snapshot& prefix) const noexcept {
    if (prefix.blocks_.size() > blocks_.size()) return false;
    for (std::size_t i = 0; i < prefix.blocks_.size(); ++i) {
      if (prefix.blocks_[i] != blocks_[i]) return false;
    }
    return true;
  }

  /// Number of live Snapshot<T> spines — the "at most two active
  /// snapshots" (Lemma 1) and no-leak assertions in tests.
  static std::uint64_t live_count() noexcept {
    return live_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Block<T>*> blocks_;
  std::uint64_t version_ = 0;
  static inline std::atomic<std::uint64_t> live_{0};
};

}  // namespace rcua
