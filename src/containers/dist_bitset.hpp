#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "core/rcu_array.hpp"
#include "platform/backoff.hpp"

namespace rcua::cont {

/// Distributed, growable atomic bitset over RCUArray<std::atomic<u64>> —
/// set/test/clear are single remote-word atomics, population count is a
/// locality-aware reduction, and capacity grows through the parallel-safe
/// resize (a common building block: distributed allocators, visited sets
/// for graph traversals, bloom-filter backing).
///
/// Bit indices beyond the current capacity are legal for `set`: the
/// bitset grows on demand (whole blocks of words).
template <typename Policy = QsbrPolicy>
class DistBitset {
 public:
  struct Options {
    std::size_t block_size_words = 1024;  // 64 Kbit per block
    reclaim::Qsbr* qsbr = nullptr;
  };

  explicit DistBitset(rt::Cluster& cluster, std::size_t initial_bits = 0,
                      Options options = {})
      : words_(cluster, (initial_bits + 63) / 64,
               {options.block_size_words, options.qsbr}) {}

  DistBitset(const DistBitset&) = delete;
  DistBitset& operator=(const DistBitset&) = delete;

  /// Sets bit `i` (growing if needed); returns the previous value.
  bool set(std::size_t i) {
    ensure_capacity(i);
    const std::uint64_t mask = 1ULL << (i % 64);
    const std::uint64_t old = words_.index(i / 64).fetch_or(
        mask, std::memory_order_acq_rel);
    return (old & mask) != 0;
  }

  /// Clears bit `i` (must have been set, so its word exists); returns the
  /// previous value. Waits out the replication gap if this locale's
  /// replica lags the growth that created the word.
  bool clear(std::size_t i) {
    if (words_.capacity() <= i / 64) {
      plat::Backoff backoff(4);
      while (words_.capacity() <= i / 64) backoff.pause();
    }
    const std::uint64_t mask = 1ULL << (i % 64);
    const std::uint64_t old = words_.index(i / 64).fetch_and(
        ~mask, std::memory_order_acq_rel);
    return (old & mask) != 0;
  }

  /// Tests bit `i`; bits beyond capacity read as false.
  [[nodiscard]] bool test(std::size_t i) {
    if (i / 64 >= words_.capacity()) return false;
    return (words_.index(i / 64).load(std::memory_order_acquire) &
            (1ULL << (i % 64))) != 0;
  }

  /// Atomically sets bit `i` iff it was clear; true on success (CAS-free
  /// claim primitive for allocators).
  bool try_claim(std::size_t i) { return !set(i); }

  /// Population count: locality-aware parallel reduction.
  [[nodiscard]] std::size_t count() {
    return words_.reduce(
        std::size_t{0},
        [](std::size_t acc, const std::atomic<std::uint64_t>& w) {
          return acc + static_cast<std::size_t>(
                           __builtin_popcountll(w.load(std::memory_order_relaxed)));
        },
        [](std::size_t a, std::size_t b) { return a + b; });
  }

  /// Capacity in bits.
  [[nodiscard]] std::size_t capacity_bits() const {
    return words_.capacity() * 64;
  }

  [[nodiscard]] RCUArray<std::atomic<std::uint64_t>, Policy>& backing() {
    return words_;
  }

 private:
  void ensure_capacity(std::size_t bit) {
    const std::size_t word = bit / 64;
    while (words_.capacity() <= word) {
      std::lock_guard<std::mutex> guard(grow_mu_);
      if (words_.capacity() > word) break;
      const std::size_t have = words_.num_blocks();
      words_.resize_add(words_.block_size() * (have == 0 ? 1 : have));
    }
  }

  RCUArray<std::atomic<std::uint64_t>, Policy> words_;
  std::mutex grow_mu_;
};

}  // namespace rcua::cont
