#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/rcu_array.hpp"
#include "platform/align.hpp"
#include "platform/backoff.hpp"
#include "platform/rng.hpp"

namespace rcua::cont {

/// Distributed bucket-chained hash map backed by RCUArray — the
/// "distributed table" of the paper's conclusion.
///
/// Layout: one RCUArray<Slot> slab. The first `num_buckets` slots are the
/// bucket heads; collision chains link through overflow slots allocated
/// from the tail of the slab by a bump cursor. When the slab runs out,
/// it grows via RCUArray::resize_add — which is the whole point: *the
/// table keeps serving lookups and inserts during growth*, because
/// RCUArray's resize is parallel-safe and chains address slots by index,
/// which block recycling keeps stable across snapshots (Lemma 6).
///
/// Keys and values must be trivially copyable and at most 8 bytes (they
/// are stored in atomics). Erase uses tombstones that a matching
/// re-insert revives; chains never shrink.
///
/// `Backend` is the storage engine for the slab: RCUArray (default) or
/// svc::ShardedCollection, which makes the map a shard client — chains
/// still address slots by index, and the sharded backend's block-cyclic
/// routing keeps those indices stable across remaps and migrations for
/// the same reason Lemma 6 keeps them stable across resizes.
template <typename K, typename V, typename Policy = QsbrPolicy,
          template <typename, typename> class Backend = RCUArray>
class DistHashMap {
  static_assert(std::is_trivially_copyable_v<K> && sizeof(K) <= 8,
                "keys are stored in 64-bit atomics");
  static_assert(std::is_trivially_copyable_v<V> && sizeof(V) <= 8,
                "values are stored in 64-bit atomics");

 public:
  struct Options {
    std::size_t num_buckets = 1024;
    std::size_t block_size = 1024;
    reclaim::Qsbr* qsbr = nullptr;
  };

  explicit DistHashMap(rt::Cluster& cluster, Options options = {})
      : num_buckets_(options.num_buckets),
        slots_(cluster,
               /*initial_capacity=*/options.num_buckets + options.block_size,
               {options.block_size, options.qsbr}) {
    cursor_->store(num_buckets_, std::memory_order_relaxed);
  }

  DistHashMap(const DistHashMap&) = delete;
  DistHashMap& operator=(const DistHashMap&) = delete;

  /// Inserts or updates. Returns true iff the key was new. Parallel-safe,
  /// including with concurrent growth.
  bool insert(const K& key, const V& value) {
    const std::uint64_t ek = encode(key);
    const std::uint64_t ev = encode(value);
    std::size_t cur = bucket_of(ek);
    plat::Backoff backoff(4);
    for (;;) {
      Slot& s = slot_at(cur);
      std::uint32_t st = s.state.load(std::memory_order_acquire);
      if (st == kEmpty) {
        std::uint32_t expected = kEmpty;
        if (s.state.compare_exchange_strong(expected, kClaimed,
                                            std::memory_order_acq_rel)) {
          s.key.store(ek, std::memory_order_relaxed);
          s.value.store(ev, std::memory_order_relaxed);
          s.state.store(kFull, std::memory_order_release);
          count_->fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        continue;  // lost the claim; re-examine the slot
      }
      if (st == kClaimed) {
        backoff.pause();  // publisher is between claim and kFull
        continue;
      }
      // kFull or kTombstone: the key field is valid.
      if (s.key.load(std::memory_order_relaxed) == ek) {
        if (st == kTombstone) {
          std::uint32_t expected = kTombstone;
          if (!s.state.compare_exchange_strong(expected, kClaimed,
                                               std::memory_order_acq_rel)) {
            continue;  // raced with another revive/erase
          }
          s.value.store(ev, std::memory_order_relaxed);
          s.state.store(kFull, std::memory_order_release);
          count_->fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        s.value.store(ev, std::memory_order_release);
        return false;
      }
      // Different key: follow or extend the chain.
      const std::uint64_t nx = s.next.load(std::memory_order_acquire);
      if (nx != 0) {
        cur = static_cast<std::size_t>(nx - 1);
        continue;
      }
      const std::size_t fresh = alloc_slot();
      Slot& f = slot_at(fresh);
      f.key.store(ek, std::memory_order_relaxed);
      f.value.store(ev, std::memory_order_relaxed);
      f.state.store(kFull, std::memory_order_release);
      std::uint64_t expected = 0;
      if (s.next.compare_exchange_strong(expected, fresh + 1,
                                         std::memory_order_acq_rel)) {
        count_->fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Another inserter linked first: unpublish our slot, recycle it,
      // and continue down the chain they created.
      f.state.store(kEmpty, std::memory_order_relaxed);
      recycle_slot(fresh);
      cur = static_cast<std::size_t>(expected - 1);
    }
  }

  /// Lookup. Parallel-safe with inserts, erases and growth.
  std::optional<V> find(const K& key) {
    const std::uint64_t ek = encode(key);
    std::size_t cur = bucket_of(ek);
    plat::Backoff backoff(4);
    for (;;) {
      Slot& s = slot_at(cur);
      const std::uint32_t st = s.state.load(std::memory_order_acquire);
      if (st == kEmpty) return std::nullopt;  // an empty head ends a chain
      if (st == kClaimed) {
        backoff.pause();
        continue;
      }
      if (st == kFull && s.key.load(std::memory_order_relaxed) == ek) {
        return decode<V>(s.value.load(std::memory_order_acquire));
      }
      const std::uint64_t nx = s.next.load(std::memory_order_acquire);
      if (nx == 0) return std::nullopt;
      cur = static_cast<std::size_t>(nx - 1);
    }
  }

  [[nodiscard]] bool contains(const K& key) { return find(key).has_value(); }

  /// Removes the key (tombstone). Returns true iff it was present.
  bool erase(const K& key) {
    const std::uint64_t ek = encode(key);
    std::size_t cur = bucket_of(ek);
    plat::Backoff backoff(4);
    for (;;) {
      Slot& s = slot_at(cur);
      const std::uint32_t st = s.state.load(std::memory_order_acquire);
      if (st == kEmpty) return false;
      if (st == kClaimed) {
        backoff.pause();
        continue;
      }
      if (s.key.load(std::memory_order_relaxed) == ek) {
        if (st == kTombstone) return false;
        std::uint32_t expected = kFull;
        if (s.state.compare_exchange_strong(expected, kTombstone,
                                            std::memory_order_acq_rel)) {
          count_->fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
        continue;
      }
      const std::uint64_t nx = s.next.load(std::memory_order_acquire);
      if (nx == 0) return false;
      cur = static_cast<std::size_t>(nx - 1);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return count_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return num_buckets_;
  }
  [[nodiscard]] std::size_t slab_capacity() const { return slots_.capacity(); }
  [[nodiscard]] std::uint64_t growths() const {
    return slots_.resize_count();
  }

 private:
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kClaimed = 1;
  static constexpr std::uint32_t kFull = 2;
  static constexpr std::uint32_t kTombstone = 3;

  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> next{0};  // 0 = null, else slot index + 1
  };

  template <typename X>
  static std::uint64_t encode(const X& x) noexcept {
    std::uint64_t out = 0;
    std::memcpy(&out, &x, sizeof(X));
    return out;
  }
  template <typename X>
  static X decode(std::uint64_t bits) noexcept {
    X out{};
    std::memcpy(&out, &bits, sizeof(X));
    return out;
  }

  [[nodiscard]] std::size_t bucket_of(std::uint64_t ek) const noexcept {
    return static_cast<std::size_t>(plat::mix64(ek) % num_buckets_);
  }

  /// Slot access that tolerates racing growth: a chain can legitimately
  /// reference a slot in a block our locale's snapshot replica does not
  /// include yet (the linker observed ITS locale's new replica; replicas
  /// are written per locale with no cross-locale ordering). Waiting until
  /// our replica catches up is a bounded coherence wait — the resize
  /// finished replicating before the slot became linkable.
  Slot& slot_at(std::size_t idx) {
    if (slots_.capacity() <= idx) {
      plat::Backoff backoff(4);
      while (slots_.capacity() <= idx) backoff.pause();
    }
    return slots_.index(idx);
  }

  std::size_t alloc_slot() {
    {
      std::lock_guard<std::mutex> guard(recycle_mu_);
      if (!recycled_.empty()) {
        const std::size_t idx = recycled_.back();
        recycled_.pop_back();
        return idx;
      }
    }
    const std::size_t idx = cursor_->fetch_add(1, std::memory_order_acq_rel);
    while (slots_.capacity() <= idx) {
      std::lock_guard<std::mutex> guard(grow_mu_);
      if (slots_.capacity() > idx) break;
      slots_.resize_add(slots_.block_size() *
                        (slots_.num_blocks() == 0 ? 1 : slots_.num_blocks()));
    }
    return idx;
  }

  void recycle_slot(std::size_t idx) {
    std::lock_guard<std::mutex> guard(recycle_mu_);
    recycled_.push_back(idx);
  }

  std::size_t num_buckets_;
  Backend<Slot, Policy> slots_;
  plat::CacheAligned<std::atomic<std::size_t>> cursor_{std::size_t{0}};
  plat::CacheAligned<std::atomic<std::size_t>> count_{std::size_t{0}};
  std::mutex grow_mu_;
  std::mutex recycle_mu_;
  std::vector<std::size_t> recycled_;

 public:
  /// The backing slab — exposed so shard-client tests can drive the
  /// sharded backend's remap surface directly (callers bind it with
  /// `auto&`; the slot type is an implementation detail).
  [[nodiscard]] Backend<Slot, Policy>& backing() noexcept { return slots_; }
};

}  // namespace rcua::cont
