#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "core/rcu_array.hpp"
#include "platform/align.hpp"
#include "platform/backoff.hpp"

namespace rcua::cont {

/// Distributed id-allocating slab table: hand it a value, it hands back a
/// stable dense id; ids are recycled on release. The "distributed table"
/// application of the paper's conclusion in its simplest useful form —
/// a registry/descriptor table whose storage grows in parallel with
/// lookups (think connection tables, object registries, handle spaces).
///
/// Lookups are RCUArray reads (parallel-safe with growth); allocation
/// reserves ids with a fetch-add fast path and falls back to a mutexed
/// free list for recycled ids.
///
/// `Backend` is the storage engine: RCUArray (default) or
/// svc::ShardedCollection — ids stay stable across shard remaps and
/// migrations because the sharded backend routes by index arithmetic
/// and only re-homes storage, never renumbers it.
template <typename V, typename Policy = QsbrPolicy,
          template <typename, typename> class Backend = RCUArray>
class DistIdTable {
 public:
  struct Options {
    std::size_t block_size = 1024;
    reclaim::Qsbr* qsbr = nullptr;
  };

  explicit DistIdTable(rt::Cluster& cluster, Options options = {})
      : arr_(cluster, options.block_size, {options.block_size, options.qsbr}) {}

  DistIdTable(const DistIdTable&) = delete;
  DistIdTable& operator=(const DistIdTable&) = delete;

  /// Stores `value`, returning its id. Parallel-safe.
  std::size_t allocate(V value) {
    std::size_t id;
    {
      std::lock_guard<std::mutex> guard(free_mu_);
      if (!free_ids_.empty()) {
        id = free_ids_.back();
        free_ids_.pop_back();
        live_->fetch_add(1, std::memory_order_relaxed);
        arr_.write(id, std::move(value));
        return id;
      }
    }
    id = next_->fetch_add(1, std::memory_order_acq_rel);
    ensure_capacity(id + 1);
    live_->fetch_add(1, std::memory_order_relaxed);
    // In-section store (write, not index): stores stay migration-safe
    // against a concurrent shard rehome of the sharded backend.
    arr_.write(id, std::move(value));
    return id;
  }

  /// Reference to the value behind `id`. Parallel-safe with allocate /
  /// growth (waits out the bounded replication gap if this locale's
  /// replica lags the growth that created `id`). The caller must not use
  /// an id it has released. NOT safe concurrent with a live migration of
  /// the sharded backend — the reference escapes the read-side section,
  /// which rehome's reclamation does not cover (use read() for lookups
  /// that may race a migration).
  V& get(std::size_t id) {
    if (arr_.capacity() <= id) {
      plat::Backoff backoff(4);
      while (arr_.capacity() <= id) backoff.pause();
    }
    return arr_.index(id);
  }

  /// Value lookup: the migration-safe twin of get(). The copy happens
  /// inside the backend's read-side section, so it is safe concurrent
  /// with shard remaps AND live migrations (rehome reclaims replaced
  /// blocks; escaped references don't survive that, values do).
  V read(std::size_t id) {
    if (arr_.capacity() <= id) {
      plat::Backoff backoff(4);
      while (arr_.capacity() <= id) backoff.pause();
    }
    return arr_.read(id);
  }

  /// Recycles `id`. The slot's value is left in place (callers treat a
  /// released id as invalid).
  void release(std::size_t id) {
    std::lock_guard<std::mutex> guard(free_mu_);
    free_ids_.push_back(id);
    live_->fetch_sub(1, std::memory_order_relaxed);
  }

  /// Number of currently allocated ids.
  [[nodiscard]] std::size_t live() const noexcept {
    return live_->load(std::memory_order_relaxed);
  }
  /// High-water mark of ids ever allocated.
  [[nodiscard]] std::size_t high_water() const noexcept {
    return next_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return arr_.capacity(); }
  [[nodiscard]] Backend<V, Policy>& backing() noexcept { return arr_; }

 private:
  void ensure_capacity(std::size_t needed) {
    while (arr_.capacity() < needed) {
      std::lock_guard<std::mutex> guard(grow_mu_);
      const std::size_t cap = arr_.capacity();
      if (cap >= needed) break;
      arr_.resize_add(arr_.block_size() * (arr_.num_blocks() == 0
                                               ? 1
                                               : arr_.num_blocks()));
    }
  }

  Backend<V, Policy> arr_;
  plat::CacheAligned<std::atomic<std::size_t>> next_{std::size_t{0}};
  plat::CacheAligned<std::atomic<std::size_t>> live_{std::size_t{0}};
  std::mutex free_mu_;
  std::mutex grow_mu_;
  std::vector<std::size_t> free_ids_;
};

}  // namespace rcua::cont
