#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/rcu_array.hpp"
#include "platform/align.hpp"
#include "platform/backoff.hpp"

namespace rcua::cont {

/// Append-only distributed vector on top of RCUArray — the paper's
/// conclusion names RCUArray as "the ideal backbone for a random-access
/// data structure such as a distributed vector", and this is that vector:
/// `push_back` from any task on any locale, concurrent with reads, with
/// capacity growth happening through RCUArray's parallel-safe resize.
///
/// Semantics: `push_back` reserves an index with one fetch-add on a
/// private reservation counter, grows the backing array if needed, writes
/// through the reserved reference, and only then publishes the slot by
/// advancing `size_` — in reservation order, with a release store that a
/// reader's `size()` acquires. `size()` therefore counts *fully written*
/// slots: any index below it reads the completed element, with a proper
/// happens-before edge (no torn or default values, no data race).
/// Producers briefly wait for earlier reservations to publish; the gap is
/// the time between a competitor's fetch-add and its slot store.
/// `Backend` is the storage engine: RCUArray (the default, one array
/// with round-robin blocks) or svc::ShardedCollection (block-cyclic
/// shards with live migration — the container becomes a shard client
/// without further changes; both expose the same constructor shape and
/// method subset).
template <typename T, typename Policy = QsbrPolicy,
          template <typename, typename> class Backend = RCUArray>
class DistVector {
 public:
  struct Options {
    std::size_t block_size = 1024;
    /// Blocks added per growth step (doubling up to this many blocks).
    std::size_t max_growth_blocks = 64;
    reclaim::Qsbr* qsbr = nullptr;
  };

  explicit DistVector(rt::Cluster& cluster, Options options = {})
      : arr_(cluster, /*initial_capacity=*/options.block_size,
             {options.block_size, options.qsbr}),
        max_growth_blocks_(options.max_growth_blocks) {}

  DistVector(const DistVector&) = delete;
  DistVector& operator=(const DistVector&) = delete;

  /// Appends `value`; returns its index. Parallel-safe (the slot store
  /// is a value write — in-section, so it also stays safe against a
  /// concurrent shard migration of a sharded backend).
  std::size_t push_back(T value) {
    const std::size_t idx =
        reserved_->fetch_add(1, std::memory_order_relaxed);
    ensure_capacity(idx + 1);
    arr_.write(idx, std::move(value));
    // Publish in reservation order: slot idx becomes visible through
    // size() only once every earlier slot already is, so readers below
    // size() always see completed writes (release pairs with the acquire
    // in size()).
    std::size_t expected = idx;
    plat::Backoff backoff(4);
    while (!size_->compare_exchange_weak(expected, idx + 1,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
      expected = idx;
      backoff.pause();
    }
    return idx;
  }

  /// Appends all of `values` contiguously; returns the index of the
  /// first. Parallel-safe against other producers and readers. The fill
  /// goes through RCUArray::bulk_write — one reservation fetch-add, at
  /// most one growth step per capacity shortfall, one pinned snapshot
  /// and a destination-aggregated drain for the element copies (one
  /// remote execution per destination flush instead of one PUT per
  /// element; flushes pipeline through the async comm layer by default
  /// and their completions drain inside the pinned section, DESIGN.md
  /// §10) — then publishes the whole range with the same in-order
  /// release CAS as push_back, so size() still counts only fully
  /// written slots.
  std::size_t push_back_bulk(std::span<const T> values,
                             typename Backend<T, Policy>::BulkOptions
                                 opts = {}) {
    const std::size_t n = values.size();
    if (n == 0) return size();
    const std::size_t idx =
        reserved_->fetch_add(n, std::memory_order_relaxed);
    ensure_capacity(idx + n);
    arr_.bulk_write(idx, values, opts);
    std::size_t expected = idx;
    plat::Backoff backoff(4);
    while (!size_->compare_exchange_weak(expected, idx + n,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
      expected = idx;
      backoff.pause();
    }
    return idx;
  }

  /// Copies elements [first, first+count) (all below size()) into a
  /// fresh vector via RCUArray::bulk_read — the aggregated read-side
  /// counterpart of push_back_bulk.
  [[nodiscard]] std::vector<T> read_range(
      std::size_t first, std::size_t count,
      typename Backend<T, Policy>::BulkOptions opts = {}) {
    if (first + count > size() || first + count < first) {
      throw std::out_of_range("DistVector::read_range beyond size");
    }
    wait_replicated(first + count);
    return arr_.bulk_read(first, count, opts);
  }

  /// Reference to element `i` (valid across growth). Parallel-safe: if a
  /// racing grower published index `i` (via size()) before this locale's
  /// snapshot replica caught up, waits out the bounded replication gap.
  T& operator[](std::size_t i) {
    wait_replicated(i + 1);
    return arr_.index(i);
  }

  T& at(std::size_t i) {
    if (i >= size()) {
      throw std::out_of_range("DistVector::at beyond size");
    }
    wait_replicated(i + 1);
    return arr_.index(i);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_->load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return arr_.capacity(); }
  [[nodiscard]] Backend<T, Policy>& backing() noexcept { return arr_; }

 private:
  /// Index `needed-1` was published by another thread, so the resize
  /// that created it already completed; wait for this locale's replica.
  void wait_replicated(std::size_t needed) {
    if (arr_.capacity() >= needed) return;
    plat::Backoff backoff(4);
    while (arr_.capacity() < needed) backoff.pause();
  }

  void ensure_capacity(std::size_t needed) {
    while (arr_.capacity() < needed) {
      std::lock_guard<std::mutex> guard(grow_mu_);
      const std::size_t cap = arr_.capacity();
      if (cap >= needed) break;
      // Grow by min(current block count, max_growth_blocks) blocks:
      // amortized doubling without unbounded resize latency.
      const std::size_t blocks = arr_.num_blocks();
      const std::size_t grow_blocks =
          blocks < max_growth_blocks_ ? (blocks == 0 ? 1 : blocks)
                                      : max_growth_blocks_;
      arr_.resize_add(grow_blocks * arr_.block_size());
    }
  }

  Backend<T, Policy> arr_;
  /// Next index to hand out; may run ahead of `size_` while writes are in
  /// flight.
  plat::CacheAligned<std::atomic<std::size_t>> reserved_{std::size_t{0}};
  /// Published length: every slot below it is fully written.
  plat::CacheAligned<std::atomic<std::size_t>> size_{std::size_t{0}};
  std::mutex grow_mu_;
  std::size_t max_growth_blocks_;
};

}  // namespace rcua::cont
