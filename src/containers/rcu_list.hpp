#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>

#include "reclaim/ebr.hpp"

namespace rcua::cont {

/// RCU-protected singly-linked list over the paper's TLS-free EBR — the
/// canonical first RCU data structure (related work §II: "Applications of
/// RCU can be seen in various data structures such as linked lists"), and
/// a second consumer of the decoupled EBR beyond RCUArray.
///
/// Readers traverse with no stores at all beyond the collective
/// EpochReaders announcement; writers serialize on an internal lock,
/// unlink nodes with pointer swings, and reclaim after an epoch drain.
/// Reads may run concurrently with any number of (serialized) writers.
template <typename T>
class RcuList {
 public:
  RcuList() = default;
  RcuList(const RcuList&) = delete;
  RcuList& operator=(const RcuList&) = delete;

  ~RcuList() {
    Node* n = head_.load(std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Inserts at the front. O(1).
  void push_front(T value) {
    auto* node = new Node{std::move(value)};
    std::lock_guard<std::mutex> guard(write_mu_);
    node->next.store(head_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    head_.store(node, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Removes the first element matching `pred`; returns whether one was
  /// removed. The unlinked node is reclaimed after all current readers
  /// evacuate (synchronous grace period, RCU_Write lines 5-8).
  template <typename Pred>
  bool remove_if(Pred pred) {
    std::lock_guard<std::mutex> guard(write_mu_);
    std::atomic<Node*>* link = &head_;
    Node* cur = link->load(std::memory_order_relaxed);
    while (cur != nullptr) {
      if (pred(cur->value)) {
        link->store(cur->next.load(std::memory_order_relaxed),
                    std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        ebr_.synchronize();
        delete cur;
        return true;
      }
      link = &cur->next;
      cur = link->load(std::memory_order_relaxed);
    }
    return false;
  }

  /// Returns a copy of the first element matching `pred`, if any.
  /// Runs inside one read-side critical section.
  template <typename Pred>
  std::optional<T> find_if(Pred pred) const {
    return ebr_.read([&]() -> std::optional<T> {
      for (Node* n = head_.load(std::memory_order_acquire); n != nullptr;
           n = n->next.load(std::memory_order_acquire)) {
        if (pred(n->value)) return n->value;
      }
      return std::nullopt;
    });
  }

  /// Applies `fn(const T&)` to every element inside one read-side
  /// critical section; returns the number visited.
  template <typename F>
  std::size_t for_each(F&& fn) const {
    return ebr_.read([&]() -> std::size_t {
      std::size_t visited = 0;
      for (Node* n = head_.load(std::memory_order_acquire); n != nullptr;
           n = n->next.load(std::memory_order_acquire)) {
        fn(static_cast<const T&>(n->value));
        ++visited;
      }
      return visited;
    });
  }

  [[nodiscard]] bool contains(const T& value) const {
    return find_if([&](const T& v) { return v == value; }).has_value();
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const reclaim::Ebr& ebr() const noexcept { return ebr_; }

 private:
  struct Node {
    T value;
    std::atomic<Node*> next{nullptr};
  };

  mutable reclaim::Ebr ebr_;
  std::atomic<Node*> head_{nullptr};
  std::mutex write_mu_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace rcua::cont
