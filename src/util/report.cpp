#include "util/report.hpp"

#include <sstream>

#include "reclaim/hazard.hpp"
#include "reclaim/qsbr.hpp"
#include "runtime/cluster.hpp"
#include "util/table.hpp"

namespace rcua::util {

std::string Report::comm(rt::Cluster& cluster) {
  Table t({"locale", "gets", "puts", "on-stmts"});
  for (std::uint32_t l = 0; l < cluster.num_locales(); ++l) {
    t.add_row({std::to_string(l), std::to_string(cluster.comm().gets(l)),
               std::to_string(cluster.comm().puts(l)),
               std::to_string(cluster.comm().executes(l))});
  }
  t.add_row({"total", std::to_string(cluster.comm().total_gets()),
             std::to_string(cluster.comm().total_puts()),
             std::to_string(cluster.comm().total_executes())});
  std::ostringstream os;
  t.print(os);
  return os.str();
}

std::string Report::memory(rt::Cluster& cluster) {
  Table t({"locale", "allocs", "frees", "bytes_live"});
  for (std::uint32_t l = 0; l < cluster.num_locales(); ++l) {
    const rt::Locale& loc = cluster.locale(l);
    t.add_row({std::to_string(l), std::to_string(loc.allocations()),
               std::to_string(loc.frees()),
               std::to_string(loc.bytes_live())});
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

std::string Report::qsbr(const reclaim::Qsbr& domain) {
  const auto s = domain.stats();
  std::ostringstream os;
  os << "qsbr: epoch=" << domain.current_epoch() << " defers=" << s.defers
     << " checkpoints=" << s.checkpoints << " reclaimed=" << s.reclaimed
     << " pending=" << (s.defers - s.reclaimed) << '\n';
  return os.str();
}

std::string Report::hazard(const reclaim::HazardDomain& domain) {
  std::ostringstream os;
  os << "hazard: retired=" << domain.retired_count()
     << " freed=" << domain.freed_count()
     << " pending=" << (domain.retired_count() - domain.freed_count())
     << '\n';
  return os.str();
}

}  // namespace rcua::util
