#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rcua::util {

/// Reads environment variable `name` as a u64; returns `fallback` when
/// the variable is unset or unparsable. Malformed or overflowing values
/// (e.g. RCUA_EBR_STRIPES=abc, "12junk", "-3", 2^70) never throw: they
/// warn once per variable to stderr and fall back.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Reads environment variable `name` as a double.
double env_f64(const char* name, double fallback);

/// Reads environment variable `name` as a bool (accepts 0/1/true/false/
/// yes/no, case-insensitive).
bool env_bool(const char* name, bool fallback);

/// Reads environment variable `name` as a comma-separated list of u64s,
/// e.g. RCUA_LOCALES="1,2,4,8". Returns `fallback` when unset or when no
/// element parses.
std::vector<std::uint64_t> env_u64_list(const char* name,
                                        std::vector<std::uint64_t> fallback);

/// Raw accessor; empty optional when unset.
std::optional<std::string> env_str(const char* name);

/// Total malformed-value warnings emitted so far (observability for the
/// bad-input tests). Each distinct variable name warns to stderr at most
/// once per process; this counter increments once per emitted warning.
std::uint64_t env_parse_warnings() noexcept;

}  // namespace rcua::util
