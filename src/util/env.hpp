#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rcua::util {

/// Reads environment variable `name` as a u64; returns `fallback` when the
/// variable is unset or unparsable.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Reads environment variable `name` as a double.
double env_f64(const char* name, double fallback);

/// Reads environment variable `name` as a bool (accepts 0/1/true/false/
/// yes/no, case-insensitive).
bool env_bool(const char* name, bool fallback);

/// Reads environment variable `name` as a comma-separated list of u64s,
/// e.g. RCUA_LOCALES="1,2,4,8". Returns `fallback` when unset or when no
/// element parses.
std::vector<std::uint64_t> env_u64_list(const char* name,
                                        std::vector<std::uint64_t> fallback);

/// Raw accessor; empty optional when unset.
std::optional<std::string> env_str(const char* name);

}  // namespace rcua::util
