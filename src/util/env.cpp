#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace rcua::util {

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  try {
    return std::stoull(*s);
  } catch (...) {
    return fallback;
  }
}

double env_f64(const char* name, double fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  try {
    return std::stod(*s);
  } catch (...) {
    return fallback;
  }
}

bool env_bool(const char* name, bool fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  std::string lower = *s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on")
    return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off")
    return false;
  return fallback;
}

std::vector<std::uint64_t> env_u64_list(const char* name,
                                        std::vector<std::uint64_t> fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  std::vector<std::uint64_t> out;
  std::stringstream ss(*s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      out.push_back(std::stoull(item));
    } catch (...) {
      // Skip unparsable elements.
    }
  }
  return out.empty() ? fallback : out;
}

}  // namespace rcua::util
