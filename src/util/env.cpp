#include "util/env.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

namespace rcua::util {

namespace {

std::atomic<std::uint64_t> g_parse_warnings{0};

/// Warns to stderr about a malformed value, at most once per variable
/// name per process — a misconfigured launcher script should produce one
/// diagnostic, not one per env read on every thread.
void warn_bad_value(const char* name, const std::string& value,
                    const char* expected) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  {
    std::lock_guard<std::mutex> guard(mu);
    if (!warned->insert(name).second) return;
  }
  g_parse_warnings.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "rcua: ignoring %s=\"%s\": expected %s; using the default\n",
               name, value.c_str(), expected);
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Full-string u64 parse: rejects empty strings, signs (stoull would
/// silently wrap "-1"), trailing garbage (stoull would read "12junk" as
/// 12) and out-of-range values. std::nullopt on any failure.
std::optional<std::uint64_t> parse_u64(const std::string& raw) {
  const std::string s = trimmed(raw);
  if (s.empty() || s[0] == '-' || s[0] == '+') return std::nullopt;
  try {
    std::size_t consumed = 0;
    const std::uint64_t v = std::stoull(s, &consumed, /*base=*/10);
    if (consumed != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<double> parse_f64(const std::string& raw) {
  const std::string s = trimmed(raw);
  if (s.empty()) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::uint64_t env_parse_warnings() noexcept {
  return g_parse_warnings.load(std::memory_order_relaxed);
}

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  if (auto v = parse_u64(*s)) return *v;
  warn_bad_value(name, *s, "an unsigned integer");
  return fallback;
}

double env_f64(const char* name, double fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  if (auto v = parse_f64(*s)) return *v;
  warn_bad_value(name, *s, "a number");
  return fallback;
}

bool env_bool(const char* name, bool fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  std::string lower = trimmed(*s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on")
    return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off")
    return false;
  warn_bad_value(name, *s, "one of 0/1/true/false/yes/no/on/off");
  return fallback;
}

std::vector<std::uint64_t> env_u64_list(const char* name,
                                        std::vector<std::uint64_t> fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  std::vector<std::uint64_t> out;
  bool any_bad = false;
  std::stringstream ss(*s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (auto v = parse_u64(item)) {
      out.push_back(*v);
    } else {
      any_bad = true;  // skip unparsable elements, but say so once
    }
  }
  if (any_bad) {
    warn_bad_value(name, *s, "a comma-separated list of unsigned integers");
  }
  return out.empty() ? fallback : out;
}

}  // namespace rcua::util
