#pragma once

#include <cmath>
#include <cstdint>

#include "platform/rng.hpp"

namespace rcua::util {

/// Bounded Zipfian sampler over [0, n) with skew parameter theta in
/// (0, 1) — the Gray et al. "quickly generating billion-record..."
/// construction used by YCSB. theta -> 0 approaches uniform; the YCSB
/// default is 0.99 (heavily skewed).
///
/// Used by the skew ablation: the paper's evaluation only covers uniform
/// random and sequential access, but real table workloads are skewed, and
/// skew concentrates traffic on few blocks/locales.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
      : ZipfGenerator(n, theta, seed, compute_zetan(n, theta)) {}

  /// Construction with a precomputed zeta(n, theta): computing zeta is
  /// O(n), so benches compute it once and share it across tasks.
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed,
                double zetan)
      : n_(n), theta_(theta), rng_(seed), zetan_(zetan) {
    const double zeta2 = compute_zetan(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  /// zeta(n, theta) = sum_{i=1..n} 1/i^theta.
  static double compute_zetan(std::uint64_t n, double theta) {
    return zeta(n, theta);
  }

  std::uint64_t next() {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  [[nodiscard]] std::uint64_t range() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  plat::Xoshiro256 rng_;
  double zetan_;
  double alpha_;
  double eta_;
};

/// Uniform index stream (wraps the PRNG; same interface as Zipf).
class UniformGenerator {
 public:
  UniformGenerator(std::uint64_t n, std::uint64_t seed) : n_(n), rng_(seed) {}
  std::uint64_t next() { return rng_.next_below(n_); }
  [[nodiscard]] std::uint64_t range() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  plat::Xoshiro256 rng_;
};

/// Sequential stream starting at `start`, wrapping at n.
class SequentialGenerator {
 public:
  SequentialGenerator(std::uint64_t n, std::uint64_t start)
      : n_(n), next_(start % n) {}
  std::uint64_t next() {
    const std::uint64_t v = next_;
    next_ = (next_ + 1) % n_;
    return v;
  }
  [[nodiscard]] std::uint64_t range() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  std::uint64_t next_;
};

}  // namespace rcua::util
