#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace rcua::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v) {
  char buf[48];
  if (v == 0) return "0";
  const double a = v < 0 ? -v : v;
  if (a >= 1e5 || a < 1e-2) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else if (a >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

std::string Table::fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule += std::string(widths[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace rcua::util
