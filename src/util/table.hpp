#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace rcua::util {

/// Minimal aligned ASCII table / CSV emitter for benchmark output.
///
/// Usage:
///   Table t({"locales", "EBRArray", "QSBRArray"});
///   t.add_row({"2", "1.2e7", "5.9e8"});
///   t.print(std::cout);          // aligned columns
///   t.print_csv(std::cout);      // machine-readable
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Formats a double in engineering-friendly short form (e.g. "5.93e+08").
  static std::string num(double v);

  /// Formats with fixed decimals.
  static std::string fixed(double v, int decimals);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcua::util
