#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rcua::util {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  OnlineStats acc;
  for (double x : sorted) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.median = quantile_sorted(sorted, 0.5);
  s.p90 = quantile_sorted(sorted, 0.9);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace rcua::util
