#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rcua::util {

/// Log2-bucketed latency histogram (nanoseconds). Lock-free to *record*
/// only from a single thread; benchmark tasks each own one and merge at
/// the end.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns) noexcept {
    ++counts_[bucket_of(ns)];
    total_ += ns;
    ++n_;
    if (ns > max_) max_ = ns;
  }

  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_; }
  [[nodiscard]] double mean_ns() const noexcept {
    return n_ ? static_cast<double>(total_) / static_cast<double>(n_) : 0.0;
  }

  /// Approximate quantile from bucket midpoints, q in [0,1].
  [[nodiscard]] double quantile_ns(double q) const noexcept;

  /// Multi-line ASCII rendering of the occupied buckets.
  [[nodiscard]] std::string render() const;

 private:
  static std::size_t bucket_of(std::uint64_t ns) noexcept {
    if (ns == 0) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(ns));
  }

  std::uint64_t counts_[kBuckets]{};
  std::uint64_t total_ = 0;
  std::uint64_t n_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace rcua::util
