#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rcua::util {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t n = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  // sample standard deviation (n-1 denominator)
  double median = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Computes summary statistics. Does not modify the input.
Summary summarize(std::span<const double> xs);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Geometric mean; elements must be positive.
double geomean(std::span<const double> xs);

/// Welford's online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace rcua::util
