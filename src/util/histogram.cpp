#include "util/histogram.hpp"

#include <algorithm>
#include <sstream>

namespace rcua::util {

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  n_ += other.n_;
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::quantile_ns(double q) const noexcept {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(n_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen > target) {
      // Midpoint of bucket [2^(i-1), 2^i).
      const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
      const std::uint64_t hi = i == 0 ? 1 : (1ULL << i);
      return 0.5 * static_cast<double>(lo + hi);
    }
  }
  return static_cast<double>(max_);
}

std::string LatencyHistogram::render() const {
  std::ostringstream os;
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
    const auto bar_len = static_cast<std::size_t>(
        50.0 * static_cast<double>(counts_[i]) / static_cast<double>(peak));
    os << "[>=" << lo << "ns] " << std::string(std::max<std::size_t>(bar_len, 1), '#')
       << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace rcua::util
