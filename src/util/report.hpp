#pragma once

#include <string>

namespace rcua::rt {
class Cluster;
}
namespace rcua::reclaim {
class Qsbr;
class HazardDomain;
}

namespace rcua::util {

/// Human-readable observability reports: per-locale communication volume,
/// per-locale memory accounting, reclamation-domain statistics. Benches
/// and examples print these next to throughput so locality and
/// reclamation claims are checkable, not just asserted.
struct Report {
  /// Per-locale GET/PUT/on counts (initiator-attributed).
  static std::string comm(rt::Cluster& cluster);

  /// Per-locale allocation counts and live bytes.
  static std::string memory(rt::Cluster& cluster);

  /// QSBR domain counters plus registry occupancy.
  static std::string qsbr(const reclaim::Qsbr& domain);

  /// Hazard-pointer domain counters.
  static std::string hazard(const reclaim::HazardDomain& domain);
};

}  // namespace rcua::util
