#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "reclaim/ebr.hpp"

namespace rcua::reclaim {

/// Asynchronous grace-period callbacks over the TLS-free EBR — the
/// userspace-RCU `call_rcu` idiom, built on the paper's decoupled EBR
/// (conclusion: "future improvements to the decoupled EBR algorithm are
/// planned and can even be used in other languages that lack official
/// support for TLS").
///
/// Writers hand the grace-period wait to a dispatcher thread instead of
/// blocking in RCU_Write line 7: `call()` enqueues a callback, the
/// dispatcher batches pending callbacks, runs one epoch
/// advance-and-drain for the whole batch, then invokes them. One
/// synchronize amortizes over the batch — the standard deferral
/// optimization.
///
/// Stall tolerance: with a non-blocking StallPolicy the dispatcher's
/// drain gives up at the deadline. The batch is parked on a stalled list
/// tagged with its grace period's parity, a StallDiagnostic is emitted,
/// and the dispatcher keeps serving new batches — re-checking parked
/// batches opportunistically (their parity column observed empty is
/// sufficient; see DESIGN.md §8) and draining them for real in the
/// destructor. A stalled reader thus delays only its own batch's
/// callbacks, never the dispatcher.
class CallRcu {
 public:
  /// Binds the dispatcher to `ebr`; callbacks run once every reader that
  /// might hold pre-call state has evacuated that domain. `policy`
  /// bounds each grace-period drain (default: env-configured, blocking
  /// unless RCUA_STALL_DEADLINE_NS is set). `monitor` receives stall
  /// diagnostics (default: the process-wide monitor).
  explicit CallRcu(Ebr& ebr, StallPolicy policy = StallPolicy::from_env(),
                   StallMonitor* monitor = nullptr);

  /// Drains every pending callback, then stops the dispatcher.
  ~CallRcu();

  CallRcu(const CallRcu&) = delete;
  CallRcu& operator=(const CallRcu&) = delete;

  /// Runs `fn(arg)` after a grace period. Never blocks on readers.
  /// Calling after destruction has begun is a program error and fails
  /// loudly (abort with a message) instead of racing the dispatcher
  /// teardown.
  void call(void (*fn)(void*), void* arg);

  /// `delete obj` after a grace period.
  template <typename T>
  void call_delete(T* obj) {
    call([](void* p) { delete static_cast<T*>(p); }, obj);
  }

  /// Blocks until every callback enqueued before this call has been
  /// invoked (rcu_barrier).
  void barrier();

  [[nodiscard]] std::uint64_t enqueued() const noexcept {
    return enqueued_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t invoked() const noexcept {
    return invoked_.load(std::memory_order_relaxed);
  }
  /// Number of grace periods the dispatcher has completed.
  [[nodiscard]] std::uint64_t grace_periods() const noexcept {
    return grace_periods_.load(std::memory_order_relaxed);
  }
  /// Number of batches whose drain hit the deadline and were parked.
  [[nodiscard]] std::uint64_t stalled_batches() const noexcept {
    return stalled_batches_.load(std::memory_order_relaxed);
  }

 private:
  struct Callback {
    void (*fn)(void*);
    void* arg;
  };

  /// A batch whose grace period timed out, tagged with the parity of the
  /// epoch it was retired under: once that parity's reader column is
  /// observed empty the batch may run.
  struct StalledBatch {
    std::vector<Callback> callbacks;
    std::size_t parity;
  };

  void dispatcher_main();
  /// Runs `batch` and publishes the invoked count. Caller must not hold
  /// `mu_`.
  void invoke_batch(std::vector<Callback>& batch);
  /// Re-checks parked batches (under `mu_`-free reads of the reader
  /// bank) and runs the ones whose parity has drained.
  void retry_stalled();

  Ebr& ebr_;
  StallPolicy policy_;
  StallMonitor* monitor_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Callback> pending_;
  std::vector<StalledBatch> stalled_;
  bool stop_ = false;
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> invoked_{0};
  std::atomic<std::uint64_t> grace_periods_{0};
  std::atomic<std::uint64_t> stalled_batches_{0};
  std::thread dispatcher_;
};

}  // namespace rcua::reclaim
