#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "reclaim/ebr.hpp"

namespace rcua::reclaim {

/// Asynchronous grace-period callbacks over the TLS-free EBR — the
/// userspace-RCU `call_rcu` idiom, built on the paper's decoupled EBR
/// (conclusion: "future improvements to the decoupled EBR algorithm are
/// planned and can even be used in other languages that lack official
/// support for TLS").
///
/// Writers hand the grace-period wait to a dispatcher thread instead of
/// blocking in RCU_Write line 7: `call()` enqueues a callback, the
/// dispatcher batches pending callbacks, runs one epoch
/// advance-and-drain for the whole batch, then invokes them. One
/// synchronize amortizes over the batch — the standard deferral
/// optimization.
class CallRcu {
 public:
  /// Binds the dispatcher to `ebr`; callbacks run once every reader that
  /// might hold pre-call state has evacuated that domain.
  explicit CallRcu(Ebr& ebr);

  /// Drains every pending callback, then stops the dispatcher.
  ~CallRcu();

  CallRcu(const CallRcu&) = delete;
  CallRcu& operator=(const CallRcu&) = delete;

  /// Runs `fn(arg)` after a grace period. Never blocks on readers.
  void call(void (*fn)(void*), void* arg);

  /// `delete obj` after a grace period.
  template <typename T>
  void call_delete(T* obj) {
    call([](void* p) { delete static_cast<T*>(p); }, obj);
  }

  /// Blocks until every callback enqueued before this call has been
  /// invoked (rcu_barrier).
  void barrier();

  [[nodiscard]] std::uint64_t enqueued() const noexcept {
    return enqueued_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t invoked() const noexcept {
    return invoked_.load(std::memory_order_relaxed);
  }
  /// Number of grace periods the dispatcher has completed.
  [[nodiscard]] std::uint64_t grace_periods() const noexcept {
    return grace_periods_.load(std::memory_order_relaxed);
  }

 private:
  struct Callback {
    void (*fn)(void*);
    void* arg;
  };

  void dispatcher_main();

  Ebr& ebr_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Callback> pending_;
  bool stop_ = false;
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> invoked_{0};
  std::atomic<std::uint64_t> grace_periods_{0};
  std::thread dispatcher_;
};

}  // namespace rcua::reclaim
