#include "reclaim/call_rcu.hpp"

namespace rcua::reclaim {

CallRcu::CallRcu(Ebr& ebr)
    : ebr_(ebr), dispatcher_([this] { dispatcher_main(); }) {}

CallRcu::~CallRcu() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
    work_cv_.notify_all();
  }
  dispatcher_.join();
}

void CallRcu::call(void (*fn)(void*), void* arg) {
  std::lock_guard<std::mutex> guard(mu_);
  pending_.push_back({fn, arg});
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
}

void CallRcu::barrier() {
  const std::uint64_t target = enqueued_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return invoked_.load(std::memory_order_acquire) >= target;
  });
}

void CallRcu::dispatcher_main() {
  std::vector<Callback> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty() && stop_) return;
      batch.swap(pending_);
    }
    // One grace period covers the whole batch: every callback was
    // enqueued before the epoch advance, so every reader that could
    // still see the retired state is drained by it.
    ebr_.synchronize();
    grace_periods_.fetch_add(1, std::memory_order_relaxed);
    for (const Callback& cb : batch) cb.fn(cb.arg);
    const auto n = static_cast<std::uint64_t>(batch.size());
    batch.clear();
    {
      std::lock_guard<std::mutex> guard(mu_);
      invoked_.fetch_add(n, std::memory_order_release);
      done_cv_.notify_all();
    }
  }
}

}  // namespace rcua::reclaim
