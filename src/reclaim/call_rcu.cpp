#include "reclaim/call_rcu.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"

namespace rcua::reclaim {

CallRcu::CallRcu(Ebr& ebr, StallPolicy policy, StallMonitor* monitor)
    : ebr_(ebr),
      policy_(policy),
      monitor_(monitor != nullptr ? monitor : &StallMonitor::global()),
      dispatcher_([this] { dispatcher_main(); }) {}

CallRcu::~CallRcu() {
  accepting_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
    work_cv_.notify_all();
  }
  dispatcher_.join();
  // A call() that passed the accepting_ check just before the flip may
  // have enqueued after the dispatcher's final sweep; honour it.
  if (!pending_.empty()) {
    ebr_.synchronize();
    invoke_batch(pending_);
  }
}

void CallRcu::call(void (*fn)(void*), void* arg) {
  if (!accepting_.load(std::memory_order_acquire)) {
    std::fprintf(stderr,
                 "rcua: CallRcu::call() after shutdown began — callback "
                 "would race dispatcher teardown\n");
    std::abort();
  }
  std::lock_guard<std::mutex> guard(mu_);
  pending_.push_back({fn, arg});
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
}

void CallRcu::barrier() {
  const std::uint64_t target = enqueued_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return invoked_.load(std::memory_order_acquire) >= target;
  });
}

void CallRcu::invoke_batch(std::vector<Callback>& batch) {
  obs::trace_instant("rcu.callback_batch", "rcu", batch.size());
  for (const Callback& cb : batch) cb.fn(cb.arg);
  const auto n = static_cast<std::uint64_t>(batch.size());
  batch.clear();
  {
    std::lock_guard<std::mutex> guard(mu_);
    invoked_.fetch_add(n, std::memory_order_release);
    done_cv_.notify_all();
  }
}

void CallRcu::retry_stalled() {
  std::vector<StalledBatch> parked;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (stalled_.empty()) return;
    parked.swap(stalled_);
  }
  std::vector<StalledBatch> still;
  for (StalledBatch& sb : parked) {
    // Both reader columns observed empty after the park: the batch's own
    // parity is not enough, because a parked batch means the dispatcher
    // ran ahead of a stalled reader, and that reader — announced on the
    // other parity — may hold objects this batch retires (DESIGN.md §8).
    if (ebr_.readers_at(0) == 0 && ebr_.readers_at(1) == 0) {
      grace_periods_.fetch_add(1, std::memory_order_relaxed);
      invoke_batch(sb.callbacks);
    } else {
      still.push_back(std::move(sb));
    }
  }
  if (!still.empty()) {
    std::lock_guard<std::mutex> guard(mu_);
    for (StalledBatch& sb : still) stalled_.push_back(std::move(sb));
  }
}

void CallRcu::dispatcher_main() {
  std::vector<Callback> batch;
  for (;;) {
    bool stopping;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_ && pending_.empty()) {
        if (stalled_.empty()) {
          work_cv_.wait(lock);
        } else {
          // Parked batches pending: wake on a timer to re-check their
          // parity columns even if no new work arrives.
          const auto poll = std::chrono::nanoseconds(
              std::max<std::uint64_t>(policy_.deadline_ns, 1000 * 1000));
          work_cv_.wait_for(lock, poll);
          break;
        }
      }
      stopping = stop_;
      batch.swap(pending_);
    }
    retry_stalled();
    if (!batch.empty()) {
      // One grace period covers the whole batch: every callback was
      // enqueued before the epoch advance, so every reader that could
      // still see the retired state is drained by it.
      const auto epoch = ebr_.advance_epoch();
      const DrainResult drain = ebr_.try_wait_for_readers(epoch, policy_);
      bool premise_ok;
      {
        // The single-parity drain is only conclusive while no batch is
        // parked: a parked batch means an earlier grace period never
        // completed, so a stalled reader on the other parity may hold
        // objects this batch retires (DESIGN.md §8).
        std::lock_guard<std::mutex> guard(mu_);
        premise_ok = stalled_.empty();
      }
      if (drain.drained && premise_ok) {
        grace_periods_.fetch_add(1, std::memory_order_relaxed);
        invoke_batch(batch);
      } else {
        // Deadline expired (or an earlier batch is still parked): park
        // the batch instead of blocking the dispatcher behind one
        // stalled reader.
        if (!drain.drained) {
          StallDiagnostic diag;
          diag.kind = StallDiagnostic::Kind::kEbrReader;
          diag.domain = &ebr_;
          diag.epoch = epoch;
          diag.stripe = drain.stuck_stripe;
          diag.stuck_readers = drain.stuck_readers;
          diag.waited_ns = drain.waited_ns;
          monitor_->record_stall(diag);
        }
        stalled_batches_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> guard(mu_);
        stalled_.push_back(
            {std::move(batch), static_cast<std::size_t>(epoch % 2)});
        batch.clear();
      }
    }
    if (stopping) {
      // Destruction guarantees every callback runs: blocking-drain every
      // batch still parked, however long its reader takes.
      std::vector<StalledBatch> parked;
      {
        std::lock_guard<std::mutex> guard(mu_);
        parked.swap(stalled_);
      }
      for (StalledBatch& sb : parked) {
        plat::Backoff backoff(/*yield_threshold=*/4);
        while (ebr_.readers_at(0) != 0 || ebr_.readers_at(1) != 0) {
          backoff.pause();
        }
        grace_periods_.fetch_add(1, std::memory_order_relaxed);
        invoke_batch(sb.callbacks);
      }
      return;
    }
  }
}

}  // namespace rcua::reclaim
