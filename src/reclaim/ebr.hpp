#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "platform/align.hpp"
#include "platform/backoff.hpp"
#include "sim/cost_model.hpp"
#include "sim/resource.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua::reclaim {

/// The paper's novel TLS-free Epoch-Based Reclamation (Algorithm 1).
///
/// Designed for a runtime without thread- or task-local storage: readers
/// announce themselves *collectively* on one of two shared counters
/// (`EpochReaders`), selected by the parity of a monotonically increasing
/// `GlobalEpoch`. The read side is
///
///     loop:
///       e   <- GlobalEpoch                   (line 10)
///       idx <- e % 2                         (line 11)
///       EpochReaders[idx] += 1               (line 12, the announcement)
///       if GlobalEpoch == e:                 (line 13, the verification)
///         r <- lambda(snapshot); EpochReaders[idx] -= 1; return r
///       EpochReaders[idx] -= 1; retry        (line 17)
///
/// and the write side, after publishing the new snapshot, bumps the epoch
/// and waits for the *old* parity's counter to drain before reclaiming
/// (lines 5-8). Lemma 1 guarantees at most two live snapshots (the writer
/// holds a cluster lock), so two counters suffice, and Lemma 2 shows
/// parity is preserved even across integer overflow of the epoch — which
/// is why the epoch type is a template parameter: tests instantiate
/// `BasicEbr<std::uint8_t>` and drive it through wrap-around for real.
///
/// All epoch/counter operations are seq_cst, mirroring the Chapel
/// implementation; the paper attributes EBR's cost precisely to the
/// contention and ordering of these fetch-add/fetch-sub pairs.
template <typename EpochT = std::uint64_t>
class BasicEbr {
  static_assert(std::is_unsigned_v<EpochT>,
                "epochs rely on unsigned wrap-around (Lemma 2)");

 public:
  BasicEbr() = default;
  explicit BasicEbr(EpochT initial_epoch) { epoch_->store(initial_epoch); }
  BasicEbr(const BasicEbr&) = delete;
  BasicEbr& operator=(const BasicEbr&) = delete;

  /// Observability counters (relaxed; approximate under concurrency).
  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t read_retries = 0;
    std::uint64_t epoch_advances = 0;
  };

  /// Test-only fault injection: when non-null, invoked at the read-side
  /// linearization points — phase 0 after the epoch load (line 10) and
  /// phase 1 after the increment, before verification (line 13). Tests
  /// install a hook that advances the epoch at exactly these points to
  /// exercise the retry path (line 17) deterministically; production code
  /// leaves it null (one predicted-not-taken branch per site).
  using ReadHook = void (*)(BasicEbr&, int phase);
  ReadHook test_read_hook = nullptr;

  /// RCU_Read: runs `fn` inside a read-side critical section and returns
  /// its result. `fn` may return a reference; per the paper's relaxation
  /// (§III-C) the reference may outlive the critical section *provided*
  /// the protected structure recycles the referenced memory across
  /// snapshots (RCUArray's blocks do; the snapshot spine does not).
  template <typename F>
  decltype(auto) read(F&& fn) {
    for (;;) {
      // Attempt to record our read (lines 10-12).
      const EpochT e = epoch_->load(std::memory_order_seq_cst);
      if (test_read_hook != nullptr) test_read_hook(*this, 0);
      RCUA_SCHED_POINT("ebr.read.epoch_loaded");
      const std::size_t idx = static_cast<std::size_t>(e % 2);
      readers_[idx]->fetch_add(1, std::memory_order_seq_cst);
      charge_reader_rmw(idx);
      if (test_read_hook != nullptr) test_read_hook(*this, 1);
      RCUA_SCHED_POINT("ebr.read.announced");
      // Did the snapshot possibly change before we recorded? (line 13)
      bool verified = epoch_->load(std::memory_order_seq_cst) == e;
      if (RCUA_SCHED_MUT(ebr_skip_reverify)) verified = true;
      if (verified) {
        reads_.value.fetch_add(1, std::memory_order_relaxed);
        if constexpr (std::is_void_v<decltype(fn())>) {
          std::forward<F>(fn)();
          RCUA_SCHED_POINT("ebr.read.leave");
          readers_[idx]->fetch_sub(1, std::memory_order_seq_cst);
          charge_reader_rmw(idx);
          return;
        } else {
          decltype(auto) result = std::forward<F>(fn)();
          RCUA_SCHED_POINT("ebr.read.leave");
          readers_[idx]->fetch_sub(1, std::memory_order_seq_cst);
          charge_reader_rmw(idx);
          return result;
        }
      }
      // Undo and try again (line 17).
      readers_[idx]->fetch_sub(1, std::memory_order_seq_cst);
      charge_reader_rmw(idx);
      read_retries_.value.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// RAII read-side critical section for code that wants to hold the
  /// section open across several statements.
  class ReadGuard {
   public:
    explicit ReadGuard(BasicEbr& ebr) : ebr_(ebr) {
      for (;;) {
        const EpochT e = ebr_.epoch_->load(std::memory_order_seq_cst);
        RCUA_SCHED_POINT("ebr.guard.epoch_loaded");
        idx_ = static_cast<std::size_t>(e % 2);
        ebr_.readers_[idx_]->fetch_add(1, std::memory_order_seq_cst);
        ebr_.charge_reader_rmw(idx_);
        RCUA_SCHED_POINT("ebr.guard.announced");
        bool verified = ebr_.epoch_->load(std::memory_order_seq_cst) == e;
        if (RCUA_SCHED_MUT(ebr_skip_reverify)) verified = true;
        if (verified) {
          ebr_.reads_.value.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        ebr_.readers_[idx_]->fetch_sub(1, std::memory_order_seq_cst);
        ebr_.charge_reader_rmw(idx_);
        ebr_.read_retries_.value.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ~ReadGuard() {
      RCUA_SCHED_POINT("ebr.guard.leave");
      ebr_.readers_[idx_]->fetch_sub(1, std::memory_order_seq_cst);
      ebr_.charge_reader_rmw(idx_);
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    BasicEbr& ebr_;
    std::size_t idx_;
  };

  /// Write-side epoch bump (RCU_Write line 5). Returns the *previous*
  /// epoch, whose parity selects the counter to drain. The caller must
  /// hold the structure's write lock and must already have published the
  /// new snapshot.
  EpochT advance_epoch() noexcept {
    epoch_advances_.value.fetch_add(1, std::memory_order_relaxed);
    sim::charge(sim::CostModel::get().atomic_rmw_ns);
    RCUA_SCHED_POINT("ebr.advance_epoch");
    return epoch_->fetch_add(1, std::memory_order_seq_cst);
  }

  /// Waits until every reader recorded under `old_epoch`'s parity has
  /// evacuated (RCU_Write lines 6-7). After this returns, memory only
  /// reachable from the pre-bump snapshot may be reclaimed.
  void wait_for_readers(EpochT old_epoch) noexcept {
    const std::size_t idx = static_cast<std::size_t>(old_epoch % 2);
    if (RCUA_SCHED_MUT(ebr_skip_drain)) return;
    if (!RCUA_SCHED_AWAIT("ebr.wait_for_readers", [&] {
          return readers_[idx]->load(std::memory_order_seq_cst) == 0;
        })) {
      plat::Backoff backoff(/*yield_threshold=*/4);
      while (readers_[idx]->load(std::memory_order_seq_cst) != 0) {
        backoff.pause();
      }
    }
    sim::charge(sim::CostModel::get().epoch_drain_ns);
  }

  /// advance + drain in one call ("synchronize_rcu").
  void synchronize() noexcept { wait_for_readers(advance_epoch()); }

  [[nodiscard]] EpochT epoch() const noexcept {
    return epoch_->load(std::memory_order_seq_cst);
  }

  [[nodiscard]] std::uint64_t readers_at(std::size_t parity) const noexcept {
    return readers_[parity % 2]->load(std::memory_order_seq_cst);
  }

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{reads_.value.load(std::memory_order_relaxed),
                 read_retries_.value.load(std::memory_order_relaxed),
                 epoch_advances_.value.load(std::memory_order_relaxed)};
  }

 private:
  void charge_reader_rmw(std::size_t idx) noexcept {
    // Modeled as always-contended: the whole point of the collective
    // counters is that every reader on the locale hammers them, so the
    // line ping-pongs on every RMW. (A truly solo reader is overcharged
    // in virtual time; the paper never evaluates that regime.)
    reader_lines_[idx].use(sim::CostModel::get().rmw_transfer_ns);
  }

  // GlobalEpoch and the two EpochReaders, each on its own cache line.
  plat::CacheAligned<std::atomic<EpochT>> epoch_{EpochT{0}};
  plat::CacheAligned<std::atomic<std::uint64_t>> readers_[2]{};
  // Virtual-time contention model for each counter's cache line.
  sim::VirtualResource reader_lines_[2];
  // Stats.
  plat::CacheAligned<std::atomic<std::uint64_t>> reads_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> read_retries_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> epoch_advances_{0ULL};
};

/// Default epoch width used by RCUArray.
using Ebr = BasicEbr<std::uint64_t>;

}  // namespace rcua::reclaim
