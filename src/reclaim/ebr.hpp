#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "platform/align.hpp"
#include "platform/backoff.hpp"
#include "platform/timing.hpp"
#include "platform/topology.hpp"
#include "reclaim/stall_monitor.hpp"
#include "sim/cost_model.hpp"
#include "sim/resource.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

#if defined(RCUA_STATS) && RCUA_STATS
#define RCUA_EBR_STATS 1
#else
#define RCUA_EBR_STATS 0
#endif

namespace rcua::reclaim {

/// Outcome of a deadline-bounded drain (BasicEbr::try_wait_for_readers).
/// On timeout the stuck-stripe fields identify the offender for the
/// stall diagnostic.
struct DrainResult {
  bool drained = true;
  std::uint64_t waited_ns = 0;
  /// First stripe whose old-parity slot was non-zero at expiry
  /// (SIZE_MAX when drained or when the column emptied between checks).
  std::size_t stuck_stripe = SIZE_MAX;
  /// Old-parity column sum observed at expiry.
  std::uint64_t stuck_readers = 0;
};

/// Default number of reader-counter stripes: the hardware thread count
/// rounded up to a power of two (clamped to [1, 256]), overridable with
/// the RCUA_EBR_STRIPES environment variable (also rounded/clamped).
[[nodiscard]] std::size_t default_ebr_stripes();

/// Reader-counter layout policies (the A/B knob for the ablation bench).
///
/// `StripedReaders` is the optimized layout: `stripes × 2` cache-line
/// padded announcement slots, stripe picked by a cheap hash of the
/// calling thread, announce/retract RMWs weakened to acq_rel and paired
/// with a writer-side seq_cst fence after the epoch bump.
///
/// `LegacyReaders` is the paper's original collective layout — one
/// `EpochReaders[2]` pair shared by every reader on the locale, all
/// RMWs seq_cst — kept selectable so benches can A/B the two in one
/// binary and tests can pin the paper's exact cost structure.
struct StripedReaders {
  static constexpr bool kStriped = true;
};
struct LegacyReaders {
  static constexpr bool kStriped = false;
};

/// The paper's novel TLS-free Epoch-Based Reclamation (Algorithm 1),
/// with a striped read side.
///
/// Readers announce themselves *collectively* on one of two columns of a
/// counter bank, selected by the parity of a monotonically increasing
/// `GlobalEpoch`. The read side is
///
///     loop:
///       e   <- GlobalEpoch                   (line 10)
///       idx <- e % 2                         (line 11)
///       Bank[stripe][idx] += 1               (line 12, the announcement)
///       if GlobalEpoch == e:                 (line 13, the verification)
///         r <- lambda(snapshot); Bank[stripe][idx] -= 1; return r
///       Bank[stripe][idx] -= 1; retry        (line 17)
///
/// and the write side, after publishing the new snapshot, bumps the epoch
/// and waits for the *old* parity's column — summed across stripes — to
/// drain before reclaiming (lines 5-8). Lemma 1 guarantees at most two
/// live snapshots (the writer holds a cluster lock), so two columns
/// suffice, and Lemma 2 shows parity is preserved even across integer
/// overflow of the epoch — which is why the epoch type is a template
/// parameter: tests instantiate `BasicEbr<std::uint8_t>` and drive it
/// through wrap-around for real.
///
/// Striping (DEBRA's observation, kept TLS-free): the paper attributes
/// EBR's collapse to every reader on a locale hammering the same two
/// cache lines with seq_cst RMWs. Hashing each reader onto its own
/// padded slot makes the announce/retract RMWs almost-always
/// uncontended; summing a column preserves the drain condition because a
/// reader only ever announces and retracts on one slot. Memory ordering:
/// the announce/retract RMWs are acq_rel, the epoch load/verify stays
/// seq_cst, and `advance_epoch` issues a seq_cst fence after the bump —
/// the line-13 argument needs only that a reader whose verify load saw
/// the pre-bump epoch has its announcement visible to the writer's
/// post-fence drain scan (see DESIGN.md §5).
template <typename EpochT = std::uint64_t, typename Layout = StripedReaders>
class BasicEbr {
  static_assert(std::is_unsigned_v<EpochT>,
                "epochs rely on unsigned wrap-around (Lemma 2)");

 public:
  /// `stripe_count` of 0 means `default_ebr_stripes()`; any other value
  /// is rounded up to a power of two. LegacyReaders always uses one
  /// stripe (the original EpochReaders[2] pair).
  BasicEbr() : BasicEbr(EpochT{0}) {}
  explicit BasicEbr(EpochT initial_epoch, std::size_t stripe_count = 0)
      : stripes_(Layout::kStriped
                     ? round_up_pow2(stripe_count != 0 ? stripe_count
                                                       : default_ebr_stripes())
                     : 1),
        stripe_mask_(stripes_ - 1),
        slots_(new Slot[stripes_ * 2]),
        slot_lines_(new sim::VirtualResource[stripes_ * 2])
#if RCUA_EBR_STATS
        ,
        stripe_stats_(new StripeStats[stripes_])
#endif
  {
    epoch_->store(initial_epoch, std::memory_order_relaxed);
  }
  BasicEbr(const BasicEbr&) = delete;
  BasicEbr& operator=(const BasicEbr&) = delete;

  /// Observability counters. `reads` and `read_retries` are maintained
  /// per-stripe and only when the library is built with -DRCUA_STATS=ON
  /// (they are read-side RMWs, so by default they compile out of the hot
  /// path entirely and report 0). `epoch_advances` is write-side and
  /// always maintained.
  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t read_retries = 0;
    std::uint64_t epoch_advances = 0;
  };

  static constexpr bool kStatsEnabled = RCUA_EBR_STATS != 0;
  static constexpr bool kStripedLayout = Layout::kStriped;

  /// Test-only fault injection: when non-null, invoked at the read-side
  /// linearization points — phase 0 after the epoch load (line 10) and
  /// phase 1 after the increment, before verification (line 13). Tests
  /// install a hook that advances the epoch at exactly these points to
  /// exercise the retry path (line 17) deterministically; production code
  /// leaves it null (one predicted-not-taken branch per site). Both
  /// `read()` and `ReadGuard` enter through the same `announce()` helper,
  /// so the hook fires identically on either path.
  using ReadHook = void (*)(BasicEbr&, int phase);
  ReadHook test_read_hook = nullptr;

  /// Test-only stripe pin: when >= 0, announcements land on this stripe
  /// (mod stripe count) instead of the thread-hash choice. Lets unit
  /// tests place readers on known stripes to exercise the drain's
  /// cross-stripe summation.
  std::int32_t test_stripe_override = -1;

  /// RCU_Read: runs `fn` inside a read-side critical section and returns
  /// its result. `fn` may return a reference; per the paper's relaxation
  /// (§III-C) the reference may outlive the critical section *provided*
  /// the protected structure recycles the referenced memory across
  /// snapshots (RCUArray's blocks do; the snapshot spine does not).
  template <typename F>
  decltype(auto) read(F&& fn) {
    const std::size_t slot = announce();
    obs::trace_event("rcu.read_section", "rcu", 'B');
    const std::uint64_t dwell_start = dwell_clock_if_enabled();
    if constexpr (std::is_void_v<decltype(fn())>) {
      std::forward<F>(fn)();
      RCUA_SCHED_POINT("ebr.read.leave");
      note_section_end(dwell_start);
      retract(slot);
      return;
    } else {
      decltype(auto) result = std::forward<F>(fn)();
      RCUA_SCHED_POINT("ebr.read.leave");
      note_section_end(dwell_start);
      retract(slot);
      return result;
    }
  }

  /// RAII read-side critical section for code that wants to hold the
  /// section open across several statements. Enters through the same
  /// announce() loop as read(), so hooks, schedule points and stats fire
  /// identically on both paths.
  class ReadGuard {
   public:
    explicit ReadGuard(BasicEbr& ebr) : ebr_(ebr), slot_(ebr.announce()) {
      obs::trace_event("rcu.read_section", "rcu", 'B');
      dwell_start_ = dwell_clock_if_enabled();
    }
    ~ReadGuard() {
      RCUA_SCHED_POINT("ebr.guard.leave");
      note_section_end(dwell_start_);
      ebr_.retract(slot_);
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    BasicEbr& ebr_;
    std::size_t slot_;
    std::uint64_t dwell_start_ = 0;
  };

  /// Write-side epoch bump (RCU_Write line 5). Returns the *previous*
  /// epoch, whose parity selects the column to drain. The caller must
  /// hold the structure's write lock and must already have published the
  /// new snapshot. In the striped layout the bump is followed by a
  /// seq_cst fence: the drain's counter loads must not be satisfied
  /// before the new epoch is visible, or a reader that announced and
  /// verified against the old epoch could be missed (the StoreLoad edge
  /// the all-seq_cst legacy layout got implicitly).
  EpochT advance_epoch() noexcept {
    epoch_advances_.value.fetch_add(1, std::memory_order_relaxed);
    sim::charge(sim::CostModel::get().atomic_rmw_ns);
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
    if constexpr (Layout::kStriped) {
      if (RCUA_SCHED_MUT(ebr_skip_fence)) {
        // SC emulation of the reordering the fence forbids: without the
        // fence the drain's first column scan may be satisfied by values
        // read before the epoch store became visible. Sample the
        // soon-to-be-old column here, pre-bump; wait_for_readers consumes
        // the sample as its (hoisted) first check.
        const auto old_idx = static_cast<std::size_t>(
            epoch_->load(std::memory_order_seq_cst) % 2);
        hoisted_scan_zero_[old_idx] = column_sum(old_idx) == 0;
        RCUA_SCHED_POINT("ebr.advance.hoisted_scan");
      }
    }
#endif
    RCUA_SCHED_POINT("ebr.advance_epoch");
    const EpochT prev = epoch_->fetch_add(1, std::memory_order_seq_cst);
    if constexpr (Layout::kStriped) {
      if (!RCUA_SCHED_MUT(ebr_skip_fence)) {
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
    }
    obs::trace_instant("rcu.epoch_bump", "rcu",
                       static_cast<std::uint64_t>(prev) + 1);
    return prev;
  }

  /// Waits until every reader recorded under `old_epoch`'s parity has
  /// evacuated (RCU_Write lines 6-7): the old-parity column, summed over
  /// all stripes, must reach zero. A reader only ever announces and
  /// retracts on a single slot, so a zero sum means every announced
  /// old-parity reader has retracted. After this returns, memory only
  /// reachable from the pre-bump snapshot may be reclaimed.
  void wait_for_readers(EpochT old_epoch) noexcept {
    const std::size_t idx = static_cast<std::size_t>(old_epoch % 2);
    if (RCUA_SCHED_MUT(ebr_skip_drain)) return;
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
    if constexpr (Layout::kStriped) {
      if (RCUA_SCHED_MUT(ebr_skip_fence) && hoisted_scan_zero_[idx]) {
        // The hoisted (pre-bump) scan saw an empty column; without the
        // fence the writer believes the drain already completed.
        hoisted_scan_zero_[idx] = false;
        return;
      }
    }
#endif
    obs::TraceSpan span("rcu.drain_wait", "rcu");
    const std::uint64_t grace_start = grace_clock_ns();
    if (!RCUA_SCHED_AWAIT("ebr.wait_for_readers",
                          [&] { return column_sum(idx) == 0; })) {
      plat::Backoff backoff(/*yield_threshold=*/4);
      while (column_sum(idx) != 0) {
        backoff.pause();
      }
    }
    sim::charge(sim::CostModel::get().epoch_drain_ns);
    obs::health::grace_ns().record(grace_clock_ns() - grace_start);
  }

  /// Deadline-bounded variant of wait_for_readers: drains the old-parity
  /// column under `policy`'s spin -> yield -> park backoff, giving up
  /// once the deadline expires (a blocking policy never gives up, making
  /// this equivalent to wait_for_readers). On timeout the result carries
  /// the stall evidence — the column sum and the first stuck stripe — so
  /// the caller can emit a StallDiagnostic and defer the retired memory
  /// onto an OverflowRetireList instead of blocking forever.
  DrainResult try_wait_for_readers(EpochT old_epoch,
                                   const StallPolicy& policy) noexcept {
    const std::size_t idx = static_cast<std::size_t>(old_epoch % 2);
    DrainResult result;
    if (RCUA_SCHED_MUT(ebr_skip_drain)) return result;
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
    if constexpr (Layout::kStriped) {
      if (RCUA_SCHED_MUT(ebr_skip_fence) && hoisted_scan_zero_[idx]) {
        hoisted_scan_zero_[idx] = false;
        return result;
      }
    }
#endif
    obs::TraceSpan span("rcu.drain_wait", "rcu");
    const std::uint64_t start = plat::now_ns();
    result.drained = wait_with_policy("ebr.try_wait_for_readers", policy,
                                      [&] { return column_sum(idx) == 0; });
    result.waited_ns = plat::now_ns() - start;
    // Timed-out waits record the full deadline spent: the tail of the
    // grace histogram is the stalled-reader signal.
    obs::health::grace_ns().record(result.waited_ns);
    if (result.drained) {
      sim::charge(sim::CostModel::get().epoch_drain_ns);
      return result;
    }
    result.stuck_readers = column_sum(idx);
    result.stuck_stripe = scan_stalled_stripe(idx);
    return result;
  }

  /// First stripe currently holding a non-zero count at `parity`;
  /// SIZE_MAX when the column is empty. Watchdog detection surface.
  [[nodiscard]] std::size_t scan_stalled_stripe(std::size_t parity) const
      noexcept {
    const std::size_t idx = parity % 2;
    for (std::size_t s = 0; s < stripes_; ++s) {
      if (slots_[s * 2 + idx]->load(std::memory_order_acquire) != 0) return s;
    }
    return SIZE_MAX;
  }

  /// advance + drain in one call ("synchronize_rcu").
  void synchronize() noexcept { wait_for_readers(advance_epoch()); }

  [[nodiscard]] EpochT epoch() const noexcept {
    return epoch_->load(std::memory_order_seq_cst);
  }

  /// Sum of the given parity's column across all stripes.
  [[nodiscard]] std::uint64_t readers_at(std::size_t parity) const noexcept {
    return column_sum(parity % 2);
  }

  /// One slot of the bank (tests of the stripe summation).
  [[nodiscard]] std::uint64_t readers_at_stripe(std::size_t stripe,
                                                std::size_t parity) const
      noexcept {
    return slots_[(stripe & stripe_mask_) * 2 + (parity % 2)]->load(
        std::memory_order_seq_cst);
  }

  [[nodiscard]] std::size_t stripe_count() const noexcept { return stripes_; }

  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
#if RCUA_EBR_STATS
    for (std::size_t i = 0; i < stripes_; ++i) {
      s.reads += stripe_stats_[i].reads.load(std::memory_order_relaxed);
      s.read_retries +=
          stripe_stats_[i].retries.load(std::memory_order_relaxed);
    }
#endif
    s.epoch_advances = epoch_advances_.value.load(std::memory_order_relaxed);
    return s;
  }

 private:
  using Slot = plat::CacheAligned<std::atomic<std::uint64_t>>;

#if RCUA_EBR_STATS
  struct alignas(plat::kCacheLine) StripeStats {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> retries{0};
  };
#endif

  static constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n && p < 256) p <<= 1;
    return p;
  }

  /// Grace/dwell timestamps follow the trace-layer convention: virtual
  /// time when a TaskClock is attached (deterministic under the sched
  /// harness), wall time otherwise. Reading now_v() charges nothing.
  [[nodiscard]] static std::uint64_t grace_clock_ns() noexcept {
    return sim::enabled() ? sim::now_v() : plat::now_ns();
  }

  /// Dwell timing costs two clock reads per read section, so it is
  /// gated behind RCUA_METRICS (detailed_metrics_enabled). Returns 0
  /// when disabled; 0 doubles as the "don't record" sentinel.
  [[nodiscard]] static std::uint64_t dwell_clock_if_enabled() noexcept {
    return obs::detailed_metrics_enabled() ? grace_clock_ns() : 0;
  }

  static void note_section_end(std::uint64_t dwell_start) noexcept {
    obs::trace_event("rcu.read_section", "rcu", 'E');
    if (dwell_start != 0) {
      obs::health::reader_dwell_ns().record(grace_clock_ns() - dwell_start);
    }
  }

  /// Announce/retract ordering: the striped layout relies on the
  /// writer-side fence for the StoreLoad edge, so its reader RMWs only
  /// need acq_rel (release so the drain's acquire loads order the
  /// critical section before reclamation; acquire so the section's loads
  /// cannot hoist above the announcement). The legacy layout keeps the
  /// paper's all-seq_cst RMWs.
  static constexpr std::memory_order reader_rmw_order() noexcept {
    return Layout::kStriped ? std::memory_order_acq_rel
                            : std::memory_order_seq_cst;
  }

  [[nodiscard]] std::size_t current_stripe() const noexcept {
    if constexpr (!Layout::kStriped) return 0;
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
    // Under the deterministic scheduler the stripe must be a function of
    // the logical task, not of the (run-varying) OS thread identity, or
    // seeds would not replay.
    if (testing::sched_task_active()) {
      return testing::sched_task_id() & stripe_mask_;
    }
#endif
    if (test_stripe_override >= 0) {
      return static_cast<std::size_t>(test_stripe_override) & stripe_mask_;
    }
    return plat::stripe_index(stripes_);
  }

  /// The read-side entry loop shared by read() and ReadGuard (lines
  /// 10-13 + the undo/retry of line 17). Returns the bank slot index the
  /// caller must retract() from when leaving the critical section.
  std::size_t announce() {
    for (;;) {
      // Attempt to record our read (lines 10-12).
      const EpochT e = epoch_->load(std::memory_order_seq_cst);
      if (test_read_hook != nullptr) test_read_hook(*this, 0);
      RCUA_SCHED_POINT("ebr.read.epoch_loaded");
      const std::size_t stripe = current_stripe();
      const std::size_t slot = stripe * 2 + static_cast<std::size_t>(e % 2);
      slots_[slot]->fetch_add(1, reader_rmw_order());
      charge_reader_rmw(slot);
      if (test_read_hook != nullptr) test_read_hook(*this, 1);
      RCUA_SCHED_POINT(announce_site(stripe));
      // Did the snapshot possibly change before we recorded? (line 13)
      bool verified = epoch_->load(std::memory_order_seq_cst) == e;
      if (RCUA_SCHED_MUT(ebr_skip_reverify)) verified = true;
      if (verified) {
        count_read(stripe);
        return slot;
      }
      // Undo and try again (line 17).
      slots_[slot]->fetch_sub(1, reader_rmw_order());
      charge_reader_rmw(slot);
      count_retry(stripe);
    }
  }

  void retract(std::size_t slot) noexcept {
    slots_[slot]->fetch_sub(1, reader_rmw_order());
    charge_reader_rmw(slot);
  }

  [[nodiscard]] std::uint64_t column_sum(std::size_t idx) const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < stripes_; ++s) {
      sum += slots_[s * 2 + idx]->load(Layout::kStriped
                                           ? std::memory_order_acquire
                                           : std::memory_order_seq_cst);
    }
    return sum;
  }

  void count_read(std::size_t stripe) noexcept {
#if RCUA_EBR_STATS
    stripe_stats_[stripe].reads.fetch_add(1, std::memory_order_relaxed);
#else
    (void)stripe;
#endif
  }
  void count_retry(std::size_t stripe) noexcept {
#if RCUA_EBR_STATS
    stripe_stats_[stripe].retries.fetch_add(1, std::memory_order_relaxed);
#else
    (void)stripe;
#endif
  }

  void charge_reader_rmw(std::size_t slot) noexcept {
    if constexpr (Layout::kStriped) {
      // A stripe's line stays in its (usual) owner's cache: a reader
      // re-announcing on its own stripe pays an uncontended RMW; only a
      // hash collision (or a writer's drain scan racing in) transfers
      // the line. This is the regime split the striping buys.
      const auto& m = sim::CostModel::get();
      slot_lines_[slot].use_owned(m.rmw_transfer_ns, m.atomic_rmw_ns);
    } else {
      // Modeled as always-contended: the whole point of the collective
      // counters is that every reader on the locale hammers them, so the
      // line ping-pongs on every RMW. (A truly solo reader is overcharged
      // in virtual time; the paper never evaluates that regime.)
      slot_lines_[slot].use(sim::CostModel::get().rmw_transfer_ns);
    }
  }

  /// Static per-stripe site names so sched traces show which stripe an
  /// announcement landed on without allocating.
  static const char* announce_site(std::size_t stripe) noexcept {
    static constexpr const char* kSites[] = {
        "ebr.read.announced[s0]", "ebr.read.announced[s1]",
        "ebr.read.announced[s2]", "ebr.read.announced[s3]",
        "ebr.read.announced[s4]", "ebr.read.announced[s5]",
        "ebr.read.announced[s6]", "ebr.read.announced[s7]",
    };
    return stripe < 8 ? kSites[stripe] : "ebr.read.announced";
  }

  // GlobalEpoch on its own cache line; the reader bank is stripes × 2
  // padded slots, slot (stripe, parity) at index stripe*2 + parity.
  plat::CacheAligned<std::atomic<EpochT>> epoch_{EpochT{0}};
  std::size_t stripes_;
  std::size_t stripe_mask_;
  std::unique_ptr<Slot[]> slots_;
  // Virtual-time contention model, one line per bank slot.
  std::unique_ptr<sim::VirtualResource[]> slot_lines_;
#if RCUA_EBR_STATS
  std::unique_ptr<StripeStats[]> stripe_stats_;
#endif
  plat::CacheAligned<std::atomic<std::uint64_t>> epoch_advances_{0ULL};
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  /// ebr_skip_fence emulation state (see advance_epoch); written and
  /// consumed only by the (lock-serialized) writer.
  bool hoisted_scan_zero_[2] = {false, false};
#endif
};

/// Default epoch width and layout used by RCUArray.
using Ebr = BasicEbr<std::uint64_t, StripedReaders>;
/// The paper's original 2-counter collective layout (A/B baseline).
using LegacyEbr = BasicEbr<std::uint64_t, LegacyReaders>;

}  // namespace rcua::reclaim
