#pragma once

// Era-based bounded-memory reclamation: interval-based reclamation (IBR)
// and hazard eras as first-class RCUArray reclaimer policies — the
// reclamation tier Brown's critique of EBR calls for (PAPERS.md), where
// unreclaimed memory is bounded *by construction* instead of by the §8
// watchdog's overflow budget.
//
// Both schemes share one mechanism, so both are instantiations of
// `BasicEraReclaimer`:
//
//  * A monotone per-domain **era clock**, bumped (amortized, default
//    every retire) on the write side. No reader ever advances it.
//  * Every retired object carries an era **lifetime tag** [birth,
//    retire]: `birth` is the era current when the object was allocated
//    (stamped by the owner before publication), `retire` the era current
//    when it was unpublished and handed to `retire()`.
//  * Readers claim one padded **reservation slot** (CAS, preferred index
//    derived from the logical task / thread) and publish era values into
//    it through `ReadGuard::protect()`, a publish-then-reverify loop:
//
//        e <- Era                      (publish the reservation at e)
//        loop:
//          p <- src                    (the protected pointer load)
//          e' <- Era
//          if e' == e: return p        (no era advanced across the load)
//          e <- e'; republish; retry
//
//    The exit condition pins the protected object's tags against the
//    reservation: birth(p) <= era(load) <= e, and any retire of p after
//    the load stamps retire(p) >= e (the era did not move between the
//    publish and the verify, and it never decreases). Hence the interval
//    overlap check below covers every protected object even though the
//    era bump is amortized.
//  * `retire()` appends to a per-domain list and scans it against the
//    live reservations: an entry [b, r] stays **blocked** while some
//    reservation [lo, hi] satisfies `lo <= r && b <= hi`; everything
//    else is freed immediately. No grace-period wait exists on this
//    path — where EBR's writer blocks (or defers onto the bytes-budgeted
//    overflow list), an era writer always completes its retire in O(slots
//    + pending) and moves on.
//
// The two schemes differ only in what a reservation holds:
//
//  * **IBR** (`kPinLower = true`): the slot holds a real interval — the
//    lower bound is pinned at the section's first protect and only the
//    upper bound advances. A section that protects across several era
//    bumps keeps every object it could have seen covered.
//  * **Hazard eras** (`kPinLower = false`): the slot holds a single era
//    (lower == upper, both republished on every retry) — cheaper
//    semantics, per-pointer protection exactly like hazard pointers but
//    with an era tag instead of the pointer value.
//
// Bounded memory under a stalled reader (the robustness gate this tier
// exists for): a stalled reservation is a *fixed* [lo, hi]. Every object
// allocated after the stall has birth > hi once the era clock has moved,
// so the reservation blocks at most the objects already live in its
// window — a constant set — while the clock (bumped per retire) runs
// away. Contrast EBR, where the stalled parity column gates every later
// retirement, and QSBR, where the laggard pins the global minimum: both
// grow without bound. DESIGN.md §13 carries the full argument and the
// Lemma 6 generalization for era-tagged spines.
//
// Sched-harness mutations (testing/sched_point.hpp):
//   ibr_reserve_after_load — publish the reservation only AFTER the
//     pointer load, no reverify (the tempting "load first, then
//     reserve what you saw" order). Unsound: a writer can retire and
//     scan in the window, see no reservation, and free the loaded
//     object.
//   he_clear_before_access — clear the hazard-era slot as soon as the
//     pointer is in hand, before the section's last access (the
//     "the pointer is already local, the slot is dead weight"
//     optimization). Unsound for the same reason hazard pointers must
//     hold their slot for the whole section.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "platform/align.hpp"
#include "platform/backoff.hpp"
#include "platform/spinlock.hpp"
#include "platform/timing.hpp"
#include "platform/topology.hpp"
#include "reclaim/ebr.hpp"  // DrainResult (shared drain-wait shape)
#include "reclaim/stall_monitor.hpp"
#include "sim/cost_model.hpp"
#include "sim/resource.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

#if defined(RCUA_STATS) && RCUA_STATS
#define RCUA_ERA_STATS 1
#else
#define RCUA_ERA_STATS 0
#endif

namespace rcua::reclaim {

/// Default reservation-slot count: twice the hardware thread count
/// rounded up to a power of two (clamped to [2, 512]), overridable with
/// the RCUA_ERA_SLOTS environment variable. Reservations are per-reader
/// state (not additive like EBR's counters), so the slot count bounds
/// concurrent read sections per domain; a reader finding every slot
/// claimed waits for one.
[[nodiscard]] std::size_t default_era_slots();

/// Outcome of one retire()/scan(): what was freed, what stays blocked,
/// and the stall evidence (how far the slowest live reservation trails
/// the era clock) the caller can turn into a StallDiagnostic.
struct RetireResult {
  std::size_t freed_objects = 0;
  std::size_t freed_bytes = 0;
  /// Still blocked by a live reservation after the scan.
  std::size_t pending_objects = 0;
  std::size_t pending_bytes = 0;
  /// Era clock at scan time.
  std::uint64_t era = 0;
  /// era - min(live reservation upper bound); 0 with no reservations.
  /// A lag that grows across retires is the stalled-reader signal — a
  /// healthy reader re-enters with a fresh era, a stalled one does not.
  std::uint64_t reservation_lag = 0;
  /// Count of live reservations whose upper bound trails the era clock.
  std::uint64_t stale_reservations = 0;
  /// Slot index of the reservation setting the lag (SIZE_MAX = none).
  std::size_t laggard_slot = SIZE_MAX;
};

/// Reservation shapes (the only point where IBR and hazard eras differ).
struct IbrReservations {
  static constexpr bool kPinLower = true;
  static constexpr const char* kPolicyTag = "ibr";
};
struct HazardEraReservations {
  static constexpr bool kPinLower = false;
  static constexpr const char* kPolicyTag = "he";
};

template <typename Shape>
class BasicEraReclaimer {
  struct Slot;  // declared below; named in ReadGuard's signatures

 public:
  /// Sentinel era meaning "slot holds no reservation".
  static constexpr std::uint64_t kIdleEra = UINT64_MAX;
  static constexpr bool kStatsEnabled = RCUA_ERA_STATS != 0;
  static constexpr bool kPinLower = Shape::kPinLower;

  /// `slot_count` of 0 means default_era_slots(); any other value is
  /// rounded up to a power of two (clamped like the default).
  BasicEraReclaimer() : BasicEraReclaimer(0) {}
  explicit BasicEraReclaimer(std::uint64_t initial_era,
                             std::size_t slot_count = 0)
      : nslots_(round_up_pow2(slot_count != 0 ? slot_count
                                              : default_era_slots())),
        slot_mask_(nslots_ - 1),
        slots_(new Slot[nslots_]),
        slot_lines_(new sim::VirtualResource[nslots_]),
#if RCUA_ERA_STATS
        slot_stats_(new SlotStats[nslots_]),
#endif
        unreclaimed_gauge_(
            &obs::health::unreclaimed_bytes_hwm(Shape::kPolicyTag)) {
    era_.value.store(initial_era, std::memory_order_relaxed);
  }
  BasicEraReclaimer(const BasicEraReclaimer&) = delete;
  BasicEraReclaimer& operator=(const BasicEraReclaimer&) = delete;
  ~BasicEraReclaimer() { flush_unsafe(); }

  /// Observability counters. `reads`/`read_retries` are per-slot and
  /// only maintained under -DRCUA_STATS=ON (read-side RMWs, compiled out
  /// by default); everything else is write-side and always live.
  /// `epoch_advances` counts era-clock advances — named for drop-in
  /// compatibility with BasicEbr::Stats (bench_stat lines).
  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t read_retries = 0;
    std::uint64_t epoch_advances = 0;
    std::uint64_t era_scans = 0;
    std::uint64_t retired = 0;
    std::uint64_t freed = 0;
    std::size_t pending_objects = 0;
    std::size_t pending_bytes = 0;
    /// High-water pending bytes — the measured bounded-memory claim.
    std::size_t pending_bytes_hwm = 0;
  };

  /// Test-only slot pin: when >= 0, readers claim from this preferred
  /// index (mod slot count) instead of the task/thread-derived choice.
  std::int32_t test_slot_override = -1;

  /// RAII read-side critical section. Construction claims a reservation
  /// slot (waiting if all are claimed); `protect()` publishes era
  /// reservations and returns a pointer guaranteed not to be reclaimed
  /// while the guard lives; destruction clears and releases the slot.
  class ReadGuard {
   public:
    explicit ReadGuard(BasicEraReclaimer& dom)
        : dom_(dom), slot_(dom.claim_slot()) {
      obs::trace_event("rcu.read_section", "rcu", 'B');
    }
    ~ReadGuard() {
      RCUA_SCHED_POINT("era.guard.leave");
      obs::trace_event("rcu.read_section", "rcu", 'E');
      dom_.release_slot(slot_);
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    /// Loads a pointer from `src` under a published era reservation (the
    /// publish-then-reverify loop in the header comment). The returned
    /// object — and, transitively, anything whose era lifetime encloses
    /// its own, e.g. the blocks under an RCUArray spine — stays
    /// unreclaimed until the guard dies. May be called more than once
    /// per section; under IBR the reservation's lower bound stays pinned
    /// at the first protect.
    template <typename P>
    [[nodiscard]] P* protect(const std::atomic<P*>& src) {
      Slot& s = dom_.slots_[slot_];
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
      if constexpr (Shape::kPinLower) {
        if (RCUA_SCHED_MUT(ibr_reserve_after_load)) {
          // MUTATION: load first, then reserve what was seen — no
          // reverify. Between the load and the publish a writer's
          // retire+scan observes no reservation and frees the loaded
          // object (tests/test_sched_eras.cpp).
          P* p = src.load(std::memory_order_seq_cst);
          RCUA_SCHED_POINT("era.protect.load_unreserved");
          publish(s, dom_.era_.value.load(std::memory_order_seq_cst));
          dom_.count_read(slot_);
          return p;
        }
      }
#endif
      std::uint64_t e = dom_.era_.value.load(std::memory_order_seq_cst);
      for (;;) {
        publish(s, e);
        RCUA_SCHED_POINT("era.protect.reserved");
        P* p = src.load(std::memory_order_seq_cst);
        const std::uint64_t now =
            dom_.era_.value.load(std::memory_order_seq_cst);
        if (now == e) {
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
          if constexpr (!Shape::kPinLower) {
            if (RCUA_SCHED_MUT(he_clear_before_access)) {
              // MUTATION: the pointer is in hand, so drop the slot
              // before the section's accesses — the classic premature
              // hazard release (tests/test_sched_eras.cpp).
              s.lower.store(kIdleEra, std::memory_order_seq_cst);
              s.upper.store(kIdleEra, std::memory_order_seq_cst);
              RCUA_SCHED_POINT("era.protect.cleared_early");
            }
          }
#endif
          dom_.count_read(slot_);
          return p;
        }
        e = now;
        dom_.count_retry(slot_);
      }
    }

    /// The claimed reservation slot (tests of the slot machinery).
    [[nodiscard]] std::size_t slot() const noexcept { return slot_; }

   private:
    void publish(Slot& s, std::uint64_t e) noexcept {
      if constexpr (Shape::kPinLower) {
        // IBR: the lower bound is written once per section.
        if (!published_) {
          s.lower.store(e, std::memory_order_seq_cst);
          published_ = true;
        }
      } else {
        s.lower.store(e, std::memory_order_seq_cst);
      }
      s.upper.store(e, std::memory_order_seq_cst);
      dom_.charge_slot_rmw(slot_);
    }

    BasicEraReclaimer& dom_;
    std::size_t slot_;
    bool published_ = false;
  };

  // -- Write side --------------------------------------------------------

  [[nodiscard]] std::uint64_t current_era() const noexcept {
    return era_.value.load(std::memory_order_seq_cst);
  }

  /// Bumps the era clock; returns the NEW era value. (BasicEbr's
  /// advance_epoch returns the previous epoch — the different name keeps
  /// the two conventions from colliding.)
  std::uint64_t advance_era() noexcept {
    era_advances_.value.fetch_add(1, std::memory_order_relaxed);
    sim::charge(sim::CostModel::get().atomic_rmw_ns);
    RCUA_SCHED_POINT("era.advance");
    const std::uint64_t next =
        era_.value.fetch_add(1, std::memory_order_seq_cst) + 1;
    obs::trace_instant("rcu.epoch_bump", "rcu", next);
    return next;
  }

  /// Retires `(deleter, obj)` with allocation-era tag `birth_era`,
  /// stamps the retire era, ticks the (amortized) era clock and — once
  /// `scan_threshold` entries are pending — scans against the live
  /// reservations. NEVER waits on readers: where EBR's writer drains a
  /// parity column, this returns in O(slots + pending) with everything
  /// unblocked freed and the blocked remainder carried as pending (the
  /// bounded-by-construction contract).
  RetireResult retire(void (*deleter)(void*), void* obj, std::size_t bytes,
                      std::uint64_t birth_era) {
    {
      std::lock_guard<plat::Spinlock> guard(lock_);
      list_.push_back({deleter, obj, bytes, birth_era,
                       era_.value.load(std::memory_order_seq_cst)});
    }
    retired_.value.fetch_add(1, std::memory_order_relaxed);
    const std::size_t objects =
        pending_objects_.value.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::size_t now_bytes =
        pending_bytes_.value.fetch_add(bytes, std::memory_order_relaxed) +
        bytes;
    note_pending_hwm(now_bytes);
    RCUA_SCHED_POINT("era.retire");
    if (++retires_since_advance_ >= era_freq_) {
      retires_since_advance_ = 0;
      advance_era();
    }
    if (objects >= scan_threshold_) return scan();
    RetireResult out;
    out.era = current_era();
    out.pending_objects = objects;
    out.pending_bytes = now_bytes;
    return out;
  }

  /// Scans the retire list against a snapshot of the live reservations,
  /// freeing every entry no reservation covers. Callers need no
  /// exclusion (the list lock serializes concurrent scans), but the
  /// normal caller is the structure's (write-locked) retire path.
  RetireResult scan() {
    const std::uint64_t t0 = scan_clock_ns();
    RCUA_SCHED_POINT("era.scan");
    RetireResult out;
    std::vector<Retired> freeable;
    {
      std::lock_guard<plat::Spinlock> guard(lock_);
      out.era = era_.value.load(std::memory_order_seq_cst);
      scratch_.clear();
      std::uint64_t min_upper = kIdleEra;
      for (std::size_t s = 0; s < nslots_; ++s) {
        if (slots_[s].claimed.load(std::memory_order_acquire) == 0) continue;
        const std::uint64_t hi =
            slots_[s].upper.load(std::memory_order_seq_cst);
        const std::uint64_t lo =
            slots_[s].lower.load(std::memory_order_seq_cst);
        // A claimed slot with no published upper bound is a reader still
        // inside protect(): it holds nothing yet, and anything retired
        // before its publish was unpublished first, so its eventual load
        // cannot return it. Safe to skip.
        if (hi == kIdleEra) continue;
        scratch_.push_back({lo == kIdleEra ? hi : lo, hi});
        if (hi < min_upper) {
          min_upper = hi;
          out.laggard_slot = s;
        }
        if (hi < out.era) ++out.stale_reservations;
      }
      if (min_upper != kIdleEra && out.era > min_upper) {
        out.reservation_lag = out.era - min_upper;
      }
      for (std::size_t i = 0; i < list_.size();) {
        const Retired& e = list_[i];
        bool blocked = false;
        for (const Interval& r : scratch_) {
          // Lifetime [b, r] overlaps reservation [lo, hi]. Inclusive on
          // both ends: with the amortized clock a protect and a retire
          // can share one era, and equality must block (header comment).
          if (r.lower <= e.retire_era && e.birth_era <= r.upper) {
            blocked = true;
            break;
          }
        }
        if (blocked) {
          ++i;
          continue;
        }
        freeable.push_back(e);
        list_[i] = list_.back();
        list_.pop_back();
      }
    }
    // Deleters run outside the lock (they may be arbitrarily heavy).
    for (const Retired& e : freeable) {
      e.deleter(e.obj);
      out.freed_objects += 1;
      out.freed_bytes += e.bytes;
    }
    if (out.freed_objects != 0) {
      freed_.value.fetch_add(out.freed_objects, std::memory_order_relaxed);
      pending_objects_.value.fetch_sub(out.freed_objects,
                                       std::memory_order_relaxed);
      pending_bytes_.value.fetch_sub(out.freed_bytes,
                                     std::memory_order_relaxed);
    }
    scans_.value.fetch_add(1, std::memory_order_relaxed);
    sim::charge(sim::CostModel::get().atomic_load_ns *
                static_cast<double>(nslots_));
    obs::health::era_scan_ns().record(scan_clock_ns() - t0);
    out.pending_objects =
        pending_objects_.value.load(std::memory_order_relaxed);
    out.pending_bytes = pending_bytes_.value.load(std::memory_order_relaxed);
    return out;
  }

  // -- Fence waits (resize_remove's blocking path) -----------------------

  /// Live reservations whose ENTRY era is below `fence` — read sections
  /// that began before the event the fence era was minted after. Keyed
  /// on the lower bound, not the upper: an IBR section that entered
  /// pre-fence may still hold its first-protected pointer even after
  /// later protects extended its upper bound past the fence. (For
  /// hazard eras lower == upper, so the two are the same check.)
  [[nodiscard]] std::uint64_t readers_below(std::uint64_t fence) const
      noexcept {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < nslots_; ++s) {
      if (entry_era(s) < fence) ++n;
    }
    return n;
  }

  /// First slot holding a reservation below `fence` (SIZE_MAX = none).
  [[nodiscard]] std::size_t scan_stalled_slot(std::uint64_t fence) const
      noexcept {
    for (std::size_t s = 0; s < nslots_; ++s) {
      if (entry_era(s) < fence) return s;
    }
    return SIZE_MAX;
  }

  /// Blocks until no reservation predates `fence` (mint the fence with
  /// advance_era() AFTER unpublishing). Used by RCUArray::resize_remove,
  /// whose dropped blocks are shared across locales and therefore cannot
  /// ride the per-locale retire lists — the one deliberately blocking
  /// path, mirroring the EBR behaviour documented in DESIGN.md §8.
  void wait_for_readers(std::uint64_t fence) noexcept {
    obs::TraceSpan span("rcu.drain_wait", "rcu");
    const std::uint64_t t0 = scan_clock_ns();
    if (!RCUA_SCHED_AWAIT("era.wait_for_readers",
                          [&] { return readers_below(fence) == 0; })) {
      plat::Backoff backoff(/*yield_threshold=*/4);
      while (readers_below(fence) != 0) backoff.pause();
    }
    sim::charge(sim::CostModel::get().epoch_drain_ns);
    obs::health::grace_ns().record(scan_clock_ns() - t0);
  }

  /// Deadline-bounded fence wait, same policy machinery as EBR's
  /// try_wait_for_readers. Era retirement itself never needs this (the
  /// retire path is wait-free with respect to readers); it exists for
  /// callers that want a bounded version of the resize_remove fence.
  DrainResult try_wait_for_readers(std::uint64_t fence,
                                   const StallPolicy& policy) noexcept {
    DrainResult result;
    obs::TraceSpan span("rcu.drain_wait", "rcu");
    const std::uint64_t start = plat::now_ns();
    result.drained = wait_with_policy("era.try_wait_for_readers", policy,
                                      [&] { return readers_below(fence) == 0; });
    result.waited_ns = plat::now_ns() - start;
    obs::health::grace_ns().record(result.waited_ns);
    if (result.drained) {
      sim::charge(sim::CostModel::get().epoch_drain_ns);
      return result;
    }
    result.stuck_readers = readers_below(fence);
    result.stuck_stripe = scan_stalled_slot(fence);
    return result;
  }

  /// Frees the whole retire list unconditionally. ONLY safe under
  /// external quiescence (destructor / teardown).
  RetireResult flush_unsafe() {
    RetireResult out;
    std::vector<Retired> all;
    {
      std::lock_guard<plat::Spinlock> guard(lock_);
      all.swap(list_);
    }
    for (const Retired& e : all) {
      e.deleter(e.obj);
      out.freed_objects += 1;
      out.freed_bytes += e.bytes;
    }
    if (out.freed_objects != 0) {
      freed_.value.fetch_add(out.freed_objects, std::memory_order_relaxed);
      pending_objects_.value.fetch_sub(out.freed_objects,
                                       std::memory_order_relaxed);
      pending_bytes_.value.fetch_sub(out.freed_bytes,
                                     std::memory_order_relaxed);
    }
    return out;
  }

  // -- Introspection -----------------------------------------------------

  [[nodiscard]] std::size_t pending_objects() const noexcept {
    return pending_objects_.value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return pending_bytes_.value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t slot_count() const noexcept { return nslots_; }

  /// Currently claimed slots holding a published reservation.
  [[nodiscard]] std::uint64_t active_reservations() const noexcept {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < nslots_; ++s) {
      if (slots_[s].claimed.load(std::memory_order_acquire) != 0 &&
          slots_[s].upper.load(std::memory_order_seq_cst) != kIdleEra) {
        ++n;
      }
    }
    return n;
  }

  /// One slot's published reservation, kIdleEra-pairs when idle (tests).
  struct Reservation {
    std::uint64_t lower = kIdleEra;
    std::uint64_t upper = kIdleEra;
  };
  [[nodiscard]] Reservation reservation_at(std::size_t slot) const noexcept {
    const Slot& s = slots_[slot & slot_mask_];
    return {s.lower.load(std::memory_order_seq_cst),
            s.upper.load(std::memory_order_seq_cst)};
  }

  /// Era-clock bump cadence: advance every `n` retires (default 1 —
  /// RCUArray retires whole spines, so per-retire precision is cheap and
  /// keeps the stalled-reader bound at its tightest). Larger values
  /// amortize the bump for fine-grained structures.
  void set_era_freq(std::uint64_t n) noexcept {
    era_freq_ = n == 0 ? 1 : n;
  }
  /// Scan cadence: scan once `n` entries are pending (default 1).
  void set_scan_threshold(std::size_t n) noexcept {
    scan_threshold_ = n == 0 ? 1 : n;
  }

  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
#if RCUA_ERA_STATS
    for (std::size_t i = 0; i < nslots_; ++i) {
      s.reads += slot_stats_[i].reads.load(std::memory_order_relaxed);
      s.read_retries +=
          slot_stats_[i].retries.load(std::memory_order_relaxed);
    }
#endif
    s.epoch_advances = era_advances_.value.load(std::memory_order_relaxed);
    s.era_scans = scans_.value.load(std::memory_order_relaxed);
    s.retired = retired_.value.load(std::memory_order_relaxed);
    s.freed = freed_.value.load(std::memory_order_relaxed);
    s.pending_objects =
        pending_objects_.value.load(std::memory_order_relaxed);
    s.pending_bytes = pending_bytes_.value.load(std::memory_order_relaxed);
    s.pending_bytes_hwm =
        pending_bytes_hwm_.value.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct alignas(plat::kCacheLine) Slot {
    std::atomic<std::uint64_t> lower{kIdleEra};
    std::atomic<std::uint64_t> upper{kIdleEra};
    std::atomic<std::uint32_t> claimed{0};
  };
#if RCUA_ERA_STATS
  struct alignas(plat::kCacheLine) SlotStats {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> retries{0};
  };
#endif
  struct Retired {
    void (*deleter)(void*);
    void* obj;
    std::size_t bytes;
    std::uint64_t birth_era;
    std::uint64_t retire_era;
  };
  struct Interval {
    std::uint64_t lower;
    std::uint64_t upper;
  };

  static constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n && p < 512) p <<= 1;
    return p < 2 ? 2 : p;
  }

  /// Scan/grace timestamps follow the trace-layer convention: virtual
  /// time when a TaskClock is attached, wall time otherwise.
  [[nodiscard]] static std::uint64_t scan_clock_ns() noexcept {
    return sim::enabled() ? sim::now_v() : plat::now_ns();
  }

  /// Slot `s`'s section-entry era: the published lower bound, falling
  /// back to the upper (mid-publish), kIdleEra when the slot holds no
  /// reservation. A mid-protect claimant with both bounds idle holds
  /// nothing (its load has not happened under a reservation yet).
  [[nodiscard]] std::uint64_t entry_era(std::size_t s) const noexcept {
    if (slots_[s].claimed.load(std::memory_order_acquire) == 0) {
      return kIdleEra;
    }
    const std::uint64_t lo = slots_[s].lower.load(std::memory_order_seq_cst);
    if (lo != kIdleEra) return lo;
    return slots_[s].upper.load(std::memory_order_seq_cst);
  }

  [[nodiscard]] std::size_t preferred_slot() const noexcept {
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
    // Under the deterministic scheduler the choice must be a function of
    // the logical task, or seeds would not replay.
    if (testing::sched_task_active()) {
      return testing::sched_task_id() & slot_mask_;
    }
#endif
    if (test_slot_override >= 0) {
      return static_cast<std::size_t>(test_slot_override) & slot_mask_;
    }
    return plat::stripe_index(nslots_);
  }

  std::size_t claim_slot() {
    const std::size_t start = preferred_slot();
    plat::Backoff backoff(/*yield_threshold=*/4);
    for (;;) {
      for (std::size_t i = 0; i < nslots_; ++i) {
        const std::size_t idx = (start + i) & slot_mask_;
        std::uint32_t expect = 0;
        if (slots_[idx].claimed.compare_exchange_strong(
                expect, 1, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          charge_slot_rmw(idx);
          RCUA_SCHED_POINT("era.slot.claimed");
          return idx;
        }
      }
      // Every slot claimed: the domain is at its concurrent-reader bound.
      if (!RCUA_SCHED_AWAIT("era.slot.wait", [&] {
            for (std::size_t s = 0; s < nslots_; ++s) {
              if (slots_[s].claimed.load(std::memory_order_acquire) == 0) {
                return true;
              }
            }
            return false;
          })) {
        backoff.pause();
      }
    }
  }

  void release_slot(std::size_t idx) noexcept {
    Slot& s = slots_[idx];
    s.lower.store(kIdleEra, std::memory_order_seq_cst);
    s.upper.store(kIdleEra, std::memory_order_seq_cst);
    s.claimed.store(0, std::memory_order_release);
    charge_slot_rmw(idx);
  }

  void charge_slot_rmw(std::size_t idx) noexcept {
    // A claimed slot is reader-private: publishes are almost always
    // uncontended owned-line RMWs; only the writer's scan racing in
    // transfers the line (the same regime split EBR's striping buys).
    const auto& m = sim::CostModel::get();
    slot_lines_[idx].use_owned(m.rmw_transfer_ns, m.atomic_rmw_ns);
  }

  void note_pending_hwm(std::size_t now_bytes) noexcept {
    std::size_t peak =
        pending_bytes_hwm_.value.load(std::memory_order_relaxed);
    while (now_bytes > peak &&
           !pending_bytes_hwm_.value.compare_exchange_weak(
               peak, now_bytes, std::memory_order_relaxed)) {
    }
    unreclaimed_gauge_->update_max(now_bytes);
  }

  void count_read(std::size_t slot) noexcept {
#if RCUA_ERA_STATS
    slot_stats_[slot].reads.fetch_add(1, std::memory_order_relaxed);
#else
    (void)slot;
#endif
  }
  void count_retry(std::size_t slot) noexcept {
#if RCUA_ERA_STATS
    slot_stats_[slot].retries.fetch_add(1, std::memory_order_relaxed);
#else
    (void)slot;
#endif
  }

  std::size_t nslots_;
  std::size_t slot_mask_;
  std::unique_ptr<Slot[]> slots_;
  // Virtual-time contention model, one line per reservation slot.
  std::unique_ptr<sim::VirtualResource[]> slot_lines_;
#if RCUA_ERA_STATS
  std::unique_ptr<SlotStats[]> slot_stats_;
#endif
  obs::Gauge* unreclaimed_gauge_;
  plat::CacheAligned<std::atomic<std::uint64_t>> era_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> era_advances_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> scans_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> retired_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> freed_{0ULL};
  plat::CacheAligned<std::atomic<std::size_t>> pending_objects_{};
  plat::CacheAligned<std::atomic<std::size_t>> pending_bytes_{};
  plat::CacheAligned<std::atomic<std::size_t>> pending_bytes_hwm_{};
  /// Era-bump cadence state; written only under the caller's write lock.
  std::uint64_t era_freq_ = 1;
  std::uint64_t retires_since_advance_ = 0;
  std::size_t scan_threshold_ = 1;
  mutable plat::Spinlock lock_;
  std::vector<Retired> list_;     // guarded by lock_
  std::vector<Interval> scratch_;  // guarded by lock_ (scan reuse)
};

/// Interval-based reclamation: reservations are [entry era, current era]
/// intervals; the lower bound pins at the section's first protect.
using Ibr = BasicEraReclaimer<IbrReservations>;
/// Hazard eras: reservations are a single (republished) era value.
using HazardEras = BasicEraReclaimer<HazardEraReservations>;

}  // namespace rcua::reclaim
