#include "reclaim/hazard.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rcua::reclaim {

namespace {

std::mutex& hp_liveness_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<std::uint64_t>& hp_live_domains() {
  static std::unordered_set<std::uint64_t> s;
  return s;
}

std::uint64_t hp_next_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// Per-thread cache of (domain id, record). On thread exit, releases the
/// record in every still-live domain. Ids are never reused, so a stale
/// entry for a dead domain is simply skipped — no dangling dereference.
struct HpCacheTls {
  struct Entry {
    std::uint64_t dom_id;
    HazardDomain::Record* rec;
  };
  std::vector<Entry> entries;

  HazardDomain::Record* find(std::uint64_t id) const noexcept {
    for (const Entry& e : entries) {
      if (e.dom_id == id) return e.rec;
    }
    return nullptr;
  }

  ~HpCacheTls() {
    std::lock_guard<std::mutex> guard(hp_liveness_mutex());
    for (const Entry& e : entries) {
      if (!hp_live_domains().contains(e.dom_id)) continue;
      for (auto& s : e.rec->slots) s.store(nullptr, std::memory_order_release);
      e.rec->in_use.store(false, std::memory_order_release);
    }
  }
};

namespace {
thread_local HpCacheTls tl_cache;
}  // namespace

HazardDomain::HazardDomain() : id_(hp_next_id()) {
  std::lock_guard<std::mutex> guard(hp_liveness_mutex());
  hp_live_domains().insert(id_);
}

HazardDomain& HazardDomain::global() {
  static HazardDomain* dom = new HazardDomain;  // immortal
  return *dom;
}

HazardDomain::Record& HazardDomain::local_record() {
  if (Record* cached = tl_cache.find(id_)) return *cached;
  Record* rec = acquire_record();
  tl_cache.entries.push_back({id_, rec});
  return *rec;
}

HazardDomain::Record* HazardDomain::acquire_record() {
  for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    bool expected = false;
    if (r->in_use.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      return r;
    }
  }
  auto* r = new Record;
  for (auto& s : r->slots) s.store(nullptr, std::memory_order_relaxed);
  r->in_use.store(true, std::memory_order_relaxed);
  Record* old_head = head_.load(std::memory_order_relaxed);
  do {
    r->next = old_head;
  } while (!head_.compare_exchange_weak(old_head, r, std::memory_order_release,
                                        std::memory_order_relaxed));
  return r;
}

void HazardDomain::retire_raw(void* obj, void (*deleter)(void*)) {
  Record& rec = local_record();
  rec.retired.push_back({obj, deleter});
  retired_total_.value.fetch_add(1, std::memory_order_relaxed);
  sim::charge(sim::CostModel::get().atomic_rmw_ns);
  RCUA_SCHED_POINT("hazard.retire");
  if (rec.retired.size() >= retire_threshold_) scan();
}

std::size_t HazardDomain::scan() {
  RCUA_SCHED_POINT("hazard.scan");
  Record& rec = local_record();
  // Snapshot every protected pointer.
  std::vector<void*> protected_ptrs;
  for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    for (const auto& s : r->slots) {
      if (void* p = s.load(std::memory_order_seq_cst)) {
        protected_ptrs.push_back(p);
      }
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  std::size_t freed = 0;
  auto& retired = rec.retired;
  for (std::size_t i = 0; i < retired.size();) {
    if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                           retired[i].ptr)) {
      ++i;
      continue;
    }
    retired[i].deleter(retired[i].ptr);
    retired[i] = retired.back();
    retired.pop_back();
    ++freed;
  }
  freed_total_.value.fetch_add(freed, std::memory_order_relaxed);
  sim::charge(sim::CostModel::get().atomic_load_ns *
              static_cast<double>(protected_ptrs.size() + 4));
  return freed;
}

void HazardDomain::flush_unsafe() {
  for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    for (auto& entry : r->retired) entry.deleter(entry.ptr);
    r->retired.clear();
  }
}

HazardDomain::~HazardDomain() {
  {
    std::lock_guard<std::mutex> guard(hp_liveness_mutex());
    hp_live_domains().erase(id_);
  }
  Record* r = head_.exchange(nullptr, std::memory_order_acq_rel);
  while (r != nullptr) {
    Record* next = r->next;
    for (auto& entry : r->retired) entry.deleter(entry.ptr);
    delete r;
    r = next;
  }
}

}  // namespace rcua::reclaim
