#include "reclaim/ebr.hpp"

#include "platform/topology.hpp"
#include "util/env.hpp"

namespace rcua::reclaim {

std::size_t default_ebr_stripes() {
  // Read the knob on every construction (Ebr instances are created at
  // structure-construction time, never on a hot path) so tests can vary
  // RCUA_EBR_STRIPES without process restarts.
  std::uint64_t n = util::env_u64("RCUA_EBR_STRIPES", 0);
  if (n == 0) n = plat::hardware_threads();
  if (n > 256) n = 256;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Explicit instantiations of the widths used across the project: the
// default 64-bit epoch and the narrow widths the Lemma 2 overflow tests
// drive through wrap-around, in both reader-bank layouts.
template class BasicEbr<std::uint64_t, StripedReaders>;
template class BasicEbr<std::uint32_t, StripedReaders>;
template class BasicEbr<std::uint16_t, StripedReaders>;
template class BasicEbr<std::uint8_t, StripedReaders>;
template class BasicEbr<std::uint64_t, LegacyReaders>;
template class BasicEbr<std::uint8_t, LegacyReaders>;

}  // namespace rcua::reclaim
