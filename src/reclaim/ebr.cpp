#include "reclaim/ebr.hpp"

namespace rcua::reclaim {

// Explicit instantiations of the widths used across the project: the
// default 64-bit epoch and the narrow widths the Lemma 2 overflow tests
// drive through wrap-around.
template class BasicEbr<std::uint64_t>;
template class BasicEbr<std::uint32_t>;
template class BasicEbr<std::uint16_t>;
template class BasicEbr<std::uint8_t>;

}  // namespace rcua::reclaim
