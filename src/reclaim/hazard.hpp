#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/align.hpp"
#include "testing/sched_point.hpp"

namespace rcua::reclaim {

/// Classic hazard pointers (Michael 2004), the related-work baseline the
/// paper's introduction positions EBR/QSBR against: "a balanced but
/// noticeable overhead to both read and write operations" and a TLS
/// requirement Chapel lacks. Used here in ablation benchmarks and as a
/// protection policy for HazardArray.
///
/// Standard design: each thread owns a record with a small fixed number
/// of hazard slots plus a private retired list; `retire()` scans all
/// records' slots once the retired list exceeds a threshold and frees
/// every pointer not currently protected.
class HazardDomain {
 public:
  static constexpr std::size_t kSlotsPerThread = 4;

  HazardDomain();
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;
  ~HazardDomain();

  static HazardDomain& global();

  struct Record {
    std::atomic<void*> slots[kSlotsPerThread];
    std::atomic<bool> in_use{false};
    Record* next = nullptr;
    // Thread-private retired list (only the owner pushes; scan is local).
    struct Retired {
      void* ptr;
      void (*deleter)(void*);
    };
    std::vector<Retired> retired;
    char pad[plat::kCacheLine];
  };

  /// RAII protection of a single pointer loaded from `src`: loops
  /// publish-then-verify until the published value is stable, so the
  /// object cannot be freed while the guard lives.
  template <typename T>
  class Guard {
   public:
    Guard(HazardDomain& dom, const std::atomic<T*>& src, std::size_t slot = 0)
        : dom_(dom), rec_(dom.local_record()), slot_(slot) {
      T* p = src.load(std::memory_order_acquire);
      for (;;) {
        rec_.slots[slot_].store(p, std::memory_order_seq_cst);
        RCUA_SCHED_POINT("hazard.guard.published");
        T* again = src.load(std::memory_order_seq_cst);
        if (again == p) break;
        p = again;
      }
      ptr_ = p;
      if (RCUA_SCHED_MUT(hazard_clear_before_access)) {
        // MUTATION: the pointer is in hand, so drop the slot before the
        // guarded accesses — the premature hazard release. The very next
        // retire+scan sees no protection and frees the object under the
        // live guard (tests/test_sched_hazard.cpp).
        rec_.slots[slot_].store(nullptr, std::memory_order_seq_cst);
        RCUA_SCHED_POINT("hazard.guard.cleared_early");
      }
    }
    ~Guard() { rec_.slots[slot_].store(nullptr, std::memory_order_release); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    [[nodiscard]] T* get() const noexcept { return ptr_; }
    T* operator->() const noexcept { return ptr_; }
    T& operator*() const noexcept { return *ptr_; }

   private:
    HazardDomain& dom_;
    Record& rec_;
    std::size_t slot_;
    T* ptr_ = nullptr;
  };

  /// Retires `obj` for deletion once unprotected. Triggers a scan when
  /// the caller's retired list reaches the threshold.
  template <typename T>
  void retire(T* obj) {
    retire_raw(obj, [](void* p) { delete static_cast<T*>(p); });
  }

  void retire_raw(void* obj, void (*deleter)(void*));

  /// Scans all hazard slots and frees every retired object of the calling
  /// thread that no slot protects. Returns the number freed.
  std::size_t scan();

  /// Frees everything retired by every record. ONLY safe when no guard is
  /// live (shutdown/test teardown). Records of other threads are drained
  /// too, so their owners must be quiescent.
  void flush_unsafe();

  /// The calling thread's record (registering on first use).
  Record& local_record();

  [[nodiscard]] std::size_t retire_threshold() const noexcept {
    return retire_threshold_;
  }
  void set_retire_threshold(std::size_t n) noexcept { retire_threshold_ = n; }

  [[nodiscard]] std::uint64_t retired_count() const noexcept {
    return retired_total_.value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t freed_count() const noexcept {
    return freed_total_.value.load(std::memory_order_relaxed);
  }

 private:
  friend struct HpCacheTls;

  Record* acquire_record();

  std::uint64_t id_;  // unique, never reused; guards stale TLS caches
  std::atomic<Record*> head_{nullptr};
  std::size_t retire_threshold_ = 64;
  plat::CacheAligned<std::atomic<std::uint64_t>> retired_total_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> freed_total_{0ULL};
};

}  // namespace rcua::reclaim
