#include "reclaim/eras.hpp"

#include "platform/topology.hpp"
#include "util/env.hpp"

namespace rcua::reclaim {

std::size_t default_era_slots() {
  static const std::size_t cached = [] {
    std::size_t n = util::env_u64("RCUA_ERA_SLOTS", 0);
    if (n == 0) n = 2 * plat::hardware_threads();
    std::size_t p = 2;
    while (p < n && p < 512) p <<= 1;
    return p;
  }();
  return cached;
}

}  // namespace rcua::reclaim
