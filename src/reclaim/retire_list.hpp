#pragma once

#include <cstdint>
#include <utility>

namespace rcua::reclaim {

/// A type-erased deferred deletion: the triple (m, e, t) from the paper's
/// QSBR DeferList, minus the insertion time t, which the paper notes is
/// only needed for the correctness proof ("is not required in the actual
/// implementation", §III-B).
///
/// Nodes form an intrusive singly-linked LIFO list. Because the safe epoch
/// is derived from a monotonically increasing StateEpoch at insertion time
/// and insertions are thread-local, the list is sorted by safe epoch in
/// descending order from the head (Lemma 4), so the reclaimable portion is
/// always a suffix.
struct DeferNode {
  DeferNode* next = nullptr;
  std::uint64_t safe_epoch = 0;
  void (*deleter)(void*) = nullptr;
  void* object = nullptr;

  void run_and_dispose() {
    if (deleter != nullptr) deleter(object);
    delete this;
  }
};

/// Creates a defer node that deletes `obj` via `delete` when reclaimed.
template <typename T>
DeferNode* make_defer_node(T* obj, std::uint64_t safe_epoch) {
  auto* n = new DeferNode;
  n->safe_epoch = safe_epoch;
  n->object = obj;
  n->deleter = [](void* p) { delete static_cast<T*>(p); };
  return n;
}

/// Creates a defer node that invokes an arbitrary stateless callback.
inline DeferNode* make_defer_node_fn(void (*fn)(void*), void* arg,
                                     std::uint64_t safe_epoch) {
  auto* n = new DeferNode;
  n->safe_epoch = safe_epoch;
  n->object = arg;
  n->deleter = fn;
  return n;
}

/// Thread-owned defer list. Not thread-safe by design: each ThreadRecord
/// owns exactly one and only its thread touches it (the parallel-safety of
/// QSBR reclamation in the paper comes precisely from this ownership).
class DeferList {
 public:
  DeferList() = default;
  DeferList(const DeferList&) = delete;
  DeferList& operator=(const DeferList&) = delete;
  DeferList(DeferList&& other) noexcept
      : head_(std::exchange(other.head_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  ~DeferList() { free_all(); }

  /// LIFO push; `node->safe_epoch` must be >= the current head's (enforced
  /// by construction: epochs are monotone and pushes are thread-local).
  void push(DeferNode* node) noexcept {
    node->next = head_;
    head_ = node;
    ++size_;
  }

  /// Splits off and returns the suffix whose safe epoch is <= `min_epoch`
  /// (the paper's popLessEqual). The returned chain is owned by the caller.
  DeferNode* pop_less_equal(std::uint64_t min_epoch) noexcept {
    DeferNode** link = &head_;
    while (*link != nullptr && (*link)->safe_epoch > min_epoch) {
      link = &(*link)->next;
    }
    DeferNode* suffix = *link;
    *link = nullptr;
    for (DeferNode* n = suffix; n != nullptr; n = n->next) --size_;
    return suffix;
  }

  /// Detaches the whole list (shutdown flush).
  DeferNode* pop_all() noexcept {
    DeferNode* all = head_;
    head_ = nullptr;
    size_ = 0;
    return all;
  }

  /// Runs and disposes an entire detached chain.
  static void reclaim_chain(DeferNode* head) {
    while (head != nullptr) {
      DeferNode* next = head->next;
      head->run_and_dispose();
      head = next;
    }
  }

  /// Runs every pending deleter immediately. Only safe when no other
  /// thread can still hold references (shutdown / quiescent points).
  void free_all() { reclaim_chain(pop_all()); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] const DeferNode* head() const noexcept { return head_; }

 private:
  DeferNode* head_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rcua::reclaim
