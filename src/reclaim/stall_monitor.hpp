#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "platform/backoff.hpp"
#include "platform/spinlock.hpp"
#include "platform/timing.hpp"
#include "testing/sched_point.hpp"

namespace rcua::reclaim {

/// Deadline/backoff policy for grace-period waits — the knob that turns
/// "block forever on a stalled reader" (classic EBR fragility, the DEBRA+
/// critique) into "give up after a bounded wait and let the caller defer".
///
/// The wait escalates spin -> yield -> park-with-exponential-backoff; a
/// `deadline_ns` of 0 keeps the historical blocking behaviour, so every
/// existing call site is unchanged unless a policy is configured.
///
/// Under the deterministic scheduler (RCUA_SCHED_TEST) wall clocks would
/// break seed replay, so a non-blocking wait instead polls the predicate
/// `sched_polls` times, yielding to the scheduler between polls — the
/// deadline becomes a schedule-countable event.
struct StallPolicy {
  /// Wall-clock budget for a grace-period wait; 0 = block forever.
  std::uint64_t deadline_ns = 0;
  /// Pure cpu_relax iterations before escalating to thread yields.
  std::uint32_t spin_iters = 64;
  /// Thread yields before escalating to parking sleeps.
  std::uint32_t yield_iters = 64;
  /// First parking sleep; doubles each round up to `park_max_ns`.
  std::uint64_t park_ns = 50 * 1000;
  std::uint64_t park_max_ns = 1000 * 1000;
  /// Non-blocking poll budget under the deterministic scheduler.
  std::uint32_t sched_polls = 4;

  [[nodiscard]] bool blocking() const noexcept { return deadline_ns == 0; }

  /// Environment-configured policy: RCUA_STALL_DEADLINE_NS,
  /// RCUA_STALL_SPIN, RCUA_STALL_YIELD, RCUA_STALL_PARK_NS,
  /// RCUA_STALL_PARK_MAX_NS, RCUA_STALL_SCHED_POLLS. Defaults (deadline 0)
  /// preserve blocking semantics.
  [[nodiscard]] static StallPolicy from_env();
};

/// Waits until `pred()` holds or the policy's deadline expires. Returns
/// true iff the predicate held. `site` names the wait in sched traces.
template <typename Pred>
bool wait_with_policy(const char* site, const StallPolicy& policy,
                      Pred&& pred) {
#if defined(RCUA_SCHED_TEST) && RCUA_SCHED_TEST
  if (testing::sched_task_active()) {
    if (policy.blocking()) {
      testing::sched_await(site, [&] { return pred(); });
      return true;
    }
    for (std::uint32_t i = 0; i < policy.sched_polls; ++i) {
      if (pred()) return true;
      testing::sched_point(site);
    }
    return pred();
  }
#endif
  (void)site;
  if (pred()) return true;
  const std::uint64_t start = plat::now_ns();
  std::uint64_t park = policy.park_ns;
  std::uint64_t iter = 0;
  for (;;) {
    if (pred()) return true;
    if (!policy.blocking() && plat::now_ns() - start >= policy.deadline_ns) {
      return pred();
    }
    if (iter < policy.spin_iters) {
      plat::cpu_relax();
    } else if (iter < static_cast<std::uint64_t>(policy.spin_iters) +
                          policy.yield_iters) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(park));
      if (park < policy.park_max_ns) park = std::min(park * 2, policy.park_max_ns);
    }
    ++iter;
  }
}

/// Structured description of one detected stall: who is stuck, where,
/// for how long, at what epoch. Emitted to the owning StallMonitor's sink
/// (stderr by default) and kept as `last()` for programmatic inspection.
struct StallDiagnostic {
  enum class Kind : int {
    /// An EBR old-parity column refused to drain before the deadline.
    kEbrReader = 0,
    /// A QSBR participant has not observed the target StateEpoch.
    kQsbrLaggard = 1,
    /// The overflow retire list exceeded its byte budget.
    kOverflowBudget = 2,
    /// An era reservation (IBR / hazard eras) trails the era clock far
    /// enough to hold retired objects pending. Unlike the kinds above
    /// this never gates progress or defers to an overflow list — the
    /// pending set is bounded by construction — so it is purely
    /// diagnostic: the stalled reader exists and should be found.
    kEraReservation = 3,
  };

  Kind kind = Kind::kEbrReader;
  /// The reclamation domain instance (Ebr / Qsbr) that stalled.
  const void* domain = nullptr;
  /// Locale the stall was observed on; UINT32_MAX when not locale-bound.
  std::uint32_t locale = UINT32_MAX;
  /// Epoch being drained (EBR: the pre-bump epoch; QSBR: target epoch).
  std::uint64_t epoch = 0;
  /// EBR: first stripe with a non-zero old-parity count (SIZE_MAX = n/a).
  std::size_t stripe = SIZE_MAX;
  /// EBR: old-parity column sum at deadline expiry.
  std::uint64_t stuck_readers = 0;
  /// QSBR: the first laggard's ThreadRecord and its observed epoch.
  const void* thread = nullptr;
  std::uint64_t thread_observed = 0;
  /// QSBR: how many laggards gate the minimum.
  std::uint64_t laggards = 0;
  /// How long the waiter spun before giving up.
  std::uint64_t waited_ns = 0;
  /// Overflow-budget escalations: bytes pending vs the configured budget.
  std::size_t overflow_bytes = 0;
  std::size_t budget_bytes = 0;
  /// Era reservations: how many eras the laggard reservation trails the
  /// clock (kEraReservation; `stripe` carries the slot, `overflow_bytes`
  /// the blocked-pending bytes).
  std::uint64_t era_lag = 0;

  /// One-line human-readable rendering ("which stripe/thread is stuck,
  /// for how long, at what epoch").
  [[nodiscard]] std::string describe() const;
};

/// Pluggable destination for stall diagnostics. Implementations must be
/// thread-safe: reclaimers on any thread may report stalls concurrently.
class StallSink {
 public:
  virtual ~StallSink() = default;
  virtual void on_stall(const StallDiagnostic& diag) = 0;
};

/// Default sink: renders `describe()` as one line to stderr.
class StderrStallSink final : public StallSink {
 public:
  void on_stall(const StallDiagnostic& diag) override;
};

/// Test sink: captures every structured diagnostic so assertions can
/// inspect fields instead of string-matching the stderr rendering.
class CaptureStallSink final : public StallSink {
 public:
  void on_stall(const StallDiagnostic& diag) override;

  /// Snapshot of everything captured so far, in delivery order.
  [[nodiscard]] std::vector<StallDiagnostic> records() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable plat::Spinlock lock_;
  std::vector<StallDiagnostic> records_;
};

/// Watchdog over grace-period stalls and overflow memory. Reclaimers
/// report stalls through `record_stall`; structures that defer retired
/// memory past a stalled grace period account the bytes here, and the
/// monitor enforces a hard bound by escalating once the pending bytes
/// would exceed `budget_bytes` (0 = unlimited):
///
///   kWarn  — diagnose and allow the overflow to keep growing,
///   kBlock — refuse the overflow; the caller must fall back to the
///            blocking wait (memory stays bounded, latency degrades),
///   kFatal — abort: treat a budget breach as a failed domain.
///
/// Thread-safe; one instance may be shared across locales and domains.
class StallMonitor {
 public:
  enum class Escalation : int { kWarn = 0, kBlock = 1, kFatal = 2 };

  explicit StallMonitor(std::size_t budget_bytes = 0,
                        Escalation escalation = Escalation::kBlock) noexcept
      : budget_bytes_(budget_bytes), escalation_(escalation) {}
  StallMonitor(const StallMonitor&) = delete;
  StallMonitor& operator=(const StallMonitor&) = delete;

  /// Process-wide monitor; budget from RCUA_OVERFLOW_BUDGET_BYTES
  /// (default 64 MiB), escalation from RCUA_STALL_ESCALATE
  /// (warn|block|fatal, default block).
  static StallMonitor& global();

  /// Replaces the diagnostic sink (default: a process-wide
  /// StderrStallSink). Pass nullptr to silence. The monitor does not own
  /// the sink; it must outlive every stall. Not synchronized against
  /// in-flight stalls; install before concurrent use.
  void set_sink(StallSink* sink) noexcept { sink_ = sink; }

  /// Reports one stall: counts it, remembers it, forwards to the sink.
  void record_stall(const StallDiagnostic& diag);

  // -- Overflow byte accounting -----------------------------------------

  /// True when admitting `extra` more overflow bytes would exceed the
  /// budget (always false with an unlimited budget).
  [[nodiscard]] bool would_exceed(std::size_t extra) const noexcept {
    const std::size_t budget = budget_bytes_;
    if (budget == 0) return false;
    return overflow_bytes_.load(std::memory_order_relaxed) + extra > budget;
  }

  void note_overflow(std::size_t bytes, std::size_t objects = 1) noexcept;
  void note_flushed(std::size_t bytes, std::size_t objects) noexcept;

  [[nodiscard]] std::size_t budget_bytes() const noexcept {
    return budget_bytes_;
  }
  [[nodiscard]] Escalation escalation() const noexcept { return escalation_; }
  [[nodiscard]] std::size_t overflow_bytes() const noexcept {
    return overflow_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak_overflow_bytes() const noexcept {
    return peak_overflow_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stalls() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t escalations() const noexcept {
    return escalations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow_objects() const noexcept {
    return overflow_objects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t flushed_objects() const noexcept {
    return flushed_objects_.load(std::memory_order_relaxed);
  }

  /// Copy of the most recent diagnostic (all-zero before the first).
  [[nodiscard]] StallDiagnostic last() const;

  /// Records a budget escalation (kind kOverflowBudget) and bumps the
  /// escalation counter; aborts under kFatal.
  void escalate(StallDiagnostic diag);

 private:
  std::size_t budget_bytes_;
  Escalation escalation_;
  StallSink* sink_ = default_sink();
  std::atomic<std::size_t> overflow_bytes_{0};
  std::atomic<std::size_t> peak_overflow_bytes_{0};
  std::atomic<std::uint64_t> overflow_objects_{0};
  std::atomic<std::uint64_t> flushed_objects_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> escalations_{0};
  mutable plat::Spinlock last_lock_;
  StallDiagnostic last_{};

  /// Immortal process-wide StderrStallSink shared by every monitor.
  static StallSink* default_sink();
};

/// Epoch-tagged overflow list for retired EBR memory whose grace period
/// timed out. An entry may be freed once BOTH reader columns have each
/// been observed empty at some time after the push. The entry's own
/// parity alone is NOT sufficient: a timed-out grace period means the
/// writer ran ahead of a stalled reader, and that reader — announced on
/// the *other* parity — may have loaded this very object before it was
/// unpublished (see DESIGN.md §8; the schedule harness finds this bug
/// when the single-parity shortcut is mutated back in). Bytes are
/// tracked so callers can feed locale accounting and the StallMonitor
/// budget.
class OverflowRetireList {
 public:
  OverflowRetireList() = default;
  OverflowRetireList(const OverflowRetireList&) = delete;
  OverflowRetireList& operator=(const OverflowRetireList&) = delete;
  ~OverflowRetireList() { free_all(); }

  struct FlushResult {
    std::size_t objects = 0;
    std::size_t bytes = 0;
  };

  /// Defers `(deleter, obj)` retired under epoch `epoch` (parity =
  /// epoch % 2), accounting `bytes` against the list.
  void push(void (*deleter)(void*), void* obj, std::size_t bytes,
            std::uint64_t epoch);

  /// Observes both reader columns via `drained(parity)` and frees every
  /// entry that has now seen each column empty at least once since its
  /// push. Observations are sticky per entry, so a stalled reader on one
  /// parity delays reclamation but never loses the other column's
  /// already-banked observation. The `watchdog_skip_recheck` mutation
  /// (sched builds only) regresses to gating on the entry's own retire
  /// parity — the plausible-but-unsound shortcut the harness must catch.
  template <typename DrainedPred>
  FlushResult flush_ready(DrainedPred&& drained) {
    Entry* ready = nullptr;
    {
      // Observe under the lock: every entry present was pushed before
      // these reads, so the observations count for all of them.
      std::lock_guard<plat::Spinlock> guard(lock_);
      const bool empty0 = drained(std::size_t{0});
      const bool empty1 = drained(std::size_t{1});
      Entry** link = &head_;
      while (*link != nullptr) {
        Entry* e = *link;
        e->seen_empty[0] = e->seen_empty[0] || empty0;
        e->seen_empty[1] = e->seen_empty[1] || empty1;
        bool ok = e->seen_empty[0] && e->seen_empty[1];
        if (RCUA_SCHED_MUT(watchdog_skip_recheck)) {
          ok = e->seen_empty[e->parity];
        }
        if (ok) {
          *link = e->next;
          e->next = ready;
          ready = e;
        } else {
          link = &e->next;
        }
      }
    }
    return reclaim_chain(ready);
  }

  /// Frees everything unconditionally. ONLY safe when no reader can hold
  /// a reference (destructor / teardown under external quiescence).
  FlushResult free_all();

  [[nodiscard]] std::size_t pending_objects() const noexcept {
    return pending_objects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return pending_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Entry* next;
    void (*deleter)(void*);
    void* obj;
    std::size_t bytes;
    std::size_t parity;
    std::uint64_t epoch;
    /// Which reader columns have been observed empty since the push.
    bool seen_empty[2];
  };

  FlushResult reclaim_chain(Entry* chain);

  plat::Spinlock lock_;
  Entry* head_ = nullptr;
  std::atomic<std::size_t> pending_objects_{0};
  std::atomic<std::size_t> pending_bytes_{0};
};

}  // namespace rcua::reclaim
