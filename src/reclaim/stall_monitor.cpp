#include "reclaim/stall_monitor.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"

namespace rcua::reclaim {

StallPolicy StallPolicy::from_env() {
  StallPolicy p;
  p.deadline_ns = util::env_u64("RCUA_STALL_DEADLINE_NS", p.deadline_ns);
  p.spin_iters = static_cast<std::uint32_t>(
      util::env_u64("RCUA_STALL_SPIN", p.spin_iters));
  p.yield_iters = static_cast<std::uint32_t>(
      util::env_u64("RCUA_STALL_YIELD", p.yield_iters));
  p.park_ns = util::env_u64("RCUA_STALL_PARK_NS", p.park_ns);
  p.park_max_ns = util::env_u64("RCUA_STALL_PARK_MAX_NS", p.park_max_ns);
  p.sched_polls = static_cast<std::uint32_t>(
      util::env_u64("RCUA_STALL_SCHED_POLLS", p.sched_polls));
  if (p.park_max_ns < p.park_ns) p.park_max_ns = p.park_ns;
  return p;
}

std::string StallDiagnostic::describe() const {
  char buf[256];
  switch (kind) {
    case Kind::kEbrReader:
      std::snprintf(buf, sizeof(buf),
                    "rcua: EBR stall: domain %p locale %d stripe %zd holds "
                    "%" PRIu64 " reader(s) at epoch %" PRIu64
                    " after %" PRIu64 " ns",
                    domain, locale == UINT32_MAX ? -1 : static_cast<int>(locale),
                    stripe == SIZE_MAX ? static_cast<std::ptrdiff_t>(-1)
                                       : static_cast<std::ptrdiff_t>(stripe),
                    stuck_readers, epoch, waited_ns);
      break;
    case Kind::kQsbrLaggard:
      std::snprintf(buf, sizeof(buf),
                    "rcua: QSBR stall: domain %p has %" PRIu64
                    " laggard(s); thread %p observed epoch %" PRIu64
                    " < target %" PRIu64 " after %" PRIu64 " ns",
                    domain, laggards, thread, thread_observed, epoch,
                    waited_ns);
      break;
    case Kind::kOverflowBudget:
      std::snprintf(buf, sizeof(buf),
                    "rcua: overflow budget: domain %p locale %d pending "
                    "%zu bytes would exceed budget %zu bytes (epoch %" PRIu64
                    ")",
                    domain, locale == UINT32_MAX ? -1 : static_cast<int>(locale),
                    overflow_bytes, budget_bytes, epoch);
      break;
    case Kind::kEraReservation:
      std::snprintf(buf, sizeof(buf),
                    "rcua: era stall: domain %p locale %d slot %zd trails "
                    "the era clock by %" PRIu64 " era(s) at era %" PRIu64
                    ", holding %zu bytes pending (bounded)",
                    domain, locale == UINT32_MAX ? -1 : static_cast<int>(locale),
                    stripe == SIZE_MAX ? static_cast<std::ptrdiff_t>(-1)
                                       : static_cast<std::ptrdiff_t>(stripe),
                    era_lag, epoch, overflow_bytes);
      break;
  }
  return std::string(buf);
}

StallMonitor& StallMonitor::global() {
  static StallMonitor* monitor = [] {
    const auto budget = static_cast<std::size_t>(util::env_u64(
        "RCUA_OVERFLOW_BUDGET_BYTES", 64ULL * 1024 * 1024));
    Escalation esc = Escalation::kBlock;
    if (auto s = util::env_str("RCUA_STALL_ESCALATE")) {
      if (*s == "warn") {
        esc = Escalation::kWarn;
      } else if (*s == "fatal") {
        esc = Escalation::kFatal;
      } else if (*s == "block") {
        esc = Escalation::kBlock;
      } else {
        std::fprintf(stderr,
                     "rcua: RCUA_STALL_ESCALATE=\"%s\" not one of "
                     "warn|block|fatal; using block\n",
                     s->c_str());
      }
    }
    return new StallMonitor(budget, esc);  // immortal
  }();
  return *monitor;
}

void StderrStallSink::on_stall(const StallDiagnostic& diag) {
  std::fprintf(stderr, "%s\n", diag.describe().c_str());
}

void CaptureStallSink::on_stall(const StallDiagnostic& diag) {
  std::lock_guard<plat::Spinlock> guard(lock_);
  records_.push_back(diag);
}

std::vector<StallDiagnostic> CaptureStallSink::records() const {
  std::lock_guard<plat::Spinlock> guard(lock_);
  return records_;
}

std::size_t CaptureStallSink::size() const {
  std::lock_guard<plat::Spinlock> guard(lock_);
  return records_.size();
}

void CaptureStallSink::clear() {
  std::lock_guard<plat::Spinlock> guard(lock_);
  records_.clear();
}

StallSink* StallMonitor::default_sink() {
  static StallSink* sink = new StderrStallSink();  // immortal
  return sink;
}

void StallMonitor::record_stall(const StallDiagnostic& diag) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  obs::health::stalls().add();
  obs::trace_instant("reclaim.stall", "rcu",
                     static_cast<std::uint64_t>(diag.kind));
  {
    std::lock_guard<plat::Spinlock> guard(last_lock_);
    last_ = diag;
  }
  if (sink_ != nullptr) sink_->on_stall(diag);
}

StallDiagnostic StallMonitor::last() const {
  std::lock_guard<plat::Spinlock> guard(last_lock_);
  return last_;
}

void StallMonitor::note_overflow(std::size_t bytes,
                                 std::size_t objects) noexcept {
  overflow_objects_.fetch_add(objects, std::memory_order_relaxed);
  const std::size_t now =
      overflow_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = peak_overflow_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_overflow_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  obs::health::overflow_bytes_hwm().update_max(now);
  obs::trace_instant("rcu.overflow_defer", "rcu", bytes);
}

void StallMonitor::note_flushed(std::size_t bytes,
                                std::size_t objects) noexcept {
  flushed_objects_.fetch_add(objects, std::memory_order_relaxed);
  overflow_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void StallMonitor::escalate(StallDiagnostic diag) {
  diag.kind = StallDiagnostic::Kind::kOverflowBudget;
  diag.budget_bytes = budget_bytes_;
  diag.overflow_bytes = overflow_bytes();
  escalations_.fetch_add(1, std::memory_order_relaxed);
  obs::health::escalations().add();
  record_stall(diag);
  if (escalation_ == Escalation::kFatal) {
    std::fprintf(stderr,
                 "rcua: StallMonitor: overflow budget exceeded under "
                 "kFatal escalation; aborting\n");
    std::abort();
  }
}

void OverflowRetireList::push(void (*deleter)(void*), void* obj,
                              std::size_t bytes, std::uint64_t epoch) {
  auto* e = new Entry{nullptr,          deleter, obj, bytes,
                      static_cast<std::size_t>(epoch % 2), epoch,
                      {false, false}};
  {
    std::lock_guard<plat::Spinlock> guard(lock_);
    e->next = head_;
    head_ = e;
  }
  pending_objects_.fetch_add(1, std::memory_order_relaxed);
  pending_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

OverflowRetireList::FlushResult OverflowRetireList::free_all() {
  Entry* chain;
  {
    std::lock_guard<plat::Spinlock> guard(lock_);
    chain = head_;
    head_ = nullptr;
  }
  return reclaim_chain(chain);
}

OverflowRetireList::FlushResult OverflowRetireList::reclaim_chain(
    Entry* chain) {
  FlushResult result;
  while (chain != nullptr) {
    Entry* next = chain->next;
    chain->deleter(chain->obj);
    result.objects += 1;
    result.bytes += chain->bytes;
    delete chain;
    chain = next;
  }
  if (result.objects != 0) {
    pending_objects_.fetch_sub(result.objects, std::memory_order_relaxed);
    pending_bytes_.fetch_sub(result.bytes, std::memory_order_relaxed);
  }
  return result;
}

}  // namespace rcua::reclaim
