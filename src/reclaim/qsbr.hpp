#pragma once

#include <atomic>
#include <cstdint>

#include "platform/align.hpp"
#include "reclaim/retire_list.hpp"
#include "reclaim/stall_monitor.hpp"
#include "runtime/thread_registry.hpp"

namespace rcua::reclaim {

/// Quiescent State-Based Reclamation implemented in the runtime
/// (Algorithm 2): a general-purpose memory-reclamation device decoupled
/// from RCU.
///
/// A global, monotonically increasing `StateEpoch` names the state of the
/// entire system. Whenever memory is to be reclaimed, `defer()` bumps the
/// StateEpoch (the old state is being discarded), the calling thread
/// observes the new epoch — promising it is quiescent of all earlier
/// states — and the memory is pushed LIFO on the thread's own DeferList
/// together with that *safe epoch*. At a `checkpoint()` the thread
/// observes the current StateEpoch, computes the minimum observed epoch
/// over every (active, non-parked) thread on the runtime's TLSList, and
/// reclaims its own list's suffix with safe epoch <= that minimum
/// (Lemmas 4 and 5).
///
/// Contract inherited from the paper (§III-B):
///  * It is NOT safe to dereference QSBR-protected memory acquired before
///    the caller's latest checkpoint or defer.
///  * Tasks must not yield to another task on the same thread while
///    holding a protected reference (threads, not tasks, are the
///    participants).
///  * StateEpoch overflow would be undefined behaviour; with a 64-bit
///    epoch this is unreachable, and debug builds assert on it.
class Qsbr final : public rt::EpochDomain {
 public:
  /// Creates a domain on `registry` (the process-wide TLSList by
  /// default). Destroying the domain flushes every thread's pending
  /// deferrals for it — only destroy once all participants are quiescent.
  explicit Qsbr(rt::ThreadRegistry& registry = rt::ThreadRegistry::global());
  ~Qsbr() override;
  Qsbr(const Qsbr&) = delete;
  Qsbr& operator=(const Qsbr&) = delete;

  /// The process-wide domain, as in the paper's runtime integration.
  static Qsbr& global();

  struct Stats {
    std::uint64_t defers = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t reclaimed = 0;
  };

  /// Test-only fault injection, mirroring BasicEbr::test_read_hook: when
  /// non-null, invoked at the checkpoint/park protocol windows so tests
  /// can drive stalls deterministically. Production leaves it null (one
  /// predicted-not-taken branch per site).
  enum : int {
    /// After the checkpoint's StateEpoch read, before the observation
    /// store (Algorithm 2 between lines 4 and 5) — the window where the
    /// epoch can move under the observer.
    kHookCheckpointEpochRead = 0,
    /// After the observation store, before the min scan (before line 6).
    kHookCheckpointObserved = 1,
    /// On entry to park(), before the registry housekeeping runs.
    kHookPark = 2,
    /// On entry to unpark(), before the thread becomes visible again.
    kHookUnpark = 3,
  };
  using TestHook = void (*)(Qsbr&, int phase);
  TestHook test_hook = nullptr;

  /// Outcome of a deadline-bounded synchronize (try_synchronize). On
  /// timeout the laggard fields identify who is gating the minimum.
  struct SyncResult {
    bool quiesced = true;
    /// The StateEpoch every participant must observe.
    std::uint64_t target_epoch = 0;
    std::uint64_t waited_ns = 0;
    /// Laggards at expiry: count, the first one's record and its epoch.
    std::uint64_t laggards = 0;
    const rt::ThreadRecord* laggard = nullptr;
    std::uint64_t laggard_observed = 0;
  };

  /// Report on threads gating quiescence at `target_epoch` — the
  /// watchdog's QSBR detection surface.
  struct LaggardReport {
    std::uint64_t count = 0;
    const rt::ThreadRecord* first = nullptr;
    std::uint64_t first_observed = 0;
  };

  /// QSBR_Defer: schedules `delete obj` once every thread has observed a
  /// state no older than the one this call creates.
  template <typename T>
  void defer_delete(T* obj) {
    defer(new DeferNode{nullptr, 0, [](void* p) { delete static_cast<T*>(p); },
                        obj});
  }

  /// QSBR_Defer with an arbitrary (function, argument) reclamation.
  void defer_fn(void (*fn)(void*), void* arg) {
    defer(new DeferNode{nullptr, 0, fn, arg});
  }

  /// Core defer: takes ownership of `node`, stamps its safe epoch
  /// (Algorithm 2 lines 1-3).
  void defer(DeferNode* node);

  /// QSBR_Checkpoint (Algorithm 2 lines 4-13): promises quiescence of all
  /// prior states and reclaims this thread's eligible deferrals. Returns
  /// the number of objects reclaimed.
  std::size_t checkpoint();

  /// Blocks until every participant has observed a state no older than
  /// the one current at entry (bumping the StateEpoch so laggards have a
  /// fresh state to observe). The QSBR analogue of Ebr::synchronize.
  void synchronize() { (void)try_synchronize(StallPolicy{}); }

  /// Deadline-bounded synchronize: waits under `policy` for every
  /// participant to catch up; a blocking policy never gives up. On
  /// timeout, reports the laggards gating the minimum so the caller can
  /// emit a StallDiagnostic instead of blocking forever.
  SyncResult try_synchronize(const StallPolicy& policy);

  /// Participants whose observed epoch is still below `target_epoch`
  /// (active and non-parked — parked threads never gate the minimum).
  [[nodiscard]] LaggardReport scan_laggards(std::uint64_t target_epoch) const;

  /// Makes the calling thread a participant (visible to the safe-epoch
  /// minimum) if it isn't already. The paper's model has *every* thread
  /// participate from the start ("All threads act as participants"); a
  /// thread must be a participant BEFORE dereferencing protected data,
  /// otherwise reclaimers cannot see it. RCUArray's QSBR read path calls
  /// this; after the first call it is one thread-local lookup and a
  /// relaxed load.
  void ensure_participant() { participate(); }

  /// Parking support: the calling thread is idle; do final housekeeping
  /// and stop gating the safe-epoch minimum. (Delegates to the registry,
  /// which parks the thread for *all* domains, as an idle thread is idle
  /// everywhere.)
  void park() {
    if (test_hook != nullptr) test_hook(*this, kHookPark);
    registry_.park_current_thread();
  }
  void unpark() {
    if (test_hook != nullptr) test_hook(*this, kHookUnpark);
    registry_.unpark_current_thread();
  }

  /// Number of deferrals currently pending on the calling thread.
  [[nodiscard]] std::size_t pending_on_this_thread();

  /// Deferrals pending across EVERY record of this domain, including
  /// those stranded on exited (parked) threads that no checkpoint will
  /// ever visit again — the measured drain target for shutdown paths
  /// (checkpoints reclaim the live threads' share; flush_unsafe() takes
  /// the stranded remainder).
  [[nodiscard]] std::size_t pending_total() const {
    std::size_t n = 0;
    for (const rt::ThreadRecord* r = registry_.head(); r != nullptr;
         r = r->next) {
      n += r->slots[slot_].defer_list.size();
    }
    return n;
  }

  /// Reclaims every pending deferral of every thread. ONLY safe when no
  /// thread holds protected references (shutdown, test teardown).
  void flush_unsafe() { registry_.flush_slot_unsafe(slot_); }

  [[nodiscard]] std::uint64_t current_epoch() const noexcept override {
    return state_epoch_.value.load(std::memory_order_acquire);
  }

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{defers_.value.load(std::memory_order_relaxed),
                 checkpoints_.value.load(std::memory_order_relaxed),
                 reclaimed_.value.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] rt::ThreadRegistry& registry() noexcept { return registry_; }

 private:
  rt::DomainSlot& participate();

  rt::ThreadRegistry& registry_;
  std::size_t slot_;
  plat::CacheAligned<std::atomic<std::uint64_t>> state_epoch_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> defers_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> checkpoints_{0ULL};
  plat::CacheAligned<std::atomic<std::uint64_t>> reclaimed_{0ULL};
};

}  // namespace rcua::reclaim
