#pragma once

#include <cstdint>

#include "reclaim/qsbr.hpp"

namespace rcua::reclaim {

/// Runtime-placed checkpoint cadence. The paper leaves open "whether
/// checkpoints should be injected by the compiler, placed at strategic
/// points in the runtime, or invoked manually by the user" (§III-B);
/// this is the middle option in library form: a per-task pacer that a
/// loop ticks once per operation and that invokes a checkpoint every
/// `cadence` ticks. Figure 4 is the tool for choosing the cadence —
/// too small costs throughput, too large costs memory.
class AutoCheckpoint {
 public:
  explicit AutoCheckpoint(std::uint64_t cadence = 256,
                          Qsbr& domain = Qsbr::global()) noexcept
      : domain_(domain), cadence_(cadence == 0 ? 1 : cadence) {}

  AutoCheckpoint(const AutoCheckpoint&) = delete;
  AutoCheckpoint& operator=(const AutoCheckpoint&) = delete;

  /// Destructor checkpoints once more so nothing is left gated by this
  /// task's last observations.
  ~AutoCheckpoint() { domain_.checkpoint(); }

  /// One operation completed; checkpoints on cadence boundaries.
  /// Returns true when a checkpoint ran.
  bool tick() {
    if (++ticks_ % cadence_ == 0) {
      domain_.checkpoint();
      return true;
    }
    return false;
  }

  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] std::uint64_t cadence() const noexcept { return cadence_; }

 private:
  Qsbr& domain_;
  std::uint64_t cadence_;
  std::uint64_t ticks_ = 0;
};

}  // namespace rcua::reclaim
