#include "reclaim/qsbr.hpp"

#include <cassert>
#include <mutex>

#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"
#include "testing/sched_point.hpp"

namespace rcua::reclaim {

Qsbr::Qsbr(rt::ThreadRegistry& registry)
    : registry_(registry), slot_(registry.register_domain(*this)) {}

Qsbr::~Qsbr() { registry_.unregister_domain(slot_); }

Qsbr& Qsbr::global() {
  static Qsbr* domain = new Qsbr(rt::ThreadRegistry::global());  // immortal
  return *domain;
}

rt::DomainSlot& Qsbr::participate() {
  rt::ThreadRecord& rec = registry_.local_record();
  rt::DomainSlot& slot = rec.slots[slot_];
  if (!slot.active.load(std::memory_order_relaxed)) {
    // First participation: become visible to min-epoch scans with a
    // current observation so we never drag the minimum below the state
    // that existed before we arrived.
    slot.observed_epoch.store(current_epoch(), std::memory_order_relaxed);
    slot.active.store(true, std::memory_order_release);
  }
  return slot;
}

void Qsbr::defer(DeferNode* node) {
  rt::DomainSlot& slot = participate();
  // Update and observe the new global state (lines 1-2). The fetch_add
  // both invalidates the old state and produces the safe epoch: once all
  // threads have observed >= e, nobody can still hold a reference
  // acquired under the state e replaced.
  const std::uint64_t e =
      state_epoch_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
  assert(e != 0 && "StateEpoch overflow is undefined behaviour (paper fn.5)");
  RCUA_SCHED_POINT("qsbr.defer.epoch_bumped");
  obs::trace_instant("rcu.epoch_bump", "rcu", e);
  slot.observed_epoch.store(e, std::memory_order_release);
  RCUA_SCHED_POINT("qsbr.defer.observed");
  // Couple the memory with its safe epoch, LIFO (line 3; Lemma 4 keeps
  // the list sorted descending because e is monotone per thread).
  node->safe_epoch = e;
  {
    std::lock_guard<plat::Spinlock> list_guard(slot.list_lock);
    slot.defer_list.push(node);
  }
  defers_.value.fetch_add(1, std::memory_order_relaxed);
  const auto& m = sim::CostModel::get();
  sim::charge(m.qsbr_defer_ns + m.atomic_rmw_ns);
}

std::size_t Qsbr::checkpoint() {
  rt::DomainSlot& slot = participate();
  // Observe the current state (lines 4-5).
  const std::uint64_t e = current_epoch();
  if (test_hook != nullptr) test_hook(*this, kHookCheckpointEpochRead);
  RCUA_SCHED_POINT("qsbr.checkpoint.epoch_read");
  slot.observed_epoch.store(e, std::memory_order_release);
  if (test_hook != nullptr) test_hook(*this, kHookCheckpointObserved);
  RCUA_SCHED_POINT("qsbr.checkpoint.observed");
  // Find the smallest (safest) epoch over all participants (lines 6-8).
  std::uint64_t live_visited = 0;
  std::uint64_t min =
      registry_.min_observed_epoch_counted(slot_, e, live_visited);
  if (RCUA_SCHED_MUT(qsbr_ignore_min)) min = e;
  RCUA_SCHED_POINT("qsbr.checkpoint.scanned");
  // How far the slowest participant trails the state this thread just
  // observed — the health signal for a laggard pinning reclamation.
  obs::health::epoch_lag().update_max(e - min);
  // Split the DeferList where safe epoch <= min and reclaim (lines 9-13).
  DeferNode* chain;
  {
    std::lock_guard<plat::Spinlock> list_guard(slot.list_lock);
    chain = slot.defer_list.pop_less_equal(min);
  }
  std::size_t freed = 0;
  for (DeferNode* n = chain; n != nullptr; n = n->next) ++freed;
  DeferList::reclaim_chain(chain);

  checkpoints_.value.fetch_add(1, std::memory_order_relaxed);
  reclaimed_.value.fetch_add(freed, std::memory_order_relaxed);
  const auto& m = sim::CostModel::get();
  sim::charge(m.atomic_load_ns +
              m.qsbr_checkpoint_per_thread_ns *
                  static_cast<double>(live_visited));
  return freed;
}

Qsbr::SyncResult Qsbr::try_synchronize(const StallPolicy& policy) {
  rt::DomainSlot& slot = participate();
  // Invalidate the current state so every participant has a fresh epoch
  // to observe; the bump's value is the quiescence target. Observe it
  // ourselves immediately — the caller is by definition quiescent here.
  const std::uint64_t e =
      state_epoch_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
  assert(e != 0 && "StateEpoch overflow is undefined behaviour (paper fn.5)");
  RCUA_SCHED_POINT("qsbr.synchronize.epoch_bumped");
  slot.observed_epoch.store(e, std::memory_order_release);
  SyncResult result;
  result.target_epoch = e;
  obs::TraceSpan span("rcu.drain_wait", "rcu");
  const std::uint64_t start = plat::now_ns();
  result.quiesced =
      wait_with_policy("qsbr.try_synchronize", policy, [&] {
        return registry_.min_observed_epoch(slot_, e) >= e;
      });
  result.waited_ns = plat::now_ns() - start;
  obs::health::grace_ns().record(result.waited_ns);
  if (!result.quiesced) {
    const LaggardReport report = scan_laggards(e);
    result.laggards = report.count;
    result.laggard = report.first;
    result.laggard_observed = report.first_observed;
    obs::health::epoch_lag().update_max(e - result.laggard_observed);
  }
  return result;
}

Qsbr::LaggardReport Qsbr::scan_laggards(std::uint64_t target_epoch) const {
  LaggardReport report;
  for (const rt::ThreadRecord* rec = registry_.head(); rec != nullptr;
       rec = rec->next) {
    if (rec->parked.load(std::memory_order_acquire)) continue;
    const rt::DomainSlot& slot = rec->slots[slot_];
    if (!slot.active.load(std::memory_order_acquire)) continue;
    const std::uint64_t seen =
        slot.observed_epoch.load(std::memory_order_acquire);
    if (seen >= target_epoch) continue;
    if (report.count == 0) {
      report.first = rec;
      report.first_observed = seen;
    }
    ++report.count;
  }
  return report;
}

std::size_t Qsbr::pending_on_this_thread() {
  return registry_.local_record().slots[slot_].defer_list.size();
}

}  // namespace rcua::reclaim
