// Tests for the destination-aggregated bulk operations
// (RCUArray::bulk_read/bulk_write/for_each_block, rt::Aggregator):
// elementwise agreement across block/locale straddles and degenerate
// ranges, the O(blocks-touched) communication bound the aggregation
// exists for, agreement under a concurrent resize_add, and the
// DistVector bulk fill path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "containers/dist_vector.hpp"
#include "core/rcu_array.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/cluster.hpp"

namespace rt = rcua::rt;
using rcua::EbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;

namespace {

void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

constexpr std::uint64_t pattern(std::size_t i) {
  return (static_cast<std::uint64_t>(i) * 2654435761ULL) ^ 0x9e37u;
}

/// Elementwise-agreement sweep shared by both policies: ranges that
/// straddle block and locale boundaries, single elements, whole array,
/// empty and degenerate ranges, and the bounds check.
template <typename Policy>
void run_agreement_sweep() {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  RCUArray<std::uint64_t, Policy> arr(cluster, 200, {.block_size = 16});
  const std::size_t cap = arr.capacity();  // 208: 13 blocks of 16
  ASSERT_GE(cap, 200u);
  for (std::size_t i = 0; i < cap; ++i) arr.write(i, pattern(i));

  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, cap},       // everything
      {0, 1},         // first element
      {cap - 1, 1},   // last element
      {15, 2},        // straddles the first block boundary
      {16, 16},       // exactly one (remote) block
      {5, 40},        // several blocks, unaligned on both ends
      {47, 113},      // locale-straddling middle chunk
      {0, 0},         // empty
      {cap, 0},       // empty at the end: count==0 never throws
      {cap + 7, 0},   // empty past the end: count==0 never throws
  };
  for (const auto& [first, count] : ranges) {
    // bulk_read vs elementwise read()
    const std::vector<std::uint64_t> got = arr.bulk_read(first, count);
    ASSERT_EQ(got.size(), count);
    for (std::size_t k = 0; k < count; ++k) {
      ASSERT_EQ(got[k], arr.read(first + k))
          << "first=" << first << " count=" << count << " k=" << k;
    }
    // ...and at the degenerate buffer capacity (flush per span).
    std::vector<std::uint64_t> got1(count);
    arr.bulk_read(first, count, got1.data(), {.buffer_capacity = 1});
    ASSERT_EQ(got1, got) << "first=" << first << " count=" << count;
  }

  // bulk_write vs elementwise read-back, rotating the pattern so stale
  // values fail loudly.
  for (const auto& [first, count] : ranges) {
    std::vector<std::uint64_t> vals(count);
    for (std::size_t k = 0; k < count; ++k) {
      vals[k] = pattern(first + k) + 1;
    }
    arr.bulk_write(first, std::span<const std::uint64_t>(vals));
    for (std::size_t k = 0; k < count; ++k) {
      ASSERT_EQ(arr.read(first + k), pattern(first + k) + 1)
          << "first=" << first << " count=" << count << " k=" << k;
    }
    // restore
    for (std::size_t k = 0; k < count; ++k) {
      arr.write(first + k, pattern(first + k));
    }
  }

  // Out-of-range is rejected up front (nothing copied, nothing flushed).
  EXPECT_THROW(arr.bulk_read(cap - 1, 2), std::out_of_range);
  EXPECT_THROW(arr.bulk_read(cap, 1), std::out_of_range);
  std::uint64_t one = 0;
  EXPECT_THROW(arr.bulk_write(cap, std::span<const std::uint64_t>(&one, 1)),
               std::out_of_range);
}

}  // namespace

TEST(BulkOps, AgreementSweepEbr) { run_agreement_sweep<EbrPolicy>(); }

TEST(BulkOps, AgreementSweepQsbr) {
  run_agreement_sweep<QsbrPolicy>();
  drain_qsbr();
}

TEST(BulkOps, ForEachBlockPartitionsTheRange) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  RCUArray<int, EbrPolicy> arr(cluster, 96, {.block_size = 32});
  const std::size_t first = 7;
  const std::size_t count = 80;  // crosses blocks 0->1->2, unaligned
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  arr.for_each_block(
      first, count,
      [&](std::size_t base, int*, std::size_t len) {
        spans.emplace_back(base, len);
      });
  // Sorted by base (drain order is not index order), the spans must
  // exactly tile [first, first+count) without crossing a block boundary.
  std::sort(spans.begin(), spans.end());
  std::size_t expect = first;
  for (const auto& [base, len] : spans) {
    EXPECT_EQ(base, expect);
    ASSERT_GT(len, 0u);
    EXPECT_EQ(base / 32, (base + len - 1) / 32)
        << "span crosses a block boundary";
    expect = base + len;
  }
  EXPECT_EQ(expect, first + count);
}

TEST(BulkOps, CommVolumeIsPerBlockNotPerElement) {
  // The acceptance bound: a bulk_read of N mostly-remote elements
  // records O(blocks touched) communication operations — one execute
  // per destination flush — where the elementwise loop records one GET
  // per remote element.
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 2});
  // Cache pinned off: the elementwise baseline below asserts one GET
  // per remote element, which the nightly RCUA_CACHE_CAPACITY_BYTES
  // sweep would otherwise turn into O(blocks) fills.
  RCUArray<std::uint64_t, EbrPolicy> arr(
      cluster, 16 * 64, {.block_size = 64, .cache_capacity_bytes = 0});
  const std::size_t n = arr.capacity();
  ASSERT_EQ(n, 16u * 64u);  // block i owned by locale i % 4
  for (std::size_t i = 0; i < n; ++i) arr.write(i, pattern(i));
  rt::CommLayer& comm = cluster.comm();

  // Elementwise baseline: one GET per remote element.
  comm.reset();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(arr.read(i), pattern(i));
  }
  const std::uint64_t elementwise_gets = comm.total_gets();
  EXPECT_EQ(elementwise_gets, 12u * 64u);  // 12 remote blocks of 64

  // Aggregated: zero GETs/PUTs, one execute per destination flush. With
  // the default capacity each remote locale's 4x64 elements fit one
  // buffer, so exactly 3 executes (one per remote locale).
  comm.reset();
  const std::vector<std::uint64_t> got = arr.bulk_read(0, n);
  EXPECT_EQ(comm.total_gets(), 0u);
  EXPECT_EQ(comm.total_puts(), 0u);
  EXPECT_EQ(comm.total_executes(), 3u);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], pattern(i));

  // Degenerate buffer capacity: one execute per remote SPAN — still
  // O(blocks touched), never O(elements).
  comm.reset();
  std::vector<std::uint64_t> got1(n);
  arr.bulk_read(0, n, got1.data(), {.buffer_capacity = 1});
  EXPECT_EQ(comm.total_gets(), 0u);
  EXPECT_EQ(comm.total_executes(), 12u);  // the 12 remote blocks
  EXPECT_LE(comm.total_executes(), arr.num_blocks());
  EXPECT_LT(comm.total_executes(), elementwise_gets);

  // The write side has the same shape (executes, not PUTs).
  comm.reset();
  std::vector<std::uint64_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = pattern(i) + 7;
  arr.bulk_write(0, std::span<const std::uint64_t>(vals));
  EXPECT_EQ(comm.total_puts(), 0u);
  EXPECT_EQ(comm.total_gets(), 0u);
  EXPECT_EQ(comm.total_executes(), 3u);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(arr.read(i), pattern(i) + 7);
}

TEST(BulkOps, AggregatorStatsAndLocalFastPath) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rt::Aggregator agg(cluster, {.capacity = 4});
  int local_ran = 0;
  int remote_ran = 0;
  agg.push(0, 1, [&] { ++local_ran; });  // launcher is locale 0: inline
  EXPECT_EQ(local_ran, 1);
  for (int k = 0; k < 3; ++k) {
    agg.push(1, 1, [&] { ++remote_ran; });
  }
  EXPECT_EQ(remote_ran, 0);  // below capacity: still buffered
  EXPECT_EQ(agg.pending_weight(1), 3u);
  agg.push(1, 1, [&] { ++remote_ran; });  // reaches capacity 4
  EXPECT_EQ(agg.pending_weight(1), 0u);   // auto-flush ISSUED the buffer
  EXPECT_EQ(remote_ran, 0);  // async mode: delivery happens at drain
  agg.drain();
  EXPECT_EQ(remote_ran, 4);  // the drain delivered all four exactly once
  EXPECT_EQ(agg.stats().ops, 5u);
  EXPECT_EQ(agg.stats().local_ops, 1u);
  EXPECT_EQ(agg.stats().flushes, 1u);
  EXPECT_EQ(agg.stats().auto_flushes, 1u);
  // An abandoned buffer is dropped, not executed (exception-unwind
  // safety; see the class comment).
  {
    rt::Aggregator dropped(cluster, {.capacity = 100});
    dropped.push(1, 1, [&] { ++remote_ran; });
  }
  EXPECT_EQ(remote_ran, 4);
  // Sync mode still delivers at the flush itself.
  rt::Aggregator sync_agg(cluster, {.capacity = 4, .async = false});
  int sync_ran = 0;
  sync_agg.push(1, 2, [&] { ++sync_ran; });
  sync_agg.flush_all();
  EXPECT_EQ(sync_ran, 1);
}

TEST(BulkOps, AggregatorDtorCancelsInflightAsyncCompletions) {
  // Satellite fix: the destructor's interaction with in-flight ASYNC
  // flushes is defined as cancellation — a pending completion is never
  // delivered into a destroyed caller buffer, and the async counters
  // balance (issued == completed + cancelled) so nothing leaks either.
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rt::CommLayer& comm = cluster.comm();
  comm.reset();
  int ran = 0;
  {
    rt::Aggregator agg(cluster, {.capacity = 100, .async = true,
                                 .window = 8});
    agg.push(1, 1, [&] { ++ran; });
    agg.push(1, 1, [&] { ++ran; });
    agg.flush_all();  // ISSUES one async execute; completion in flight
    ASSERT_NE(agg.async_comm(), nullptr);
    EXPECT_EQ(agg.async_comm()->total_inflight(), 1u);
    EXPECT_EQ(ran, 0);
    // Destroyed with the completion still pending — e.g. an exception
    // unwinding out of the read-side section.
  }
  EXPECT_EQ(ran, 0);  // never delivered into the destroyed frame
  EXPECT_EQ(comm.total_async_issued(), 1u);
  EXPECT_EQ(comm.total_async_completed(), 0u);
  EXPECT_EQ(comm.total_async_cancelled(), 1u);
  EXPECT_EQ(comm.total_async_issued(),
            comm.total_async_completed() + comm.total_async_cancelled());

  // The awaited path still delivers: flush + drain inside the scope.
  {
    rt::Aggregator agg(cluster, {.capacity = 100, .async = true,
                                 .window = 8});
    agg.push(1, 1, [&] { ++ran; });
    agg.flush_all();
    agg.drain();
    EXPECT_EQ(ran, 1);
  }
  EXPECT_EQ(ran, 1);
}

TEST(BulkOps, AgreementUnderConcurrentResizeAdd) {
  // Property: while a writer thread grows the array, bulk reads of the
  // stable prefix always return exactly what was written there, and a
  // bulk write to the prefix lands exactly elementwise. The pinned
  // snapshot plus recycled blocks (Lemma 6) make this exact, not
  // approximate.
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  RCUArray<std::uint64_t, EbrPolicy> arr(cluster, 4 * 32,
                                         {.block_size = 32});
  const std::size_t prefix = arr.capacity();
  for (std::size_t i = 0; i < prefix; ++i) arr.write(i, pattern(i));

  std::thread grower([&] {
    for (int r = 0; r < 24; ++r) {
      arr.resize_add(32);
    }
  });
  for (int round = 0; round < 200; ++round) {
    const std::vector<std::uint64_t> got = arr.bulk_read(0, prefix);
    for (std::size_t i = 0; i < prefix; ++i) {
      ASSERT_EQ(got[i], pattern(i)) << "round " << round << " i=" << i;
    }
  }
  // Writes through one pinned snapshot stay visible across the resizes.
  std::vector<std::uint64_t> vals(prefix);
  for (std::size_t i = 0; i < prefix; ++i) vals[i] = pattern(i) ^ 0xffu;
  arr.bulk_write(0, std::span<const std::uint64_t>(vals),
                 {.buffer_capacity = 8});
  grower.join();
  for (std::size_t i = 0; i < prefix; ++i) {
    ASSERT_EQ(arr.read(i), pattern(i) ^ 0xffu) << i;
  }
  EXPECT_EQ(arr.capacity(), 4u * 32u + 24u * 32u);
}

TEST(BulkOps, DistVectorBulkFill) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  rcua::cont::DistVector<std::uint64_t> vec(cluster, {.block_size = 16});
  EXPECT_EQ(vec.push_back(7u), 0u);
  std::vector<std::uint64_t> batch(150);
  for (std::size_t i = 0; i < batch.size(); ++i) batch[i] = pattern(i);
  const std::size_t first =
      vec.push_back_bulk(std::span<const std::uint64_t>(batch));
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(vec.size(), 151u);
  EXPECT_EQ(vec.push_back(9u), 151u);
  const std::vector<std::uint64_t> read =
      vec.read_range(first, batch.size());
  EXPECT_EQ(read, batch);
  EXPECT_THROW((void)vec.read_range(100, 100), std::out_of_range);
  drain_qsbr();
}
