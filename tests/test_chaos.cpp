// Chaos-layer tests: deterministic fault injection against the simulated
// cluster, proving the stall-tolerant reclamation actually tolerates
// stalls — a reader stalled mid-read-section and a killed worker must not
// make resize_add hang, the deferred memory must stay within the
// watchdog's budget, and the stall diagnostics must name the offender.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/rcu_array.hpp"
#include "reclaim/stall_monitor.hpp"
#include "runtime/cluster.hpp"
#include "runtime/fault_plan.hpp"

namespace rt = rcua::rt;
namespace reclaim = rcua::reclaim;

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ms(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

/// Spin until `pred` holds or ~5 s pass (keeps a broken build from
/// hanging the suite instead of failing it).
template <typename Pred>
bool eventually(Pred&& pred) {
  const auto start = Clock::now();
  while (!pred()) {
    if (elapsed_ms(start) > 5000) return false;
    std::this_thread::yield();
  }
  return true;
}

}  // namespace

// The acceptance scenario: a reader stalled mid-read-section plus a
// killed worker, with resize_add completing within the configured
// deadline instead of hanging, the overflow list within budget, and the
// diagnostic naming the stuck stripe.
TEST(Chaos, StalledReaderAndKilledWorkerDoNotHangResize) {
  // Declared before the cluster: pool workers consult the plan between
  // tasks, so it must outlive them (the cluster's destructor joins).
  rt::FaultPlan plan(/*seed=*/42);
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  reclaim::StallMonitor monitor(/*budget_bytes=*/1 << 20,
                                reclaim::StallMonitor::Escalation::kBlock);
  reclaim::CaptureStallSink captured;
  monitor.set_sink(&captured);

  rcua::RCUArray<int, rcua::EbrPolicy>::Options opts;
  opts.block_size = 64;
  opts.stall_policy.deadline_ns = 2 * 1000 * 1000;  // 2 ms
  opts.stall_policy.park_ns = 50 * 1000;
  opts.stall_monitor = &monitor;
  rcua::RCUArray<int, rcua::EbrPolicy> arr(cluster, 4 * 64, opts);
  for (std::size_t i = 0; i < arr.capacity(); ++i) {
    arr.write(i, static_cast<int>(i));
  }

  plan.add({.action = rt::FaultPlan::Action::kStallReader,
            .locale = 0,
            .fire_from = 1,
            .fire_count = 1,
            .delay_ns = 300ull * 1000 * 1000});  // 300 ms mid-section stall
  plan.add({.action = rt::FaultPlan::Action::kKillWorker,
            .locale = 1,
            .fire_from = 1,
            .fire_count = 1});
  cluster.set_fault_plan(&plan);

  std::thread reader([&] {
    // One read that the plan stalls for 300 ms *inside* the EBR critical
    // section (announced, pre-retract).
    EXPECT_EQ(arr.read(3), 3);
  });
  // The fired-counter flips before the stall sleep begins, after the
  // reader has announced — from here the old-parity column is non-zero.
  ASSERT_TRUE(eventually([&] {
    return plan.fired(rt::FaultPlan::Action::kStallReader) >= 1;
  }));

  const auto start = Clock::now();
  arr.resize_add(64);  // must bound its wait at the 2 ms deadline
  const std::uint64_t took_ms = elapsed_ms(start);
  EXPECT_LT(took_ms, 150u) << "resize_add blocked on the stalled reader";

  // The stalled locale deferred its spine instead of freeing it.
  EXPECT_GE(arr.stalled_spines(), 1u);
  EXPECT_GE(arr.overflow_pending_objects(), 1u);
  EXPECT_GE(monitor.stalls(), 1u);
  EXPECT_LE(monitor.peak_overflow_bytes(), monitor.budget_bytes());

  // The diagnostic names the stuck locale/stripe/epoch.
  const auto captured_diags = captured.records();
  ASSERT_FALSE(captured_diags.empty());
  const reclaim::StallDiagnostic& diag = captured_diags.front();
  EXPECT_EQ(diag.kind, reclaim::StallDiagnostic::Kind::kEbrReader);
  EXPECT_EQ(diag.locale, 0u);
  EXPECT_NE(diag.stripe, SIZE_MAX);
  EXPECT_GE(diag.stuck_readers, 1u);
  EXPECT_NE(diag.describe().find("stripe"), std::string::npos);

  // The killed worker died after handing off its queue; the pool (and a
  // further resize) keeps working.
  EXPECT_TRUE(
      eventually([&] { return cluster.pool().killed_workers() >= 1; }));
  arr.resize_add(64);

  reader.join();
  // With the reader evacuated, the deferred spines reclaim on demand.
  arr.reclaim_overflow();
  EXPECT_EQ(arr.overflow_pending_objects(), 0u);
  EXPECT_EQ(arr.overflow_pending_bytes(), 0u);
  EXPECT_EQ(monitor.overflow_bytes(), 0u);

  // No data was lost across the chaos.
  for (std::size_t i = 0; i < 4 * 64; ++i) {
    EXPECT_EQ(arr.read(i), static_cast<int>(i));
  }
  cluster.set_fault_plan(nullptr);
}

TEST(Chaos, DroppedBroadcastIsRetriedUntilEveryLocalePublishes) {
  rt::FaultPlan plan(/*seed=*/7);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 1});
  rcua::RCUArray<int> arr(cluster, 0, {.block_size = 32});

  plan.add({.action = rt::FaultPlan::Action::kDropBroadcast,
            .locale = 1,
            .fire_from = 1,
            .fire_count = 2});  // locale 1 misses the swap twice
  cluster.set_fault_plan(&plan);

  arr.resize_add(3 * 32);
  EXPECT_EQ(plan.fired(rt::FaultPlan::Action::kDropBroadcast), 2u);
  EXPECT_GE(arr.broadcast_retries(), 2u);

  // Every locale converged on the same capacity despite the lost steps.
  for (std::uint32_t l = 0; l < cluster.num_locales(); ++l) {
    cluster.on(l, [&] { EXPECT_EQ(arr.capacity(), 3u * 32u); });
  }
  for (std::size_t i = 0; i < arr.capacity(); ++i) {
    arr.write(i, static_cast<int>(2 * i));
  }
  for (std::size_t i = 0; i < arr.capacity(); ++i) {
    EXPECT_EQ(arr.read(i), static_cast<int>(2 * i));
  }
  cluster.set_fault_plan(nullptr);
}

TEST(Chaos, ResizeTerminatesUnderAPermanentBroadcastFault) {
  // A plan that drops a locale's broadcast forever must not livelock the
  // resize: past max_publish_attempts the plan stops being consulted.
  rt::FaultPlan plan(/*seed=*/3);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rcua::RCUArray<int>::Options opts;
  opts.block_size = 16;
  opts.max_publish_attempts = 8;
  rcua::RCUArray<int> arr(cluster, 0, opts);

  plan.add({.action = rt::FaultPlan::Action::kDropBroadcast,
            .locale = 1,
            .fire_from = 1,
            .fire_count = UINT64_MAX});  // forever
  cluster.set_fault_plan(&plan);

  arr.resize_add(16);  // must return
  EXPECT_EQ(arr.capacity(), 16u);
  EXPECT_GE(arr.broadcast_retries(), 8u);
  cluster.set_fault_plan(nullptr);
}

TEST(Chaos, KilledWorkerHandsQueueToOverflowThreads) {
  rt::FaultPlan plan(/*seed=*/11);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  plan.add({.action = rt::FaultPlan::Action::kKillWorker,
            .fire_from = 1,
            .fire_count = 1});
  cluster.set_fault_plan(&plan);

  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    cluster.coforall_tasks(4, [&](std::uint32_t, std::uint32_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Every submitted task ran even though a worker died mid-suite.
  EXPECT_EQ(ran.load(), 3 * 2 * 4);
  EXPECT_TRUE(
      eventually([&] { return cluster.pool().killed_workers() >= 1; }));
  cluster.set_fault_plan(nullptr);
}

TEST(Chaos, SlowRemoteFiresOnMatchingTargetOnly) {
  rt::FaultPlan plan(/*seed=*/5);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 1});
  plan.add({.action = rt::FaultPlan::Action::kSlowRemote,
            .locale = 2,
            .fire_from = 1,
            .fire_count = UINT64_MAX,
            .delay_ns = 1000});
  cluster.set_fault_plan(&plan);

  cluster.on(1, [] {});  // dst 1: filtered out
  EXPECT_EQ(plan.fired(rt::FaultPlan::Action::kSlowRemote), 0u);
  cluster.on(2, [] {});  // dst 2: fires
  EXPECT_EQ(plan.fired(rt::FaultPlan::Action::kSlowRemote), 1u);
  cluster.set_fault_plan(nullptr);
}

TEST(Chaos, ProbabilityZeroRuleNeverFires) {
  rt::FaultPlan plan(/*seed=*/9);
  plan.add({.action = rt::FaultPlan::Action::kKillWorker,
            .fire_from = 1,
            .fire_count = UINT64_MAX,
            .probability = 0.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.fires(rt::FaultPlan::Action::kKillWorker, 0));
  }
  EXPECT_EQ(plan.fired(rt::FaultPlan::Action::kKillWorker), 0u);
  EXPECT_EQ(plan.stats().consulted, 100u);
}

TEST(Chaos, SeededCoinReplaysIdentically) {
  // Two plans with the same seed and a probabilistic rule must fire on
  // exactly the same consultation indices (determinism contract).
  auto run = [](std::uint64_t seed) {
    rt::FaultPlan plan(seed);
    plan.add({.action = rt::FaultPlan::Action::kStallReader,
              .fire_from = 1,
              .fire_count = UINT64_MAX,
              .probability = 0.5});
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(plan.fires(rt::FaultPlan::Action::kStallReader, 0));
    }
    return fires;
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(456));  // and the seed actually matters
}

TEST(Chaos, BudgetBreachFallsBackToBlockingDrain) {
  // With a 1-byte budget and kBlock escalation, a stalled drain may NOT
  // defer: the writer must fall back to the blocking wait, keeping the
  // overflow at zero — the hard memory bound.
  rt::FaultPlan plan(/*seed=*/2);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  reclaim::StallMonitor monitor(/*budget_bytes=*/1,
                                reclaim::StallMonitor::Escalation::kBlock);
  reclaim::CaptureStallSink captured;
  monitor.set_sink(&captured);

  rcua::RCUArray<int, rcua::EbrPolicy>::Options opts;
  opts.block_size = 32;
  opts.stall_policy.deadline_ns = 1 * 1000 * 1000;  // 1 ms
  opts.stall_monitor = &monitor;
  rcua::RCUArray<int, rcua::EbrPolicy> arr(cluster, 32, opts);

  plan.add({.action = rt::FaultPlan::Action::kStallReader,
            .locale = 0,
            .fire_from = 1,
            .fire_count = 1,
            .delay_ns = 40ull * 1000 * 1000});  // 40 ms
  cluster.set_fault_plan(&plan);

  std::thread reader([&] { EXPECT_EQ(arr.read(0), 0); });
  ASSERT_TRUE(eventually([&] {
    return plan.fired(rt::FaultPlan::Action::kStallReader) >= 1;
  }));

  arr.resize_add(32);  // stalls, breaches the 1-byte budget, blocks
  reader.join();

  EXPECT_GE(monitor.escalations(), 1u);
  EXPECT_EQ(arr.stalled_spines(), 0u);
  EXPECT_EQ(arr.overflow_pending_objects(), 0u);
  EXPECT_EQ(monitor.overflow_bytes(), 0u);
  cluster.set_fault_plan(nullptr);
}

TEST(Chaos, SlowRemoteAndKilledWorkerMidCacheFillLeaveNoPartialEntries) {
  // Faults landing mid-cache-fill (DESIGN.md §11): a slow-remote rule
  // delays every fill's remote fetch, and a worker is killed while
  // cached reads are running on the pool. Each fill must either
  // complete (whole-block insert) or be discarded on unwind — never a
  // partial-block entry — and the workload must finish inside the stall
  // budget with no stale or corrupt value served.
  rt::FaultPlan plan(/*seed=*/17);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kBlockBytes = kBlock * sizeof(int);
  rcua::RCUArray<int, rcua::EbrPolicy> arr(
      cluster, 4 * kBlock,
      {.block_size = kBlock, .cache_capacity_bytes = 1u << 20});
  for (std::size_t i = 0; i < arr.capacity(); ++i) {
    arr.write(i, static_cast<int>(i));
  }

  plan.add({.action = rt::FaultPlan::Action::kSlowRemote,
            .locale = 1,
            .fire_from = 1,
            .fire_count = UINT64_MAX,
            .delay_ns = 200 * 1000});  // every fill to locale 1 is slow
  plan.add({.action = rt::FaultPlan::Action::kKillWorker,
            .fire_from = 1,
            .fire_count = 1});  // dies while fills are in flight
  cluster.set_fault_plan(&plan);

  const auto start = Clock::now();
  // Cached reads from POOL tasks on every locale (so the killed worker
  // lands inside the workload), racing element writes that invalidate
  // and force refills under the same faults.
  std::atomic<int> bad{0};
  for (int round = 0; round < 5; ++round) {
    cluster.coforall_tasks(2, [&](std::uint32_t, std::uint32_t) {
      for (std::size_t i = 0; i < arr.capacity(); ++i) {
        if (arr.read(i) != static_cast<int>(i)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    EXPECT_EQ(bad.load(), 0) << "round " << round;
    const std::size_t idx = kBlock + static_cast<std::size_t>(round);
    arr.write(idx, 1000 + round);  // invalidate a hot remote block
    EXPECT_EQ(arr.read(idx), 1000 + round);
    arr.write(idx, static_cast<int>(idx));  // restore for the next round
  }
  EXPECT_LT(elapsed_ms(start), 5000u) << "cache fills blew the stall budget";
  EXPECT_TRUE(
      eventually([&] { return cluster.pool().killed_workers() >= 1; }));
  EXPECT_GE(plan.fired(rt::FaultPlan::Action::kSlowRemote), 1u);

  // No partial-block entries: every resident and every ever-inserted
  // byte is a whole block, and the ledger balances on both locales.
  for (std::uint32_t l = 0; l < 2; ++l) {
    EXPECT_EQ(arr.cache_bytes_used_at(l) % kBlockBytes, 0u);
    const auto cs = arr.cache_stats_at(l);
    EXPECT_EQ(cs.inserted_bytes % kBlockBytes, 0u);
    EXPECT_EQ(cs.evicted_bytes % kBlockBytes, 0u);
    EXPECT_EQ(cs.inserted_bytes,
              cs.evicted_bytes + arr.cache_bytes_used_at(l));
  }
  cluster.set_fault_plan(nullptr);
}

TEST(Chaos, QsbrReaderStallNeverBlocksResize) {
  // Under QSBR a resize defers the spine unconditionally, so even a long
  // mid-section stall cannot slow it — and the stalled reader's
  // participation keeps the deferred spine alive until it is quiescent
  // (ASan would catch a premature free).
  rt::FaultPlan plan(/*seed=*/13);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rcua::RCUArray<int> arr(cluster, 64, {.block_size = 64});
  for (std::size_t i = 0; i < 64; ++i) arr.write(i, 1);

  plan.add({.action = rt::FaultPlan::Action::kStallReader,
            .locale = 0,
            .fire_from = 1,
            .fire_count = 1,
            .delay_ns = 100ull * 1000 * 1000});  // 100 ms
  cluster.set_fault_plan(&plan);

  std::thread reader([&] { EXPECT_EQ(arr.read(5), 1); });
  ASSERT_TRUE(eventually([&] {
    return plan.fired(rt::FaultPlan::Action::kStallReader) >= 1;
  }));

  const auto start = Clock::now();
  arr.resize_add(64);
  EXPECT_LT(elapsed_ms(start), 80u);
  reader.join();
  EXPECT_EQ(arr.capacity(), 128u);
  cluster.set_fault_plan(nullptr);
}
