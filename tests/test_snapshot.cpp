// Tests for Block and Snapshot, including the recycling-clone invariant
// behind Lemma 6.

#include <gtest/gtest.h>

#include <vector>

#include "core/block.hpp"
#include "core/snapshot.hpp"
#include "runtime/cluster.hpp"

using rcua::Block;
using rcua::Snapshot;
namespace rt = rcua::rt;

namespace {
struct BlockSet {
  std::vector<Block<int>*> blocks;
  ~BlockSet() {
    for (auto* b : blocks) delete b;
  }
};
}  // namespace

TEST(Block, AllocationTracksOwnerAndAccounting) {
  rt::Locale loc(2);
  const auto live_before = Block<int>::live_count();
  {
    Block<int> b(loc, 16);
    EXPECT_EQ(b.owner(), 2u);
    EXPECT_EQ(b.capacity(), 16u);
    EXPECT_EQ(loc.allocations(), 1u);
    EXPECT_EQ(loc.bytes_live(), 16 * sizeof(int));
    EXPECT_EQ(Block<int>::live_count(), live_before + 1);
  }
  EXPECT_EQ(Block<int>::live_count(), live_before);
}

TEST(Block, ElementsValueInitializedAndWritable) {
  rt::Locale loc(0);
  Block<int> b(loc, 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(b[i], 0);
  b[3] = 42;
  EXPECT_EQ(b[3], 42);
}

TEST(Block, IdsAreUnique) {
  rt::Locale loc(0);
  Block<int> a(loc, 4), b(loc, 4);
  EXPECT_NE(a.id(), b.id());
}

TEST(Snapshot, EmptySnapshot) {
  Snapshot<int> s;
  EXPECT_EQ(s.num_blocks(), 0u);
  EXPECT_EQ(s.capacity(), 0u);
}

TEST(Snapshot, CloneAppendRecyclesBlocks) {
  rt::Locale loc(0);
  BlockSet set;
  for (int i = 0; i < 3; ++i) set.blocks.push_back(new Block<int>(loc, 4));

  Snapshot<int> s({set.blocks[0], set.blocks[1]});
  Snapshot<int>* s2 = Snapshot<int>::clone_append(
      s, std::span<Block<int>* const>(&set.blocks[2], 1));
  ASSERT_EQ(s2->num_blocks(), 3u);
  // Lemma 6 shape: s is a prefix of s2, block pointers identical.
  EXPECT_TRUE(s2->has_prefix(s));
  EXPECT_EQ(s2->block(0), set.blocks[0]);
  EXPECT_EQ(s2->block(1), set.blocks[1]);
  EXPECT_EQ(s2->block(2), set.blocks[2]);
  delete s2;
}

TEST(Snapshot, UpdateThroughOldSpineVisibleInNewSpine) {
  // The actual Lemma 6 mechanism: a write through a block reached from
  // the old spine is visible through the new spine.
  rt::Locale loc(0);
  BlockSet set;
  set.blocks.push_back(new Block<int>(loc, 4));
  set.blocks.push_back(new Block<int>(loc, 4));

  Snapshot<int> old_spine({set.blocks[0]});
  Snapshot<int>* new_spine = Snapshot<int>::clone_append(
      old_spine, std::span<Block<int>* const>(&set.blocks[1], 1));

  (*old_spine.block(0))[2] = 99;  // update via the OLD spine
  EXPECT_EQ((*new_spine->block(0))[2], 99);
  delete new_spine;
}

TEST(Snapshot, HasPrefixRejectsMismatch) {
  rt::Locale loc(0);
  BlockSet set;
  for (int i = 0; i < 2; ++i) set.blocks.push_back(new Block<int>(loc, 4));
  Snapshot<int> a({set.blocks[0]});
  Snapshot<int> b({set.blocks[1]});
  EXPECT_FALSE(a.has_prefix(b));
  Snapshot<int> longer({set.blocks[0], set.blocks[1]});
  EXPECT_FALSE(a.has_prefix(longer));  // prefix longer than self
}

TEST(Snapshot, LiveCountTracksSpinesNotBlocks) {
  rt::Locale loc(0);
  const auto live_before = Snapshot<int>::live_count();
  const auto blocks_before = Block<int>::live_count();
  BlockSet set;
  set.blocks.push_back(new Block<int>(loc, 4));
  {
    Snapshot<int> s({set.blocks[0]});
    EXPECT_EQ(Snapshot<int>::live_count(), live_before + 1);
  }
  // Deleting the spine must not touch the block.
  EXPECT_EQ(Snapshot<int>::live_count(), live_before);
  EXPECT_EQ(Block<int>::live_count(), blocks_before + 1);
}

TEST(Snapshot, CapacityIsBlocksTimesBlockSize) {
  rt::Locale loc(0);
  BlockSet set;
  for (int i = 0; i < 5; ++i) set.blocks.push_back(new Block<int>(loc, 8));
  Snapshot<int> s(set.blocks);
  EXPECT_EQ(s.capacity(), 40u);
}

TEST(Snapshot, CloneChargesSpineCopy) {
  rcua::sim::CostModelOverride save;
  rcua::sim::CostModel::mutable_instance().spine_copy_ns_per_block = 10;

  rt::Locale loc(0);
  BlockSet set;
  for (int i = 0; i < 4; ++i) set.blocks.push_back(new Block<int>(loc, 4));
  Snapshot<int> s({set.blocks[0], set.blocks[1], set.blocks[2]});

  rcua::sim::TaskClock clock;
  {
    rcua::sim::ClockScope scope(clock);
    Snapshot<int>* s2 = Snapshot<int>::clone_append(
        s, std::span<Block<int>* const>(&set.blocks[3], 1));
    delete s2;
  }
  EXPECT_EQ(clock.vtime_ns, 40u);  // 4 pointers copied
}
