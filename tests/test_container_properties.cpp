// Parameterized property sweeps over the containers: the same invariants
// must hold across bucket counts, block sizes, and reclamation
// thresholds.

#include <gtest/gtest.h>

#include <tuple>

#include "containers/dist_bitset.hpp"
#include "containers/dist_hash_map.hpp"
#include "containers/dist_vector.hpp"
#include "reclaim/hazard.hpp"

namespace rt = rcua::rt;

namespace {
void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }
}  // namespace

// ---------------------------------------------------------------------
class HashMapGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(HashMapGeometry, InsertFindEraseInvariants) {
  const auto [buckets, block_size] = GetParam();
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  rcua::cont::DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = buckets, .block_size = block_size});

  constexpr std::uint64_t kKeys = 300;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map.insert(k, k * 7));
  }
  ASSERT_EQ(map.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const auto v = map.find(k);
    ASSERT_TRUE(v.has_value()) << k;
    ASSERT_EQ(*v, k * 7);
  }
  ASSERT_FALSE(map.find(kKeys + 1).has_value());
  // Erase the odd keys; evens must survive.
  for (std::uint64_t k = 1; k < kKeys; k += 2) {
    ASSERT_TRUE(map.erase(k));
  }
  ASSERT_EQ(map.size(), kKeys / 2);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(map.find(k).has_value(), k % 2 == 0) << k;
  }
  drain_qsbr();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashMapGeometry,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{64}, std::size_t{1024}),
                       ::testing::Values(std::size_t{8}, std::size_t{64},
                                         std::size_t{512})),
    [](const auto& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_bs" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
class VectorBlocks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VectorBlocks, PushBackOrderAndGrowth) {
  const std::size_t block_size = GetParam();
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  rcua::cont::DistVector<std::uint64_t> vec(cluster,
                                            {.block_size = block_size});
  constexpr std::size_t kN = 400;
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(vec.push_back(i * 3), i);
  }
  ASSERT_EQ(vec.size(), kN);
  ASSERT_GE(vec.capacity(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(vec[i], i * 3) << i;
  }
  drain_qsbr();
}

INSTANTIATE_TEST_SUITE_P(Sweep, VectorBlocks,
                         ::testing::Values(std::size_t{1}, std::size_t{4},
                                           std::size_t{32}, std::size_t{256},
                                           std::size_t{1024}),
                         [](const auto& info) {
                           return "bs" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
class HazardThreshold : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HazardThreshold, EverythingRetiredIsEventuallyFreed) {
  static std::atomic<int> freed{0};
  freed.store(0);
  struct Counted {
    ~Counted() { freed.fetch_add(1); }
  };
  const std::size_t threshold = GetParam();
  {
    rcua::reclaim::HazardDomain dom;
    dom.set_retire_threshold(threshold);
    constexpr int kObjs = 100;
    for (int i = 0; i < kObjs; ++i) dom.retire(new Counted);
    // Nothing may outlive the domain; intermediate scans never freed a
    // protected pointer (none are protected here).
    EXPECT_LE(freed.load(), kObjs);
    dom.flush_unsafe();
    EXPECT_EQ(freed.load(), kObjs);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HazardThreshold,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{16}, std::size_t{99},
                                           std::size_t{1000}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
class BitsetBlocks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetBlocks, SetCountClearInvariant) {
  const std::size_t words = GetParam();
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  rcua::cont::DistBitset<> bits(cluster, 0, {.block_size_words = words});
  constexpr std::size_t kBits = 500;
  for (std::size_t i = 0; i < kBits; i += 3) bits.set(i);
  std::size_t expect = 0;
  for (std::size_t i = 0; i < kBits; ++i) {
    const bool should = (i % 3 == 0);
    ASSERT_EQ(bits.test(i), should) << i;
    if (should) ++expect;
  }
  ASSERT_EQ(bits.count(), expect);
  for (std::size_t i = 0; i < kBits; i += 6) bits.clear(i);
  ASSERT_EQ(bits.count(), expect - (kBits + 5) / 6);
  drain_qsbr();
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitsetBlocks,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}, std::size_t{64}),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });
