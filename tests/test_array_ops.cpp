// Tests for the RCUArray extensions: shrink (resize_remove), pinned
// snapshot views, and the locality-aware bulk operations.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/rcu_array.hpp"

namespace rt = rcua::rt;
using rcua::EbrPolicy;
using rcua::HazardErasPolicy;
using rcua::IbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;

namespace {

template <typename Policy>
struct ArrayOpsTyped : public ::testing::Test {
  using Array = RCUArray<std::uint64_t, Policy>;
};

using Policies =
    ::testing::Types<EbrPolicy, QsbrPolicy, IbrPolicy, HazardErasPolicy>;
TYPED_TEST_SUITE(ArrayOpsTyped, Policies);

void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

}  // namespace

TYPED_TEST(ArrayOpsTyped, ShrinkRemovesWholeBlocks) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 4 * 64, {.block_size = 64});
  arr.resize_remove(2 * 64);
  EXPECT_EQ(arr.capacity(), 2 * 64u);
  EXPECT_EQ(arr.num_blocks(), 2u);
  // Partial blocks round DOWN: nothing removed.
  arr.resize_remove(63);
  EXPECT_EQ(arr.num_blocks(), 2u);
  drain_qsbr();
}

TYPED_TEST(ArrayOpsTyped, ShrinkPreservesSurvivingRegion) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 4 * 64, {.block_size = 64});
  for (std::size_t i = 0; i < 4 * 64; ++i) arr.write(i, i + 1);
  arr.resize_remove(2 * 64);
  for (std::size_t i = 0; i < 2 * 64; ++i) EXPECT_EQ(arr.read(i), i + 1);
  drain_qsbr();
}

TYPED_TEST(ArrayOpsTyped, ShrinkToZeroThenRegrow) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 2 * 64, {.block_size = 64});
  arr.resize_remove(1 << 20);  // more than exists: clamp to empty
  EXPECT_EQ(arr.capacity(), 0u);
  arr.resize_add(64);
  EXPECT_EQ(arr.capacity(), 64u);
  arr.write(0, 7);
  EXPECT_EQ(arr.read(0), 7u);
  drain_qsbr();
}

TYPED_TEST(ArrayOpsTyped, ShrinkFreesBlocksEventually) {
  const auto before = rcua::Block<std::uint64_t>::live_count();
  {
    rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
    typename TestFixture::Array arr(cluster, 4 * 64, {.block_size = 64});
    EXPECT_EQ(rcua::Block<std::uint64_t>::live_count(), before + 4);
    arr.resize_remove(2 * 64);
    drain_qsbr();  // QSBR-deferred block deletions
    EXPECT_EQ(rcua::Block<std::uint64_t>::live_count(), before + 2);
  }
  drain_qsbr();
  EXPECT_EQ(rcua::Block<std::uint64_t>::live_count(), before);
}

TEST(ArrayOpsEbr, ShrinkWaitsForReadersBeforeFreeingBlocks) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 3});
  RCUArray<std::uint64_t, EbrPolicy> arr(cluster, 2 * 64, {.block_size = 64});
  arr.write(64, 0xBEEF);  // in the block that will be removed

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> bad{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Keep the surviving region hot while the shrink drains.
      if (arr.read(0) > 1) bad.fetch_add(1);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  while (reads.load() == 0) std::this_thread::yield();
  arr.resize_remove(64);
  EXPECT_EQ(arr.capacity(), 64u);
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
}

TYPED_TEST(ArrayOpsTyped, ViewReadsConsistentSnapshot) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 2 * 64, {.block_size = 64});
  for (std::size_t i = 0; i < 2 * 64; ++i) arr.write(i, i * 3);
  {
    auto view = arr.view();
    EXPECT_EQ(view.capacity(), 2 * 64u);
    EXPECT_EQ(view.num_blocks(), 2u);
    for (std::size_t i = 0; i < view.capacity(); ++i) {
      EXPECT_EQ(view[i], i * 3);
    }
  }
  drain_qsbr();
}

TEST(ArrayOpsQsbr, ViewCapacityIsImmutableAcrossResize) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 64, {.block_size = 64});
  auto view = arr.view();
  arr.resize_add(64);
  EXPECT_EQ(view.capacity(), 64u);   // the pinned spine
  EXPECT_EQ(arr.capacity(), 128u);   // the live array
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST(ArrayOpsEbr, ViewBlocksWritersUntilDropped) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  RCUArray<std::uint64_t, EbrPolicy> arr(cluster, 64, {.block_size = 64});
  std::atomic<bool> resize_done{false};
  std::thread resizer;
  {
    auto view = arr.view();  // holds the read-side section open
    resizer = std::thread([&] {
      arr.resize_add(64);
      resize_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(resize_done.load()) << "resize reclaimed under a view";
  }
  resizer.join();
  EXPECT_TRUE(resize_done.load());
}

TYPED_TEST(ArrayOpsTyped, FillSetsEveryElement) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 6 * 32, {.block_size = 32});
  arr.fill(0xABCD);
  for (std::size_t i = 0; i < arr.capacity(); ++i) {
    ASSERT_EQ(arr.read(i), 0xABCDu);
  }
  drain_qsbr();
}

TYPED_TEST(ArrayOpsTyped, ForEachBlockRunsOnOwningLocale) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 6 * 32, {.block_size = 32});
  std::atomic<std::uint64_t> visited{0};
  std::atomic<std::uint64_t> misplaced{0};
  arr.for_each_block_local([&](std::size_t b, rcua::Block<std::uint64_t>& blk) {
    visited.fetch_add(1);
    if (rt::this_task().locale_id != blk.owner() ||
        blk.owner() != b % 3) {
      misplaced.fetch_add(1);
    }
  });
  EXPECT_EQ(visited.load(), 6u);
  EXPECT_EQ(misplaced.load(), 0u);
  drain_qsbr();
}

TYPED_TEST(ArrayOpsTyped, ReduceSumsAllElements) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 4 * 32, {.block_size = 32});
  for (std::size_t i = 0; i < arr.capacity(); ++i) arr.write(i, 2);
  const auto sum = arr.reduce(
      std::uint64_t{0},
      [](std::uint64_t acc, const std::uint64_t& v) { return acc + v; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 2 * 4 * 32u);
  drain_qsbr();
}

TYPED_TEST(ArrayOpsTyped, FillThenReduceRoundTrip) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 8 * 16, {.block_size = 16});
  arr.fill(5);
  const auto sum = arr.reduce(
      std::uint64_t{0},
      [](std::uint64_t acc, const std::uint64_t& v) { return acc + v; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 5 * 8 * 16u);
  drain_qsbr();
}
