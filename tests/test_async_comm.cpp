// Tier-1 property/invariant coverage for the async comm layer
// (rt::AsyncComm / rt::future, DESIGN.md §10):
//   * the per-destination in-flight window is never exceeded,
//   * every issued op completes exactly once (window=1 and window >> ops),
//   * RCUA_COMM_WINDOW / ctor-override precedence,
//   * async and sync bulk paths agree on both reclaimer policies,
//     including block-straddling ranges and a concurrently growing array,
//   * exception unwind cancels pending futures without delivering or
//     double-charging,
//   * window=1 virtual time is never worse than the synchronous model
//     (and exactly equal with a single remote destination), while the
//     default window pipelines a whole-array scan >= 5x.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/rcu_array.hpp"
#include "runtime/cluster.hpp"
#include "runtime/comm.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rt = rcua::rt;
namespace sim = rcua::sim;
using rcua::EbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;

namespace {

std::uint64_t pattern(std::size_t i) {
  return (static_cast<std::uint64_t>(i) * 2654435761u) ^ 0x9e3779b97f4a7c15ull;
}

}  // namespace

TEST(AsyncComm, WindowBoundIsNeverExceeded) {
  rt::CommLayer comm(4);
  rt::AsyncComm async(comm, 0, {.window = 3});
  ASSERT_EQ(async.window(), 3u);

  std::vector<int> delivered(30, 0);
  for (int i = 0; i < 30; ++i) {
    const std::uint32_t dst = 1 + static_cast<std::uint32_t>(i % 3);
    async.execute(dst, 1, [&delivered, i] { ++delivered[i]; });
    for (std::uint32_t d = 0; d < 4; ++d) {
      EXPECT_LE(async.inflight(d), 3u);
    }
  }
  EXPECT_EQ(async.stats().max_inflight, 3u);
  EXPECT_EQ(comm.async_max_inflight(0), 3u);

  async.drain();
  EXPECT_EQ(async.total_inflight(), 0u);
  // Exactly once: every op delivered once, none lost or duplicated.
  for (int i = 0; i < 30; ++i) EXPECT_EQ(delivered[i], 1) << "op " << i;
  EXPECT_EQ(async.stats().issued, 30u);
  EXPECT_EQ(async.stats().completed, 30u);
  EXPECT_EQ(async.stats().cancelled, 0u);
  EXPECT_EQ(comm.async_issued(0), 30u);
  EXPECT_EQ(comm.async_completed(0), 30u);
  // One `executes` per remote async execute — identical to sync counting.
  EXPECT_EQ(comm.executes(0), 30u);
}

TEST(AsyncComm, ExactlyOnceAtWindowOneAndWindowFarAboveOps) {
  rt::CommLayer comm(2);
  {
    // window=1: each issue force-retires the previous op (synchronous
    // degeneration), delivery order is issue order.
    rt::AsyncComm async(comm, 0, {.window = 1});
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      async.execute(1, 1, [&order, i] { order.push_back(i); });
      EXPECT_LE(async.inflight(1), 1u);
    }
    async.drain();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
    EXPECT_EQ(async.stats().issued, async.stats().completed);
  }
  {
    // window >> ops: nothing delivers until the drain, then everything
    // delivers exactly once, in issue order.
    rt::AsyncComm async(comm, 0, {.window = 1024});
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
      async.execute(1, 1, [&order, i] { order.push_back(i); });
    }
    EXPECT_TRUE(order.empty());
    EXPECT_EQ(async.inflight(1), 10u);
    async.drain();
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
    EXPECT_EQ(async.stats().issued, 10u);
    EXPECT_EQ(async.stats().completed, 10u);
  }
}

TEST(AsyncComm, WindowEnvKnobAndCtorPrecedence) {
  rt::CommLayer comm(2);
  ASSERT_EQ(setenv("RCUA_COMM_WINDOW", "5", 1), 0);
  {
    rt::AsyncComm from_env(comm, 0);
    EXPECT_EQ(from_env.window(), 5u);
    rt::AsyncComm from_ctor(comm, 0, {.window = 2});
    EXPECT_EQ(from_ctor.window(), 2u);  // explicit override beats env
  }
  ASSERT_EQ(unsetenv("RCUA_COMM_WINDOW"), 0);
  rt::AsyncComm defaulted(comm, 0);
  EXPECT_EQ(defaulted.window(), 32u);
}

TEST(AsyncComm, GetAndPutFuturesDeliverValues) {
  rt::CommLayer comm(2);
  rt::AsyncComm async(comm, 0, {.window = 4});

  std::uint64_t remote_slot = 42;  // "owned" by locale 1 in this model
  rt::future<std::uint64_t> g = async.get(1, &remote_slot);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(g.done());  // still in flight until waited on
  EXPECT_EQ(g.get(), 42u);
  EXPECT_TRUE(g.done());

  rt::future<void> p = async.put<std::uint64_t>(1, &remote_slot, 7);
  p.wait();
  EXPECT_EQ(remote_slot, 7u);

  EXPECT_EQ(comm.gets(0), 1u);
  EXPECT_EQ(comm.puts(0), 1u);

  // Local ops run inline, return ready futures, and are not
  // communication.
  std::uint64_t local_slot = 3;
  rt::future<std::uint64_t> lg = async.get(0, &local_slot);
  EXPECT_TRUE(lg.done());
  EXPECT_EQ(lg.get(), 3u);
  async.put<std::uint64_t>(0, &local_slot, 9).wait();
  EXPECT_EQ(local_slot, 9u);
  EXPECT_EQ(comm.gets(0), 1u);
  EXPECT_EQ(comm.puts(0), 1u);
}

TEST(AsyncComm, UnwindCancelsPendingWithoutDeliveringOrDoubleCharging) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.async_issue_ns = 500;
  m.remote_execute_ns = 60000;
  m.bulk_copy_ns_per_elem = 0;

  rt::CommLayer comm(2);
  int delivered = 0;
  sim::TaskClock clock;
  rt::future<void> orphan;
  try {
    sim::ClockScope scope(clock);
    rt::AsyncComm async(comm, 0, {.window = 16});
    for (int i = 0; i < 5; ++i) {
      orphan = async.execute(1, 0, [&delivered] { ++delivered; });
    }
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  // Nothing was delivered, every pending op was cancelled (never run
  // into a destroyed frame), and the only charges were the five issue
  // carve-outs — no completion latency was billed for cancelled ops.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(comm.async_issued(0), 5u);
  EXPECT_EQ(comm.async_completed(0), 0u);
  EXPECT_EQ(comm.async_cancelled(0), 5u);
  EXPECT_EQ(comm.async_issued(0),
            comm.async_completed(0) + comm.async_cancelled(0));
  EXPECT_EQ(clock.vtime_ns, 5 * 500u);
  // A future orphaned by the unwind reports cancellation rather than
  // dangling into the destroyed session.
  EXPECT_TRUE(orphan.cancelled());
  EXPECT_THROW(orphan.wait(), std::runtime_error);
}

namespace {

/// Async-vs-sync agreement sweep: fills via the async bulk path, then
/// compares async bulk_read, sync bulk_read, and element reads over
/// ranges chosen to straddle block and locale boundaries.
template <typename Policy>
void run_agreement_sweep() {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  constexpr std::size_t kBlock = 16;
  constexpr std::size_t kElems = 9 * kBlock;
  RCUArray<std::uint64_t, Policy> arr(cluster, kElems, {.block_size = kBlock});

  std::vector<std::uint64_t> vals(kElems);
  for (std::size_t i = 0; i < kElems; ++i) vals[i] = pattern(i);
  arr.bulk_write(0, {vals.data(), vals.size()}, {.async = true});

  const struct {
    std::size_t first, count;
  } ranges[] = {
      {0, kElems},            // whole array
      {0, 1},                 // single element
      {kBlock - 1, 2},        // straddles a block boundary
      {kBlock - 1, kBlock + 2},
      {3 * kBlock - 5, 2 * kBlock},  // straddles a locale boundary
      {7, 5 * kBlock + 3},           // many blocks, odd offsets
      {kElems - kBlock - 1, kBlock + 1},  // tail
  };
  for (const auto& r : ranges) {
    const std::vector<std::uint64_t> sync_out =
        arr.bulk_read(r.first, r.count, {.async = false});
    for (const std::size_t window : {std::size_t{1}, std::size_t{4},
                                     std::size_t{64}}) {
      const std::vector<std::uint64_t> async_out = arr.bulk_read(
          r.first, r.count, {.async = true, .window = window});
      ASSERT_EQ(async_out, sync_out)
          << "range [" << r.first << ", +" << r.count << ") window "
          << window;
    }
    for (std::size_t k = 0; k < r.count; ++k) {
      ASSERT_EQ(sync_out[k], pattern(r.first + k));
    }
  }

  // Concurrently growing array: a writer keeps appending blocks while
  // readers sweep the original range async — the pinned snapshot plus
  // in-section drain must keep every read consistent.
  std::thread grower([&arr] {
    for (int i = 0; i < 24; ++i) arr.resize_add(kBlock);
  });
  for (int round = 0; round < 50; ++round) {
    const std::vector<std::uint64_t> out =
        arr.bulk_read(0, kElems, {.async = true});
    for (std::size_t i = 0; i < kElems; ++i) {
      ASSERT_EQ(out[i], pattern(i)) << "round " << round << " elem " << i;
    }
  }
  grower.join();
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

}  // namespace

TEST(AsyncComm, AsyncMatchesSyncOnEbr) { run_agreement_sweep<EbrPolicy>(); }

TEST(AsyncComm, AsyncMatchesSyncOnQsbr) { run_agreement_sweep<QsbrPolicy>(); }

namespace {

/// Virtual time of one whole-array bulk_read under `opts` on a fresh
/// clock. The scan is deterministic, so these are exact replays.
template <typename ArrT>
std::uint64_t scan_vtime(ArrT& arr, std::size_t elems,
                         typename ArrT::BulkOptions opts) {
  std::vector<std::uint64_t> out(elems);
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.bulk_read(0, elems, out.data(), opts);
  }
  return clock.vtime_ns;
}

}  // namespace

TEST(AsyncComm, WindowOneMatchesSyncVirtualTimeExactly) {
  // Single remote destination (2 locales): window=1 must degenerate to
  // EXACTLY the synchronous charges — the issue cost is a carve-out of
  // the latency, not an addition (DESIGN.md §10).
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kElems = 16 * kBlock;
  // Cache pinned off: a cache-enabled first scan charges fills and the
  // second scan hits, so the sync/async-w1 charge sequences this test
  // EXPECT_EQs would no longer be comparable under the nightly
  // RCUA_CACHE_CAPACITY_BYTES sweep.
  RCUArray<std::uint64_t, QsbrPolicy> arr(
      cluster, kElems,
      {.block_size = kBlock, .cache_capacity_bytes = 0});
  const std::uint64_t sync_ns =
      scan_vtime(arr, kElems, {.async = false});
  const std::uint64_t async1_ns =
      scan_vtime(arr, kElems, {.async = true, .window = 1});
  EXPECT_EQ(async1_ns, sync_ns);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST(AsyncComm, DefaultWindowPipelinesWholeArrayScanAtLeast5x) {
  // The tentpole acceptance number: at the default window the async
  // layer overlaps launch latency, wire time, and remote-side span
  // processing across destinations, >= 5x over the PR 4 synchronous
  // bulk baseline; window=1 is never slower than sync.
  rt::Cluster cluster({.num_locales = 8, .workers_per_locale = 1});
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kElems = 64 * kBlock;
  // Cache pinned off so the speedup measured is the async pipeline's,
  // not the block cache's (see WindowOneMatchesSyncVirtualTimeExactly).
  RCUArray<std::uint64_t, QsbrPolicy> arr(
      cluster, kElems,
      {.block_size = kBlock, .cache_capacity_bytes = 0});
  const std::uint64_t sync_ns =
      scan_vtime(arr, kElems, {.async = false});
  const std::uint64_t async_ns =
      scan_vtime(arr, kElems, {.async = true, .window = 32});
  const std::uint64_t async1_ns =
      scan_vtime(arr, kElems, {.async = true, .window = 1});
  EXPECT_GE(sync_ns, 5 * async_ns)
      << "sync " << sync_ns << "ns vs async " << async_ns << "ns";
  EXPECT_LE(async1_ns, sync_ns);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}
