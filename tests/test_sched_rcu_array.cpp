// Schedule-exploration tests for RCUArray's resize protocol (Algorithm 3)
// under both reclamation policies.
//
// Lemma 6 is the property under test: a reference obtained from index()
// before a resize still reads and writes the same element afterwards, even
// though the resize reclaims the old spine — because snapshot clones
// recycle the block pointers. Lemma 1 (at most two live spines per locale
// under EBR) is asserted at every explored interleaving point.
//
// The Cluster (and its task pool) is shared across schedules; the array
// and, for QSBR, the registry/domain are rebuilt per schedule. Arrays are
// constructed empty so the *scheduled* writer task performs every resize:
// that routes all coforall bodies through the deterministic scheduler and
// keeps pool workers out of the per-schedule QSBR domain.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/rcu_array.hpp"
#include "core/snapshot.hpp"
#include "reclaim/qsbr.hpp"
#include "runtime/cluster.hpp"
#include "runtime/thread_registry.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::EbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;
using rcua::Snapshot;
using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::Scheduler;

constexpr std::uint32_t kLocales = 2;
constexpr std::size_t kBlock = 4;

rcua::rt::ClusterConfig small_cluster() {
  rcua::rt::ClusterConfig cfg;
  cfg.num_locales = kLocales;
  cfg.workers_per_locale = 1;
  return cfg;
}

/// Reader side of the Lemma 6 property, shared by both policies: take a
/// reference before the concurrent resize, write through it, and verify
/// identity and value through fresh index() calls while the resize runs.
template <typename Array>
void lemma6_reader(Array& arr, std::atomic<bool>& ready) {
  rcua::testing::sched_await("test.wait_ready", [&ready] {
    return ready.load(std::memory_order_seq_cst);
  });
  int& ref = arr.index(1);
  ref = 42;
  rcua::testing::sched_point("test.reader.holding");
  int& again = arr.index(1);
  if (&again != &ref) {
    rcua::testing::sched_violation(
        "Lemma 6 violated: index(1) moved across a concurrent resize");
    return;
  }
  if (again != 42) {
    rcua::testing::sched_violation(
        "Lemma 6 violated: write through a pre-resize reference was lost");
    return;
  }
  ref = 43;  // write through the old reference after the resize...
  rcua::testing::sched_point("test.reader.rewrote");
  if (arr.index(1) != 43) {  // ...must be visible through the new spine
    rcua::testing::sched_violation(
        "Lemma 6 violated: post-resize write through old reference lost");
  }
}

TEST(SchedRcuArray, Lemma6UnderEbrPolicy) {
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 400;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [&cluster](Scheduler& sched) {
        struct State {
          explicit State(rcua::rt::Cluster& c)
              : arr(c, 0, {.block_size = kBlock}) {}
          RCUArray<int, EbrPolicy> arr;
          std::atomic<bool> ready{false};
        };
        auto st = std::make_shared<State>(cluster);
        sched.spawn("reader", [st] {
          lemma6_reader(st->arr, st->ready);
          // Lemma 1: grow-only resizes keep at most two spines live per
          // locale (old + freshly published, until the drain completes).
          if (Snapshot<int>::live_count() > 2u * kLocales) {
            rcua::testing::sched_violation(
                "Lemma 1 violated: more than two live spines per locale");
          }
        });
        sched.spawn("writer", [st] {
          st->arr.resize_add(kBlock);  // first block: element 1 exists
          st->ready.store(true, std::memory_order_seq_cst);
          st->arr.resize_add(kBlock);  // the resize raced against the ref
        });
        sched.on_finish([st](Scheduler& s) {
          // EBR reclaims synchronously inside resize: only the current
          // spine survives on each locale.
          if (Snapshot<int>::live_count() != kLocales) {
            s.violation("old spines not reclaimed after EBR resize");
          }
          if (st->arr.capacity() != 2 * kBlock) {
            s.violation("resize_add lost blocks");
          }
        });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
  EXPECT_EQ(Snapshot<int>::live_count(), 0u);
}

TEST(SchedRcuArray, Lemma6UnderQsbrPolicy) {
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 400;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [&cluster](Scheduler& sched) {
        struct State {
          explicit State(rcua::rt::Cluster& c)
              : arr(c, 0, {.block_size = kBlock, .qsbr = &qsbr}) {}
          rcua::rt::ThreadRegistry registry;
          rcua::reclaim::Qsbr qsbr{registry};
          RCUArray<int, QsbrPolicy> arr;
          std::atomic<bool> ready{false};
        };
        auto st = std::make_shared<State>(cluster);
        sched.spawn("reader", [st] { lemma6_reader(st->arr, st->ready); });
        sched.spawn("writer", [st] {
          st->arr.resize_add(kBlock);
          st->ready.store(true, std::memory_order_seq_cst);
          st->arr.resize_add(kBlock);
        });
        sched.on_finish([st](Scheduler& s) {
          if (st->arr.capacity() != 2 * kBlock) {
            s.violation("resize_add lost blocks");
          }
          // All tasks have been joined (their records no longer hold
          // references), so draining every defer list is safe; afterwards
          // only the live spine per locale remains.
          st->qsbr.flush_unsafe();
          if (Snapshot<int>::live_count() != kLocales) {
            s.violation("old spines leaked after QSBR flush");
          }
        });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
  EXPECT_EQ(Snapshot<int>::live_count(), 0u);
}

// The shrink extension under QSBR: a reference into a removed block stays
// usable until its holder checkpoints, because the dropped blocks are
// deferred through the same QSBR machinery as spines (this drives the
// rcua.resize.recycle_block schedule points).
TEST(SchedRcuArray, RemoveDefersBlockReclamationUnderQsbr) {
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 300;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [&cluster](Scheduler& sched) {
        struct State {
          explicit State(rcua::rt::Cluster& c)
              : arr(c, 0, {.block_size = kBlock, .qsbr = &qsbr}) {}
          rcua::rt::ThreadRegistry registry;
          rcua::reclaim::Qsbr qsbr{registry};
          RCUArray<int, QsbrPolicy> arr;
          std::atomic<bool> ready{false};
          std::atomic<bool> ref_taken{false};
        };
        auto st = std::make_shared<State>(cluster);
        sched.spawn("reader", [st] {
          rcua::testing::sched_await("test.wait_ready", [st] {
            return st->ready.load(std::memory_order_seq_cst);
          });
          // Reference into the block the writer is about to drop. Taken
          // before the remove (index() into removed space would be out of
          // bounds); the interesting interleavings are the *uses* of the
          // reference against the remove's publish/defer steps.
          int& ref = st->arr.index(kBlock + 1);
          ref = 7;
          st->ref_taken.store(true, std::memory_order_seq_cst);
          rcua::testing::sched_point("test.reader.holding_removed");
          if (ref != 7) {
            rcua::testing::sched_violation(
                "reference into removed block corrupted before checkpoint");
          }
          rcua::testing::sched_point("test.reader.still_holding");
          ref = 8;  // the block must still be writable until we quiesce
          if (ref != 8) {
            rcua::testing::sched_violation(
                "reference into removed block corrupted before checkpoint");
          }
        });
        sched.spawn("writer", [st] {
          st->arr.resize_add(2 * kBlock);
          st->ready.store(true, std::memory_order_seq_cst);
          rcua::testing::sched_await("test.wait_ref_taken", [st] {
            return st->ref_taken.load(std::memory_order_seq_cst);
          });
          st->arr.resize_remove(kBlock);  // drops the reader's block
        });
        sched.on_finish([st](Scheduler& s) {
          if (st->arr.capacity() != kBlock) {
            s.violation("resize_remove kept the wrong capacity");
          }
          st->qsbr.flush_unsafe();
        });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(Snapshot<int>::live_count(), 0u);
}

}  // namespace
