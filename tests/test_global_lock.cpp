// Tests for the cluster-wide WriteLock (GlobalLock).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/global_lock.hpp"
#include "runtime/this_task.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rt = rcua::rt;
namespace sim = rcua::sim;

TEST(GlobalLock, MutualExclusion) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rt::GlobalLock lock(cluster);
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        std::lock_guard<rt::GlobalLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 18000u);
  EXPECT_EQ(lock.acquisitions(), 18000u);
}

TEST(GlobalLock, TryLock) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rt::GlobalLock lock(cluster);
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(GlobalLock, TracksRemoteAcquisitions) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rt::GlobalLock lock(cluster, /*owner_locale=*/0);
  {
    std::lock_guard<rt::GlobalLock> guard(lock);  // from "locale 0"
  }
  {
    rt::LocaleScope scope(cluster, 1);
    std::lock_guard<rt::GlobalLock> guard(lock);  // remote
  }
  EXPECT_EQ(lock.acquisitions(), 2u);
  EXPECT_EQ(lock.remote_acquisitions(), 1u);
}

TEST(GlobalLock, CriticalSectionSerializesInVirtualTime) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.lock_handoff_ns = 100;
  m.remote_stream_ns = 0;
  m.atomic_rmw_ns = 0;

  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rt::GlobalLock lock(cluster);

  sim::TaskClock a, b;
  {
    sim::ClockScope scope(a);
    lock.lock();
    sim::charge(10000);  // long critical section
    lock.unlock();
  }
  {
    sim::ClockScope scope(b);
    lock.lock();  // must queue behind a's whole CS
    lock.unlock();
  }
  EXPECT_GE(b.vtime_ns, a.vtime_ns);
}

TEST(GlobalLock, RemoteHandoffCostsMore) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.lock_handoff_ns = 100;
  m.remote_stream_ns = 900;
  m.atomic_rmw_ns = 1;

  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rt::GlobalLock local_lock(cluster, 0);
  rt::GlobalLock remote_lock(cluster, 1);  // owner is the other locale

  sim::TaskClock local_clock, remote_clock;
  {
    sim::ClockScope scope(local_clock);
    std::lock_guard<rt::GlobalLock> guard(local_lock);
  }
  {
    sim::ClockScope scope(remote_clock);
    std::lock_guard<rt::GlobalLock> guard(remote_lock);
  }
  EXPECT_GT(remote_clock.vtime_ns, local_clock.vtime_ns);
}
