// Tier-1 coverage for the per-locale remote-block cache (rt::BlockCache
// under RCUArray, DESIGN.md §11):
//   * RCUA_CACHE_CAPACITY_BYTES / ctor-override precedence, default off,
//   * capacity 0 is bit-identical to the uncached path (comm counters
//     AND virtual time), with no cache counter ever moving,
//   * read-after-remote-write never returns stale data, on both
//     reclamation policies and from both the reading and owning locale,
//   * a repeated hot-block scan records exactly one fill and then zero
//     further remote operations (the O(ops) -> O(hot blocks) claim, as
//     CommStats arithmetic),
//   * capacity-of-one-block thrash: eviction accounting sums to the
//     inserted bytes (ledger invariant), and entries never exceed what
//     fits,
//   * agreement with the cache off under a concurrently growing array,
//   * hot-set reads with the cache on are >= 5x faster in virtual time
//     than the uncached remote path (the tentpole acceptance number).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/rcu_array.hpp"
#include "reclaim/qsbr.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/cluster.hpp"
#include "runtime/comm.hpp"
#include "sim/task_clock.hpp"

namespace rt = rcua::rt;
namespace sim = rcua::sim;
using rcua::EbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;

namespace {

constexpr std::size_t kBlock = 64;
constexpr std::size_t kBlockBytes = kBlock * sizeof(std::uint64_t);

std::uint64_t pattern(std::size_t i) {
  return (static_cast<std::uint64_t>(i) * 2654435761u) ^
         0x9e3779b97f4a7c15ull;
}

template <typename ArrT>
void fill_pattern(ArrT& arr, std::size_t elems) {
  std::vector<std::uint64_t> vals(elems);
  for (std::size_t i = 0; i < elems; ++i) vals[i] = pattern(i);
  arr.bulk_write(0, std::span<const std::uint64_t>(vals.data(), elems));
}

/// Sum of a CommStats counter over every locale, as one number the
/// parity tests can EXPECT_EQ on.
struct CommTotals {
  std::uint64_t gets, puts, executes, hits, misses, fills, evictions;
  bool operator==(const CommTotals&) const = default;
};

CommTotals totals(rt::CommLayer& comm) {
  return CommTotals{comm.total_gets(),        comm.total_puts(),
                    comm.total_executes(),    comm.total_cache_hits(),
                    comm.total_cache_misses(), comm.total_cache_fills(),
                    comm.total_cache_evictions()};
}

}  // namespace

TEST(BlockCache, EnvKnobAndCtorPrecedence) {
  rt::CommLayer comm(2);
  ASSERT_EQ(setenv("RCUA_CACHE_CAPACITY_BYTES", "4096", 1), 0);
  EXPECT_EQ(rt::BlockCache::capacity_from_env(), 4096u);
  {
    rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
    RCUArray<std::uint64_t, QsbrPolicy> from_env(cluster, 0,
                                                 {.block_size = kBlock});
    EXPECT_EQ(from_env.cache_capacity_bytes(), 4096u);
    EXPECT_TRUE(from_env.cache_enabled());
    RCUArray<std::uint64_t, QsbrPolicy> from_ctor(
        cluster, 0, {.block_size = kBlock, .cache_capacity_bytes = 0});
    EXPECT_EQ(from_ctor.cache_capacity_bytes(), 0u);  // override beats env
    EXPECT_FALSE(from_ctor.cache_enabled());
  }
  ASSERT_EQ(unsetenv("RCUA_CACHE_CAPACITY_BYTES"), 0);
  EXPECT_EQ(rt::BlockCache::capacity_from_env(), 0u);  // default: off
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST(BlockCache, ZeroCapacityIsBitIdenticalToUncached) {
  // The cache-off parity carve-out: with capacity 0 every read takes
  // exactly the PR 6 path — same comm counters, same virtual time, and
  // no cache counter ever moves. Two identical clusters run the same
  // workload; one array pins capacity 0 explicitly, the other gets 0
  // from the (unset) environment default.
  ASSERT_EQ(unsetenv("RCUA_CACHE_CAPACITY_BYTES"), 0);
  constexpr std::size_t kElems = 8 * kBlock;
  auto run = [&](std::size_t explicit_capacity_or_env) ->
      std::pair<CommTotals, std::uint64_t> {
    rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 1});
    typename RCUArray<std::uint64_t, QsbrPolicy>::Options o;
    o.block_size = kBlock;
    if (explicit_capacity_or_env == 0) o.cache_capacity_bytes = 0;
    RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, kElems, o);
    fill_pattern(arr, kElems);
    cluster.comm().reset();
    sim::TaskClock clock;
    std::uint64_t sum = 0;
    {
      sim::ClockScope scope(clock);
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < kElems; i += 7) sum += arr.read(i);
      }
    }
    EXPECT_NE(sum, 0u);
    return {totals(cluster.comm()), clock.vtime_ns};
  };
  const auto [pinned_counters, pinned_ns] = run(0);
  const auto [env_counters, env_ns] = run(1);  // env default, also off
  EXPECT_EQ(pinned_counters, env_counters);
  EXPECT_EQ(pinned_ns, env_ns);
  EXPECT_EQ(pinned_counters.hits, 0u);
  EXPECT_EQ(pinned_counters.misses, 0u);
  EXPECT_EQ(pinned_counters.fills, 0u);
  EXPECT_EQ(pinned_counters.evictions, 0u);
  EXPECT_GT(pinned_counters.gets, 0u);  // the uncached path counts GETs
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

namespace {

template <typename Policy>
void run_read_after_write_never_stale() {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  constexpr std::size_t kElems = 2 * kBlock;
  RCUArray<std::uint64_t, Policy> arr(
      cluster, kElems, {.block_size = kBlock, .cache_capacity_bytes = 1u << 20});
  fill_pattern(arr, kElems);
  // Element in block 1, owned by locale 1 — remote from this thread.
  const std::size_t idx = kBlock + 3;
  ASSERT_EQ(arr.block_owner(idx), 1u);

  ASSERT_EQ(arr.read(idx), pattern(idx));  // fill
  ASSERT_EQ(arr.read(idx), pattern(idx));  // hit

  // Writer on the READING locale: write-through + generation bump.
  arr.write(idx, 111);
  EXPECT_EQ(arr.read(idx), 111u) << "stale cached copy after local write";

  // Writer on the OWNING locale: the bump still invalidates locale 0's
  // copy (the stamp lives with the block, not with any one cache).
  cluster.on(1, [&] { arr.write(idx, 222); });
  EXPECT_EQ(arr.read(idx), 222u) << "stale cached copy after remote write";

  // Bulk writes bump too (per-span, after the stores land).
  std::vector<std::uint64_t> vals(kBlock, 333);
  arr.bulk_write(kBlock, std::span<const std::uint64_t>(vals.data(),
                                                        vals.size()));
  EXPECT_EQ(arr.read(idx), 333u) << "stale cached copy after bulk write";
  if constexpr (Policy::is_qsbr) {
    rcua::reclaim::Qsbr::global().flush_unsafe();
  }
}

}  // namespace

TEST(BlockCache, ReadAfterWriteNeverStaleEbr) {
  run_read_after_write_never_stale<EbrPolicy>();
}

TEST(BlockCache, ReadAfterWriteNeverStaleQsbr) {
  run_read_after_write_never_stale<QsbrPolicy>();
}

TEST(BlockCache, HotBlockScanFillsOnceThenZeroRemoteOps) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  constexpr std::size_t kElems = 2 * kBlock;
  RCUArray<std::uint64_t, QsbrPolicy> arr(
      cluster, kElems, {.block_size = kBlock, .cache_capacity_bytes = 1u << 20});
  fill_pattern(arr, kElems);

  // N reads of one remote block: exactly one miss -> one fill -> one
  // remote execute, then N-1 hits and nothing else on the wire.
  constexpr std::uint64_t kReads = 100;
  cluster.comm().reset();
  for (std::uint64_t r = 0; r < kReads; ++r) {
    ASSERT_EQ(arr.read(kBlock + (r % kBlock)),
              pattern(kBlock + (r % kBlock)));
  }
  rt::CommLayer& comm = cluster.comm();
  EXPECT_EQ(comm.total_cache_misses(), 1u);
  EXPECT_EQ(comm.total_cache_fills(), 1u);
  EXPECT_EQ(comm.total_executes(), 1u);  // the fill IS the remote op
  EXPECT_EQ(comm.total_cache_hits(), kReads - 1);
  EXPECT_EQ(comm.total_gets(), 0u);
  EXPECT_EQ(comm.total_puts(), 0u);
  EXPECT_EQ(comm.total_cache_evictions(), 0u);

  // Steady state: the block is resident; a second scan is all hits and
  // ZERO remote operations of any kind.
  comm.reset();
  for (std::uint64_t r = 0; r < kReads; ++r) {
    ASSERT_EQ(arr.read(kBlock + (r % kBlock)),
              pattern(kBlock + (r % kBlock)));
  }
  EXPECT_EQ(comm.total_cache_hits(), kReads);
  EXPECT_EQ(comm.total_cache_misses(), 0u);
  EXPECT_EQ(comm.total_cache_fills(), 0u);
  EXPECT_EQ(comm.total_gets() + comm.total_puts() + comm.total_executes(),
            0u);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST(BlockCache, CapacityOneBlockThrashAndLedgerBalances) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  constexpr std::size_t kElems = 6 * kBlock;
  // Exactly one block fits; blocks 1, 3, 5 are remote (round-robin).
  RCUArray<std::uint64_t, QsbrPolicy> arr(
      cluster, kElems,
      {.block_size = kBlock, .cache_capacity_bytes = kBlockBytes});
  fill_pattern(arr, kElems);
  cluster.comm().reset();

  // Alternate between two remote blocks: every read after the first of
  // a pair evicts the other block's entry.
  constexpr int kRounds = 10;
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_EQ(arr.read(1 * kBlock), pattern(1 * kBlock));
    ASSERT_EQ(arr.read(3 * kBlock), pattern(3 * kBlock));
  }
  rt::CommLayer& comm = cluster.comm();
  EXPECT_EQ(comm.total_cache_misses(), 2u * kRounds);
  EXPECT_EQ(comm.total_cache_fills(), 2u * kRounds);
  EXPECT_EQ(comm.total_cache_hits(), 0u);
  EXPECT_EQ(comm.total_cache_evictions(), 2u * kRounds - 1);

  const auto cs = arr.cache_stats_at(0);
  EXPECT_EQ(cs.inserted_bytes, 2u * kRounds * kBlockBytes);
  // Ledger: inserted == evicted + resident, and exactly one block is
  // resident at capacity kBlockBytes.
  EXPECT_EQ(cs.inserted_bytes,
            cs.evicted_bytes + arr.cache_bytes_used_at(0));
  EXPECT_EQ(arr.cache_bytes_used_at(0), kBlockBytes);
  EXPECT_EQ(arr.cache_entries_at(0), 1u);

  // An entry larger than the whole cache is refused outright: a tiny
  // capacity means no fill is ever inserted (but reads still work).
  RCUArray<std::uint64_t, QsbrPolicy> tiny(
      cluster, kElems, {.block_size = kBlock, .cache_capacity_bytes = 8});
  fill_pattern(tiny, kElems);
  ASSERT_EQ(tiny.read(kBlock), pattern(kBlock));
  ASSERT_EQ(tiny.read(kBlock), pattern(kBlock));
  EXPECT_EQ(tiny.cache_entries_at(0), 0u);
  EXPECT_EQ(tiny.cache_bytes_used_at(0), 0u);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST(BlockCache, AgreesWithCacheOffUnderConcurrentResizeAdd) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 2});
  constexpr std::size_t kElems = 8 * kBlock;
  RCUArray<std::uint64_t, QsbrPolicy> arr(
      cluster, kElems, {.block_size = kBlock, .cache_capacity_bytes = 1u << 20});
  fill_pattern(arr, kElems);

  std::thread grower([&arr] {
    for (int i = 0; i < 16; ++i) arr.resize_add(kBlock);
  });
  // Cached reads and uncached bulk reads of the original range must
  // agree with the pattern throughout the growth (resizes bump the
  // snapshot version, so every pinned-version tag mismatch refills).
  for (int round = 0; round < 50; ++round) {
    for (std::size_t i = 0; i < kElems; i += kBlock / 2) {
      ASSERT_EQ(arr.read(i), pattern(i)) << "round " << round;
    }
    const std::vector<std::uint64_t> out = arr.bulk_read(0, kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      ASSERT_EQ(out[i], pattern(i)) << "round " << round << " elem " << i;
    }
  }
  grower.join();
  // Ledger balances on every locale after the dust settles.
  for (std::uint32_t l = 0; l < 4; ++l) {
    const auto cs = arr.cache_stats_at(l);
    EXPECT_EQ(cs.inserted_bytes,
              cs.evicted_bytes + arr.cache_bytes_used_at(l));
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST(BlockCache, HotSetReadsAtLeast5xFasterThanUncached) {
  // The tentpole acceptance number: a hot-set read workload (the skew
  // bench's regime) drops from O(ops) remote traffic to O(hot blocks)
  // fills, and the virtual-time speedup is >= 5x.
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  constexpr std::size_t kElems = 16 * kBlock;
  constexpr std::size_t kHotBlocks = 4;  // blocks 1,3,5,7: all remote
  constexpr std::uint64_t kReads = 4000;

  auto measure = [&](std::size_t capacity) -> std::uint64_t {
    RCUArray<std::uint64_t, QsbrPolicy> arr(
        cluster, kElems,
        {.block_size = kBlock, .cache_capacity_bytes = capacity});
    fill_pattern(arr, kElems);
    cluster.comm().reset();
    sim::TaskClock clock;
    std::uint64_t sum = 0;
    {
      sim::ClockScope scope(clock);
      for (std::uint64_t r = 0; r < kReads; ++r) {
        // Rotate through a few remote "hot" blocks, like a Zipfian head
        // (odd block indices land on locale 1 under 2-locale round-robin).
        const std::size_t blk = 1 + 2 * (r % kHotBlocks);
        sum += arr.read(blk * kBlock + (r % kBlock));
      }
    }
    EXPECT_NE(sum, 0u);
    return clock.vtime_ns;
  };

  const std::uint64_t off_ns = measure(0);
  const std::uint64_t off_remote = cluster.comm().total_gets() +
                                   cluster.comm().total_executes();
  const std::uint64_t on_ns = measure(1u << 20);
  const std::uint64_t on_remote = cluster.comm().total_gets() +
                                  cluster.comm().total_executes();

  EXPECT_GE(off_ns, 5 * on_ns)
      << "uncached " << off_ns << "ns vs cached " << on_ns << "ns";
  // O(ops) -> O(hot blocks): the uncached run pays per read, the cached
  // run pays one fill per hot block.
  EXPECT_GE(off_remote, kReads);
  EXPECT_EQ(on_remote, kHotBlocks);
  EXPECT_EQ(cluster.comm().total_cache_fills(), kHotBlocks);
  EXPECT_EQ(cluster.comm().total_cache_hits(), kReads - kHotBlocks);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}
