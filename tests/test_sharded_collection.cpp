// Functional tests for the sharded service layer (DESIGN.md §14):
// block-cyclic routing, growth dealt across shards, RCU-published
// mapping-table remaps, live migration through RCUArray::rehome, the
// PressureMonitor rebalancing policy, and the chaos scenario — a
// FaultPlan kills the destination locale mid-migration and the move
// must roll back with no lost or duplicated elements.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/fault_plan.hpp"
#include "service/pressure.hpp"
#include "service/sharded_collection.hpp"
#include "util/env.hpp"

using rcua::EbrPolicy;
using rcua::HazardErasPolicy;
using rcua::IbrPolicy;
using rcua::QsbrPolicy;
namespace rt = rcua::rt;
namespace svc = rcua::svc;

namespace {

template <typename Policy>
struct ShardedTyped : public ::testing::Test {
  using Coll = svc::ShardedCollection<std::uint64_t, Policy>;
  using Monitor = svc::PressureMonitor<std::uint64_t, Policy>;
};

using Policies =
    ::testing::Types<EbrPolicy, QsbrPolicy, IbrPolicy, HazardErasPolicy>;
TYPED_TEST_SUITE(ShardedTyped, Policies);

void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

}  // namespace

TYPED_TEST(ShardedTyped, ConstructionAndInitialPlacement) {
  const std::uint64_t maps_before = svc::ShardMap::live_count();
  {
    rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
    typename TestFixture::Coll coll(cluster, 0,
                                    {.block_size = 64, .shard_count = 4});
    EXPECT_EQ(coll.shard_count(), 4u);
    EXPECT_EQ(coll.block_size(), 64u);
    EXPECT_EQ(coll.capacity(), 0u);
    EXPECT_EQ(coll.num_blocks(), 0u);
    EXPECT_EQ(coll.map_version(), 0u);
    // Balanced block-cyclic start: shard s homed on locale s % L.
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(coll.home_of(s), s % 2);
      EXPECT_EQ(coll.shard(s).home_locale(), s % 2);
    }
  }
  drain_qsbr();
  // The mapping tables are the Snapshot::live_count analog: one table
  // per locale, all reclaimed by scope exit.
  EXPECT_EQ(svc::ShardMap::live_count(), maps_before);
}

TYPED_TEST(ShardedTyped, InvalidOptionsThrow) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  using Coll = typename TestFixture::Coll;
  EXPECT_THROW(Coll(cluster, 0, {.block_size = 0}), std::invalid_argument);
}

TYPED_TEST(ShardedTyped, ShardCountDefaultsFromEnv) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  {
    typename TestFixture::Coll coll(cluster);
    EXPECT_EQ(coll.shard_count(), cluster.num_locales());
  }
  ::setenv("RCUA_SHARD_COUNT", "16", /*overwrite=*/1);
  {
    typename TestFixture::Coll coll(cluster);
    EXPECT_EQ(coll.shard_count(), 16u);
  }
  ::unsetenv("RCUA_SHARD_COUNT");
  drain_qsbr();
}

TYPED_TEST(ShardedTyped, GrowthDealsBlocksCyclically) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Coll coll(cluster, 0,
                                  {.block_size = 64, .shard_count = 3});
  coll.resize_add(5 * 64);
  EXPECT_EQ(coll.num_blocks(), 5u);
  EXPECT_EQ(coll.capacity(), 5 * 64u);
  // Blocks 0..4 deal 0,1,2,0,1 — every shard within one block of even.
  EXPECT_EQ(coll.shard(0).num_blocks(), 2u);
  EXPECT_EQ(coll.shard(1).num_blocks(), 2u);
  EXPECT_EQ(coll.shard(2).num_blocks(), 1u);
  // Growth resumes the deal where it left off (global block 5 -> shard 2).
  coll.resize_add(1);
  EXPECT_EQ(coll.num_blocks(), 6u);
  EXPECT_EQ(coll.shard(2).num_blocks(), 2u);
  drain_qsbr();
}

TYPED_TEST(ShardedTyped, WriteReadRoundTripsAcrossShards) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Coll coll(cluster, 256,
                                  {.block_size = 32, .shard_count = 4});
  ASSERT_EQ(coll.capacity(), 256u);
  for (std::size_t i = 0; i < 256; ++i) coll.write(i, i * 3 + 1);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(coll.read(i), i * 3 + 1);
    EXPECT_EQ(coll.index(i), i * 3 + 1);
    EXPECT_EQ(coll[i], i * 3 + 1);
    EXPECT_EQ(coll.at(i), i * 3 + 1);
  }
  EXPECT_THROW(coll.at(256), std::out_of_range);
  drain_qsbr();
}

TYPED_TEST(ShardedTyped, BulkAgreesWithElementOps) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Coll coll(cluster, 10 * 32,
                                  {.block_size = 32, .shard_count = 3});
  std::vector<std::uint64_t> values(7 * 32 + 5);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i ^ 0x5aa5u;
  // Write a shard-straddling, block-misaligned range in bulk...
  coll.bulk_write(/*first=*/17, values);
  // ...and read it back both per element and through both bulk overloads.
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(coll.read(17 + i), values[i]);
  }
  const std::vector<std::uint64_t> back =
      coll.bulk_read(17, values.size());
  EXPECT_EQ(back, values);
  std::vector<std::uint64_t> out(values.size(), 0);
  coll.bulk_read(17, values.size(), out.data());
  EXPECT_EQ(out, values);
  EXPECT_THROW((void)coll.bulk_read(coll.capacity() - 1, 2),
               std::out_of_range);
  drain_qsbr();
}

TYPED_TEST(ShardedTyped, RoutingCountsElementOps) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  typename TestFixture::Coll coll(cluster, 64,
                                  {.block_size = 32, .shard_count = 2});
  const std::uint64_t before = coll.routed();
  for (std::size_t i = 0; i < 10; ++i) coll.write(i, i);
  for (std::size_t i = 0; i < 10; ++i) (void)coll.read(i);
  EXPECT_EQ(coll.routed() - before, 20u);
  drain_qsbr();
}

TYPED_TEST(ShardedTyped, RemapPublishesNewMappingTable) {
  const std::uint64_t maps_before = svc::ShardMap::live_count();
  {
    rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
    typename TestFixture::Coll coll(cluster, 4 * 32,
                                    {.block_size = 32, .shard_count = 2});
    for (std::size_t i = 0; i < coll.capacity(); ++i) coll.write(i, i + 9);
    ASSERT_EQ(coll.home_of(0), 0u);
    coll.remap(0, 1);
    EXPECT_EQ(coll.home_of(0), 1u);
    EXPECT_EQ(coll.map_version(), 1u);
    EXPECT_EQ(coll.remaps(), 1u);
    // A pure remap moves no data: every element still reads through the
    // new route (stale or fresh, the route resolves the same blocks).
    for (std::size_t i = 0; i < coll.capacity(); ++i) {
      EXPECT_EQ(coll.read(i), i + 9);
    }
    EXPECT_THROW(coll.remap(2, 0), std::invalid_argument);
  }
  drain_qsbr();
  EXPECT_EQ(svc::ShardMap::live_count(), maps_before);
}

TYPED_TEST(ShardedTyped, MigratePreservesEveryElement) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Coll coll(cluster, 4 * 32,
                                  {.block_size = 32,
                                   .shard_count = 2,
                                   .cache_capacity_bytes = 0});
  for (std::size_t i = 0; i < coll.capacity(); ++i) coll.write(i, i * 7 + 3);
  ASSERT_EQ(coll.home_of(0), 0u);

  ASSERT_TRUE(coll.migrate(0, 1));

  EXPECT_EQ(coll.home_of(0), 1u);
  EXPECT_EQ(coll.shard(0).home_locale(), 1u);
  EXPECT_EQ(coll.shard(0).rehomes(), 1u);
  EXPECT_EQ(coll.migrations(), 1u);
  EXPECT_EQ(coll.migration_rollbacks(), 0u);
  EXPECT_EQ(coll.map_version(), 1u);
  // Element-exact survival: distinct values per index, so per-index
  // equality is the no-lost/no-duplicated check.
  for (std::size_t i = 0; i < coll.capacity(); ++i) {
    EXPECT_EQ(coll.read(i), i * 7 + 3);
  }
  // The collection keeps growing after a migration; new blocks for the
  // moved shard land on its new home.
  coll.resize_add(2 * 32);
  EXPECT_EQ(coll.capacity(), 6 * 32u);
  for (std::size_t i = 4 * 32; i < coll.capacity(); ++i) coll.write(i, i);
  for (std::size_t i = 4 * 32; i < coll.capacity(); ++i) {
    EXPECT_EQ(coll.read(i), i);
  }
  EXPECT_THROW(coll.migrate(2, 0), std::invalid_argument);
  drain_qsbr();
}

TYPED_TEST(ShardedTyped, MigrateToCurrentHomeIsANoopMove) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Coll coll(cluster, 2 * 32,
                                  {.block_size = 32,
                                   .shard_count = 2,
                                   .cache_capacity_bytes = 0});
  for (std::size_t i = 0; i < coll.capacity(); ++i) coll.write(i, i + 1);
  ASSERT_TRUE(coll.migrate(0, 0));  // nothing to copy or free
  EXPECT_EQ(coll.home_of(0), 0u);
  EXPECT_EQ(coll.shard(0).rehomes(), 0u);  // no blocks moved
  for (std::size_t i = 0; i < coll.capacity(); ++i) {
    EXPECT_EQ(coll.read(i), i + 1);
  }
  drain_qsbr();
}

TYPED_TEST(ShardedTyped, PressureMonitorRebalancesHotLocale) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Coll coll(cluster, 4 * 64,
                                  {.block_size = 64,
                                   .shard_count = 2,
                                   .cache_capacity_bytes = 0});
  typename TestFixture::Monitor monitor(coll, {.imbalance_ratio = 2.0});

  // Balanced start (two blocks per locale): no decision.
  EXPECT_FALSE(monitor.evaluate().has_value());
  EXPECT_TRUE(monitor.tick().empty());

  // Pile everything onto locale 0, then let the monitor undo it.
  ASSERT_TRUE(coll.migrate(1, 0));
  drain_qsbr();  // under QSBR the old home's bytes leave the ledger here
  const auto armed = monitor.evaluate();
  ASSERT_TRUE(armed.has_value());
  EXPECT_EQ(armed->from, 0u);
  EXPECT_EQ(armed->to, 1u);
  EXPECT_EQ(coll.home_of(armed->shard), 0u);

  const auto decisions = monitor.tick();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].completed);
  EXPECT_EQ(coll.home_of(decisions[0].shard), 1u);
  // The tick refreshed the per-locale pressure gauges in the registry.
  EXPECT_EQ(cluster.comm().registry().gauge("rcua.service.pressure.bytes.0")
                .value(),
            cluster.locale(0).bytes_live());

  // One shard per locale again: pressure is balanced, the monitor rests.
  drain_qsbr();
  EXPECT_TRUE(monitor.tick().empty());
  drain_qsbr();
}

// The ISSUE's chaos acceptance scenario: a FaultPlan kills the
// destination locale mid-migration; the move must roll back — old
// mapping intact, every element present exactly once — and a retry
// (the fault exhausted) must complete. RCUA_CHAOS_SEED rotates the
// plan seed in CI.
TEST(ShardedChaos, LocaleKillMidMigrationRollsBackWithoutLoss) {
  const std::uint64_t seed = rcua::util::env_u64("RCUA_CHAOS_SEED", 42);
  // Declared before the cluster: pool workers consult the plan between
  // tasks, so it must outlive them (the cluster's destructor joins).
  rt::FaultPlan plan(seed);
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  svc::ShardedCollection<std::uint64_t, EbrPolicy> coll(
      cluster, 4 * 64,
      {.block_size = 64, .shard_count = 1, .cache_capacity_bytes = 0});
  for (std::size_t i = 0; i < coll.capacity(); ++i) coll.write(i, i * 13 + 5);

  // Kill the destination on the first consultation of the copy loop.
  plan.add({.action = rt::FaultPlan::Action::kKillLocale,
            .locale = 1,
            .fire_from = 1,
            .fire_count = 1});
  cluster.set_fault_plan(&plan);

  EXPECT_FALSE(coll.migrate(0, 1)) << "seed " << seed;

  // Rolled back: the old mapping is live, nothing was published.
  EXPECT_EQ(coll.home_of(0), 0u);
  EXPECT_EQ(coll.shard(0).home_locale(), 0u);
  EXPECT_EQ(coll.map_version(), 0u);
  EXPECT_EQ(coll.migrations(), 0u);
  EXPECT_EQ(coll.migration_rollbacks(), 1u);
  EXPECT_EQ(coll.shard(0).rehome_rollbacks(), 1u);
  // No lost or duplicated elements: every index still reads its distinct
  // fill value (per-index equality == multiset equality here).
  for (std::size_t i = 0; i < coll.capacity(); ++i) {
    EXPECT_EQ(coll.read(i), i * 13 + 5) << "seed " << seed << " index " << i;
  }

  // The fault is exhausted (fire_count = 1): the retry must complete.
  EXPECT_TRUE(coll.migrate(0, 1)) << "seed " << seed;
  EXPECT_EQ(coll.home_of(0), 1u);
  EXPECT_EQ(coll.migrations(), 1u);
  for (std::size_t i = 0; i < coll.capacity(); ++i) {
    EXPECT_EQ(coll.read(i), i * 13 + 5) << "seed " << seed << " index " << i;
  }
}
