// Tests for the call_rcu dispatcher (asynchronous grace periods over the
// TLS-free EBR).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "reclaim/call_rcu.hpp"

namespace reclaim = rcua::reclaim;

namespace {
std::atomic<int> destroyed{0};
struct Counted {
  ~Counted() { destroyed.fetch_add(1, std::memory_order_relaxed); }
};

struct Canary {
  static constexpr std::uint64_t kAlive = 0xA11CE5ED;
  std::atomic<std::uint64_t> state{kAlive};
  ~Canary() { state.store(0); }
};
}  // namespace

TEST(CallRcu, CallbackRunsAfterBarrier) {
  reclaim::Ebr ebr;
  reclaim::CallRcu dispatcher(ebr);
  static std::atomic<int> hits{0};
  hits.store(0);
  dispatcher.call([](void*) { hits.fetch_add(1); }, nullptr);
  dispatcher.barrier();
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(dispatcher.invoked(), 1u);
  EXPECT_GE(dispatcher.grace_periods(), 1u);
}

TEST(CallRcu, CallDeleteFreesObject) {
  destroyed.store(0);
  reclaim::Ebr ebr;
  reclaim::CallRcu dispatcher(ebr);
  dispatcher.call_delete(new Counted);
  dispatcher.barrier();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(CallRcu, DestructorDrainsPending) {
  destroyed.store(0);
  reclaim::Ebr ebr;
  {
    reclaim::CallRcu dispatcher(ebr);
    for (int i = 0; i < 32; ++i) dispatcher.call_delete(new Counted);
  }
  EXPECT_EQ(destroyed.load(), 32);
}

TEST(CallRcu, BatchesShareGracePeriods) {
  reclaim::Ebr ebr;
  reclaim::CallRcu dispatcher(ebr);
  for (int i = 0; i < 200; ++i) {
    dispatcher.call([](void*) {}, nullptr);
  }
  dispatcher.barrier();
  EXPECT_EQ(dispatcher.invoked(), 200u);
  // Far fewer grace periods than callbacks (the amortization).
  EXPECT_LT(dispatcher.grace_periods(), 200u);
}

TEST(CallRcu, GracePeriodWaitsForReaders) {
  reclaim::Ebr ebr;
  reclaim::CallRcu dispatcher(ebr);
  std::atomic<Canary*> slot{new Canary};
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release{false};
  std::atomic<bool> saw_dead{false};

  std::thread reader([&] {
    reclaim::Ebr::ReadGuard guard(ebr);
    Canary* c = slot.load(std::memory_order_acquire);
    reader_in.store(true);
    while (!release.load()) {
      if (c->state.load() != Canary::kAlive) saw_dead.store(true);
      std::this_thread::yield();
    }
  });
  while (!reader_in.load()) std::this_thread::yield();

  // Replace and retire the old value while the reader still holds it.
  Canary* old = slot.exchange(new Canary, std::memory_order_acq_rel);
  dispatcher.call_delete(old);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(saw_dead.load());

  release.store(true);
  reader.join();
  dispatcher.barrier();
  EXPECT_FALSE(saw_dead.load());
  delete slot.load();
}

TEST(CallRcu, ConcurrentProducers) {
  destroyed.store(0);
  reclaim::Ebr ebr;
  reclaim::CallRcu dispatcher(ebr);
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 250; ++i) dispatcher.call_delete(new Counted);
    });
  }
  for (auto& t : producers) t.join();
  dispatcher.barrier();
  EXPECT_EQ(destroyed.load(), 1000);
  EXPECT_EQ(dispatcher.enqueued(), 1000u);
}

TEST(CallRcu, BarrierOnEmptyDispatcherReturns) {
  reclaim::Ebr ebr;
  reclaim::CallRcu dispatcher(ebr);
  dispatcher.barrier();  // nothing pending: must not hang
  SUCCEED();
}

TEST(CallRcu, StalledBatchParksAndRunsAfterReaderLeaves) {
  destroyed.store(0);
  reclaim::Ebr ebr;
  reclaim::StallPolicy policy;
  policy.deadline_ns = 1 * 1000 * 1000;  // 1 ms
  policy.park_ns = 50 * 1000;
  reclaim::CallRcu dispatcher(ebr, policy);

  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    reclaim::Ebr::ReadGuard guard(ebr);
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();

  dispatcher.call_delete(new Counted);
  // The dispatcher's drain hits the 1 ms deadline and parks the batch
  // instead of blocking behind the reader.
  while (dispatcher.stalled_batches() == 0) std::this_thread::yield();
  EXPECT_EQ(destroyed.load(), 0);

  // New work keeps flowing while the batch is parked (the dispatcher is
  // not wedged): a callback enqueued now completes on a fresh grace
  // period... eventually — its own drain also times out while the reader
  // sits on one parity, so just assert the dispatcher accepts it.
  dispatcher.call([](void*) {}, nullptr);

  release.store(true);
  reader.join();
  dispatcher.barrier();  // parked batch re-checks, parity drained, runs
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(CallRcu, DestructionRunsLargeStalledBacklogExactlyOnce) {
  destroyed.store(0);
  reclaim::Ebr ebr;
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    reclaim::Ebr::ReadGuard guard(ebr);
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();

  std::thread releaser;
  {
    reclaim::StallPolicy policy;
    policy.deadline_ns = 500 * 1000;  // 0.5 ms
    policy.park_ns = 20 * 1000;
    reclaim::CallRcu dispatcher(ebr, policy);
    for (int i = 0; i < 1000; ++i) dispatcher.call_delete(new Counted);
    while (dispatcher.stalled_batches() == 0) std::this_thread::yield();
    // Free the reader only after destruction has begun, so the
    // destructor's final blocking drain is what runs the backlog.
    releaser = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      release.store(true);
    });
  }  // ~CallRcu drains every parked batch, however long the reader takes
  reader.join();
  releaser.join();
  EXPECT_EQ(destroyed.load(), 1000);  // exactly once each
}

TEST(CallRcuDeathTest, CallAfterShutdownBeganAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        reclaim::Ebr ebr;
        auto* dispatcher = new reclaim::CallRcu(ebr);
        std::atomic<bool> release{false};
        std::atomic<bool> entered{false};
        std::thread reader([&] {
          reclaim::Ebr::ReadGuard guard(ebr);
          entered.store(true);
          while (!release.load()) std::this_thread::yield();
        });
        while (!entered.load()) std::this_thread::yield();
        // A pending callback whose (blocking) grace period is gated by
        // the reader wedges the dispatcher, so the destructor blocks in
        // join() with accepting_ already flipped — the exact window the
        // guard must fail loudly in.
        dispatcher->call([](void*) {}, nullptr);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        std::thread destroyer([&] { delete dispatcher; });
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        dispatcher->call([](void*) {}, nullptr);  // must abort
        release.store(true);                      // not reached
        destroyer.join();
        reader.join();
      },
      "CallRcu::call\\(\\) after shutdown");
}
