// Trace determinism under the schedule-exploration harness (DESIGN.md
// §12): with RCUA_SCHED_SEED pinning one schedule, two runs of the same
// scenario must record IDENTICAL trace event sequences — same names,
// phases, deterministic task ids, and the same *virtual-time*
// timestamps. This is the property that makes a trace of a sched-tier
// repro shippable: the timeline in Perfetto is the schedule, not an
// artifact of host jitter.
//
// The scenario attaches a sim::TaskClock to each logical task (the
// determinism rule covers virtual timestamps; wall clocks are exempt by
// design) and drives remote traffic through AsyncComm, whose
// comm.get/comm.put/comm.async.issue/comm.async.complete events carry
// schedule-dependent interleavings — precisely what must replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/cluster.hpp"
#include "runtime/comm.hpp"
#include "sim/task_clock.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::Scheduler;

namespace sim = rcua::sim;

/// (tid, name, phase, virtual ts, arg) — the full identity of one
/// event as far as determinism is concerned.
using EventKey =
    std::tuple<std::uint32_t, std::string, char, std::uint64_t,
               std::uint64_t>;

/// Each task runs under its own virtual clock and issues a small
/// pipelined burst of remote ops; the sched points inside AsyncComm
/// make the interleaving schedule-dependent.
void traffic_task(const std::shared_ptr<rcua::rt::Cluster>& cluster,
                  std::uint64_t salt) {
  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  static std::uint64_t sink[4] = {};
  rcua::rt::AsyncComm session(cluster->comm(), /*here=*/0,
                              {.window = 2});
  for (std::uint64_t i = 0; i < 4; ++i) {
    session.put(1u, &sink[i], salt + i).wait();
    (void)session.get(1u, &sink[i]).get();
  }
  session.drain();
}

void traffic_scenario(const std::shared_ptr<rcua::rt::Cluster>& cluster,
                      Scheduler& sched) {
  sched.spawn("alpha", [cluster] { traffic_task(cluster, 100); });
  sched.spawn("beta", [cluster] { traffic_task(cluster, 200); });
}

/// One pinned-seed exploration run, returning the recorded events in
/// snapshot order grouped by deterministic task id.
std::vector<EventKey> run_once(
    const std::shared_ptr<rcua::rt::Cluster>& cluster) {
  rcua::obs::trace_reset();
  rcua::obs::set_trace_enabled(true);
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 1;
  opts.quiet = true;
  const auto result = rcua::testing::explore(
      opts,
      [&cluster](Scheduler& s) { traffic_scenario(cluster, s); });
  rcua::obs::set_trace_enabled(false);
  EXPECT_FALSE(result.found) << result.message;

  std::vector<EventKey> keys;
  for (const auto& e : rcua::obs::trace_snapshot()) {
    keys.emplace_back(e.tid, e.name != nullptr ? e.name : "?", e.phase,
                      e.ts_ns, e.arg);
  }
  // Group by deterministic task id, preserving per-task recording
  // order (rings are per OS thread; the sched task id in each event is
  // the replay-stable identity).
  std::stable_sort(keys.begin(), keys.end(),
                   [](const EventKey& a, const EventKey& b) {
                     return std::get<0>(a) < std::get<0>(b);
                   });
  return keys;
}

TEST(SchedTrace, SameSeedProducesIdenticalVirtualTimeTraces) {
  // Pin exactly one schedule the way a human replaying a repro would.
  ASSERT_EQ(setenv("RCUA_SCHED_SEED", "20260808", 1), 0);

  auto cluster = std::make_shared<rcua::rt::Cluster>(
      rcua::rt::ClusterConfig{.num_locales = 2, .workers_per_locale = 1});

  const std::vector<EventKey> first = run_once(cluster);
  cluster->comm().reset();
  const std::vector<EventKey> second = run_once(cluster);
  unsetenv("RCUA_SCHED_SEED");

  ASSERT_FALSE(first.empty())
      << "the scenario must actually record trace events";
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i])
        << "event " << i << " diverged: [" << std::get<1>(first[i]) << " ph="
        << std::get<2>(first[i]) << " tid=" << std::get<0>(first[i])
        << " ts=" << std::get<3>(first[i]) << "] vs ["
        << std::get<1>(second[i]) << " ph=" << std::get<2>(second[i])
        << " tid=" << std::get<0>(second[i])
        << " ts=" << std::get<3>(second[i]) << "]";
  }

  // Different seed: the schedule (and thus the interleaving-dependent
  // event sequence) is allowed to differ — determinism is per seed,
  // not global. Just prove a run with another seed still records.
  ASSERT_EQ(setenv("RCUA_SCHED_SEED", "1", 1), 0);
  cluster->comm().reset();
  const std::vector<EventKey> other = run_once(cluster);
  unsetenv("RCUA_SCHED_SEED");
  EXPECT_EQ(other.size(), first.size())
      << "same scenario, same op count — only order/timing may move";
  rcua::obs::trace_reset();
}

}  // namespace
