// Schedule-exploration tests for the TLS-free EBR protocol (Algorithm 1).
//
// The mutation checks re-enable deliberately broken protocol variants and
// assert the harness *finds* a violating schedule — proving exploration has
// teeth and documenting which protocol line prevents which bug. The
// negative controls run the same scenarios unmutated and assert no
// schedule violates, including a systematic DFS pass.
//
// Snapshots are modeled as arena slots with `freed` flags (the writer
// "reclaims" by flipping a flag, never by freeing), so a protocol bug is
// detected as a flag read, not as a real use-after-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "reclaim/ebr.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

/// Shared state of the reader/writer scenarios: a "current snapshot" index
/// into an arena of freed-flags. The stripe count is pinned (not the
/// host-dependent default) so the schedule tree — and every printed seed —
/// replays identically on any machine.
template <typename EpochT,
          typename Layout = rcua::reclaim::StripedReaders>
struct Arena {
  explicit Arena(EpochT initial_epoch = EpochT{0}, std::size_t stripes = 2)
      : ebr(initial_epoch, stripes) {}

  rcua::reclaim::BasicEbr<EpochT, Layout> ebr;
  std::atomic<std::size_t> current{0};
  std::atomic<bool> freed[8] = {};
};

/// Reader: one read-side critical section that captures the current
/// snapshot and later (one schedule point on) checks it was not reclaimed
/// out from under it.
template <typename ArenaT>
void reader_once(ArenaT& a) {
  a.ebr.read([&] {
    const std::size_t s = a.current.load(std::memory_order_seq_cst);
    rcua::testing::sched_point("test.reader.deref");
    if (a.freed[s].load(std::memory_order_seq_cst)) {
      rcua::testing::sched_violation(
          "reader dereferenced a reclaimed snapshot");
    }
  });
}

/// Writer: `rounds` RCU_Write cycles — publish snapshot r, bump the epoch,
/// drain the old parity, reclaim the previous snapshot.
template <typename ArenaT>
void writer_rounds(ArenaT& a, std::size_t rounds) {
  for (std::size_t r = 1; r <= rounds; ++r) {
    const std::size_t old = a.current.load(std::memory_order_seq_cst);
    rcua::testing::sched_point("test.writer.publish");
    a.current.store(r, std::memory_order_seq_cst);
    const auto e = a.ebr.advance_epoch();
    a.ebr.wait_for_readers(e);
    a.freed[old].store(true, std::memory_order_seq_cst);
  }
}

/// The two-round scenario that exposes the skip-reverify bug: the reader
/// must announce on a stale parity (round 1 already advanced the epoch),
/// then survive into round 2, whose drain watches the *other* parity and
/// so reclaims the snapshot the reader still holds.
void two_round_scenario(Scheduler& sched) {
  auto a = std::make_shared<Arena<std::uint64_t>>();
  sched.spawn("reader", [a] { reader_once(*a); });
  sched.spawn("writer", [a] { writer_rounds(*a, 2); });
}

TEST(SchedEbr, MutationSkipReverifyFound) {
  ScopedMutation mut(&rcua::testing::mutations().ebr_skip_reverify);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);

  ASSERT_TRUE(result.found)
      << "dropping the line-13 re-verification must be caught";
  EXPECT_LE(result.schedules_run, 10000u);

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again =
      rcua::testing::explore(replay, two_round_scenario);
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.schedules_run, 1u);
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedEbr, MutationSkipReverifyFoundByDfs) {
  ScopedMutation mut(&rcua::testing::mutations().ebr_skip_reverify);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 10000;
  opts.preemption_bound = 3;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  ASSERT_TRUE(result.found)
      << "the bug needs only 3 preemptions; bounded DFS must reach it";
}

TEST(SchedEbr, MutationSkipDrainFound) {
  ScopedMutation mut(&rcua::testing::mutations().ebr_skip_drain);

  // One round suffices: reclaiming without draining frees the snapshot a
  // correctly-announced reader is still inside.
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto a = std::make_shared<Arena<std::uint64_t>>();
        sched.spawn("reader", [a] { reader_once(*a); });
        sched.spawn("writer", [a] { writer_rounds(*a, 1); });
      });
  ASSERT_TRUE(result.found)
      << "reclaiming without draining lines 6-7 must be caught";
}

TEST(SchedEbr, MutationSkipFenceFound) {
  // Striped layout only: dropping the writer-side seq_cst fence after the
  // epoch bump lets the drain's first column scan be satisfied by values
  // read before the bump (StoreLoad hoist). Emulated under the SC
  // scheduler by the pre-bump hoisted scan in advance_epoch. The failing
  // schedule: the writer's hoisted scan sees an empty column, a reader
  // then announces+verifies against the pre-bump epoch, round 1 skips its
  // drain on the cached zero, and round 2 reclaims the snapshot the
  // still-running reader captured.
  ScopedMutation mut(&rcua::testing::mutations().ebr_skip_fence);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  ASSERT_TRUE(result.found)
      << "dropping the post-bump fence must be caught";

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again =
      rcua::testing::explore(replay, two_round_scenario);
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedEbr, MutationSkipFenceFoundByDfs) {
  ScopedMutation mut(&rcua::testing::mutations().ebr_skip_fence);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  ASSERT_TRUE(result.found)
      << "the fence bug needs ~2 preemptions; bounded DFS must reach it";
}

TEST(SchedEbr, SkipFenceIsVacuousOnLegacyLayout) {
  // The fence is an obligation the *striped* layout introduced: the
  // legacy all-seq_cst layout never elides the StoreLoad edge, so the
  // same mutation must find nothing there.
  ScopedMutation mut(&rcua::testing::mutations().ebr_skip_fence);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto a = std::make_shared<
            Arena<std::uint64_t, rcua::reclaim::LegacyReaders>>();
        sched.spawn("reader", [a] { reader_once(*a); });
        sched.spawn("writer", [a] { writer_rounds(*a, 2); });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

TEST(SchedEbr, NegativeControlRandom) {
  // Unmutated protocol: no schedule of the same scenario may violate.
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedEbr, NegativeControlDfsExhaustive) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_TRUE(result.exhausted)
      << "expected to enumerate the full 3-preemption schedule tree, ran "
      << result.schedules_run;
}

TEST(SchedEbr, NegativeControlFourStripes) {
  // The unmutated protocol stays safe when readers land on distinct
  // stripes and the drain must sum the column across the bank.
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto a = std::make_shared<Arena<std::uint64_t>>(std::uint64_t{0},
                                                        std::size_t{4});
        for (int r = 0; r < 3; ++r) {
          sched.spawn("reader", [a] { reader_once(*a); });
        }
        sched.spawn("writer", [a] { writer_rounds(*a, 2); });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

// Lemma 2: epoch parity (and with it reader/writer pairing) survives
// integer overflow of the epoch counter. Drive a uint8 epoch across
// wrap-around under full schedule exploration and assert the unmutated
// protocol never reclaims a snapshot a reader still holds.
TEST(SchedEbr, Lemma2EpochWrapAroundSafe) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 1500;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        // Start at 254 so the writer's six rounds step the epoch
        // 254 -> 255 -> 0 -> 1 -> 2 -> 3 -> 4, crossing the wrap.
        auto a = std::make_shared<Arena<std::uint8_t>>(std::uint8_t{254});
        sched.spawn("reader", [a] {
          for (int i = 0; i < 3; ++i) reader_once(*a);
        });
        sched.spawn("writer", [a] { writer_rounds(*a, 6); });
        sched.on_finish([a](Scheduler& s) {
          if (a->ebr.epoch() != std::uint8_t{4}) {
            s.violation("epoch did not advance monotonically across wrap");
          }
        });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

TEST(SchedEbr, Lemma2WrapAroundStillCatchesMutant) {
  // Sanity: the wrap-around scenario is not vacuously safe — the
  // skip-drain mutant is still caught across the wrap boundary.
  ScopedMutation mut(&rcua::testing::mutations().ebr_skip_drain);
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto a = std::make_shared<Arena<std::uint8_t>>(std::uint8_t{255});
        sched.spawn("reader", [a] { reader_once(*a); });
        sched.spawn("writer", [a] { writer_rounds(*a, 2); });
      });
  ASSERT_TRUE(result.found);
}

}  // namespace
