// Cost-model regression tests: per-operation virtual charges of each
// array implementation, computed analytically from a pinned cost table.
// These lock the calibration behind EXPERIMENTS.md — if a code change
// adds or drops a charge site, the figure shapes silently shift; these
// tests make that loud instead.

#include <gtest/gtest.h>

#include "baselines/sync_array.hpp"
#include "baselines/unsafe_array.hpp"
#include "core/rcu_array.hpp"

namespace rt = rcua::rt;
namespace sim = rcua::sim;
using rcua::EbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;

namespace {

/// Pins every relevant constant to round numbers so expectations are
/// exact integers.
void pin_costs() {
  auto& m = sim::CostModel::mutable_instance();
  m.local_cached_ns = 1;
  m.dram_miss_ns = 100;
  m.remote_get_ns = 4000;
  m.remote_put_ns = 4000;
  m.remote_stream_ns = 1000;
  m.atomic_load_ns = 2;
  m.atomic_rmw_ns = 20;
  m.rmw_transfer_ns = 500;
  m.lock_handoff_ns = 300;
  m.chapel_dsi_ns = 700;
  m.rcua_index_ns = 50;
  m.rcua_spine_miss_ns = 800;
}

struct ChargingTest : public ::testing::Test {
  sim::CostModelOverride save;
  ChargingTest() { pin_costs(); }
};

}  // namespace

TEST_F(ChargingTest, QsbrHotLoopPerOpCost) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 64, {.block_size = 64});
  arr.read(0);  // warm: pay the first-touch miss outside the measurement
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    for (int i = 0; i < 10; ++i) arr.read(0);
  }
  // Per op: rcua_index(50) + snapshot atomic_load(2) + cached access —
  // but the clock is fresh, so the FIRST op in scope pays the miss
  // (100 + spine 800); the rest are cached (1).
  const std::uint64_t expect = 10 * (50 + 2) + (100 + 800) + 9 * 1;
  EXPECT_EQ(clock.vtime_ns, expect);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST_F(ChargingTest, QsbrRandomAlternationPaysSpineMissEachSwitch) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 128, {.block_size = 64});
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.read(0);    // block 0: miss + spine
    arr.read(64);   // block 1: miss + spine
    arr.read(0);    // block 0 again: miss + spine (switched away)
  }
  EXPECT_EQ(clock.vtime_ns, 3 * (50 + 2 + 100 + 800));
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST_F(ChargingTest, RemoteBlockChargesGetThenStream) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  // Cache pinned off: this asserts the UNCACHED remote-read charge
  // sequence, which the nightly RCUA_CACHE_CAPACITY_BYTES sweep would
  // otherwise replace with a fill + local copies.
  RCUArray<std::uint64_t, QsbrPolicy> arr(
      cluster, 2 * 64, {.block_size = 64, .cache_capacity_bytes = 0});
  ASSERT_EQ(arr.block_owner(64), 1u);  // remote from locale 0
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.read(64);  // first touch: remote GET + spine miss
    arr.read(65);  // same remote block: streamed
  }
  EXPECT_EQ(clock.vtime_ns, (50 + 2 + 4000 + 800) + (50 + 2 + 1000));
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST_F(ChargingTest, WriteToRemoteBlockUsesPutCost) {
  auto& m = sim::CostModel::mutable_instance();
  m.remote_put_ns = 6000;  // distinguish from GET
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 2 * 64, {.block_size = 64});
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.write(64, 1);
  }
  EXPECT_EQ(clock.vtime_ns, 50 + 2 + 6000 + 800);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST_F(ChargingTest, EbrAddsTwoReaderTransfersPerOp) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  RCUArray<std::uint64_t, EbrPolicy> arr(cluster, 64, {.block_size = 64});
  arr.read(0);  // warm the block (no clock -> free)
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.read(0);
  }
  // The striped EBR read path: the announce RMW pulls the stripe line
  // (rmw_transfer 500); the retract hits the line this task now owns
  // (atomic_rmw 20). Plus snapshot atomic load inside the lambda (2),
  // index overhead 50, cached element (first in scope: miss 100 + spine
  // 800).
  EXPECT_EQ(clock.vtime_ns, 50 + (500 + 20) + 2 + 100 + 800);
}

TEST_F(ChargingTest, LegacyEbrAddsTwoReaderTransfersPerOp) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  RCUArray<std::uint64_t, rcua::LegacyEbrPolicy> arr(cluster, 64,
                                                     {.block_size = 64});
  arr.read(0);  // warm the block (no clock -> free)
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.read(0);
  }
  // The paper's two-counter layout models the shared EpochReaders line
  // as always-contended: 2 reader RMWs at rmw_transfer(500) each, plus
  // snapshot load (2), index overhead 50, first-in-scope miss (100) and
  // spine surcharge (800).
  EXPECT_EQ(clock.vtime_ns, 50 + 2 * 500 + 2 + 100 + 800);
}

TEST_F(ChargingTest, ChapelHasNoSpineMiss) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rcua::baseline::UnsafeArray<std::uint64_t> arr(cluster, 128, 64);
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.read(0);   // miss, no spine surcharge
    arr.read(1);   // cached
  }
  EXPECT_EQ(clock.vtime_ns, (700 + 100) + (700 + 1));
}

TEST_F(ChargingTest, SyncArraySerializesWholeCriticalSections) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rcua::baseline::SyncArray<std::uint64_t> arr(cluster, 64, 64);
  sim::TaskClock a, b;
  {
    sim::ClockScope scope(a);
    arr.read(0);
  }
  {
    sim::ClockScope scope(b);
    arr.read(0);
  }
  // b's acquisition queues behind a's whole critical section.
  EXPECT_GT(b.vtime_ns, a.vtime_ns);
}

TEST_F(ChargingTest, ResizeChargesAllocationPerBlock) {
  auto& m = sim::CostModel::mutable_instance();
  m.alloc_block_ns = 10000;
  m.lock_handoff_ns = 0;
  m.task_spawn_ns = 0;
  m.remote_execute_ns = 0;
  m.spine_copy_ns_per_block = 0;
  m.epoch_drain_ns = 0;
  m.qsbr_defer_ns = 0;
  m.atomic_rmw_ns = 0;
  m.atomic_load_ns = 0;

  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 0, {.block_size = 64});
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.resize_add(3 * 64);
  }
  EXPECT_EQ(clock.vtime_ns, 3 * 10000u);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST_F(ChargingTest, ChapelResizeCostGrowsWithExistingData) {
  auto& m = sim::CostModel::mutable_instance();
  m.bulk_copy_ns_per_elem = 100;

  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  rcua::baseline::UnsafeArray<std::uint64_t> arr(cluster, 0, 64);

  auto resize_cost = [&] {
    sim::TaskClock clock;
    sim::ClockScope scope(clock);
    arr.resize_add(64);
    return clock.vtime_ns;
  };
  const auto first = resize_cost();   // copies 0 blocks
  (void)resize_cost();                // copies 1
  (void)resize_cost();                // copies 2
  const auto fourth = resize_cost();  // copies 3 blocks
  EXPECT_GE(fourth, first + 3 * 64 * 100u);
}

TEST_F(ChargingTest, RcuResizeCostIndependentOfExistingData) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 0, {.block_size = 64});
  // One clock for every round: VirtualResource bookings (the write lock's
  // word) are absolute virtual times, only meaningful within a single
  // timeline — fresh per-round clocks would compare t=0 against the
  // previous round's bookings (see sim/resource.hpp).
  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  auto resize_cost = [&] {
    const auto before = clock.vtime_ns;
    arr.resize_add(64);
    return clock.vtime_ns - before;
  };
  const auto first = resize_cost();
  for (int i = 0; i < 20; ++i) resize_cost();
  const auto late = resize_cost();
  // Only the spine copy grows (~1ns/block); stays within noise of first.
  EXPECT_LT(late, first + 1000);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST_F(ChargingTest, CommCountersMatchChargedAccesses) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  // Cache pinned off: asserts the uncached GET/PUT counters (see
  // RemoteBlockChargesGetThenStream).
  RCUArray<std::uint64_t, QsbrPolicy> arr(
      cluster, 2 * 64, {.block_size = 64, .cache_capacity_bytes = 0});
  cluster.comm().reset();
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    arr.read(0);    // local: no comm
    arr.read(64);   // remote GET
    arr.write(64, 1);  // remote PUT
  }
  EXPECT_EQ(cluster.comm().total_gets(), 1u);
  EXPECT_EQ(cluster.comm().total_puts(), 1u);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}
