// Tests for the baseline arrays: UnsafeArray (ChapelArray), SyncArray,
// RwlockArray, HazardArray.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/hazard_array.hpp"
#include "baselines/rwlock_array.hpp"
#include "baselines/sync_array.hpp"
#include "baselines/unsafe_array.hpp"

namespace rt = rcua::rt;
using rcua::baseline::HazardArray;
using rcua::baseline::RwlockArray;
using rcua::baseline::SyncArray;
using rcua::baseline::UnsafeArray;

TEST(UnsafeArray, BasicReadWrite) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  UnsafeArray<std::uint64_t> arr(cluster, 128, 64);
  EXPECT_EQ(arr.capacity(), 128u);
  for (std::size_t i = 0; i < 128; ++i) arr.write(i, i * 2);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_EQ(arr.read(i), i * 2);
}

TEST(UnsafeArray, AtThrowsPastCapacity) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  UnsafeArray<std::uint64_t> arr(cluster, 64, 64);
  EXPECT_NO_THROW(arr.at(63));
  EXPECT_THROW(arr.at(64), std::out_of_range);
}

TEST(UnsafeArray, ResizeCopiesContents) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  UnsafeArray<std::uint64_t> arr(cluster, 128, 64);
  for (std::size_t i = 0; i < 128; ++i) arr.write(i, i + 9);
  arr.resize_add(64);
  EXPECT_EQ(arr.capacity(), 192u);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_EQ(arr.read(i), i + 9);
  for (std::size_t i = 128; i < 192; ++i) EXPECT_EQ(arr.read(i), 0u);
}

TEST(UnsafeArray, ResizeReallocatesBlocks) {
  // Unlike RCUArray, the copy-resize replaces the storage — references
  // obtained before a resize are NOT stable. This is the design contrast
  // the paper exploits; assert it so the contrast stays real.
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  UnsafeArray<std::uint64_t> arr(cluster, 64, 64);
  std::uint64_t* before = &arr.index(0);
  arr.resize_add(64);
  EXPECT_NE(&arr.index(0), before);
}

TEST(UnsafeArray, BlockCyclicDistribution) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 1});
  UnsafeArray<std::uint64_t> arr(cluster, 6 * 64, 64);
  for (std::size_t b = 0; b < 6; ++b) {
    EXPECT_EQ(arr.block_owner(b * 64), b % 3);
  }
}

TEST(UnsafeArray, RemoteAccessCountsComm) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  UnsafeArray<std::uint64_t> arr(cluster, 2 * 64, 64);
  cluster.comm().reset();
  arr.read(0);   // local block
  arr.read(64);  // remote block
  EXPECT_EQ(cluster.comm().total_gets(), 1u);
}

TEST(UnsafeArray, NoBlockLeaksAcrossResizes) {
  const auto before = rcua::Block<std::uint64_t>::live_count();
  {
    rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
    UnsafeArray<std::uint64_t> arr(cluster, 64, 64);
    for (int i = 0; i < 5; ++i) arr.resize_add(64);
  }
  EXPECT_EQ(rcua::Block<std::uint64_t>::live_count(), before);
}

TEST(SyncArray, ReadWriteResize) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  SyncArray<std::uint64_t> arr(cluster, 128, 64);
  arr.write(5, 55);
  EXPECT_EQ(arr.read(5), 55u);
  arr.resize_add(64);
  EXPECT_EQ(arr.capacity(), 192u);
  EXPECT_EQ(arr.read(5), 55u);
}

TEST(SyncArray, EveryOperationAcquiresTheLock) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  SyncArray<std::uint64_t> arr(cluster, 64, 64);
  const auto base = arr.lock().acquisitions();
  arr.read(0);
  arr.write(0, 1);
  arr.resize_add(64);
  EXPECT_EQ(arr.lock().acquisitions(), base + 3);
}

TEST(SyncArray, SafeUnderConcurrentMixedOps) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  SyncArray<std::uint64_t> arr(cluster, 128, 64);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> bad{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if (t == 0 && i % 50 == 0) {
          arr.resize_add(64);
        } else {
          arr.write(static_cast<std::size_t>(i % 128),
                    static_cast<std::uint64_t>(i % 128) + 1);
          const auto v = arr.read(static_cast<std::size_t>(i % 128));
          if (v != 0 && v != static_cast<std::uint64_t>(i % 128) + 1 &&
              v > 128) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(RwlockArray, BasicOps) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  RwlockArray<std::uint64_t> arr(cluster, 128, 64);
  arr.write(3, 33);
  EXPECT_EQ(arr.read(3), 33u);
  arr.resize_add(64);
  EXPECT_EQ(arr.capacity(), 192u);
  EXPECT_EQ(arr.read(3), 33u);
}

TEST(RwlockArray, ConcurrentReadersWithResizer) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  RwlockArray<std::uint64_t> arr(cluster, 128, 64);
  for (std::size_t i = 0; i < 128; ++i) arr.write(i, i + 1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (arr.read(i % 128) != (i % 128) + 1) bad.fetch_add(1);
        ++i;
      }
    });
  }
  for (int r = 0; r < 10; ++r) arr.resize_add(64);
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(HazardArray, BasicOps) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  rcua::reclaim::HazardDomain dom;
  HazardArray<std::uint64_t> arr(cluster, 128, 64, &dom);
  arr.write(7, 77);
  EXPECT_EQ(arr.read(7), 77u);
  arr.resize_add(64);
  EXPECT_EQ(arr.capacity(), 192u);
  EXPECT_EQ(arr.read(7), 77u);
  dom.flush_unsafe();
}

TEST(HazardArray, ConcurrentReadsWithResizes) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  rcua::reclaim::HazardDomain dom;
  dom.set_retire_threshold(2);
  HazardArray<std::uint64_t> arr(cluster, 128, 64, &dom);
  for (std::size_t i = 0; i < 128; ++i) arr.write(i, i ^ 0x77);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (arr.read(i % 128) != ((i % 128) ^ 0x77)) bad.fetch_add(1);
        ++i;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < 25; ++r) {
    arr.resize_add(64);
    std::this_thread::yield();
  }
  while (reads.load() < 500) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
  dom.flush_unsafe();
}

TEST(HazardArray, RetiredSpinesEventuallyFreed) {
  const auto base = rcua::Snapshot<std::uint64_t>::live_count();
  {
    rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
    rcua::reclaim::HazardDomain dom;
    dom.set_retire_threshold(1);  // scan on every retire
    HazardArray<std::uint64_t> arr(cluster, 64, 64, &dom);
    for (int i = 0; i < 5; ++i) arr.resize_add(64);
    // No guards live: every retired spine must already be gone; only the
    // current one remains.
    EXPECT_EQ(rcua::Snapshot<std::uint64_t>::live_count() - base, 1u);
  }
  EXPECT_EQ(rcua::Snapshot<std::uint64_t>::live_count(), base);
}
