// Tests for the runtime QSBR extension (Algorithm 2): defer/checkpoint
// semantics, DeferList ordering (Lemma 4), safe-epoch reclamation
// (Lemma 5), parking, and multi-threaded stress.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/qsbr.hpp"

namespace reclaim = rcua::reclaim;
namespace rt = rcua::rt;

namespace {

std::atomic<int> destroyed{0};
struct Counted {
  ~Counted() { destroyed.fetch_add(1, std::memory_order_relaxed); }
};

struct Canary {
  static constexpr std::uint64_t kAlive = 0xA11CE5ED;
  std::atomic<std::uint64_t> state{kAlive};
  ~Canary() { state.store(0, std::memory_order_relaxed); }
};

}  // namespace

TEST(Qsbr, DeferBumpsStateEpoch) {
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  const auto e0 = qsbr.current_epoch();
  qsbr.defer_delete(new int(1));
  EXPECT_EQ(qsbr.current_epoch(), e0 + 1);
  EXPECT_EQ(qsbr.pending_on_this_thread(), 1u);
  qsbr.checkpoint();  // sole participant: immediately reclaimable
  EXPECT_EQ(qsbr.pending_on_this_thread(), 0u);
}

TEST(Qsbr, SoloThreadCheckpointReclaimsEverything) {
  destroyed.store(0);
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  for (int i = 0; i < 10; ++i) qsbr.defer_delete(new Counted);
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_EQ(qsbr.checkpoint(), 10u);
  EXPECT_EQ(destroyed.load(), 10);
}

TEST(Qsbr, DeferListSortedDescending) {
  // Lemma 4: LIFO insertion of monotone epochs keeps the list descending.
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  for (int i = 0; i < 5; ++i) qsbr.defer_delete(new int(i));
  const auto& list = reg.local_record().slots[0].defer_list;
  std::uint64_t prev = ~0ULL;
  for (const reclaim::DeferNode* n = list.head(); n != nullptr; n = n->next) {
    EXPECT_LT(n->safe_epoch, prev);
    prev = n->safe_epoch;
  }
  qsbr.checkpoint();
}

TEST(Qsbr, LaggingThreadGatesReclamation) {
  // Lemma 5: reclamation is safe only once min observed epoch reaches the
  // entry's safe epoch.
  destroyed.store(0);
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);

  std::atomic<bool> participated{false};
  std::atomic<bool> do_checkpoint{false};
  std::atomic<bool> done{false};
  std::thread lagger([&] {
    qsbr.defer_delete(new int(0));  // participate; observes some epoch
    qsbr.checkpoint();              // clean slate for the lagger itself
    participated.store(true);
    while (!do_checkpoint.load()) std::this_thread::yield();
    qsbr.checkpoint();  // finally observes the newer state
    done.store(true);
  });
  while (!participated.load()) std::this_thread::yield();

  qsbr.defer_delete(new Counted);  // newer epoch than the lagger observed
  qsbr.checkpoint();
  EXPECT_EQ(destroyed.load(), 0) << "reclaimed while a thread lagged";

  do_checkpoint.store(true);
  lagger.join();
  EXPECT_TRUE(done.load());
  // The lagger observed the new state; now our checkpoint may reclaim.
  qsbr.checkpoint();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(Qsbr, ParkedThreadDoesNotGate) {
  destroyed.store(0);
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread idler([&] {
    qsbr.defer_delete(new int(0));
    qsbr.checkpoint();
    qsbr.park();  // idle: promises quiescence
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
    qsbr.unpark();
  });
  while (!parked.load()) std::this_thread::yield();

  qsbr.defer_delete(new Counted);
  qsbr.checkpoint();
  EXPECT_EQ(destroyed.load(), 1) << "parked thread wrongly gated reclamation";

  release.store(true);
  idler.join();
}

TEST(Qsbr, ThreadExitStopsGating) {
  destroyed.store(0);
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  std::thread([&] {
    qsbr.defer_delete(new int(0));
    qsbr.checkpoint();
    // exits without checkpointing a newer state
  }).join();

  qsbr.defer_delete(new Counted);
  qsbr.checkpoint();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(Qsbr, FlushUnsafeReclaimsAll) {
  destroyed.store(0);
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  for (int i = 0; i < 4; ++i) qsbr.defer_delete(new Counted);
  qsbr.flush_unsafe();
  EXPECT_EQ(destroyed.load(), 4);
}

TEST(Qsbr, DomainDestructionFlushes) {
  destroyed.store(0);
  rt::ThreadRegistry reg;
  {
    reclaim::Qsbr qsbr(reg);
    qsbr.defer_delete(new Counted);
  }
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(Qsbr, DeferFnRunsCallback) {
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  static std::atomic<int> hits{0};
  hits.store(0);
  qsbr.defer_fn([](void*) { hits.fetch_add(1); }, nullptr);
  qsbr.checkpoint();
  EXPECT_EQ(hits.load(), 1);
}

TEST(Qsbr, StatsCountOperations) {
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  qsbr.defer_delete(new int(0));
  qsbr.defer_delete(new int(1));
  qsbr.checkpoint();
  const auto s = qsbr.stats();
  EXPECT_EQ(s.defers, 2u);
  EXPECT_EQ(s.checkpoints, 1u);
  EXPECT_EQ(s.reclaimed, 2u);
}

TEST(Qsbr, GlobalDomainExists) {
  auto& a = reclaim::Qsbr::global();
  auto& b = reclaim::Qsbr::global();
  EXPECT_EQ(&a, &b);
}

TEST(Qsbr, CheckpointOnlyReclaimsEligibleSuffix) {
  destroyed.store(0);
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);

  // Lagging peer pinned at an early epoch.
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread peer([&] {
    qsbr.checkpoint();  // participate at the current epoch
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  const auto pin_epoch = qsbr.current_epoch();

  // Our own deferral sequence: one entry the peer's pin epoch permits
  // (impossible here — every defer bumps past the pin), so all must wait.
  qsbr.defer_delete(new Counted);
  qsbr.defer_delete(new Counted);
  qsbr.checkpoint();
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_GT(qsbr.current_epoch(), pin_epoch);

  release.store(true);
  peer.join();
  qsbr.checkpoint();  // peer gone (parked on exit): everything frees
  EXPECT_EQ(destroyed.load(), 2);
}

// Multi-threaded canary stress: every thread defers replaced payloads and
// checkpoints periodically; nobody may ever observe a dead payload.
TEST(QsbrStress, CanariesStayAliveUntilQuiescence) {
  rt::ThreadRegistry reg;
  reclaim::Qsbr qsbr(reg);
  std::atomic<Canary*> shared{new Canary};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      int ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Read the protected pointer; valid until our next checkpoint.
        Canary* c = shared.load(std::memory_order_acquire);
        if (c->state.load(std::memory_order_relaxed) != Canary::kAlive) {
          violations.fetch_add(1);
        }
        if (t == 0 && ops % 8 == 0) {
          // Writer role: replace and defer the old payload.
          auto* fresh = new Canary;
          Canary* old = shared.exchange(fresh, std::memory_order_acq_rel);
          qsbr.defer_delete(old);
        }
        if (++ops % 16 == 0) qsbr.checkpoint();
      }
      qsbr.checkpoint();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();
  delete shared.load();
  EXPECT_EQ(violations.load(), 0u);
}
