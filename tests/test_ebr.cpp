// Tests for the paper's TLS-free EBR (Algorithm 1), including the
// Lemma 2 overflow property with genuinely narrow epoch integers and
// multi-threaded no-use-after-free stress.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "reclaim/ebr.hpp"

namespace reclaim = rcua::reclaim;

namespace {

/// Payload with a liveness canary: reads assert the canary, the deleter
/// poisons it, so a reclamation racing a reader trips instantly.
struct Canary {
  static constexpr std::uint64_t kAlive = 0xA11CE5ED;
  static constexpr std::uint64_t kDead = 0xDEADDEAD;
  std::atomic<std::uint64_t> state{kAlive};
  std::uint64_t value = 0;

  ~Canary() { state.store(kDead, std::memory_order_relaxed); }
};

}  // namespace

TEST(Ebr, ReadReturnsLambdaResult) {
  reclaim::Ebr ebr;
  EXPECT_EQ(ebr.read([] { return 42; }), 42);
}

TEST(Ebr, ReadSupportsVoidLambda) {
  reclaim::Ebr ebr;
  int hits = 0;
  ebr.read([&] { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(Ebr, ReadReturnsReferences) {
  reclaim::Ebr ebr;
  int x = 7;
  int& ref = ebr.read([&]() -> int& { return x; });
  EXPECT_EQ(&ref, &x);
}

TEST(Ebr, CountersBalanceAfterReads) {
  reclaim::Ebr ebr;
  for (int i = 0; i < 100; ++i) ebr.read([] { return 0; });
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_EQ(ebr.stats().reads, 100u);
  }
}

TEST(Ebr, GuardRecordsOnCurrentParity) {
  reclaim::Ebr ebr;
  const auto parity = static_cast<std::size_t>(ebr.epoch() % 2);
  {
    reclaim::Ebr::ReadGuard guard(ebr);
    EXPECT_EQ(ebr.readers_at(parity), 1u);
  }
  EXPECT_EQ(ebr.readers_at(parity), 0u);
}

TEST(Ebr, AdvanceReturnsPreviousEpoch) {
  reclaim::Ebr ebr;
  const auto e0 = ebr.epoch();
  EXPECT_EQ(ebr.advance_epoch(), e0);
  EXPECT_EQ(ebr.epoch(), e0 + 1);
  EXPECT_EQ(ebr.stats().epoch_advances, 1u);
}

TEST(Ebr, SynchronizeWithNoReadersReturnsImmediately) {
  reclaim::Ebr ebr;
  ebr.synchronize();
  ebr.synchronize();
  EXPECT_EQ(ebr.epoch(), 2u);
}

TEST(Ebr, WaitForReadersBlocksUntilGuardDrops) {
  reclaim::Ebr ebr;
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::atomic<bool> writer_done{false};

  std::thread reader([&] {
    reclaim::Ebr::ReadGuard guard(ebr);
    reader_in.store(true);
    while (!reader_release.load()) std::this_thread::yield();
  });
  while (!reader_in.load()) std::this_thread::yield();

  std::thread writer([&] {
    const auto old_epoch = ebr.advance_epoch();
    ebr.wait_for_readers(old_epoch);
    writer_done.store(true);
  });

  // Give the writer a real chance to (incorrectly) slip past the reader.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(writer_done.load());

  reader_release.store(true);
  reader.join();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(Ebr, WriterDoesNotWaitForNewParityReaders) {
  reclaim::Ebr ebr;
  // Reader recorded *after* the epoch bump lands on the new parity; the
  // writer drains the old parity only (Lemma 3's third interval).
  const auto old_epoch = ebr.advance_epoch();
  reclaim::Ebr::ReadGuard guard(ebr);  // records under the new epoch
  ebr.wait_for_readers(old_epoch);     // must not deadlock
  SUCCEED();
}

// Lemma 2: two counters remain sufficient across epoch overflow, because
// +1 preserves parity even at wrap-around. Drive an 8-bit epoch through
// several full wraps with live readers.
TEST(EbrOverflow, ParityPreservedAcrossWraparound) {
  reclaim::BasicEbr<std::uint8_t> ebr(/*initial_epoch=*/250);
  for (int i = 0; i < 600; ++i) {  // > 2 full wraps of a uint8 epoch
    const std::uint8_t before = ebr.epoch();
    ebr.read([&] {
      // While inside the section, our parity counter must be nonzero.
      EXPECT_GE(ebr.readers_at(ebr.epoch() % 2) +
                    ebr.readers_at((ebr.epoch() + 1) % 2),
                1u);
      return 0;
    });
    ebr.synchronize();
    EXPECT_EQ(static_cast<std::uint8_t>(before + 1), ebr.epoch());
  }
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(EbrOverflow, ConcurrentReadersAcrossWraparound) {
  reclaim::BasicEbr<std::uint8_t> ebr(240);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ebr.read([&] { reads.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (int i = 0; i < 700; ++i) {
    ebr.synchronize();
    if (i % 64 == 0) std::this_thread::yield();
  }
  // On an oversubscribed host the writer can finish before any reader is
  // scheduled; wait for real read-side traffic before stopping.
  while (reads.load() == 0) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

// The core reclamation property: a reader that linearized never observes
// a reclaimed snapshot. RCU_Write pattern with canary-checked payloads.
TEST(EbrStress, NoUseAfterFreeUnderConcurrentWrites) {
  reclaim::Ebr ebr;
  std::atomic<Canary*> snapshot{new Canary};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ebr.read([&] {
          Canary* c = snapshot.load(std::memory_order_acquire);
          if (c->state.load(std::memory_order_relaxed) != Canary::kAlive) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }

  // Writer: copy-update-publish-drain-delete, 300 times.
  for (int i = 0; i < 300; ++i) {
    auto* fresh = new Canary;
    fresh->value = static_cast<std::uint64_t>(i);
    Canary* old = snapshot.exchange(fresh, std::memory_order_acq_rel);
    const auto epoch = ebr.advance_epoch();
    ebr.wait_for_readers(epoch);
    delete old;
    if (i % 16 == 0) std::this_thread::yield();
  }

  stop.store(true);
  for (auto& t : readers) t.join();
  delete snapshot.load();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(EbrSim, ReaderRmwChargesAreModeled) {
  rcua::sim::CostModelOverride save;
  auto& m = rcua::sim::CostModel::mutable_instance();
  m.rmw_transfer_ns = 500;
  m.atomic_rmw_ns = 5;

  reclaim::Ebr ebr;
  rcua::sim::TaskClock clock;
  {
    rcua::sim::ClockScope scope(clock);
    ebr.read([] { return 0; });
  }
  // Striped layout: the announce pays one transfer to pull the stripe's
  // line in (500); the balancing retract hits the line this task now
  // owns, so it costs only the local RMW (5).
  EXPECT_EQ(clock.vtime_ns, 505u);
}

TEST(EbrSim, LegacyLayoutChargesAlwaysContendedTransfers) {
  rcua::sim::CostModelOverride save;
  auto& m = rcua::sim::CostModel::mutable_instance();
  m.rmw_transfer_ns = 500;
  m.atomic_rmw_ns = 5;

  reclaim::LegacyEbr ebr;
  rcua::sim::TaskClock clock;
  {
    rcua::sim::ClockScope scope(clock);
    ebr.read([] { return 0; });
  }
  // The single shared EpochReaders line is modeled as always-contended:
  // the increment and the balancing decrement each cost one transfer.
  EXPECT_EQ(clock.vtime_ns, 1000u);
}
