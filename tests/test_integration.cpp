// Integration tests: whole-system workloads and virtual-time *shape*
// assertions — the qualitative claims of the paper's evaluation encoded
// as tests, so a regression in either the algorithms or the cost model
// that would flip a paper conclusion fails CI.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rcua.hpp"

namespace rt = rcua::rt;
namespace sim = rcua::sim;
using rcua::EbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;

namespace {

/// Virtual-time throughput of `ops` update operations per task under the
/// given array, random pattern, on a fresh cluster.
template <typename ArrayT>
double vtime_throughput(std::uint32_t locales, std::uint32_t tpl,
                        std::uint64_t ops, bool sequential,
                        std::size_t array_elems = 1 << 16) {
  rt::Cluster cluster(
      {.num_locales = locales, .workers_per_locale = tpl + 2});
  ArrayT arr(cluster, array_elems);
  const std::uint64_t total =
      static_cast<std::uint64_t>(locales) * tpl * ops;
  sim::TaskClock root;
  {
    sim::ClockScope scope(root);
    cluster.coforall_tasks(tpl, [&](std::uint32_t l, std::uint32_t t) {
      const std::uint64_t gid = static_cast<std::uint64_t>(l) * tpl + t;
      if (sequential) {
        const std::uint64_t start = gid * ops % array_elems;
        for (std::uint64_t n = 0; n < ops; ++n) {
          arr.write((start + n) % array_elems, n);
        }
      } else {
        rcua::plat::Xoshiro256 rng(gid + 1);
        for (std::uint64_t n = 0; n < ops; ++n) {
          arr.write(rng.next_below(array_elems), n);
        }
      }
    });
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return static_cast<double>(total) /
         (static_cast<double>(root.vtime_ns) * 1e-9);
}

}  // namespace

// --------- Shape assertions (the paper's Figure 2/3 conclusions) -------

TEST(Shape, QsbrTracksUnsynchronizedArray) {
  const double qsbr = vtime_throughput<RCUArray<std::uint64_t, QsbrPolicy>>(
      4, 8, 512, /*sequential=*/false);
  const double chapel =
      vtime_throughput<rcua::baseline::UnsafeArray<std::uint64_t>>(
          4, 8, 512, false);
  // "QSBRArray offers competitive performance to the unsynchronized
  // ChapelArray, slightly losing for random-access patterns".
  EXPECT_LT(qsbr, chapel);
  EXPECT_GT(qsbr, 0.8 * chapel);
}

TEST(Shape, QsbrBeatsUnsynchronizedSequential) {
  const double qsbr = vtime_throughput<RCUArray<std::uint64_t, QsbrPolicy>>(
      4, 8, 512, /*sequential=*/true);
  const double chapel =
      vtime_throughput<rcua::baseline::UnsafeArray<std::uint64_t>>(
          4, 8, 512, true);
  // "...but exceeds ChapelArray in performance when it comes to
  // sequential-access patterns" (paper: ~1.5x).
  EXPECT_GT(qsbr, 1.1 * chapel);
  EXPECT_LT(qsbr, 2.0 * chapel);
}

TEST(Shape, LegacyEbrIsASmallFractionOfQsbr) {
  const double ebr =
      vtime_throughput<RCUArray<std::uint64_t, rcua::LegacyEbrPolicy>>(
          4, 16, 512, false);
  const double qsbr = vtime_throughput<RCUArray<std::uint64_t, QsbrPolicy>>(
      4, 16, 512, false);
  // "EBRArray ... can offer as little as 2% of the read and update
  // performance"; at 16 tasks/locale the collapse must already be large.
  // This is the paper's two-counter layout: every reader RMW transfers
  // the one shared EpochReaders line.
  EXPECT_LT(ebr, 0.15 * qsbr);
  EXPECT_GT(ebr, 0.001 * qsbr);
}

TEST(Shape, StripedEbrClosesMostOfTheQsbrGap) {
  const double striped = vtime_throughput<RCUArray<std::uint64_t, EbrPolicy>>(
      4, 16, 512, false);
  const double legacy =
      vtime_throughput<RCUArray<std::uint64_t, rcua::LegacyEbrPolicy>>(
          4, 16, 512, false);
  const double qsbr = vtime_throughput<RCUArray<std::uint64_t, QsbrPolicy>>(
      4, 16, 512, false);
  // The striped bank removes the shared-line serialization: at 64 tasks
  // the default EbrPolicy must now land within 2x of QSBR instead of the
  // legacy collapse, and beat the two-counter layout by >=3x.
  EXPECT_GT(striped, 0.5 * qsbr);
  EXPECT_GT(striped, 3.0 * legacy);
}

TEST(Shape, SyncArrayDoesNotScale) {
  const double at2 = vtime_throughput<rcua::baseline::SyncArray<std::uint64_t>>(
      2, 8, 128, false);
  const double at8 = vtime_throughput<rcua::baseline::SyncArray<std::uint64_t>>(
      8, 8, 128, false);
  // Mutual exclusion: more locales must NOT help (paper: it degrades).
  EXPECT_LT(at8, 1.2 * at2);
}

TEST(Shape, QsbrScalesWithLocales) {
  const double at2 = vtime_throughput<RCUArray<std::uint64_t, QsbrPolicy>>(
      2, 8, 512, false);
  const double at8 = vtime_throughput<RCUArray<std::uint64_t, QsbrPolicy>>(
      8, 8, 512, false);
  EXPECT_GT(at8, 2.0 * at2);  // near-linear scaling (4x locales)
}

TEST(Shape, RcuResizeBeatsCopyResize) {
  auto resize_rate = [](auto make_arr) {
    rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 2});
    auto arr = make_arr(cluster);
    sim::TaskClock root;
    {
      sim::ClockScope scope(root);
      for (int i = 0; i < 64; ++i) arr->resize_add(1024);
    }
    rcua::reclaim::Qsbr::global().flush_unsafe();
    return 64.0 / (static_cast<double>(root.vtime_ns) * 1e-9);
  };
  const double rcu = resize_rate([](rt::Cluster& c) {
    return std::make_unique<RCUArray<std::uint64_t, QsbrPolicy>>(c, 0);
  });
  const double chapel = resize_rate([](rt::Cluster& c) {
    return std::make_unique<rcua::baseline::UnsafeArray<std::uint64_t>>(c, 0);
  });
  // Paper: "exceeding ChapelArray by over 4x".
  EXPECT_GT(rcu, 3.0 * chapel);
}

TEST(Shape, CheckpointFrequencyCostIsMonotone) {
  auto qsbr_rate = [](std::uint64_t cadence) {
    rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 10});
    RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 1 << 14);
    sim::TaskClock root;
    {
      sim::ClockScope scope(root);
      cluster.coforall_tasks(8, [&](std::uint32_t, std::uint32_t t) {
        for (std::uint64_t n = 0; n < 4096; ++n) {
          arr.write((t * 4096 + n) % (1 << 14), n);
          if (cadence && (n + 1) % cadence == 0) {
            rcua::reclaim::Qsbr::global().checkpoint();
          }
        }
      });
    }
    rcua::reclaim::Qsbr::global().flush_unsafe();
    return 8 * 4096.0 / (static_cast<double>(root.vtime_ns) * 1e-9);
  };
  const double every1 = qsbr_rate(1);
  const double every64 = qsbr_rate(64);
  const double never = qsbr_rate(0);
  EXPECT_LT(every1, every64);
  EXPECT_LE(every64, 1.05 * never);
}

// --------- Full-system workloads ---------------------------------------

TEST(Integration, EverythingAtOnce) {
  // Readers, updaters, resizers, a DistVector and a DistHashMap sharing
  // one cluster, one QSBR domain, and the pool's parking machinery.
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 6});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 4096, {.block_size = 512});
  rcua::cont::DistVector<std::uint64_t> vec(cluster, {.block_size = 256});
  rcua::cont::DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 128, .block_size = 128});

  std::atomic<std::uint64_t> violations{0};
  cluster.coforall_tasks(4, [&](std::uint32_t l, std::uint32_t t) {
    rcua::plat::Xoshiro256 rng(l * 1000 + t);
    for (int i = 0; i < 1500; ++i) {
      switch (rng.next_below(8)) {
        case 0:
          if (l == 0 && t == 0 && i % 500 == 0) arr.resize_add(512);
          break;
        case 1:
          vec.push_back(rng.next());
          break;
        case 2: {
          const std::uint64_t k = rng.next_below(512);
          map.insert(k, k + 42);
          break;
        }
        case 3: {
          const std::uint64_t k = rng.next_below(512);
          auto v = map.find(k);
          if (v && *v != k + 42) violations.fetch_add(1);
          break;
        }
        default: {
          const std::size_t idx = rng.next_below(4096);
          arr.write(idx, idx + 1);
          if (arr.read(idx) == 0) {
            // Racy but only transiently zero before first write; a
            // nonzero slot can never read zero again. Re-check:
            if (arr.read(idx) != idx + 1) violations.fetch_add(1);
          }
          break;
        }
      }
      if (i % 200 == 0) rcua::reclaim::Qsbr::global().checkpoint();
    }
    rcua::reclaim::Qsbr::global().checkpoint();
  });

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(vec.size(), 0u);
  EXPECT_GT(map.size(), 0u);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

TEST(Integration, NoLeaksAfterHeavyChurn) {
  const auto blocks_before = rcua::Block<std::uint64_t>::live_count();
  const auto spines_before = rcua::Snapshot<std::uint64_t>::live_count();
  {
    rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
    for (int round = 0; round < 3; ++round) {
      RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 1024,
                                              {.block_size = 128});
      cluster.coforall_tasks(2, [&](std::uint32_t, std::uint32_t) {
        for (int i = 0; i < 200; ++i) arr.write(i % 1024, i);
      });
      for (int i = 0; i < 8; ++i) arr.resize_add(128);
      rcua::reclaim::Qsbr::global().flush_unsafe();
    }
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
  EXPECT_EQ(rcua::Block<std::uint64_t>::live_count(), blocks_before);
  EXPECT_EQ(rcua::Snapshot<std::uint64_t>::live_count(), spines_before);
}

TEST(Integration, WallclockModeAlsoMeasures) {
  // The harness's wallclock fallback must produce a finite positive rate.
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 4096);
  rcua::plat::Timer timer;
  cluster.coforall_tasks(2, [&](std::uint32_t l, std::uint32_t t) {
    for (std::uint64_t n = 0; n < 2000; ++n) {
      arr.write((l * 1000 + t * 100 + n) % 4096, n);
    }
  });
  EXPECT_GT(timer.elapsed_ns(), 0u);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}
