// Tests for DistBitset (growable distributed atomic bitset).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "containers/dist_bitset.hpp"

namespace rt = rcua::rt;
using rcua::cont::DistBitset;

namespace {
void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }
}  // namespace

TEST(DistBitset, SetTestClear) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistBitset<> bits(cluster, 256, {.block_size_words = 4});
  EXPECT_FALSE(bits.test(7));
  EXPECT_FALSE(bits.set(7));
  EXPECT_TRUE(bits.test(7));
  EXPECT_TRUE(bits.set(7));   // already set
  EXPECT_TRUE(bits.clear(7));
  EXPECT_FALSE(bits.test(7));
  EXPECT_FALSE(bits.clear(7));
  drain_qsbr();
}

TEST(DistBitset, TestBeyondCapacityIsFalse) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  DistBitset<> bits(cluster, 64, {.block_size_words = 2});
  EXPECT_FALSE(bits.test(1 << 20));
  drain_qsbr();
}

TEST(DistBitset, SetGrowsOnDemand) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistBitset<> bits(cluster, 64, {.block_size_words = 2});
  const std::size_t before = bits.capacity_bits();
  bits.set(before + 100);
  EXPECT_GT(bits.capacity_bits(), before);
  EXPECT_TRUE(bits.test(before + 100));
  EXPECT_FALSE(bits.test(before + 101));
  drain_qsbr();
}

TEST(DistBitset, CountMatchesSetBits) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  DistBitset<> bits(cluster, 6 * 64 * 4, {.block_size_words = 4});
  std::size_t expected = 0;
  for (std::size_t i = 0; i < bits.capacity_bits(); i += 17) {
    bits.set(i);
    ++expected;
  }
  EXPECT_EQ(bits.count(), expected);
  drain_qsbr();
}

TEST(DistBitset, TryClaimIsExclusive) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistBitset<> bits(cluster, 4096, {.block_size_words = 4});
  constexpr int kThreads = 4;
  constexpr std::size_t kBits = 512;
  std::vector<std::vector<std::size_t>> claimed(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kBits; ++i) {
        if (bits.try_claim(i)) claimed[t].push_back(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every bit claimed exactly once across all threads.
  std::set<std::size_t> all;
  std::size_t total = 0;
  for (const auto& v : claimed) {
    total += v.size();
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, kBits);
  EXPECT_EQ(all.size(), kBits);
  drain_qsbr();
}

TEST(DistBitset, ConcurrentSettersWithGrowth) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  DistBitset<> bits(cluster, 64, {.block_size_words = 2});
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        bits.set(static_cast<std::size_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bits.count(), kThreads * kPerThread);
  for (std::size_t i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_TRUE(bits.test(i)) << i;
  }
  drain_qsbr();
}

TEST(DistBitset, EbrPolicyVariantWorks) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistBitset<rcua::EbrPolicy> bits(cluster, 256, {.block_size_words = 2});
  bits.set(100);
  EXPECT_TRUE(bits.test(100));
  EXPECT_EQ(bits.count(), 1u);
}
