// Unit tests for the runtime's TLSList (ThreadRegistry): registration,
// domain slots, min-epoch scans, parking, flushing.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "reclaim/retire_list.hpp"
#include "runtime/thread_registry.hpp"

namespace rt = rcua::rt;
namespace reclaim = rcua::reclaim;

namespace {

/// Minimal EpochDomain for driving the registry directly.
class FakeDomain : public rt::EpochDomain {
 public:
  std::atomic<std::uint64_t> epoch{0};
  [[nodiscard]] std::uint64_t current_epoch() const noexcept override {
    return epoch.load();
  }
};

int destroyed = 0;
struct Counted {
  ~Counted() { ++destroyed; }
};

}  // namespace

TEST(DeferList, PushPopOrdering) {
  reclaim::DeferList list;
  EXPECT_TRUE(list.empty());
  list.push(reclaim::make_defer_node<int>(new int(1), 10));
  list.push(reclaim::make_defer_node<int>(new int(2), 20));
  list.push(reclaim::make_defer_node<int>(new int(3), 30));
  EXPECT_EQ(list.size(), 3u);
  // Descending by safe epoch from the head (Lemma 4).
  EXPECT_EQ(list.head()->safe_epoch, 30u);

  // Split at <= 15: only the epoch-10 suffix comes off.
  reclaim::DeferNode* chain = list.pop_less_equal(15);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->safe_epoch, 10u);
  EXPECT_EQ(chain->next, nullptr);
  reclaim::DeferList::reclaim_chain(chain);
  EXPECT_EQ(list.size(), 2u);

  // Split at <= 30: everything.
  chain = list.pop_less_equal(30);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->safe_epoch, 30u);
  EXPECT_EQ(chain->next->safe_epoch, 20u);
  reclaim::DeferList::reclaim_chain(chain);
  EXPECT_TRUE(list.empty());
}

TEST(DeferList, PopLessEqualOnEmptyIsNull) {
  reclaim::DeferList list;
  EXPECT_EQ(list.pop_less_equal(100), nullptr);
}

TEST(DeferList, FreeAllRunsDeleters) {
  destroyed = 0;
  {
    reclaim::DeferList list;
    list.push(reclaim::make_defer_node(new Counted, 1));
    list.push(reclaim::make_defer_node(new Counted, 2));
    list.free_all();
    EXPECT_EQ(destroyed, 2);
  }
}

TEST(DeferList, DestructorReclaimsPending) {
  destroyed = 0;
  {
    reclaim::DeferList list;
    list.push(reclaim::make_defer_node(new Counted, 1));
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(DeferNode, FnNodeRunsCallback) {
  static int hits = 0;
  hits = 0;
  auto* n = reclaim::make_defer_node_fn(
      [](void*) { ++hits; }, nullptr, 5);
  EXPECT_EQ(n->safe_epoch, 5u);
  n->run_and_dispose();
  EXPECT_EQ(hits, 1);
}

TEST(ThreadRegistry, LocalRecordIsStablePerThread) {
  rt::ThreadRegistry reg;
  rt::ThreadRecord& a = reg.local_record();
  rt::ThreadRecord& b = reg.local_record();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.record_count(), 1u);
}

TEST(ThreadRegistry, DistinctThreadsGetDistinctRecords) {
  rt::ThreadRegistry reg;
  rt::ThreadRecord* main_rec = &reg.local_record();
  rt::ThreadRecord* other_rec = nullptr;
  std::thread([&] { other_rec = &reg.local_record(); }).join();
  EXPECT_NE(main_rec, other_rec);
  EXPECT_EQ(reg.record_count(), 2u);
}

TEST(ThreadRegistry, ExitingThreadIsParked) {
  rt::ThreadRegistry reg;
  rt::ThreadRecord* rec = nullptr;
  std::thread([&] { rec = &reg.local_record(); }).join();
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->parked.load());
  EXPECT_EQ(reg.live_record_count(), 0u);
}

TEST(ThreadRegistry, DomainSlotAllocationAndRelease) {
  rt::ThreadRegistry reg;
  FakeDomain d1, d2;
  const std::size_t s1 = reg.register_domain(d1);
  const std::size_t s2 = reg.register_domain(d2);
  EXPECT_NE(s1, s2);
  reg.unregister_domain(s1);
  FakeDomain d3;
  EXPECT_EQ(reg.register_domain(d3), s1);  // slot recycled
  reg.unregister_domain(s1);
  reg.unregister_domain(s2);
}

TEST(ThreadRegistry, MinObservedEpochSkipsInactiveAndParked) {
  rt::ThreadRegistry reg;
  FakeDomain dom;
  const std::size_t slot = reg.register_domain(dom);

  // No active participants: ceiling.
  EXPECT_EQ(reg.min_observed_epoch(slot, 42), 42u);

  rt::ThreadRecord& me = reg.local_record();
  me.slots[slot].observed_epoch.store(7);
  me.slots[slot].active.store(true);
  EXPECT_EQ(reg.min_observed_epoch(slot, 42), 7u);

  // A second, lagging participant drags the minimum down...
  rt::ThreadRecord* other = nullptr;
  std::thread([&] {
    other = &reg.local_record();
    other->slots[slot].observed_epoch.store(3);
    other->slots[slot].active.store(true);
    other->parked.store(false);
  }).join();
  // (thread exit parked it; force it live again to model a lagging peer)
  other->parked.store(false);
  EXPECT_EQ(reg.min_observed_epoch(slot, 42), 3u);

  // ...until it parks.
  other->parked.store(true);
  EXPECT_EQ(reg.min_observed_epoch(slot, 42), 7u);
  reg.unregister_domain(slot);
}

TEST(ThreadRegistry, ParkFlushesOwnListAndExcludesThread) {
  destroyed = 0;
  rt::ThreadRegistry reg;
  FakeDomain dom;
  const std::size_t slot = reg.register_domain(dom);

  rt::ThreadRecord& me = reg.local_record();
  me.slots[slot].active.store(true);
  dom.epoch.store(10);
  me.slots[slot].observed_epoch.store(10);
  me.slots[slot].defer_list.push(reclaim::make_defer_node(new Counted, 9));

  reg.park_current_thread();
  EXPECT_EQ(destroyed, 1);  // own list flushed at park
  EXPECT_TRUE(me.parked.load());
  EXPECT_EQ(reg.live_record_count(), 0u);

  reg.unpark_current_thread();
  EXPECT_FALSE(me.parked.load());
  EXPECT_EQ(me.slots[slot].observed_epoch.load(), 10u);
  reg.unregister_domain(slot);
}

TEST(ThreadRegistry, ParkCannotFlushWhatOthersStillGate) {
  destroyed = 0;
  rt::ThreadRegistry reg;
  FakeDomain dom;
  const std::size_t slot = reg.register_domain(dom);

  // A lagging live peer at epoch 1.
  rt::ThreadRecord* other = nullptr;
  std::thread([&] {
    other = &reg.local_record();
    other->slots[slot].observed_epoch.store(1);
    other->slots[slot].active.store(true);
  }).join();
  other->parked.store(false);

  rt::ThreadRecord& me = reg.local_record();
  me.slots[slot].active.store(true);
  dom.epoch.store(10);
  me.slots[slot].defer_list.push(reclaim::make_defer_node(new Counted, 9));

  reg.park_current_thread();
  EXPECT_EQ(destroyed, 0);  // epoch 9 > min(1): must stay deferred
  EXPECT_EQ(me.slots[slot].defer_list.size(), 1u);

  reg.unpark_current_thread();
  reg.unregister_domain(slot);  // flushes the remainder
  EXPECT_EQ(destroyed, 1);
}

TEST(ThreadRegistry, UnregisterDeactivatesSlotEverywhere) {
  rt::ThreadRegistry reg;
  FakeDomain dom;
  const std::size_t slot = reg.register_domain(dom);
  rt::ThreadRecord& me = reg.local_record();
  me.slots[slot].active.store(true);
  me.slots[slot].observed_epoch.store(99);
  reg.unregister_domain(slot);
  EXPECT_FALSE(me.slots[slot].active.load());
  EXPECT_EQ(me.slots[slot].observed_epoch.load(), 0u);
}

TEST(ThreadRegistry, FlushSlotUnsafeDrainsEverything) {
  destroyed = 0;
  rt::ThreadRegistry reg;
  FakeDomain dom;
  const std::size_t slot = reg.register_domain(dom);
  rt::ThreadRecord& me = reg.local_record();
  me.slots[slot].defer_list.push(reclaim::make_defer_node(new Counted, 5));
  me.slots[slot].defer_list.push(reclaim::make_defer_node(new Counted, 6));
  reg.flush_slot_unsafe(slot);
  EXPECT_EQ(destroyed, 2);
  reg.unregister_domain(slot);
}

TEST(ThreadRegistry, CountedScanReportsLiveRecords) {
  rt::ThreadRegistry reg;
  FakeDomain dom;
  const std::size_t slot = reg.register_domain(dom);
  (void)reg.local_record();
  std::thread([&] { (void)reg.local_record(); }).join();  // parked on exit
  std::uint64_t live = 0;
  (void)reg.min_observed_epoch_counted(slot, 0, live);
  EXPECT_EQ(live, 1u);  // only the main thread
  reg.unregister_domain(slot);
}
