// Stress tests for the tasking layer: nested parallelism, overflow
// threads, group fan-in, parking churn, and context fidelity under load.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/this_task.hpp"
#include "runtime/thread_registry.hpp"
#include "reclaim/qsbr.hpp"

namespace rt = rcua::rt;

TEST(TaskPoolStress, DeeplyNestedCoforalls) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  std::atomic<int> leaves{0};
  cluster.coforall_locales([&](std::uint32_t) {
    cluster.coforall_locales([&](std::uint32_t) {
      cluster.coforall_locales([&](std::uint32_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 8);
}

TEST(TaskPoolStress, ManyConcurrentGroups) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 3});
  constexpr int kGroups = 16;
  constexpr int kTasksPerGroup = 20;
  std::atomic<int> done{0};
  std::vector<std::thread> submitters;
  for (int g = 0; g < kGroups; ++g) {
    submitters.emplace_back([&, g] {
      rt::TaskPool::Group group;
      group.add(kTasksPerGroup);
      for (int i = 0; i < kTasksPerGroup; ++i) {
        cluster.pool().submit(static_cast<std::uint32_t>((g + i) % 2), &group,
                              [&] { done.fetch_add(1); });
      }
      group.wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(done.load(), kGroups * kTasksPerGroup);
}

TEST(TaskPoolStress, OverflowStormCompletes) {
  // Saturate a 1-worker pool with blocking tasks so nearly everything
  // overflows; all tasks must still complete and be counted.
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<int> done{0};
  rt::TaskPool::Group group;
  constexpr int kTasks = 64;
  group.add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    cluster.pool().submit(0, &group, [&] {
      const int now = running.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_GT(cluster.pool().overflow_tasks(), 0u);
  EXPECT_GT(peak.load(), 1);  // overflow threads genuinely ran in parallel
}

TEST(TaskPoolStress, ContextCorrectUnderChurn) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 2});
  std::atomic<int> wrong{0};
  for (int round = 0; round < 20; ++round) {
    cluster.coforall_tasks(3, [&](std::uint32_t l, std::uint32_t) {
      if (rt::this_task().cluster != &cluster ||
          rt::this_task().locale_id != l) {
        wrong.fetch_add(1);
      }
    });
  }
  EXPECT_EQ(wrong.load(), 0);
}

TEST(TaskPoolStress, ParkUnparkChurnKeepsQsbrSafe) {
  // Pool workers park between tasks; QSBR reclamation driven from the
  // main thread must stay correct through thousands of park/unpark
  // transitions.
  static std::atomic<int> freed{0};
  freed.store(0);
  struct Counted {
    ~Counted() { freed.fetch_add(1); }
  };

  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  auto& qsbr = rcua::reclaim::Qsbr::global();
  int deferred = 0;
  for (int round = 0; round < 200; ++round) {
    // Short task burst -> workers park after each burst.
    cluster.coforall_locales([&](std::uint32_t) {
      qsbr.checkpoint();  // workers participate
    });
    qsbr.defer_delete(new Counted);
    ++deferred;
    qsbr.checkpoint();
  }
  qsbr.flush_unsafe();
  EXPECT_EQ(freed.load(), deferred);
}

TEST(TaskPoolStress, TwoClustersCoexist) {
  rt::Cluster a({.num_locales = 2, .workers_per_locale = 2});
  rt::Cluster b({.num_locales = 3, .workers_per_locale = 2});
  std::atomic<int> in_a{0}, in_b{0}, misrouted{0};
  std::thread ta([&] {
    a.coforall_tasks(2, [&](std::uint32_t, std::uint32_t) {
      if (rt::this_task().cluster != &a) misrouted.fetch_add(1);
      in_a.fetch_add(1);
    });
  });
  std::thread tb([&] {
    b.coforall_tasks(2, [&](std::uint32_t, std::uint32_t) {
      if (rt::this_task().cluster != &b) misrouted.fetch_add(1);
      in_b.fetch_add(1);
    });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(in_a.load(), 4);
  EXPECT_EQ(in_b.load(), 6);
  EXPECT_EQ(misrouted.load(), 0);
}

TEST(TaskPoolStress, RapidClusterCreateDestroy) {
  for (int i = 0; i < 10; ++i) {
    rt::Cluster cluster(
        {.num_locales = 2u + (i % 3), .workers_per_locale = 1u + (i % 2)});
    std::atomic<int> ran{0};
    cluster.coforall_locales([&](std::uint32_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), static_cast<int>(cluster.num_locales()));
  }
  SUCCEED();
}
