// Schedule-exploration tests for QSBR (Algorithm 2): the checkpoint's
// min-observed-epoch scan, and the park/unpark transitions that remove a
// thread from that scan.
//
// Reclamation is modeled with defer_fn deleters that flip `freed` flags in
// an arena owned by the scenario (never a real free), so a protocol bug is
// detected as a flag read.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "reclaim/qsbr.hpp"
#include "runtime/thread_registry.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

/// Per-schedule QSBR world: its own registry (so ThreadRecords never
/// accumulate across schedules) and domain, plus the modeled object.
struct World {
  rcua::rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr{registry};
  std::atomic<bool> freed{false};
  std::atomic<bool> holder_visible{false};
  std::atomic<bool> holder_done{false};

  static void mark_freed(void* p) {
    static_cast<std::atomic<bool>*>(p)->store(true,
                                              std::memory_order_seq_cst);
  }
};

/// The holder participates (observing the pre-defer state) and then uses a
/// protected reference across schedule points; per the QSBR contract that
/// reference is valid until the holder's own next checkpoint. Afterwards it
/// parks — going idle under the baton, so the record stops gating minima at
/// a schedule-controlled instant (thread-exit parking would be timed by the
/// OS, not the schedule).
void holder_task(const std::shared_ptr<World>& w) {
  w->qsbr.ensure_participant();
  w->holder_visible.store(true, std::memory_order_seq_cst);
  rcua::testing::sched_point("test.holder.acquired");
  if (w->freed.load(std::memory_order_seq_cst)) {
    rcua::testing::sched_violation(
        "object reclaimed before the holder's checkpoint");
  }
  rcua::testing::sched_point("test.holder.still_using");
  if (w->freed.load(std::memory_order_seq_cst)) {
    rcua::testing::sched_violation(
        "object reclaimed before the holder's checkpoint");
  }
  w->qsbr.checkpoint();  // quiescent: the reference is dead from here on
  w->qsbr.park();
  w->holder_done.store(true, std::memory_order_seq_cst);
}

/// The reclaimer defers the object once the holder is visible to the
/// min-epoch scan. The first checkpoint runs while the holder may still be
/// inside its critical region (the mutation reclaims here); the second runs
/// after the holder has quiesced and must always reclaim.
void reclaimer_task(const std::shared_ptr<World>& w) {
  rcua::testing::sched_await("test.wait_holder_visible", [w] {
    return w->holder_visible.load(std::memory_order_seq_cst);
  });
  w->qsbr.defer_fn(&World::mark_freed, &w->freed);
  w->qsbr.checkpoint();
  rcua::testing::sched_await("test.wait_holder_done", [w] {
    return w->holder_done.load(std::memory_order_seq_cst);
  });
  w->qsbr.checkpoint();
  if (w->qsbr.pending_on_this_thread() != 0) {
    rcua::testing::sched_violation(
        "deferral survived a checkpoint with every other thread quiescent");
  }
}

void holder_reclaimer_scenario(Scheduler& sched) {
  auto w = std::make_shared<World>();
  sched.spawn("holder", [w] { holder_task(w); });
  sched.spawn("reclaimer", [w] { reclaimer_task(w); });
}

TEST(SchedQsbr, MutationIgnoreMinFound) {
  ScopedMutation mut(&rcua::testing::mutations().qsbr_ignore_min);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, holder_reclaimer_scenario);
  ASSERT_TRUE(result.found)
      << "checkpoint ignoring the min observed epoch (lines 6-8) must free "
         "under a live holder and be caught";

  // Deterministic replay from the printed seed.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again =
      rcua::testing::explore(replay, holder_reclaimer_scenario);
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedQsbr, MutationIgnoreMinFoundByDfs) {
  ScopedMutation mut(&rcua::testing::mutations().qsbr_ignore_min);
  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 10000;
  opts.preemption_bound = 2;
  const ExploreResult result =
      rcua::testing::explore(opts, holder_reclaimer_scenario);
  ASSERT_TRUE(result.found);
}

TEST(SchedQsbr, NegativeControlRandom) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 1500;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, holder_reclaimer_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedQsbr, NegativeControlDfsExhaustive) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 2;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, holder_reclaimer_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_TRUE(result.exhausted)
      << "expected to enumerate the full 2-preemption schedule tree, ran "
      << result.schedules_run;
}

// A parked thread must stop gating the safe-epoch minimum: with the holder
// parked, the reclaimer's checkpoint reclaims even though the holder's
// observed epoch is stale. This drives the registry.park.* schedule points
// and checks the liveness half of parking (the safety half — a *non*-parked
// stale holder blocks reclaim — is the negative control above).
TEST(SchedQsbr, ParkedThreadDoesNotGateReclamation) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 300;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto w = std::make_shared<World>();
        sched.spawn("holder", [w] {
          w->qsbr.ensure_participant();
          rcua::testing::sched_point("test.holder.idle");
          // Going idle with no protected references: park.
          w->qsbr.park();
          w->holder_visible.store(true, std::memory_order_seq_cst);
          rcua::testing::sched_await("test.holder.wait_freed", [w] {
            return w->freed.load(std::memory_order_seq_cst);
          });
          w->qsbr.unpark();
          w->qsbr.checkpoint();
        });
        sched.spawn("reclaimer", [w] {
          rcua::testing::sched_await("test.wait_parked", [w] {
            return w->holder_visible.load(std::memory_order_seq_cst);
          });
          w->qsbr.defer_fn(&World::mark_freed, &w->freed);
          const std::size_t n = w->qsbr.checkpoint();
          if (n != 1 || !w->freed.load(std::memory_order_seq_cst)) {
            rcua::testing::sched_violation(
                "parked holder still gated the checkpoint");
          }
        });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

}  // namespace
