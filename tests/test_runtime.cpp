// Tests for the cluster runtime: task context, comm counters, on/coforall
// semantics, the task pool (including overflow threads and parking).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/this_task.hpp"
#include "runtime/thread_registry.hpp"
#include "sim/cost_model.hpp"
#include "sim/task_clock.hpp"

namespace rt = rcua::rt;
namespace sim = rcua::sim;

TEST(ThisTask, DefaultContextIsLocaleZeroNoCluster) {
  const rt::TaskContext& ctx = rt::this_task();
  EXPECT_EQ(ctx.cluster, nullptr);
  EXPECT_EQ(ctx.locale_id, 0u);
}

TEST(ThisTask, LocaleScopeSetsAndRestores) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  {
    rt::LocaleScope scope(cluster, 1, 7);
    EXPECT_EQ(rt::this_task().cluster, &cluster);
    EXPECT_EQ(rt::this_task().locale_id, 1u);
    EXPECT_EQ(rt::this_task().worker_id, 7u);
    EXPECT_EQ(cluster.here(), 1u);
  }
  EXPECT_EQ(rt::this_task().cluster, nullptr);
  EXPECT_EQ(cluster.here(), 0u);
}

TEST(Cluster, RejectsZeroLocales) {
  EXPECT_THROW(rt::Cluster({.num_locales = 0, .workers_per_locale = 2}),
               std::invalid_argument);
}

TEST(Cluster, RejectsZeroWorkersPerLocale) {
  EXPECT_THROW(rt::Cluster({.num_locales = 2, .workers_per_locale = 0}),
               std::invalid_argument);
}

TEST(Cluster, RejectsZeroMaxPids) {
  rt::ClusterConfig config;
  config.max_pids = 0;
  EXPECT_THROW(rt::Cluster{config}, std::invalid_argument);
}

TEST(Cluster, ValidationErrorNamesTheField) {
  try {
    rt::Cluster cluster({.num_locales = 0, .workers_per_locale = 1});
    FAIL() << "num_locales == 0 must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("num_locales"), std::string::npos)
        << e.what();
  }
}

TEST(Cluster, ConstructionExposesConfiguredShape) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  EXPECT_EQ(cluster.num_locales(), 3u);
  EXPECT_EQ(cluster.pool().num_locales(), 3u);
  EXPECT_EQ(cluster.pool().workers_per_locale(), 2u);
  EXPECT_EQ(cluster.locale(2).id(), 2u);
  EXPECT_EQ(cluster.comm().num_locales(), 3u);
}

TEST(Cluster, OnRunsWithTargetLocaleContext) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 1});
  std::uint32_t observed = ~0u;
  cluster.on(2, [&] { observed = cluster.here(); });
  EXPECT_EQ(observed, 2u);
}

TEST(Cluster, OnSameLocaleRunsInline) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  rt::LocaleScope scope(cluster, 1);
  const auto tid = std::this_thread::get_id();
  std::thread::id observed;
  cluster.on(1, [&] { observed = std::this_thread::get_id(); });
  EXPECT_EQ(observed, tid);
  EXPECT_EQ(cluster.comm().total_executes(), 0u);
}

TEST(Cluster, OnRemoteCountsExecute) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  cluster.on(1, [] {});
  EXPECT_EQ(cluster.comm().executes(0), 1u);
}

TEST(Cluster, CoforallLocalesVisitsEveryLocaleOnce) {
  rt::Cluster cluster({.num_locales = 5, .workers_per_locale = 1});
  std::vector<std::atomic<int>> visits(5);
  cluster.coforall_locales([&](std::uint32_t l) {
    EXPECT_EQ(cluster.here(), l);
    visits[l].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Cluster, CoforallTasksRunsFullTeam) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 4});
  std::atomic<int> count{0};
  std::mutex mu;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  cluster.coforall_tasks(4, [&](std::uint32_t l, std::uint32_t t) {
    count.fetch_add(1);
    std::lock_guard<std::mutex> guard(mu);
    seen.insert({l, t});
  });
  EXPECT_EQ(count.load(), 12);
  EXPECT_EQ(seen.size(), 12u);
}

TEST(Cluster, NestedCoforallDoesNotDeadlock) {
  // A coforall body that itself coforalls (the resize-inside-workload
  // shape) must complete even with a single worker per locale, via the
  // pool's overflow threads.
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  std::atomic<int> inner{0};
  cluster.coforall_locales([&](std::uint32_t) {
    cluster.coforall_locales([&](std::uint32_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 4);
  EXPECT_GT(cluster.pool().overflow_tasks(), 0u);
}

TEST(Cluster, CoforallChargesInitiatorWithLongestBody) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.task_spawn_ns = 100;
  m.remote_execute_ns = 1000;
  m.async_issue_ns = 500;

  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 1});
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    cluster.coforall_locales([&](std::uint32_t l) {
      sim::charge(l == 2 ? 5000.0 : 10.0);  // one slow body
    });
  }
  // 4 spawns + 3 pipelined launch issues (initiator is locale 0; each
  // remote launch charges only the 500ns issue carve-out) + the longest
  // branch including its launch-latency remainder (500 + 5000 on the
  // slow remote body — the remainders overlap instead of summing).
  EXPECT_EQ(clock.vtime_ns, 4 * 100u + 3 * 500u + (500u + 5000u));
}

TEST(Cluster, OnChargesBodyToInitiator) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.remote_execute_ns = 1000;

  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    cluster.on(1, [] { sim::charge(777); });
  }
  EXPECT_EQ(clock.vtime_ns, 1000u + 777u);
}

TEST(CommLayer, LocalAccessIsNotCommunication) {
  rt::CommLayer comm(2);
  comm.record_access(0, 0, false);
  comm.record_access(1, 1, true);
  EXPECT_EQ(comm.total_gets(), 0u);
  EXPECT_EQ(comm.total_puts(), 0u);
}

TEST(CommLayer, RemoteAccessCountsBySource) {
  rt::CommLayer comm(3);
  comm.record_access(0, 1, false);
  comm.record_access(0, 2, false);
  comm.record_access(1, 0, true);
  EXPECT_EQ(comm.gets(0), 2u);
  EXPECT_EQ(comm.puts(1), 1u);
  EXPECT_EQ(comm.total_gets(), 2u);
  EXPECT_EQ(comm.total_puts(), 1u);
}

TEST(CommLayer, ResetClears) {
  rt::CommLayer comm(2);
  comm.record_access(0, 1, false);
  comm.record_execute(0, 1);
  comm.reset();
  EXPECT_EQ(comm.total_gets(), 0u);
  EXPECT_EQ(comm.total_executes(), 0u);
}

TEST(TaskPool, GroupWaitsForAll) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 4});
  rt::TaskPool::Group group;
  std::atomic<int> done{0};
  group.add(8);
  for (int i = 0; i < 8; ++i) {
    cluster.pool().submit(0, &group, [&] {
      std::this_thread::yield();
      done.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskPool, ManyMoreTasksThanWorkersCompletes) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  std::atomic<int> done{0};
  rt::TaskPool::Group group;
  group.add(200);
  for (int i = 0; i < 200; ++i) {
    cluster.pool().submit(i % 2, &group, [&] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 200);
}

TEST(TaskPool, WorkerContextMatchesLocale) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 1});
  std::atomic<bool> ok{true};
  rt::TaskPool::Group group;
  group.add(3);
  for (std::uint32_t l = 0; l < 3; ++l) {
    cluster.pool().submit(l, &group, [&, l] {
      if (rt::this_task().cluster != &cluster ||
          rt::this_task().locale_id != l) {
        ok.store(false);
      }
    });
  }
  group.wait();
  EXPECT_TRUE(ok.load());
}

TEST(TaskPool, IdleWorkersParkInRegistry) {
  const auto live_before = rt::ThreadRegistry::global().live_record_count();
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  // Let workers reach their first park.
  for (int i = 0; i < 100 && rt::ThreadRegistry::global().live_record_count() >
                                 live_before;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LE(rt::ThreadRegistry::global().live_record_count(), live_before);
}

TEST(Locale, AllocationAccounting) {
  rt::Locale loc(3);
  loc.note_alloc(128);
  loc.note_alloc(64);
  EXPECT_EQ(loc.allocations(), 2u);
  EXPECT_EQ(loc.bytes_live(), 192u);
  loc.note_free(64);
  EXPECT_EQ(loc.frees(), 1u);
  EXPECT_EQ(loc.bytes_live(), 128u);
}
