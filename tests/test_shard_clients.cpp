// Containers as shard clients (typed over EBR and QSBR, the two
// policies the service layer ships as defaults): DistVector,
// DistHashMap and DistIdTable with Backend = svc::ShardedCollection
// must agree with their sequential semantics while the backend remaps
// its routing table and live-migrates shards underneath them — the
// same contract the test_rcu_array_* matrix pins for the plain array.
//
// Writes are quiesced during migrations (RCUArray::rehome's
// concurrency contract: element writes racing the copy phase are
// last-writer-wins); lookups and remaps run fully concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "containers/dist_hash_map.hpp"
#include "containers/dist_id_table.hpp"
#include "containers/dist_vector.hpp"
#include "runtime/cluster.hpp"
#include "service/sharded_collection.hpp"

using rcua::EbrPolicy;
using rcua::QsbrPolicy;
namespace rt = rcua::rt;
namespace cont = rcua::cont;
namespace svc = rcua::svc;

namespace {

template <typename Policy>
struct ShardClients : public ::testing::Test {
  using Vector =
      cont::DistVector<std::uint64_t, Policy, svc::ShardedCollection>;
  using Map = cont::DistHashMap<std::uint64_t, std::uint64_t, Policy,
                                svc::ShardedCollection>;
  using Table =
      cont::DistIdTable<std::uint64_t, Policy, svc::ShardedCollection>;
};

using ClientPolicies = ::testing::Types<EbrPolicy, QsbrPolicy>;
TYPED_TEST_SUITE(ShardClients, ClientPolicies);

void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

}  // namespace

TYPED_TEST(ShardClients, DistVectorAgreesOnShardedBackend) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Vector vec(cluster, {.block_size = 64});
  EXPECT_EQ(vec.backing().shard_count(), cluster.num_locales());
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(vec.push_back(i * 2 + 1), i);
  }
  EXPECT_EQ(vec.size(), 500u);
  for (std::size_t i = 0; i < 500; ++i) EXPECT_EQ(vec[i], i * 2 + 1);
  const std::vector<std::uint64_t> range = vec.read_range(100, 300);
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(range[i], (100 + i) * 2 + 1);
  drain_qsbr();
}

TYPED_TEST(ShardClients, DistVectorSurvivesLiveMigration) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Vector vec(cluster, {.block_size = 64});
  for (std::uint64_t i = 0; i < 400; ++i) vec.push_back(i + 11);

  auto& coll = vec.backing();
  // Move every shard off its initial home and verify the vector's
  // contract is untouched — indices are routing arithmetic, not
  // placement, so values stay put.
  for (std::size_t s = 0; s < coll.shard_count(); ++s) {
    const std::uint32_t from = coll.home_of(s);
    ASSERT_TRUE(coll.migrate(s, (from + 1) % cluster.num_locales()));
  }
  for (std::size_t i = 0; i < 400; ++i) EXPECT_EQ(vec[i], i + 11);
  // Appends keep working after the moves (growth lands on new homes).
  for (std::uint64_t i = 400; i < 600; ++i) vec.push_back(i + 11);
  for (std::size_t i = 0; i < 600; ++i) EXPECT_EQ(vec.at(i), i + 11);
  drain_qsbr();
}

TYPED_TEST(ShardClients, DistIdTableAgreesAcrossMigration) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Table table(cluster, {.block_size = 64});
  std::vector<std::size_t> ids;
  for (std::uint64_t v = 0; v < 300; ++v) {
    ids.push_back(table.allocate(v * 5 + 2));
  }
  EXPECT_EQ(table.live(), 300u);
  auto& coll = table.backing();
  for (std::size_t s = 0; s < coll.shard_count(); ++s) {
    const std::uint32_t from = coll.home_of(s);
    ASSERT_TRUE(coll.migrate(s, (from + 1) % cluster.num_locales()));
  }
  // Ids are stable across the move: same dense id, same value.
  for (std::uint64_t v = 0; v < 300; ++v) {
    EXPECT_EQ(table.get(ids[v]), v * 5 + 2);
  }
  // Recycling still works against the migrated storage.
  table.release(ids[7]);
  EXPECT_EQ(table.allocate(999), ids[7]);
  EXPECT_EQ(table.get(ids[7]), 999u);
  drain_qsbr();
}

TYPED_TEST(ShardClients, DistIdTableLookupsConcurrentWithMigration) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Table table(cluster, {.block_size = 64});
  constexpr std::uint64_t kIds = 256;
  for (std::uint64_t v = 0; v < kIds; ++v) table.allocate(v ^ 0xbeefu);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> first_bad_id{0};
  std::atomic<std::uint64_t> first_bad_got{0};
  // table.read, not table.get: lookups racing a migration must use the
  // value path (in-section copy). get()'s escaping reference is only
  // covered by §III-C's recycling argument, which rehome's block
  // reclamation breaks — the typed suite proved that the hard way.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (std::uint64_t v = 0; v < kIds; ++v) {
        const std::uint64_t got = table.read(v);
        if (got != (v ^ 0xbeefu)) {
          if (mismatches.fetch_add(1, std::memory_order_relaxed) == 0) {
            first_bad_id.store(v, std::memory_order_relaxed);
            first_bad_got.store(got, std::memory_order_relaxed);
          }
        }
      }
    }
  });
  // Reads are safe throughout a migration (rehome's contract); bounce
  // every shard across the locales while the reader hammers lookups.
  auto& coll = table.backing();
  for (int round = 0; round < 4; ++round) {
    for (std::size_t s = 0; s < coll.shard_count(); ++s) {
      const std::uint32_t from = coll.home_of(s);
      ASSERT_TRUE(coll.migrate(s, (from + 1) % cluster.num_locales()));
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(mismatches.load(), 0u)
      << "first mismatch: id=" << first_bad_id.load() << " got 0x" << std::hex
      << first_bad_got.load() << " want 0x" << (first_bad_id.load() ^ 0xbeefu);
  for (std::uint64_t v = 0; v < kIds; ++v) {
    EXPECT_EQ(table.get(v), v ^ 0xbeefu);
  }
  drain_qsbr();
}

TYPED_TEST(ShardClients, DistHashMapAgreesOnShardedBackend) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Map map(cluster,
                                {.num_buckets = 64, .block_size = 64});
  // Enough keys to chain through overflow slots and force slab growth
  // across the shards.
  for (std::uint64_t k = 0; k < 600; ++k) {
    EXPECT_TRUE(map.insert(k, k * 3 + 1));
  }
  EXPECT_EQ(map.size(), 600u);
  EXPECT_GT(map.growths(), 0u);
  for (std::uint64_t k = 0; k < 600; ++k) {
    const auto v = map.find(k);
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_EQ(*v, k * 3 + 1);
  }
  // Erase/revive through tombstones still behaves on the sharded slab.
  EXPECT_TRUE(map.erase(17));
  EXPECT_FALSE(map.contains(17));
  EXPECT_TRUE(map.insert(17, 1234));
  EXPECT_EQ(map.find(17).value(), 1234u);
  drain_qsbr();
}

TYPED_TEST(ShardClients, DistHashMapAgreementUnderConcurrentRemap) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Map map(cluster,
                                {.num_buckets = 64, .block_size = 64});
  constexpr std::uint64_t kWarm = 300;
  for (std::uint64_t k = 0; k < kWarm; ++k) map.insert(k, k + 7);

  // Two lookup threads and one inserter (disjoint keys) race a stream
  // of remap publications — the RCU read of the mapping table is on the
  // routing path of every slot access, so this is the
  // remap-concurrent-with-lookup scenario of DESIGN.md §14.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (std::uint64_t k = 0; k < kWarm; ++k) {
          const auto v = map.find(k);
          if (!v.has_value() || *v != k + 7) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread inserter([&] {
    for (std::uint64_t k = kWarm; k < kWarm + 200; ++k) {
      map.insert(k, k + 7);
    }
  });
  auto& coll = map.backing();
  for (int round = 0; round < 32; ++round) {
    for (std::size_t s = 0; s < coll.shard_count(); ++s) {
      coll.remap(s, static_cast<std::uint32_t>((s + round) %
                                               cluster.num_locales()));
    }
  }
  inserter.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(map.size(), kWarm + 200);
  for (std::uint64_t k = 0; k < kWarm + 200; ++k) {
    const auto v = map.find(k);
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_EQ(*v, k + 7);
  }
  drain_qsbr();
}
