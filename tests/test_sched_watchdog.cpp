// Schedule-exploration tests for the watchdog's overflow retire path:
// a writer whose deadline-bounded drain times out defers the retired
// snapshot onto an OverflowRetireList and later flushes entries once
// BOTH reader columns have been observed empty since the push.
//
// The `watchdog_skip_recheck` mutation regresses the flush to gating
// each entry on its own retire parity — plausible (it mirrors the
// blocking drain) but unsound once the writer runs ahead of a stalled
// reader — and the harness must find a violating schedule. The negative
// controls run the same scenario unmutated and additionally assert the
// deferred entries ARE reclaimed once every reader has left (no leak,
// no hang).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "reclaim/ebr.hpp"
#include "reclaim/stall_monitor.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

/// "Reclamation" is flipping a freed-flag, so a protocol bug is detected
/// as a flag read, not a real use-after-free. Stripes are pinned to 2 so
/// seeds replay identically on any machine.
struct Arena {
  Arena() : ebr(0, /*stripes=*/2) {}

  rcua::reclaim::BasicEbr<std::uint64_t> ebr;
  rcua::reclaim::OverflowRetireList overflow;
  std::atomic<std::size_t> current{0};
  std::atomic<bool> freed[8] = {};
};

void flag_free(void* p) {
  static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_seq_cst);
}

void reader_once(Arena& a) {
  a.ebr.read([&] {
    const std::size_t s = a.current.load(std::memory_order_seq_cst);
    rcua::testing::sched_point("test.reader.deref");
    if (a.freed[s].load(std::memory_order_seq_cst)) {
      rcua::testing::sched_violation(
          "reader dereferenced an overflow-reclaimed snapshot");
    }
  });
}

/// Writer with the stall-tolerant retire path: publish, bump, bounded
/// drain; on timeout (or with entries already deferred) defer the old
/// snapshot and try an opportunistic two-column flush.
void writer_rounds(Arena& a, std::size_t rounds) {
  rcua::reclaim::StallPolicy policy;
  policy.deadline_ns = 1;  // non-blocking: give up after `sched_polls`
  policy.sched_polls = 1;
  auto drained = [&](std::size_t parity) {
    return a.ebr.readers_at(parity) == 0;
  };
  for (std::size_t r = 1; r <= rounds; ++r) {
    const std::size_t old = a.current.load(std::memory_order_seq_cst);
    rcua::testing::sched_point("test.writer.publish");
    a.current.store(r, std::memory_order_seq_cst);
    const auto e = a.ebr.advance_epoch();
    const auto drain = a.ebr.try_wait_for_readers(e, policy);
    // The direct free is only sound while nothing is deferred: a pending
    // entry means an earlier drain never completed, so a reader on the
    // other parity may hold THIS round's victim (DESIGN.md §8).
    if (drain.drained && a.overflow.pending_objects() == 0) {
      a.freed[old].store(true, std::memory_order_seq_cst);
    } else {
      a.overflow.push(&flag_free, &a.freed[old], /*bytes=*/1,
                      static_cast<std::uint64_t>(e));
    }
    rcua::testing::sched_point("test.writer.flush");
    a.overflow.flush_ready(drained);
  }
}

void two_round_scenario(Scheduler& sched) {
  auto a = std::make_shared<Arena>();
  sched.spawn("reader", [a] { reader_once(*a); });
  sched.spawn("writer", [a] { writer_rounds(*a, 2); });
  sched.on_finish([a](Scheduler& s) {
    // Liveness half of the watchdog contract: with every reader gone the
    // parity columns are empty, so one more flush must reclaim every
    // deferred snapshot.
    a->overflow.flush_ready(
        [&](std::size_t parity) { return a->ebr.readers_at(parity) == 0; });
    if (!a->freed[0].load() || !a->freed[1].load()) {
      s.violation("a deferred snapshot was never reclaimed");
    }
  });
}

}  // namespace

TEST(SchedWatchdog, MutationSkipRecheckFound) {
  ScopedMutation mut(&rcua::testing::mutations().watchdog_skip_recheck);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  ASSERT_TRUE(result.found)
      << "freeing overflowed memory without re-checking the parity column "
         "must be caught";

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again =
      rcua::testing::explore(replay, two_round_scenario);
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.schedules_run, 1u);
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedWatchdog, MutationSkipRecheckFoundByDfs) {
  ScopedMutation mut(&rcua::testing::mutations().watchdog_skip_recheck);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  ASSERT_TRUE(result.found)
      << "the recheck bug needs few preemptions; bounded DFS must reach it";
}

TEST(SchedWatchdog, NegativeControlRandom) {
  // Unmutated overflow path: no schedule may free under a live reader,
  // and every deferred snapshot is reclaimed by the final flush.
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedWatchdog, NegativeControlDfs) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

TEST(SchedWatchdog, TwoReadersAcrossStripesStaySafe) {
  // The flush's drained-predicate sums the parity column across stripes;
  // two readers on distinct stripes must both gate it.
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto a = std::make_shared<Arena>();
        for (int r = 0; r < 2; ++r) {
          sched.spawn("reader", [a] { reader_once(*a); });
        }
        sched.spawn("writer", [a] { writer_rounds(*a, 2); });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}
