// Schedule-exploration tests for the ASYNC bulk path (rt::AsyncComm
// under RCUArray::bulk ops, DESIGN.md §10).
//
// The protocol line under test is the completion-drain rule: issuing the
// aggregated flushes inside the read-side critical section is NOT
// enough — the completions carry the raw block pointers, so the drain
// that delivers them must also finish before the section closes. The
// `async_drain_after_release` mutation keeps the issue inside the
// section but moves `Aggregator::drain()` past the release — plausible
// (the ops were "sent" while pinned, and the synchronous model was safe
// at the same program point) — and the harness must find the schedule
// where the writer's resize_remove completes its grace period between
// the release and the delivery.
//
// Reclamation is detected with a flag (`removed`), set by the writer
// only after resize_remove returned, and checked by the span-op before
// it would touch block memory — a protocol violation shows up as a flag
// read, never as a real use-after-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/rcu_array.hpp"
#include "runtime/cluster.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::EbrPolicy;
using rcua::RCUArray;
using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

constexpr std::uint32_t kLocales = 2;
constexpr std::size_t kBlock = 4;

rcua::rt::ClusterConfig small_cluster() {
  rcua::rt::ClusterConfig cfg;
  cfg.num_locales = kLocales;
  cfg.workers_per_locale = 1;
  return cfg;
}

struct State {
  // Cache pinned OFF (not just env-default off): these tests prove the
  // *aggregator* mutations are findable, and a cache-enabled read path
  // would serve block 1 from a local copy instead of issuing the async
  // flush under test (the nightly RCUA_CACHE_CAPACITY_BYTES sweep runs
  // this suite with the cache forced huge).
  explicit State(rcua::rt::Cluster& c)
      : arr(c, 0, {.block_size = kBlock, .cache_capacity_bytes = 0}) {}

  RCUArray<int, EbrPolicy> arr;
  std::atomic<bool> ready{false};
  std::atomic<bool> removed{false};
  std::atomic<std::size_t> visited{0};
  std::atomic<bool> range_gone{false};
};

/// Writer: grow to two blocks (block 0 on locale 0, block 1 on locale 1
/// — remote from the scheduled tasks, which run as locale 0), fill via
/// the aggregated write path, signal the reader, then truncate the tail
/// block and flag it as reclaimed.
void writer_task(const std::shared_ptr<State>& st) {
  st->arr.resize_add(2 * kBlock);
  std::vector<int> vals(2 * kBlock);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<int>(i) + 1;
  }
  st->arr.bulk_write(0, std::span<const int>(vals.data(), vals.size()));
  st->ready.store(true, std::memory_order_seq_cst);
  st->arr.resize_remove(kBlock);  // drops block 1 (delete'd after drain)
  st->removed.store(true, std::memory_order_seq_cst);
}

/// Reader: ASYNC aggregated visit of exactly block 1's range. The block
/// is owner-remote, so its span-op is issued as an async flush whose
/// completion only runs at the drain — which is where the mutation moves
/// past the section close. The window (8) is far above the single
/// in-flight flush, so no back-pressure retirement delivers it early.
void reader_task(const std::shared_ptr<State>& st) {
  rcua::testing::sched_await("test.wait_ready", [st] {
    return st->ready.load(std::memory_order_seq_cst);
  });
  try {
    st->arr.for_each_block(
        kBlock, kBlock,
        [st](std::size_t base, int* data, std::size_t len) {
          if (st->removed.load(std::memory_order_seq_cst)) {
            rcua::testing::sched_violation(
                "async completion delivered against a block reclaimed by "
                "a resize_remove that completed before the drain");
            return;  // do NOT touch data: the block is really freed
          }
          for (std::size_t k = 0; k < len; ++k) {
            if (data[k] != static_cast<int>(base + k) + 1) {
              rcua::testing::sched_violation(
                  "async completion read a value the aggregated fill "
                  "never wrote");
              return;
            }
          }
          st->visited.fetch_add(len, std::memory_order_seq_cst);
        },
        {.async = true, .window = 8});
  } catch (const std::out_of_range&) {
    // The truncation fully preceded the pin; the range legitimately no
    // longer exists. Not a protocol violation.
    st->range_gone.store(true, std::memory_order_seq_cst);
  }
}

void async_remove_scenario(rcua::rt::Cluster& cluster, Scheduler& sched) {
  auto st = std::make_shared<State>(cluster);
  sched.spawn("reader", [st] { reader_task(st); });
  sched.spawn("writer", [st] { writer_task(st); });
  sched.on_finish([st](Scheduler& s) {
    // Completeness: unless the range vanished before the pin, the one
    // async completion must have been delivered exactly once — never
    // lost (cancelled instead of drained) nor duplicated (delivered by
    // both back-pressure and drain).
    if (!st->range_gone.load() && !s.violated() &&
        st->visited.load() != kBlock) {
      s.violation("async completion lost or duplicated");
    }
  });
}

}  // namespace

TEST(SchedAsync, MutationDrainAfterReleaseFound) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(&rcua::testing::mutations().async_drain_after_release);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 4000;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { async_remove_scenario(cluster, s); });
  ASSERT_TRUE(result.found)
      << "delivering async completions after the read-side section "
         "closed must be caught";

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again = rcua::testing::explore(
      replay,
      [&cluster](Scheduler& s) { async_remove_scenario(cluster, s); });
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedAsync, MutationDrainAfterReleaseFoundByDfs) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(&rcua::testing::mutations().async_drain_after_release);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 20000;
  opts.preemption_bound = 2;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { async_remove_scenario(cluster, s); });
  ASSERT_TRUE(result.found)
      << "the release->resize_remove->drain window needs two preemptions; "
         "bounded DFS must reach it (ran "
      << result.schedules_run << " schedules)";
}

TEST(SchedAsync, NegativeControlRandom) {
  // Unmutated: issues AND completions land inside the pinned section, so
  // no schedule may deliver a completion against a reclaimed block, lose
  // one, or observe a value the aggregated fill never wrote.
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 400;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { async_remove_scenario(cluster, s); });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedAsync, NegativeControlDfs) {
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 2000;
  opts.preemption_bound = 1;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { async_remove_scenario(cluster, s); });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}
