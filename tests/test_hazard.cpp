// Tests for the hazard-pointer domain (related-work baseline).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/hazard.hpp"

namespace reclaim = rcua::reclaim;

namespace {
std::atomic<int> destroyed{0};
struct Counted {
  int payload = 0;
  ~Counted() { destroyed.fetch_add(1, std::memory_order_relaxed); }
};

struct Canary {
  static constexpr std::uint64_t kAlive = 0xA11CE5ED;
  std::atomic<std::uint64_t> state{kAlive};
  ~Canary() { state.store(0); }
};
}  // namespace

TEST(Hazard, GuardReadsCurrentPointer) {
  reclaim::HazardDomain dom;
  std::atomic<Counted*> src{new Counted{.payload = 5}};
  {
    reclaim::HazardDomain::Guard<Counted> guard(dom, src);
    EXPECT_EQ(guard->payload, 5);
    EXPECT_EQ(guard.get(), src.load());
  }
  delete src.load();
}

TEST(Hazard, RetireBelowThresholdDefers) {
  destroyed.store(0);
  reclaim::HazardDomain dom;
  dom.set_retire_threshold(100);
  dom.retire(new Counted);
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_EQ(dom.scan(), 1u);
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(Hazard, ThresholdTriggersScan) {
  destroyed.store(0);
  reclaim::HazardDomain dom;
  dom.set_retire_threshold(4);
  for (int i = 0; i < 4; ++i) dom.retire(new Counted);
  EXPECT_EQ(destroyed.load(), 4);  // 4th retire crossed the threshold
}

TEST(Hazard, ProtectedPointerSurvivesScan) {
  destroyed.store(0);
  reclaim::HazardDomain dom;
  std::atomic<Counted*> src{new Counted};
  Counted* original = src.load();
  {
    reclaim::HazardDomain::Guard<Counted> guard(dom, src);
    src.store(new Counted);  // swap out
    dom.retire(original);
    dom.scan();
    EXPECT_EQ(destroyed.load(), 0) << "freed a protected pointer";
  }
  dom.scan();
  EXPECT_EQ(destroyed.load(), 1);
  delete src.load();
}

TEST(Hazard, GuardRevalidatesOnRace) {
  // The publish-verify loop must settle on a value that was in `src`
  // while published; after construction guard.get() equals some valid
  // historical value. We exercise the loop by racing a swapper.
  reclaim::HazardDomain dom;
  std::atomic<Canary*> src{new Canary};
  std::atomic<bool> stop{false};
  std::vector<Canary*> garbage;
  std::thread swapper([&] {
    while (!stop.load()) {
      garbage.push_back(src.exchange(new Canary));
    }
  });
  for (int i = 0; i < 2000; ++i) {
    reclaim::HazardDomain::Guard<Canary> guard(dom, src);
    // Not retired by anyone, so always alive; this checks the guard
    // never returns a torn/null pointer mid-race.
    ASSERT_NE(guard.get(), nullptr);
  }
  stop.store(true);
  swapper.join();
  for (auto* c : garbage) delete c;
  delete src.load();
}

TEST(Hazard, StressNoUseAfterFree) {
  reclaim::HazardDomain dom;
  dom.set_retire_threshold(8);
  std::atomic<Canary*> src{new Canary};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        reclaim::HazardDomain::Guard<Canary> guard(dom, src);
        if (guard->state.load() != Canary::kAlive) violations.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    Canary* old = src.exchange(new Canary);
    dom.retire(old);
    if (i % 32 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  dom.flush_unsafe();
  delete src.load();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(Hazard, FlushUnsafeFreesRetired) {
  destroyed.store(0);
  reclaim::HazardDomain dom;
  dom.set_retire_threshold(100);
  dom.retire(new Counted);
  dom.retire(new Counted);
  dom.flush_unsafe();
  EXPECT_EQ(destroyed.load(), 2);
}

TEST(Hazard, CountersTrackRetireAndFree) {
  reclaim::HazardDomain dom;
  dom.set_retire_threshold(100);
  dom.retire(new Counted);
  EXPECT_EQ(dom.retired_count(), 1u);
  dom.scan();
  EXPECT_EQ(dom.freed_count(), 1u);
}

TEST(Hazard, MultipleSlotsProtectIndependently) {
  destroyed.store(0);
  reclaim::HazardDomain dom;
  std::atomic<Counted*> a{new Counted}, b{new Counted};
  Counted* pa = a.load();
  Counted* pb = b.load();
  {
    reclaim::HazardDomain::Guard<Counted> ga(dom, a, 0);
    reclaim::HazardDomain::Guard<Counted> gb(dom, b, 1);
    dom.retire(pa);
    dom.retire(pb);
    dom.scan();
    EXPECT_EQ(destroyed.load(), 0);
  }
  dom.scan();
  EXPECT_EQ(destroyed.load(), 2);
}
