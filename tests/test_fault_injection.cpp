// Fault-injection tests: drive the algorithms through their narrow race
// windows *deterministically* using the EBR read-side hooks, instead of
// hoping a scheduler interleaving finds them.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "reclaim/ebr.hpp"

namespace reclaim = rcua::reclaim;

namespace {

// Hook state shared with the static injection functions.
std::atomic<int> fire_count{0};
std::atomic<int> fire_limit{0};

/// Phase-0 injection: the writer advances the epoch after the reader
/// loaded it but BEFORE the increment — the reader's increment lands on
/// the stale parity, verification (line 13) catches it, the reader
/// retries.
void advance_before_increment(reclaim::Ebr& ebr, int phase) {
  if (phase != 0) return;
  if (fire_count.fetch_add(1) < fire_limit.load()) {
    ebr.advance_epoch();
  }
}

/// Phase-1 injection: the epoch advances AFTER the increment — the
/// increment is on the (now old) parity the writer will wait for, so the
/// verification STILL catches the change and the reader retries; safety
/// would hold either way (Lemma 3), liveness is what we check.
void advance_after_increment(reclaim::Ebr& ebr, int phase) {
  if (phase != 1) return;
  if (fire_count.fetch_add(1) < fire_limit.load()) {
    ebr.advance_epoch();
  }
}

}  // namespace

TEST(FaultInjection, EpochAdvanceBeforeIncrementForcesRetry) {
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(1);
  ebr.test_read_hook = &advance_before_increment;

  const int result = ebr.read([] { return 42; });
  EXPECT_EQ(result, 42);
  // The phase-0 hook fires once per announce attempt: exactly one
  // injected advance forces exactly one retry, so two attempts ran.
  EXPECT_EQ(fire_count.load(), 2);
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_EQ(ebr.stats().read_retries, 1u);
  }
  // The aborted record was undone: both counters drained.
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(FaultInjection, EpochAdvanceAfterIncrementForcesRetry) {
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(1);
  ebr.test_read_hook = &advance_after_increment;

  const int result = ebr.read([] { return 7; });
  EXPECT_EQ(result, 7);
  EXPECT_GE(fire_count.load(), 2);  // at least one retried attempt
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_GE(ebr.stats().read_retries, 1u);
  }
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(FaultInjection, ReaderSurvivesManyConsecutiveRetries) {
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(25);  // 25 consecutive epoch advances under the reader
  ebr.test_read_hook = &advance_before_increment;

  const int result = ebr.read([] { return 1; });
  EXPECT_EQ(result, 1);
  EXPECT_GE(fire_count.load(), 26);  // 25 injected advances -> 25 retries
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_GE(ebr.stats().read_retries, 25u);
  }
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(FaultInjection, RetriedReaderIsInvisibleToTheWriter) {
  // The paper's exact hazard (§III-A): a reader that recorded on a stale
  // parity must not be relied upon by the writer that advanced the epoch;
  // the undo (line 17) must leave that writer's drain unaffected.
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(1);
  ebr.test_read_hook = &advance_before_increment;

  ebr.read([] { return 0; });
  // After the forced race, a writer draining the pre-advance parity must
  // complete immediately: the aborted record was withdrawn.
  const auto old_epoch = static_cast<std::uint64_t>(ebr.epoch() - 1);
  ebr.wait_for_readers(old_epoch);  // must not hang
  SUCCEED();
}

TEST(FaultInjection, OverflowPlusInjectedRacesStayBalanced) {
  // Combine the two failure modes the paper proves out separately:
  // 8-bit epoch wrap-around AND forced read-side races.
  reclaim::BasicEbr<std::uint8_t> ebr(250);
  std::atomic<int> local_fires{0};
  // The narrow-epoch type needs its own hook type; use a capture-free
  // lambda plus static state.
  static std::atomic<int>* fires;
  fires = &local_fires;
  ebr.test_read_hook = [](reclaim::BasicEbr<std::uint8_t>& e, int phase) {
    if (phase == 0 && fires->fetch_add(1) % 3 == 0) e.advance_epoch();
  };

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ebr.read([] { return 9; }), 9);
    ebr.synchronize();
  }
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
  // Every third phase-0 fire injected an advance and forced a retried
  // attempt, so the hook fired more often than the 100 requested reads.
  EXPECT_GT(local_fires.load(), 100);
  if constexpr (reclaim::BasicEbr<std::uint8_t>::kStatsEnabled) {
    EXPECT_GT(ebr.stats().read_retries, 0u);
  }
}

TEST(FaultInjection, GuardAlsoRetriesUnderInjectedRace) {
  // ReadGuard uses the same record/verify protocol; inject through the
  // read() path on a sibling thread to race the guard's construction.
  reclaim::Ebr ebr;
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ebr.advance_epoch();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    reclaim::Ebr::ReadGuard guard(ebr);
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}
