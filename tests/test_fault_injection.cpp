// Fault-injection tests: drive the algorithms through their narrow race
// windows *deterministically* using the EBR read-side hooks, instead of
// hoping a scheduler interleaving finds them.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "reclaim/ebr.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/stall_monitor.hpp"
#include "runtime/thread_registry.hpp"

namespace reclaim = rcua::reclaim;

namespace {

// Hook state shared with the static injection functions.
std::atomic<int> fire_count{0};
std::atomic<int> fire_limit{0};

/// Phase-0 injection: the writer advances the epoch after the reader
/// loaded it but BEFORE the increment — the reader's increment lands on
/// the stale parity, verification (line 13) catches it, the reader
/// retries.
void advance_before_increment(reclaim::Ebr& ebr, int phase) {
  if (phase != 0) return;
  if (fire_count.fetch_add(1) < fire_limit.load()) {
    ebr.advance_epoch();
  }
}

/// Phase-1 injection: the epoch advances AFTER the increment — the
/// increment is on the (now old) parity the writer will wait for, so the
/// verification STILL catches the change and the reader retries; safety
/// would hold either way (Lemma 3), liveness is what we check.
void advance_after_increment(reclaim::Ebr& ebr, int phase) {
  if (phase != 1) return;
  if (fire_count.fetch_add(1) < fire_limit.load()) {
    ebr.advance_epoch();
  }
}

}  // namespace

TEST(FaultInjection, EpochAdvanceBeforeIncrementForcesRetry) {
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(1);
  ebr.test_read_hook = &advance_before_increment;

  const int result = ebr.read([] { return 42; });
  EXPECT_EQ(result, 42);
  // The phase-0 hook fires once per announce attempt: exactly one
  // injected advance forces exactly one retry, so two attempts ran.
  EXPECT_EQ(fire_count.load(), 2);
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_EQ(ebr.stats().read_retries, 1u);
  }
  // The aborted record was undone: both counters drained.
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(FaultInjection, EpochAdvanceAfterIncrementForcesRetry) {
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(1);
  ebr.test_read_hook = &advance_after_increment;

  const int result = ebr.read([] { return 7; });
  EXPECT_EQ(result, 7);
  EXPECT_GE(fire_count.load(), 2);  // at least one retried attempt
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_GE(ebr.stats().read_retries, 1u);
  }
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(FaultInjection, ReaderSurvivesManyConsecutiveRetries) {
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(25);  // 25 consecutive epoch advances under the reader
  ebr.test_read_hook = &advance_before_increment;

  const int result = ebr.read([] { return 1; });
  EXPECT_EQ(result, 1);
  EXPECT_GE(fire_count.load(), 26);  // 25 injected advances -> 25 retries
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_GE(ebr.stats().read_retries, 25u);
  }
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}

TEST(FaultInjection, RetriedReaderIsInvisibleToTheWriter) {
  // The paper's exact hazard (§III-A): a reader that recorded on a stale
  // parity must not be relied upon by the writer that advanced the epoch;
  // the undo (line 17) must leave that writer's drain unaffected.
  reclaim::Ebr ebr;
  fire_count.store(0);
  fire_limit.store(1);
  ebr.test_read_hook = &advance_before_increment;

  ebr.read([] { return 0; });
  // After the forced race, a writer draining the pre-advance parity must
  // complete immediately: the aborted record was withdrawn.
  const auto old_epoch = static_cast<std::uint64_t>(ebr.epoch() - 1);
  ebr.wait_for_readers(old_epoch);  // must not hang
  SUCCEED();
}

TEST(FaultInjection, OverflowPlusInjectedRacesStayBalanced) {
  // Combine the two failure modes the paper proves out separately:
  // 8-bit epoch wrap-around AND forced read-side races.
  reclaim::BasicEbr<std::uint8_t> ebr(250);
  std::atomic<int> local_fires{0};
  // The narrow-epoch type needs its own hook type; use a capture-free
  // lambda plus static state.
  static std::atomic<int>* fires;
  fires = &local_fires;
  ebr.test_read_hook = [](reclaim::BasicEbr<std::uint8_t>& e, int phase) {
    if (phase == 0 && fires->fetch_add(1) % 3 == 0) e.advance_epoch();
  };

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ebr.read([] { return 9; }), 9);
    ebr.synchronize();
  }
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
  // Every third phase-0 fire injected an advance and forced a retried
  // attempt, so the hook fired more often than the 100 requested reads.
  EXPECT_GT(local_fires.load(), 100);
  if constexpr (reclaim::BasicEbr<std::uint8_t>::kStatsEnabled) {
    EXPECT_GT(ebr.stats().read_retries, 0u);
  }
}

// -- QSBR checkpoint/park hooks (the EBR-style windows, Algorithm 2) ----

namespace {
std::atomic<int> qsbr_phase_hits[4];

void count_qsbr_phase(rcua::reclaim::Qsbr&, int phase) {
  qsbr_phase_hits[phase].fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TEST(FaultInjection, QsbrHookFiresAtCheckpointAndParkWindows) {
  for (auto& h : qsbr_phase_hits) h.store(0);
  rcua::rt::ThreadRegistry registry;
  reclaim::Qsbr qsbr(registry);
  qsbr.test_hook = &count_qsbr_phase;

  qsbr.checkpoint();
  EXPECT_EQ(qsbr_phase_hits[reclaim::Qsbr::kHookCheckpointEpochRead].load(),
            1);
  EXPECT_EQ(qsbr_phase_hits[reclaim::Qsbr::kHookCheckpointObserved].load(),
            1);
  qsbr.park();
  qsbr.unpark();
  EXPECT_EQ(qsbr_phase_hits[reclaim::Qsbr::kHookPark].load(), 1);
  EXPECT_EQ(qsbr_phase_hits[reclaim::Qsbr::kHookUnpark].load(), 1);
}

TEST(FaultInjection, QsbrHookCanMoveTheEpochInsideTheCheckpointWindow) {
  // Drive the checkpoint's race window for real: between the StateEpoch
  // read (line 4) and the observation store (line 5) another "thread"
  // bumps the epoch by deferring. The checkpoint must store the *stale*
  // observation (that is what it read), and the deferred node must NOT
  // be reclaimed by this checkpoint — the observer's promise predates
  // the defer.
  static std::atomic<int> fired;
  static std::atomic<bool> node_freed;
  fired.store(0);
  node_freed.store(false);
  rcua::rt::ThreadRegistry registry;
  reclaim::Qsbr qsbr(registry);
  qsbr.test_hook = [](reclaim::Qsbr& q, int phase) {
    if (phase != reclaim::Qsbr::kHookCheckpointEpochRead) return;
    if (fired.fetch_add(1) != 0) return;  // inject only once
    q.defer_fn([](void*) { node_freed.store(true); }, nullptr);
  };
  qsbr.checkpoint();
  // The injected defer ran on this same thread, so its own safe epoch
  // was observed by the defer itself; but the checkpoint's min-scan used
  // the pre-defer observation — the node survives this checkpoint.
  EXPECT_FALSE(node_freed.load());
  qsbr.checkpoint();  // a fresh checkpoint observes the new state
  EXPECT_TRUE(node_freed.load());
}

TEST(FaultInjection, ParkWhileAnnouncedStallsTheDrainAndIsDiagnosed) {
  // The "park-while-announced" stall window: a thread parks (goes idle
  // in the registry) while still ANNOUNCED in an EBR read-side section.
  // Parking must not erase the announcement — the drain has to keep
  // waiting (safety) — and the deadline-bounded drain must name the
  // stuck stripe for the watchdog.
  reclaim::Ebr ebr(0, /*stripe_count=*/4);
  rcua::rt::ThreadRegistry registry;
  reclaim::Qsbr qsbr(registry);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread stuck([&] {
    ebr.test_stripe_override = 3;
    reclaim::Ebr::ReadGuard guard(ebr);  // announced on stripe 3
    qsbr.park();                         // ... then parks, still announced
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
    qsbr.unpark();
  });
  while (!parked.load()) std::this_thread::yield();

  reclaim::StallPolicy policy;
  policy.deadline_ns = 500 * 1000;  // 0.5 ms
  policy.park_ns = 20 * 1000;
  const auto old_epoch = ebr.advance_epoch();
  const reclaim::DrainResult drain =
      ebr.try_wait_for_readers(old_epoch, policy);
  EXPECT_FALSE(drain.drained) << "parking must not fake an EBR retraction";
  EXPECT_EQ(drain.stuck_stripe, 3u);
  EXPECT_EQ(drain.stuck_readers, 1u);

  release.store(true);
  stuck.join();
  ebr.wait_for_readers(old_epoch);  // drains now that the guard dropped
  SUCCEED();
}

TEST(FaultInjection, CheckpointNeverReachedTimesOutNamingTheLaggard) {
  // The "checkpoint-never-reached" stall window, on an isolated registry
  // so only this test's threads participate: a thread that defers (and
  // so observed an old state) but never checkpoints again gates every
  // try_synchronize until it does.
  rcua::rt::ThreadRegistry registry;
  reclaim::Qsbr qsbr(registry);

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread laggard([&] {
    qsbr.ensure_participant();
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    qsbr.checkpoint();  // the checkpoint that finally unblocks the world
  });
  while (!entered.load()) std::this_thread::yield();

  reclaim::StallPolicy policy;
  policy.deadline_ns = 500 * 1000;  // 0.5 ms
  policy.park_ns = 20 * 1000;
  const auto first = qsbr.try_synchronize(policy);
  EXPECT_FALSE(first.quiesced);
  EXPECT_GE(first.laggards, 1u);
  ASSERT_NE(first.laggard, nullptr);
  EXPECT_LT(first.laggard_observed, first.target_epoch);

  // scan_laggards is the watchdog's detection surface: it must agree.
  const auto report = qsbr.scan_laggards(first.target_epoch);
  EXPECT_GE(report.count, 1u);

  release.store(true);
  laggard.join();
  const auto second = qsbr.try_synchronize(policy);
  EXPECT_TRUE(second.quiesced)
      << "the laggard checkpointed (and parked on exit); nothing gates now";
}

TEST(FaultInjection, GuardAlsoRetriesUnderInjectedRace) {
  // ReadGuard uses the same record/verify protocol; inject through the
  // read() path on a sibling thread to race the guard's construction.
  reclaim::Ebr ebr;
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ebr.advance_epoch();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    reclaim::Ebr::ReadGuard guard(ebr);
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}
