// Tests for DsiArray — the DSI-style logical-domain layer (the paper's
// final future-work item).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "core/dsi.hpp"

namespace rt = rcua::rt;
using rcua::DsiArray;
using rcua::EbrPolicy;
using rcua::HazardErasPolicy;
using rcua::IbrPolicy;
using rcua::QsbrPolicy;

namespace {

template <typename Policy>
struct DsiTyped : public ::testing::Test {
  using Array = DsiArray<std::uint64_t, Policy>;
};
using Policies =
    ::testing::Types<EbrPolicy, QsbrPolicy, IbrPolicy, HazardErasPolicy>;
TYPED_TEST_SUITE(DsiTyped, Policies);

void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

}  // namespace

TYPED_TEST(DsiTyped, LogicalSizeIndependentOfBlockRounding) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 100, {.block_size = 64});
  EXPECT_EQ(arr.size(), 100u);
  EXPECT_EQ(arr.capacity(), 128u);  // rounded to blocks underneath
  EXPECT_NO_THROW(arr.at(99));
  EXPECT_THROW(arr.at(100), std::out_of_range);  // capacity is not size
  drain_qsbr();
}

TYPED_TEST(DsiTyped, ResizeGrowsByElements) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 10, {.block_size = 64});
  arr.write(9, 99);
  arr.resize(200);
  EXPECT_EQ(arr.size(), 200u);
  EXPECT_GE(arr.capacity(), 200u);
  EXPECT_EQ(arr.read(9), 99u);
  arr.write(199, 1);
  EXPECT_EQ(arr.read(199), 1u);
  drain_qsbr();
}

TYPED_TEST(DsiTyped, ResizeShrinksAndReleasesWholeBlocks) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 4 * 64, {.block_size = 64});
  arr.resize(65);  // still needs 2 blocks
  EXPECT_EQ(arr.size(), 65u);
  EXPECT_EQ(arr.backing().num_blocks(), 2u);
  arr.resize(10);  // 1 block
  EXPECT_EQ(arr.backing().num_blocks(), 1u);
  drain_qsbr();
}

TYPED_TEST(DsiTyped, OwnerMatchesBlockCyclicLayout) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 6 * 32, {.block_size = 32});
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr.owner_of(i), (i / 32) % 3);
  }
  drain_qsbr();
}

TYPED_TEST(DsiTyped, LocalIndicesCoverDomainExactlyOnce) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 200, {.block_size = 32});
  std::vector<int> covered(200, 0);
  for (std::uint32_t l = 0; l < 3; ++l) {
    for (const auto& [lo, hi] : arr.local_indices(l)) {
      for (std::size_t i = lo; i < hi; ++i) {
        ++covered[i];
        EXPECT_EQ(arr.owner_of(i), l);
      }
    }
  }
  for (int c : covered) EXPECT_EQ(c, 1);
  drain_qsbr();
}

TYPED_TEST(DsiTyped, ForallVisitsEveryLogicalIndexOnce) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 150, {.block_size = 32});
  arr.forall([](std::size_t i, std::uint64_t& v) { v = i * 2; });
  for (std::size_t i = 0; i < 150; ++i) EXPECT_EQ(arr.read(i), i * 2);
  // Partial tail block: elements beyond size() untouched.
  EXPECT_EQ(arr.backing().read(150), 0u);
  drain_qsbr();
}

TYPED_TEST(DsiTyped, ForallRunsWithLocality) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 6 * 32, {.block_size = 32});
  std::atomic<std::uint64_t> misplaced{0};
  arr.forall([&](std::size_t i, std::uint64_t&) {
    if (rt::this_task().locale_id != (i / 32) % 3) misplaced.fetch_add(1);
  });
  EXPECT_EQ(misplaced.load(), 0u);
  drain_qsbr();
}

TYPED_TEST(DsiTyped, ReduceRespectsLogicalBound) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 100, {.block_size = 64});
  arr.backing().fill(1);  // fills the full 128-element capacity
  const auto sum = arr.reduce(
      std::uint64_t{0},
      [](std::uint64_t acc, const std::uint64_t& v) { return acc + v; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 100u);  // only the logical 100, not the capacity 128
  drain_qsbr();
}

TEST(Dsi, ConcurrentReadersDuringResize) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 3});
  DsiArray<std::uint64_t, QsbrPolicy> arr(cluster, 64, {.block_size = 64});
  for (std::size_t i = 0; i < 64; ++i) arr.write(i, i + 1);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = reads.load() % 64;
      if (arr.read(i) != i + 1) bad.fetch_add(1);
      reads.fetch_add(1, std::memory_order_relaxed);
      if (reads.load() % 128 == 0) rcua::reclaim::Qsbr::global().checkpoint();
    }
    rcua::reclaim::Qsbr::global().checkpoint();
  });
  for (int r = 0; r < 20; ++r) {
    arr.resize(64 + (r + 1) * 50);
    std::this_thread::yield();
  }
  while (reads.load() < 500) std::this_thread::yield();
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(arr.size(), 64u + 20 * 50);
  rcua::reclaim::Qsbr::global().flush_unsafe();
}
