// Unit tests for src/sim: the virtual-time performance model — task
// clocks, the block-touch locality model, contention resources, and the
// cost-model plumbing.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/resource.hpp"
#include "sim/task_clock.hpp"

namespace sim = rcua::sim;

TEST(TaskClock, DisabledByDefault) {
  EXPECT_FALSE(sim::enabled());
  EXPECT_EQ(sim::current(), nullptr);
  sim::charge(100);  // must be a no-op, not a crash
  EXPECT_EQ(sim::now_v(), 0u);
}

TEST(TaskClock, ChargeAccumulates) {
  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  EXPECT_TRUE(sim::enabled());
  sim::charge(100);
  sim::charge(50.7);
  EXPECT_EQ(clock.vtime_ns, 150u);
  EXPECT_EQ(clock.charge_events, 2u);
}

TEST(TaskClock, ScopesNest) {
  sim::TaskClock outer, inner;
  sim::ClockScope a(outer);
  sim::charge(10);
  {
    sim::ClockScope b(inner);
    sim::charge(5);
  }
  sim::charge(10);
  EXPECT_EQ(outer.vtime_ns, 20u);
  EXPECT_EQ(inner.vtime_ns, 5u);
}

TEST(TaskClock, AdvanceToNeverRewinds) {
  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  sim::charge(100);
  sim::advance_to(50);
  EXPECT_EQ(clock.vtime_ns, 100u);
  sim::advance_to(200);
  EXPECT_EQ(clock.vtime_ns, 200u);
}

TEST(TaskClock, ResetClears) {
  sim::TaskClock clock;
  clock.vtime_ns = 5;
  clock.last_block_id = 3;
  clock.charge_events = 2;
  clock.reset();
  EXPECT_EQ(clock.vtime_ns, 0u);
  EXPECT_EQ(clock.last_block_id, ~0ULL);
  EXPECT_EQ(clock.charge_events, 0u);
}

TEST(TouchModel, SequentialLocalIsCachedAfterFirstMiss) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.dram_miss_ns = 100;
  m.local_cached_ns = 1;

  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  sim::touch_block(7, /*remote=*/false, /*is_write=*/false);
  EXPECT_EQ(clock.vtime_ns, 100u);
  sim::touch_block(7, false, false);
  sim::touch_block(7, false, false);
  EXPECT_EQ(clock.vtime_ns, 102u);
}

TEST(TouchModel, RandomRemoteAlternationPaysFullGets) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.remote_get_ns = 1000;
  m.remote_stream_ns = 10;

  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  sim::touch_block(1, true, false);
  sim::touch_block(2, true, false);
  sim::touch_block(1, true, false);
  EXPECT_EQ(clock.vtime_ns, 3000u);
}

TEST(TouchModel, RemoteStreamingIsCheap) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.remote_get_ns = 1000;
  m.remote_stream_ns = 10;

  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  sim::touch_block(1, true, false);
  for (int i = 0; i < 9; ++i) sim::touch_block(1, true, false);
  EXPECT_EQ(clock.vtime_ns, 1000u + 9 * 10u);
}

TEST(TouchModel, WriteUsesPutCost) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.remote_get_ns = 1000;
  m.remote_put_ns = 2000;

  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  sim::touch_block(1, true, /*is_write=*/true);
  EXPECT_EQ(clock.vtime_ns, 2000u);
}

TEST(TouchModel, ExtraOnMissOnlyOnBlockSwitch) {
  sim::CostModelOverride save;
  auto& m = sim::CostModel::mutable_instance();
  m.dram_miss_ns = 100;
  m.local_cached_ns = 1;

  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  sim::touch_block(1, false, false, /*extra_on_miss=*/40);
  EXPECT_EQ(clock.vtime_ns, 140u);
  sim::touch_block(1, false, false, 40);  // cached: no extra
  EXPECT_EQ(clock.vtime_ns, 141u);
}

TEST(Resource, PureReservationQueues) {
  sim::VirtualResource r;
  EXPECT_EQ(r.acquire_at(0, 10), 10u);    // idle: starts immediately
  EXPECT_EQ(r.acquire_at(0, 10), 20u);    // queued behind the first
  EXPECT_EQ(r.acquire_at(100, 10), 110u); // arrives after free: no wait
  EXPECT_EQ(r.next_free(), 110u);
}

TEST(Resource, UseAdvancesAttachedClock) {
  sim::VirtualResource r;
  sim::TaskClock a, b;
  {
    sim::ClockScope scope(a);
    r.use(10);
  }
  {
    sim::ClockScope scope(b);
    r.use(10);
  }
  EXPECT_EQ(a.vtime_ns, 10u);
  EXPECT_EQ(b.vtime_ns, 20u);  // b queued behind a
}

TEST(Resource, UseIsNoopWithoutClock) {
  sim::VirtualResource r;
  r.use(10);
  EXPECT_EQ(r.next_free(), 0u);
}

TEST(Resource, OwnedUseIsCheapForSoloTask) {
  sim::VirtualResource r;
  sim::TaskClock clock;
  sim::ClockScope scope(clock);
  r.use_owned(1000, 10);  // first touch: full transfer
  EXPECT_EQ(clock.vtime_ns, 1000u);
  r.use_owned(1000, 10);  // still own the line
  r.use_owned(1000, 10);
  EXPECT_EQ(clock.vtime_ns, 1020u);
}

TEST(Resource, OwnedUseSerializesAlternatingTasks) {
  sim::VirtualResource r;
  sim::TaskClock a, b;
  for (int i = 0; i < 3; ++i) {
    {
      sim::ClockScope scope(a);
      r.use_owned(1000, 10);
    }
    {
      sim::ClockScope scope(b);
      r.use_owned(1000, 10);
    }
  }
  // Every access after the first transferred the line: 6 transfers total.
  EXPECT_EQ(b.vtime_ns, 6000u);
}

TEST(Resource, ExtendUntilOnlyGrows) {
  sim::VirtualResource r;
  r.extend_until(100);
  EXPECT_EQ(r.next_free(), 100u);
  r.extend_until(50);
  EXPECT_EQ(r.next_free(), 100u);
}

TEST(Resource, ResetFreesImmediately) {
  sim::VirtualResource r;
  r.acquire_at(0, 500);
  r.reset();
  EXPECT_EQ(r.next_free(), 0u);
  EXPECT_EQ(r.acquire_at(0, 5), 5u);
}

TEST(Resource, ConcurrentReservationsNeverOverlap) {
  sim::VirtualResource r;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  std::atomic<bool> bad{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::uint64_t prev_done = 0;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t done = r.acquire_at(prev_done, 3);
        if (done < prev_done + 3) bad.store(true);
        prev_done = done;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(bad.load());
  // Total service booked must equal exactly threads*iters*3.
  EXPECT_EQ(r.next_free(), static_cast<std::uint64_t>(kThreads) * kIters * 3);
}

TEST(CostModel, OverrideRestores) {
  const double before = sim::CostModel::get().remote_get_ns;
  {
    sim::CostModelOverride save;
    sim::CostModel::mutable_instance().remote_get_ns = 1.0;
    EXPECT_DOUBLE_EQ(sim::CostModel::get().remote_get_ns, 1.0);
  }
  EXPECT_DOUBLE_EQ(sim::CostModel::get().remote_get_ns, before);
}

TEST(CostModel, LoadEnvPicksUpOverride) {
  sim::CostModelOverride save;
  setenv("RCUA_COST_REMOTE_GET_NS", "12345", 1);
  sim::CostModel::mutable_instance().load_env();
  EXPECT_DOUBLE_EQ(sim::CostModel::get().remote_get_ns, 12345.0);
  unsetenv("RCUA_COST_REMOTE_GET_NS");
}
