// Tests for the distributed algorithms: scans and histograms over
// DsiArray.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "algorithms/histogram.hpp"
#include "algorithms/scan.hpp"

namespace rt = rcua::rt;
namespace alg = rcua::alg;
using rcua::DsiArray;
using rcua::QsbrPolicy;

namespace {
void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

std::vector<std::uint64_t> reference_inclusive(
    const std::vector<std::uint64_t>& in) {
  std::vector<std::uint64_t> out(in.size());
  std::partial_sum(in.begin(), in.end(), out.begin());
  return out;
}
}  // namespace

TEST(Scan, InclusiveMatchesReference) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  DsiArray<std::uint64_t> arr(cluster, 200, {.block_size = 32});
  std::vector<std::uint64_t> ref(200);
  for (std::size_t i = 0; i < 200; ++i) {
    ref[i] = (i * 7 + 3) % 11;
    arr.write(i, ref[i]);
  }
  alg::inclusive_scan(arr, std::uint64_t{0},
                      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  const auto expect = reference_inclusive(ref);
  for (std::size_t i = 0; i < 200; ++i) {
    ASSERT_EQ(arr.read(i), expect[i]) << i;
  }
  drain_qsbr();
}

TEST(Scan, ExclusiveMatchesReference) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DsiArray<std::uint64_t> arr(cluster, 100, {.block_size = 16});
  std::vector<std::uint64_t> ref(100);
  for (std::size_t i = 0; i < 100; ++i) {
    ref[i] = i % 5 + 1;
    arr.write(i, ref[i]);
  }
  alg::exclusive_scan(arr, std::uint64_t{0},
                      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(arr.read(i), running) << i;
    running += ref[i];
  }
  drain_qsbr();
}

TEST(Scan, SingleElementAndEmpty) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DsiArray<std::uint64_t> one(cluster, 1, {.block_size = 16});
  one.write(0, 9);
  alg::inclusive_scan(one, std::uint64_t{0},
                      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(one.read(0), 9u);

  DsiArray<std::uint64_t> empty(cluster, 0, {.block_size = 16});
  alg::inclusive_scan(empty, std::uint64_t{0},
                      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(empty.size(), 0u);
  drain_qsbr();
}

TEST(Scan, NonCommutativeOpRespectsOrder) {
  // "Last nonzero" is associative but NOT commutative: any block
  // reordering or offset misapplication changes the result. (Scans
  // require associativity; commutativity is not assumed.)
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  DsiArray<std::uint64_t> arr(cluster, 50, {.block_size = 8});
  std::vector<std::uint64_t> ref(50);
  for (std::size_t i = 0; i < 50; ++i) {
    ref[i] = (i % 3 == 0) ? 0 : i;
    arr.write(i, ref[i]);
  }
  auto op = [](std::uint64_t a, std::uint64_t b) { return b != 0 ? b : a; };
  alg::inclusive_scan(arr, std::uint64_t{0}, op);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    acc = op(acc, ref[i]);
    ASSERT_EQ(arr.read(i), acc) << i;
  }
  drain_qsbr();
}

TEST(Scan, SumHelper) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DsiArray<std::uint64_t> arr(cluster, 75, {.block_size = 16});
  for (std::size_t i = 0; i < 75; ++i) arr.write(i, 2);
  EXPECT_EQ(alg::sum(arr), 150u);
  drain_qsbr();
}

TEST(Histogram, CountsByBucket) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  DsiArray<std::uint64_t> arr(cluster, 300, {.block_size = 32});
  for (std::size_t i = 0; i < 300; ++i) arr.write(i, i % 10);
  const auto h = alg::histogram(
      arr, 10, [](const std::uint64_t& v) { return static_cast<std::size_t>(v); });
  ASSERT_EQ(h.size(), 10u);
  for (const auto c : h) EXPECT_EQ(c, 30u);
  drain_qsbr();
}

TEST(Histogram, OutOfRangeBucketsIgnored) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DsiArray<std::uint64_t> arr(cluster, 64, {.block_size = 16});
  for (std::size_t i = 0; i < 64; ++i) arr.write(i, i);
  const auto h = alg::histogram(
      arr, 4, [](const std::uint64_t& v) { return static_cast<std::size_t>(v); });
  EXPECT_EQ(h[0] + h[1] + h[2] + h[3], 4u);  // only values 0..3 land
  drain_qsbr();
}

TEST(Histogram, RespectsLogicalBound) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DsiArray<std::uint64_t> arr(cluster, 20, {.block_size = 16});  // 32 capacity
  arr.backing().fill(1);  // capacity-wide fill
  const auto h = alg::histogram(
      arr, 2, [](const std::uint64_t& v) { return static_cast<std::size_t>(v); });
  EXPECT_EQ(h[1], 20u);  // only the logical 20 counted
  drain_qsbr();
}
