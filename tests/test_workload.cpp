// Tests for the workload generators (uniform / sequential / Zipfian) and
// the observability reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "reclaim/hazard.hpp"
#include "reclaim/qsbr.hpp"
#include "runtime/cluster.hpp"
#include "util/report.hpp"
#include "util/workload.hpp"

namespace util = rcua::util;
namespace rt = rcua::rt;

TEST(Workload, UniformStaysInRange) {
  util::UniformGenerator gen(100, 42);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.next(), 100u);
}

TEST(Workload, UniformCoversRange) {
  util::UniformGenerator gen(16, 7);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 16000; ++i) ++counts[gen.next()];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(Workload, SequentialWrapsAtRange) {
  util::SequentialGenerator gen(5, 3);
  std::vector<std::uint64_t> seq;
  for (int i = 0; i < 7; ++i) seq.push_back(gen.next());
  EXPECT_EQ(seq, (std::vector<std::uint64_t>{3, 4, 0, 1, 2, 3, 4}));
}

TEST(Workload, ZipfStaysInRange) {
  util::ZipfGenerator gen(1000, 0.99, 11);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(gen.next(), 1000u);
}

TEST(Workload, ZipfIsSkewedTowardLowRanks) {
  util::ZipfGenerator gen(1000, 0.99, 11);
  std::uint64_t head = 0, total = 50000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (gen.next() < 10) ++head;  // top-10 of 1000 keys
  }
  // YCSB-style 0.99 skew: the top 1% of keys draw a large share.
  EXPECT_GT(head, total / 4);
}

TEST(Workload, LowThetaApproachesUniform) {
  util::ZipfGenerator skewed(1000, 0.99, 3);
  util::ZipfGenerator flat(1000, 0.05, 3);
  auto head_share = [](util::ZipfGenerator& g) {
    std::uint64_t head = 0;
    for (int i = 0; i < 20000; ++i) {
      if (g.next() < 10) ++head;
    }
    return head;
  };
  EXPECT_GT(head_share(skewed), 4 * head_share(flat));
}

TEST(Workload, ZipfSharedZetaMatchesSelfComputed) {
  const double zetan = util::ZipfGenerator::compute_zetan(500, 0.9);
  util::ZipfGenerator a(500, 0.9, 123);
  util::ZipfGenerator b(500, 0.9, 123, zetan);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Workload, ZipfDeterministicPerSeed) {
  util::ZipfGenerator a(100, 0.8, 5), b(100, 0.8, 5), c(100, 0.8, 6);
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Report, CommTableListsAllLocales) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 1});
  cluster.comm().record_access(0, 1, false);
  cluster.comm().record_access(2, 1, true);
  const std::string out = util::Report::comm(cluster);
  EXPECT_NE(out.find("total"), std::string::npos);
  EXPECT_NE(out.find("gets"), std::string::npos);
  // 3 locales + header + rule + total row.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Report, MemoryTableReflectsAccounting) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  cluster.locale(1).note_alloc(4096);
  const std::string out = util::Report::memory(cluster);
  EXPECT_NE(out.find("4096"), std::string::npos);
}

TEST(Report, QsbrSummaryHasCounters) {
  rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr(registry);
  qsbr.defer_delete(new int(0));
  qsbr.checkpoint();
  const std::string out = util::Report::qsbr(qsbr);
  EXPECT_NE(out.find("defers=1"), std::string::npos);
  EXPECT_NE(out.find("reclaimed=1"), std::string::npos);
  EXPECT_NE(out.find("pending=0"), std::string::npos);
}

TEST(Report, HazardSummaryHasCounters) {
  rcua::reclaim::HazardDomain dom;
  dom.set_retire_threshold(100);
  dom.retire(new int(1));
  const std::string out = util::Report::hazard(dom);
  EXPECT_NE(out.find("retired=1"), std::string::npos);
  dom.flush_unsafe();
}
