// Tests for the privatization registry (chpl_getPrivatizedCopy).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/privatization.hpp"

namespace rt = rcua::rt;

TEST(Privatization, CreateSetGet) {
  rt::PrivatizationRegistry reg(4);
  const int pid = reg.create();
  int a = 1, b = 2;
  reg.set(pid, 0, &a);
  reg.set(pid, 3, &b);
  EXPECT_EQ(reg.get(pid, 0), &a);
  EXPECT_EQ(reg.get(pid, 3), &b);
  EXPECT_EQ(reg.get(pid, 1), nullptr);
  reg.destroy(pid);
}

TEST(Privatization, PidsAreDistinctWhileLive) {
  rt::PrivatizationRegistry reg(2);
  const int p1 = reg.create();
  const int p2 = reg.create();
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reg.live_pids(), 2u);
  reg.destroy(p1);
  reg.destroy(p2);
  EXPECT_EQ(reg.live_pids(), 0u);
}

TEST(Privatization, DestroyClearsSlotsAndRecyclesPid) {
  rt::PrivatizationRegistry reg(2);
  const int pid = reg.create();
  int x = 0;
  reg.set(pid, 0, &x);
  reg.destroy(pid);
  const int again = reg.create();
  EXPECT_EQ(again, pid);  // recycled
  EXPECT_EQ(reg.get(again, 0), nullptr);
  reg.destroy(again);
}

TEST(Privatization, IndependentPidsDoNotAlias) {
  rt::PrivatizationRegistry reg(2);
  const int p1 = reg.create();
  const int p2 = reg.create();
  int a = 1, b = 2;
  reg.set(p1, 0, &a);
  reg.set(p2, 0, &b);
  EXPECT_EQ(reg.get(p1, 0), &a);
  EXPECT_EQ(reg.get(p2, 0), &b);
  reg.destroy(p1);
  reg.destroy(p2);
}

TEST(Privatization, ConcurrentCreateDistinct) {
  rt::PrivatizationRegistry reg(2, /*max_pids=*/512);
  std::vector<std::thread> threads;
  std::vector<int> pids(64, -1);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) pids[t * 8 + i] = reg.create();
    });
  }
  for (auto& t : threads) t.join();
  std::set<int> uniq(pids.begin(), pids.end());
  EXPECT_EQ(uniq.size(), 64u);
  for (int pid : pids) reg.destroy(pid);
}

TEST(Privatization, GetIsLockFreeHotPathUnderWrites) {
  rt::PrivatizationRegistry reg(1, 512);
  const int pid = reg.create();
  int value = 0;
  reg.set(pid, 0, &value);
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load()) {
      const int p = reg.create();
      reg.destroy(p);
    }
  });
  for (int i = 0; i < 100000; ++i) {
    ASSERT_EQ(reg.get(pid, 0), &value);
  }
  stop.store(true);
  churner.join();
  reg.destroy(pid);
}
