// Property-style parameterized suites: invariants swept across block
// sizes, locale counts, epoch widths and checkpoint cadences.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "core/rcu_array.hpp"
#include "platform/rng.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/qsbr.hpp"

namespace rt = rcua::rt;
using rcua::QsbrPolicy;
using rcua::RCUArray;

// ---------------------------------------------------------------------
// Geometry sweep: (locales, block_size) — distribution, capacity and
// content invariants must hold for every combination.
class ArrayGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::size_t>> {
};

TEST_P(ArrayGeometry, CapacityDistributionAndContentInvariants) {
  const auto [locales, block_size] = GetParam();
  rt::Cluster cluster({.num_locales = locales, .workers_per_locale = 2});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 0, {block_size, nullptr});

  std::size_t expected_blocks = 0;
  for (int step = 1; step <= 5; ++step) {
    arr.resize_add(block_size * static_cast<std::size_t>(step));
    expected_blocks += static_cast<std::size_t>(step);

    // Capacity is always a whole number of blocks.
    ASSERT_EQ(arr.num_blocks(), expected_blocks);
    ASSERT_EQ(arr.capacity(), expected_blocks * block_size);
    // Round-robin placement: block k on locale k % L.
    for (std::size_t b = 0; b < expected_blocks; ++b) {
      ASSERT_EQ(arr.block_owner(b * block_size), b % locales);
    }
  }

  // Contents survive arbitrary growth.
  for (std::size_t i = 0; i < arr.capacity(); i += 7) {
    arr.write(i, i * 13 + 1);
  }
  arr.resize_add(block_size);
  for (std::size_t i = 0; i < expected_blocks * block_size; i += 7) {
    ASSERT_EQ(arr.read(i), i * 13 + 1);
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArrayGeometry,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u),
                       ::testing::Values(std::size_t{1}, std::size_t{16},
                                         std::size_t{64}, std::size_t{1000})),
    [](const auto& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "_B" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Epoch-width sweep: the EBR protocol (Algorithm 1 + Lemma 2) must be
// correct for any unsigned epoch width, exercised through wrap-around.
template <typename EpochT>
class EbrWidth : public ::testing::Test {};

using EpochWidths =
    ::testing::Types<std::uint8_t, std::uint16_t, std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(EbrWidth, EpochWidths);

TYPED_TEST(EbrWidth, CountersBalanceAndParityHoldsThroughWraps) {
  // Start near the top of the representable range so narrow widths wrap.
  const TypeParam start = static_cast<TypeParam>(~TypeParam{0} - 5);
  rcua::reclaim::BasicEbr<TypeParam> ebr(start);
  for (int i = 0; i < 40; ++i) {
    const TypeParam before = ebr.epoch();
    ebr.read([&] {
      EXPECT_EQ(ebr.readers_at(static_cast<std::size_t>(before % 2)) +
                    ebr.readers_at(static_cast<std::size_t>((before + 1) % 2)),
                1u);
    });
    ebr.synchronize();
    EXPECT_EQ(ebr.epoch(), static_cast<TypeParam>(before + 1));
    EXPECT_EQ(ebr.readers_at(0), 0u);
    EXPECT_EQ(ebr.readers_at(1), 0u);
  }
}

TYPED_TEST(EbrWidth, ReclamationSafetyUnderConcurrency) {
  struct Canary {
    std::atomic<std::uint32_t> alive{1};
    ~Canary() { alive.store(0); }
  };
  rcua::reclaim::BasicEbr<TypeParam> ebr(static_cast<TypeParam>(~TypeParam{0}));
  std::atomic<Canary*> slot{new Canary};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ebr.read([&] {
        if (slot.load(std::memory_order_acquire)->alive.load() != 1) {
          violations.fetch_add(1);
        }
      });
    }
  });
  for (int i = 0; i < 200; ++i) {
    Canary* old = slot.exchange(new Canary, std::memory_order_acq_rel);
    ebr.synchronize();
    delete old;
    if (i % 16 == 0) std::this_thread::yield();
  }
  stop.store(true);
  reader.join();
  delete slot.load();
  EXPECT_EQ(violations.load(), 0u);
}

// ---------------------------------------------------------------------
// Checkpoint cadence sweep: whatever the cadence, (a) nothing is freed
// early, (b) everything is freed eventually.
class CheckpointCadence : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointCadence, AllDeferredEventuallyFreedNeverEarly) {
  const int cadence = GetParam();
  static std::atomic<int> freed{0};
  freed.store(0);

  rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr(registry);
  struct Counted {
    ~Counted() { freed.fetch_add(1); }
  };

  constexpr int kItems = 64;
  int deferred = 0;
  for (int i = 0; i < kItems; ++i) {
    qsbr.defer_delete(new Counted);
    ++deferred;
    // Sole participant: everything deferred so far is reclaimable at a
    // checkpoint, and nothing may free without one.
    if (cadence > 0 && i % cadence == 0) {
      qsbr.checkpoint();
      EXPECT_EQ(freed.load(), deferred);
    } else {
      EXPECT_LE(freed.load(), deferred);
    }
  }
  qsbr.checkpoint();
  EXPECT_EQ(freed.load(), kItems);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CheckpointCadence,
                         ::testing::Values(0, 1, 2, 7, 16, 63),
                         [](const auto& info) {
                           return "every" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Resize-increment sweep: growth by arbitrary element counts always
// rounds to blocks and never loses data.
class ResizeIncrements : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResizeIncrements, RoundsUpAndPreserves) {
  const std::size_t increment = GetParam();
  constexpr std::size_t kBlock = 32;
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 0, {kBlock, nullptr});

  // Each resize rounds ITS OWN increment up to whole blocks (the paper
  // only covers expansion by block multiples; our resize_add generalizes
  // by rounding per call).
  std::size_t expect_blocks = 0;
  std::size_t logical = 0;
  for (int step = 0; step < 4; ++step) {
    const std::size_t cap_before = arr.capacity();
    if (cap_before > 0) arr.write(cap_before - 1, cap_before);
    arr.resize_add(increment);
    expect_blocks += (increment + kBlock - 1) / kBlock;
    logical += increment;
    ASSERT_GE(arr.capacity(), logical);
    ASSERT_EQ(arr.num_blocks(), expect_blocks);
    if (cap_before > 0) {
      // The value written before this resize survived it.
      ASSERT_EQ(arr.read(cap_before - 1), cap_before);
    }
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ResizeIncrements,
                         ::testing::Values(std::size_t{1}, std::size_t{31},
                                           std::size_t{32}, std::size_t{33},
                                           std::size_t{100}, std::size_t{512}),
                         [](const auto& info) {
                           return "inc" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Reader-count sweep: the EBR read path stays correct (balanced counters,
// no lost reads) at any concurrency level.
class EbrReaderCount : public ::testing::TestWithParam<int> {};

TEST_P(EbrReaderCount, BalancedUnderNThreads) {
  const int nthreads = GetParam();
  rcua::reclaim::Ebr ebr;
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ebr.read([&] { completed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  // A writer churns epochs to force verification retries.
  for (int i = 0; i < 100; ++i) {
    ebr.synchronize();
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), static_cast<std::uint64_t>(nthreads) * 500);
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
  if constexpr (rcua::reclaim::Ebr::kStatsEnabled) {
    EXPECT_GE(ebr.stats().reads, completed.load());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EbrReaderCount, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });
