// Unit tests for the grace-period watchdog layer: StallPolicy,
// wait_with_policy, StallMonitor, and the epoch-tagged OverflowRetireList.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "reclaim/ebr.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/stall_monitor.hpp"
#include "runtime/thread_registry.hpp"

namespace reclaim = rcua::reclaim;

namespace {

struct EnvGuard {
  std::string name;
  explicit EnvGuard(const char* n, const char* value) : name(n) {
    setenv(n, value, 1);
  }
  ~EnvGuard() { unsetenv(name.c_str()); }
};

void flag_deleter(void* p) {
  static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_seq_cst);
}

}  // namespace

TEST(StallPolicy, DefaultIsBlocking) {
  const reclaim::StallPolicy policy;
  EXPECT_TRUE(policy.blocking());
  EXPECT_EQ(policy.deadline_ns, 0u);
}

TEST(StallPolicy, FromEnvReadsKnobs) {
  EnvGuard d("RCUA_STALL_DEADLINE_NS", "2500000");
  EnvGuard s("RCUA_STALL_SPIN", "8");
  EnvGuard y("RCUA_STALL_YIELD", "16");
  EnvGuard p("RCUA_STALL_PARK_NS", "1000");
  const auto policy = reclaim::StallPolicy::from_env();
  EXPECT_FALSE(policy.blocking());
  EXPECT_EQ(policy.deadline_ns, 2500000u);
  EXPECT_EQ(policy.spin_iters, 8u);
  EXPECT_EQ(policy.yield_iters, 16u);
  EXPECT_EQ(policy.park_ns, 1000u);
}

TEST(StallPolicy, FromEnvDefaultsToBlocking) {
  // With no env configuration the policy must preserve the paper's
  // block-forever semantics (the compatibility guarantee).
  const auto policy = reclaim::StallPolicy::from_env();
  EXPECT_TRUE(policy.blocking());
}

TEST(WaitWithPolicy, ImmediateSuccess) {
  reclaim::StallPolicy policy;
  policy.deadline_ns = 1000;
  EXPECT_TRUE(reclaim::wait_with_policy("test", policy, [] { return true; }));
}

TEST(WaitWithPolicy, TimesOutOnStuckPredicate) {
  reclaim::StallPolicy policy;
  policy.deadline_ns = 500 * 1000;  // 0.5 ms
  policy.park_ns = 10 * 1000;
  const bool ok =
      reclaim::wait_with_policy("test", policy, [] { return false; });
  EXPECT_FALSE(ok);
}

TEST(WaitWithPolicy, BlockingPolicyWaitsOutTheStall) {
  std::atomic<bool> ready{false};
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ready.store(true);
  });
  const reclaim::StallPolicy blocking;  // deadline 0
  EXPECT_TRUE(reclaim::wait_with_policy("test", blocking,
                                        [&] { return ready.load(); }));
  releaser.join();
}

TEST(WaitWithPolicy, DeadlineSurvivesLatePredicateFlip) {
  std::atomic<bool> ready{false};
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ready.store(true);
  });
  reclaim::StallPolicy policy;
  policy.deadline_ns = 2ull * 1000 * 1000 * 1000;  // generous 2 s
  EXPECT_TRUE(reclaim::wait_with_policy("test", policy,
                                        [&] { return ready.load(); }));
  releaser.join();
}

TEST(StallMonitor, RecordStallCountsAndForwards) {
  reclaim::StallMonitor monitor(/*budget_bytes=*/0);
  reclaim::CaptureStallSink captured;
  monitor.set_sink(&captured);

  reclaim::StallDiagnostic diag;
  diag.kind = reclaim::StallDiagnostic::Kind::kEbrReader;
  diag.locale = 3;
  diag.epoch = 17;
  diag.stripe = 2;
  diag.stuck_readers = 1;
  diag.waited_ns = 1000000;
  monitor.record_stall(diag);

  EXPECT_EQ(monitor.stalls(), 1u);
  const auto records = captured.records();
  ASSERT_EQ(records.size(), 1u);
  // Structured-field asserts: the sink receives the diagnostic verbatim,
  // no string parsing required.
  EXPECT_EQ(records[0].kind, reclaim::StallDiagnostic::Kind::kEbrReader);
  EXPECT_EQ(records[0].locale, 3u);
  EXPECT_EQ(records[0].epoch, 17u);
  EXPECT_EQ(records[0].stripe, 2u);
  EXPECT_EQ(records[0].stuck_readers, 1u);
  EXPECT_EQ(records[0].waited_ns, 1000000u);
  EXPECT_EQ(monitor.last().epoch, 17u);
  EXPECT_EQ(monitor.last().locale, 3u);
}

TEST(StallMonitor, NullSinkSilencesButStillCounts) {
  reclaim::StallMonitor monitor(/*budget_bytes=*/0);
  monitor.set_sink(nullptr);
  reclaim::StallDiagnostic diag;
  diag.kind = reclaim::StallDiagnostic::Kind::kQsbrLaggard;
  diag.epoch = 5;
  monitor.record_stall(diag);
  EXPECT_EQ(monitor.stalls(), 1u);
  EXPECT_EQ(monitor.last().epoch, 5u);
}

TEST(StallMonitor, CaptureSinkSupportsClearAndSize) {
  reclaim::CaptureStallSink sink;
  reclaim::StallDiagnostic diag;
  sink.on_stall(diag);
  sink.on_stall(diag);
  EXPECT_EQ(sink.size(), 2u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.records().empty());
}

TEST(StallMonitor, DescribeNamesStripeEpochAndDuration) {
  reclaim::StallDiagnostic diag;
  diag.kind = reclaim::StallDiagnostic::Kind::kEbrReader;
  diag.locale = 1;
  diag.epoch = 42;
  diag.stripe = 5;
  diag.stuck_readers = 2;
  diag.waited_ns = 7000;
  const std::string s = diag.describe();
  EXPECT_NE(s.find("stripe 5"), std::string::npos) << s;
  EXPECT_NE(s.find("42"), std::string::npos) << s;
  EXPECT_NE(s.find("7000"), std::string::npos) << s;
}

TEST(StallMonitor, DescribeQsbrLaggardNamesThread) {
  reclaim::StallDiagnostic diag;
  diag.kind = reclaim::StallDiagnostic::Kind::kQsbrLaggard;
  int dummy = 0;
  diag.thread = &dummy;
  diag.thread_observed = 9;
  diag.epoch = 11;
  diag.laggards = 1;
  const std::string s = diag.describe();
  EXPECT_NE(s.find("laggard"), std::string::npos) << s;
  EXPECT_NE(s.find("11"), std::string::npos) << s;
}

TEST(StallMonitor, BudgetAccounting) {
  reclaim::StallMonitor monitor(/*budget_bytes=*/100,
                                reclaim::StallMonitor::Escalation::kWarn);
  EXPECT_FALSE(monitor.would_exceed(100));
  monitor.note_overflow(60);
  EXPECT_EQ(monitor.overflow_bytes(), 60u);
  EXPECT_TRUE(monitor.would_exceed(41));
  EXPECT_FALSE(monitor.would_exceed(40));
  monitor.note_overflow(40);
  EXPECT_EQ(monitor.peak_overflow_bytes(), 100u);
  monitor.note_flushed(100, 2);
  EXPECT_EQ(monitor.overflow_bytes(), 0u);
  EXPECT_EQ(monitor.flushed_objects(), 2u);
  // The peak survives the flush (it is the memory-bound evidence).
  EXPECT_EQ(monitor.peak_overflow_bytes(), 100u);
}

TEST(StallMonitor, UnlimitedBudgetNeverExceeds) {
  reclaim::StallMonitor monitor(/*budget_bytes=*/0);
  monitor.note_overflow(SIZE_MAX / 2);
  EXPECT_FALSE(monitor.would_exceed(SIZE_MAX / 2));
}

TEST(StallMonitor, EscalateWarnRecordsAndContinues) {
  reclaim::StallMonitor monitor(/*budget_bytes=*/1,
                                reclaim::StallMonitor::Escalation::kWarn);
  reclaim::CaptureStallSink captured;
  monitor.set_sink(&captured);
  reclaim::StallDiagnostic diag;
  diag.overflow_bytes = 10;
  diag.budget_bytes = 1;
  monitor.escalate(diag);  // must not abort under kWarn
  EXPECT_EQ(monitor.escalations(), 1u);
  const auto records = captured.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind,
            reclaim::StallDiagnostic::Kind::kOverflowBudget);
  // escalate() stamps the monitor's own budget and live byte count into
  // the diagnostic before forwarding it.
  EXPECT_EQ(records[0].budget_bytes, 1u);
}

TEST(OverflowRetireList, PushAccountsBytesAndObjects) {
  reclaim::OverflowRetireList list;
  std::atomic<bool> freed{false};
  list.push(&flag_deleter, &freed, 128, /*epoch=*/4);
  EXPECT_EQ(list.pending_objects(), 1u);
  EXPECT_EQ(list.pending_bytes(), 128u);
  EXPECT_FALSE(freed.load());
  const auto r = list.free_all();
  EXPECT_EQ(r.objects, 1u);
  EXPECT_EQ(r.bytes, 128u);
  EXPECT_TRUE(freed.load());
  EXPECT_EQ(list.pending_objects(), 0u);
}

TEST(OverflowRetireList, FlushRequiresBothColumnsObservedEmpty) {
  reclaim::OverflowRetireList list;
  std::atomic<bool> freed_even{false};
  std::atomic<bool> freed_odd{false};
  list.push(&flag_deleter, &freed_even, 10, /*epoch=*/2);  // parity 0
  list.push(&flag_deleter, &freed_odd, 20, /*epoch=*/3);   // parity 1
  // Only parity 0 observed empty: an entry's own parity draining is NOT
  // enough — a stalled reader on the other column may still hold it.
  const auto r =
      list.flush_ready([](std::size_t parity) { return parity == 0; });
  EXPECT_EQ(r.objects, 0u);
  EXPECT_FALSE(freed_even.load());
  EXPECT_FALSE(freed_odd.load());
  EXPECT_EQ(list.pending_objects(), 2u);
  EXPECT_EQ(list.pending_bytes(), 30u);
  // Parity 1 observed empty on a later flush: combined with the banked
  // parity-0 observation, both entries are now reclaimable.
  const auto r2 =
      list.flush_ready([](std::size_t parity) { return parity == 1; });
  EXPECT_EQ(r2.objects, 2u);
  EXPECT_EQ(r2.bytes, 30u);
  EXPECT_TRUE(freed_even.load());
  EXPECT_TRUE(freed_odd.load());
  EXPECT_EQ(list.pending_bytes(), 0u);
}

TEST(OverflowRetireList, FlushFreesInOneCallWhenBothColumnsAreEmpty) {
  reclaim::OverflowRetireList list;
  std::atomic<bool> freed{false};
  list.push(&flag_deleter, &freed, 8, /*epoch=*/5);
  const auto r = list.flush_ready([](std::size_t) { return true; });
  EXPECT_EQ(r.objects, 1u);
  EXPECT_TRUE(freed.load());
  EXPECT_EQ(list.pending_objects(), 0u);
}

TEST(OverflowRetireList, FlushAgainstLiveEbrColumn) {
  // End-to-end with a real reclaimer: while a reader occupies either
  // column, deferred entries survive flushes; once it leaves, both
  // columns are observed empty and the entry is reclaimed.
  reclaim::Ebr ebr(0, /*stripe_count=*/2);
  reclaim::OverflowRetireList list;
  std::atomic<bool> freed{false};

  auto guard = std::make_unique<reclaim::Ebr::ReadGuard>(ebr);  // parity 0
  const auto old_epoch = ebr.advance_epoch();                   // drain 0
  list.push(&flag_deleter, &freed, 64,
            static_cast<std::uint64_t>(old_epoch));
  auto drained = [&](std::size_t parity) {
    return ebr.readers_at(parity) == 0;
  };
  EXPECT_EQ(list.flush_ready(drained).objects, 0u);
  EXPECT_FALSE(freed.load());

  guard.reset();  // reader evacuates
  EXPECT_EQ(list.flush_ready(drained).objects, 1u);
  EXPECT_TRUE(freed.load());
}

TEST(Ebr, TryWaitForReadersTimesOutAndNamesTheStripe) {
  reclaim::Ebr ebr(0, /*stripe_count=*/4);
  ebr.test_stripe_override = 2;  // pin the reader to a known stripe
  reclaim::Ebr::ReadGuard guard(ebr);
  ebr.test_stripe_override = -1;

  reclaim::StallPolicy policy;
  policy.deadline_ns = 200 * 1000;  // 0.2 ms
  policy.park_ns = 10 * 1000;
  const auto old_epoch = ebr.advance_epoch();
  const reclaim::DrainResult r = ebr.try_wait_for_readers(old_epoch, policy);
  EXPECT_FALSE(r.drained);
  EXPECT_EQ(r.stuck_readers, 1u);
  EXPECT_EQ(r.stuck_stripe, 2u);
  EXPECT_GT(r.waited_ns, 0u);
}

TEST(Ebr, TryWaitForReadersDrainsWhenClear) {
  reclaim::Ebr ebr;
  reclaim::StallPolicy policy;
  policy.deadline_ns = 1000;
  const auto old_epoch = ebr.advance_epoch();
  const reclaim::DrainResult r = ebr.try_wait_for_readers(old_epoch, policy);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.stuck_stripe, SIZE_MAX);
}

TEST(Qsbr, TrySynchronizeTimesOutOnLaggard) {
  rcua::rt::ThreadRegistry registry;  // isolated: other tests' threads
                                      // must not gate this domain
  reclaim::Qsbr qsbr(registry);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread laggard([&] {
    qsbr.ensure_participant();
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    qsbr.checkpoint();
  });
  while (!entered.load()) std::this_thread::yield();

  reclaim::StallPolicy policy;
  policy.deadline_ns = 500 * 1000;  // 0.5 ms
  policy.park_ns = 10 * 1000;
  const auto r = qsbr.try_synchronize(policy);
  EXPECT_FALSE(r.quiesced);
  EXPECT_GE(r.laggards, 1u);
  EXPECT_NE(r.laggard, nullptr);
  EXPECT_LT(r.laggard_observed, r.target_epoch);

  release.store(true);
  laggard.join();
  qsbr.synchronize();  // blocking: completes once the laggard checkpointed
  SUCCEED();
}
