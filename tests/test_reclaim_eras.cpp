// Era-based reclamation (reclaim::Ibr / reclaim::HazardEras): unit
// coverage of the reservation/retire/scan machinery, and the headline
// robustness claim of DESIGN.md §13 — under a parked reader, the
// unreclaimed memory of the era policies stays below a constant bound
// independent of how long the reader stalls (how many resizes run past
// it), while EBR's deadline-deferred overflow list and QSBR's deferral
// queue grow linearly on the identical scenario.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/rcu_array.hpp"
#include "reclaim/eras.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/stall_monitor.hpp"
#include "runtime/cluster.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/thread_registry.hpp"

namespace rt = rcua::rt;
namespace reclaim = rcua::reclaim;

namespace {

void flag_free(void* p) {
  static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_seq_cst);
}

/// A silent monitor for tests that assert on its counters (the global
/// one would also print to stderr and mix state across tests).
struct SilentMonitor {
  SilentMonitor() : monitor(/*budget_bytes=*/0,
                            reclaim::StallMonitor::Escalation::kWarn) {
    monitor.set_sink(&sink);
  }
  reclaim::CaptureStallSink sink;
  reclaim::StallMonitor monitor;
};

}  // namespace

// ---------------------------------------------------------------------
// Domain-level typed tests over both era schemes.
// ---------------------------------------------------------------------

template <typename Dom>
class EraDomainTest : public ::testing::Test {};

using EraDomains = ::testing::Types<reclaim::Ibr, reclaim::HazardEras>;
TYPED_TEST_SUITE(EraDomainTest, EraDomains);

TYPED_TEST(EraDomainTest, RetireWithoutReadersFreesImmediately) {
  TypeParam dom(0, /*slot_count=*/4);
  std::atomic<bool> freed[3] = {};
  for (int i = 0; i < 3; ++i) {
    const auto res =
        dom.retire(&flag_free, &freed[i], /*bytes=*/8, dom.current_era());
    EXPECT_EQ(res.freed_objects, 1u);
    EXPECT_EQ(res.pending_objects, 0u);
    EXPECT_TRUE(freed[i].load());
  }
  const auto s = dom.stats();
  EXPECT_EQ(s.retired, 3u);
  EXPECT_EQ(s.freed, 3u);
  EXPECT_EQ(s.epoch_advances, 3u);  // era_freq defaults to 1
  EXPECT_GE(s.era_scans, 3u);
  EXPECT_EQ(s.pending_bytes, 0u);
  EXPECT_GE(s.pending_bytes_hwm, 8u);
}

TYPED_TEST(EraDomainTest, GuardBlocksOverlappingLifetimeUntilRelease) {
  TypeParam dom(0, 4);
  std::atomic<bool> freed{false};
  std::atomic<std::atomic<bool>*> src{&freed};
  {
    typename TypeParam::ReadGuard guard(dom);
    std::atomic<bool>* p = guard.protect(src);
    ASSERT_EQ(p, &freed);
    // Unpublish, then retire the object the guard protects: the
    // reservation's interval overlaps its [0, now] lifetime.
    src.store(nullptr, std::memory_order_seq_cst);
    const auto res = dom.retire(&flag_free, &freed, 8, /*birth_era=*/0);
    EXPECT_EQ(res.freed_objects, 0u);
    EXPECT_EQ(res.pending_objects, 1u);
    EXPECT_FALSE(freed.load());
    EXPECT_EQ(dom.active_reservations(), 1u);
  }
  // Guard gone: the next scan frees it.
  const auto res = dom.scan();
  EXPECT_EQ(res.freed_objects, 1u);
  EXPECT_TRUE(freed.load());
  EXPECT_EQ(dom.pending_objects(), 0u);
}

TYPED_TEST(EraDomainTest, StalledReservationBoundsPendingByConstruction) {
  // The bounded-memory argument at domain granularity: one reader parks
  // inside a section while a writer runs R retire rounds past it. Only
  // objects whose lifetime overlaps the parked reservation stay pending
  // — everything born after the reservation's upper bound is freed on
  // its own retire — so pending never exceeds a constant, independent
  // of R.
  TypeParam dom(0, 4);
  constexpr int kRounds = 32;
  std::atomic<bool> freed[kRounds + 1] = {};
  std::atomic<std::atomic<bool>*> src{&freed[0]};

  typename TypeParam::ReadGuard guard(dom);
  std::atomic<bool>* held = guard.protect(src);
  ASSERT_EQ(held, &freed[0]);

  std::uint64_t live_birth = 0;  // freed[0] born at era 0
  std::size_t max_pending = 0;
  for (int r = 1; r <= kRounds; ++r) {
    std::atomic<bool>* old = src.load(std::memory_order_seq_cst);
    const std::uint64_t fresh_birth = dom.current_era();
    src.store(&freed[r], std::memory_order_seq_cst);
    const auto res =
        dom.retire(&flag_free, old, 8, std::exchange(live_birth, fresh_birth));
    max_pending = std::max(max_pending, res.pending_objects);
  }
  // The parked reservation pins freed[0] and freed[1] (whose birth at
  // era 0 still predates the reservation's upper bound) — and nothing
  // else, ever.
  EXPECT_LE(max_pending, 2u);
  EXPECT_FALSE(freed[0].load());
  // Everything born after the reservation was freed along the way.
  for (int r = 2; r < kRounds; ++r) {
    EXPECT_TRUE(freed[r].load()) << "round " << r;
  }
}

TYPED_TEST(EraDomainTest, LowerBoundPinsOnlyUnderIbr) {
  TypeParam dom(0, 4);
  std::atomic<int> obj{7};
  std::atomic<std::atomic<int>*> src{&obj};
  typename TypeParam::ReadGuard guard(dom);
  (void)guard.protect(src);
  const auto first = dom.reservation_at(guard.slot());
  EXPECT_EQ(first.lower, 0u);
  EXPECT_EQ(first.upper, 0u);

  dom.advance_era();
  dom.advance_era();
  (void)guard.protect(src);
  const auto second = dom.reservation_at(guard.slot());
  EXPECT_EQ(second.upper, 2u);
  if constexpr (TypeParam::kPinLower) {
    EXPECT_EQ(second.lower, 0u) << "IBR pins the section-entry era";
  } else {
    EXPECT_EQ(second.lower, 2u) << "hazard eras republish a single era";
  }
}

TYPED_TEST(EraDomainTest, FenceWaitSeesPreFenceSection) {
  TypeParam dom(0, 4);
  std::atomic<int> obj{1};
  std::atomic<std::atomic<int>*> src{&obj};
  auto guard = std::make_unique<typename TypeParam::ReadGuard>(dom);
  (void)guard->protect(src);
  const std::uint64_t fence = dom.advance_era();
  EXPECT_EQ(dom.readers_below(fence), 1u);

  reclaim::StallPolicy policy;
  policy.deadline_ns = 1;  // effectively immediate give-up
  policy.spin_iters = 1;
  policy.yield_iters = 1;
  const auto drain = dom.try_wait_for_readers(fence, policy);
  EXPECT_FALSE(drain.drained);
  EXPECT_EQ(drain.stuck_readers, 1u);
  EXPECT_NE(drain.stuck_stripe, SIZE_MAX);

  guard.reset();
  EXPECT_EQ(dom.readers_below(fence), 0u);
  dom.wait_for_readers(fence);  // must return immediately
  const auto ok = dom.try_wait_for_readers(fence, policy);
  EXPECT_TRUE(ok.drained);
}

TYPED_TEST(EraDomainTest, SlotClaimProbesPastTakenSlots) {
  TypeParam dom(0, 4);
  dom.test_slot_override = 1;
  typename TypeParam::ReadGuard a(dom);
  typename TypeParam::ReadGuard b(dom);
  EXPECT_NE(a.slot(), b.slot());
  EXPECT_EQ(a.slot(), 1u);
}

TYPED_TEST(EraDomainTest, FlushUnsafeFreesEverything) {
  TypeParam dom(0, 4);
  std::atomic<bool> freed{false};
  {
    typename TypeParam::ReadGuard guard(dom);
    std::atomic<std::atomic<bool>*> src{&freed};
    (void)guard.protect(src);
    dom.retire(&flag_free, &freed, 16, 0);
    EXPECT_EQ(dom.pending_objects(), 1u);
    const auto res = dom.flush_unsafe();
    EXPECT_EQ(res.freed_objects, 1u);
    EXPECT_EQ(res.freed_bytes, 16u);
  }
  EXPECT_TRUE(freed.load());
  EXPECT_EQ(dom.pending_bytes(), 0u);
}

// ---------------------------------------------------------------------
// Array-level: the bake-off's deterministic robustness gate.
// ---------------------------------------------------------------------

template <typename Policy>
class EraArrayTest : public ::testing::Test {};

using EraPolicies = ::testing::Types<rcua::IbrPolicy, rcua::HazardErasPolicy>;
TYPED_TEST_SUITE(EraArrayTest, EraPolicies);

TYPED_TEST(EraArrayTest, ParkedViewBoundsUnreclaimedSpines) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 1});
  SilentMonitor sm;
  typename rcua::RCUArray<int, TypeParam>::Options opts;
  opts.block_size = 64;
  opts.stall_monitor = &sm.monitor;
  rcua::RCUArray<int, TypeParam> arr(cluster, 64, opts);

  constexpr int kResizes = 24;
  std::size_t max_pending = 0;
  {
    auto view = arr.view();  // the indefinitely stalled reader
    for (int r = 0; r < kResizes; ++r) {
      arr.resize_add(64);
      max_pending = std::max(max_pending, arr.reclaim_pending_objects());
    }
    // The bound: <= 2 spines per locale, INDEPENDENT of kResizes. (The
    // view pins one locale; other locales' readers are idle, so their
    // retires free immediately.)
    EXPECT_LE(max_pending, 2u * cluster.num_locales());
    EXPECT_EQ(arr.capacity(), 64u * (kResizes + 1));
    // No overflow machinery involved, ever: the bound needs no budget.
    EXPECT_EQ(sm.monitor.overflow_bytes(), 0u);
    EXPECT_EQ(sm.monitor.escalations(), 0u);
    EXPECT_EQ(arr.stalled_spines(), 0u);
    EXPECT_EQ(arr.overflow_pending_objects(), 0u);
  }
  // Reader gone: one manual retry drains the era retire lists.
  arr.reclaim_overflow();
  EXPECT_EQ(arr.reclaim_pending_objects(), 0u);
  EXPECT_EQ(arr.reclaim_pending_bytes(), 0u);
}

TYPED_TEST(EraArrayTest, EraStallDiagnosticIsStructuredAndNonEscalating) {
  // Satellite: StallMonitor escalation coverage for a policy that never
  // defers — the era reclaimers must report the stalled reader as a
  // structured kEraReservation diagnostic while keeping overflow bytes
  // at exactly zero (no budget pressure, no escalation path).
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  SilentMonitor sm;
  typename rcua::RCUArray<int, TypeParam>::Options opts;
  opts.block_size = 64;
  opts.stall_monitor = &sm.monitor;
  rcua::RCUArray<int, TypeParam> arr(cluster, 64, opts);

  {
    auto view = arr.view();
    // Era lag grows by ~1 per resize; the diagnostic fires at the
    // threshold (3) and on every retire past it.
    for (int r = 0; r < 8; ++r) arr.resize_add(64);
    EXPECT_GE(sm.monitor.stalls(), 1u);
    const auto records = sm.sink.records();
    ASSERT_FALSE(records.empty());
    for (const auto& d : records) {
      EXPECT_EQ(d.kind, reclaim::StallDiagnostic::Kind::kEraReservation);
      EXPECT_NE(d.domain, nullptr);
      EXPECT_EQ(d.locale, 0u);
      EXPECT_GE(d.era_lag, 3u);
      EXPECT_NE(d.stripe, SIZE_MAX);     // the laggard slot is named
      EXPECT_GT(d.overflow_bytes, 0u);   // pending (bounded) bytes
      EXPECT_EQ(d.budget_bytes, 0u);     // no budget in play
      EXPECT_FALSE(d.describe().empty());
    }
    // The never-defers contract, asserted against the monitor itself.
    EXPECT_EQ(sm.monitor.overflow_bytes(), 0u);
    EXPECT_EQ(sm.monitor.peak_overflow_bytes(), 0u);
    EXPECT_EQ(sm.monitor.escalations(), 0u);
    EXPECT_EQ(sm.monitor.overflow_objects(), 0u);
  }
}

TYPED_TEST(EraArrayTest, ChaosStalledReaderKeepsResizeLiveAndBounded) {
  // FaultPlan chaos: reader threads stalled mid-section (real sleeps)
  // while a resize train runs. Era retirement never blocks on them, the
  // pending set stays bounded throughout, and everything drains once
  // the readers exit.
  rt::FaultPlan plan(/*seed=*/7);
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  SilentMonitor sm;
  typename rcua::RCUArray<int, TypeParam>::Options opts;
  opts.block_size = 64;
  opts.stall_monitor = &sm.monitor;
  rcua::RCUArray<int, TypeParam> arr(cluster, 4 * 64, opts);
  plan.add({.action = rt::FaultPlan::Action::kStallReader,
            .locale = 0,
            .fire_from = 1,
            .fire_count = 8,
            .delay_ns = 2ull * 1000 * 1000});  // 2 ms mid-section stalls
  cluster.set_fault_plan(&plan);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        sink += static_cast<std::uint64_t>(arr.read(0));
      }
      (void)sink;
    });
  }
  std::size_t max_pending = 0;
  for (int r = 0; r < 16; ++r) {
    arr.resize_add(64);
    max_pending = std::max(max_pending, arr.reclaim_pending_objects());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  cluster.set_fault_plan(nullptr);

  EXPECT_LE(max_pending, 2u * cluster.num_locales());
  EXPECT_EQ(sm.monitor.overflow_bytes(), 0u);
  EXPECT_EQ(sm.monitor.escalations(), 0u);
  arr.reclaim_overflow();
  EXPECT_EQ(arr.reclaim_pending_objects(), 0u);
}

// ---------------------------------------------------------------------
// The contrast half of the headline claim: EBR and QSBR on the SAME
// parked-reader scenario grow without bound.
// ---------------------------------------------------------------------

TEST(EraContrast, EbrOverflowGrowsLinearlyUnderParkedReader) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  SilentMonitor sm;
  rcua::RCUArray<int, rcua::EbrPolicy>::Options opts;
  opts.block_size = 64;
  opts.stall_monitor = &sm.monitor;
  // Non-blocking drain, so the parked view defers instead of hanging
  // the resize train (the §9 watchdog path).
  opts.stall_policy.deadline_ns = 1;
  opts.stall_policy.spin_iters = 1;
  opts.stall_policy.yield_iters = 1;
  opts.stall_policy.park_ns = 1000;
  rcua::RCUArray<int, rcua::EbrPolicy> arr(cluster, 64, opts);

  constexpr int kResizes = 24;
  {
    auto view = arr.view();
    for (int r = 0; r < kResizes; ++r) arr.resize_add(64);
    // Every retired spine is parked behind the stalled reader: the
    // unreclaimed set grows with the stall duration — the fragility the
    // era policies remove. (>= rather than == : the very first deferral
    // may still free if the drain won the race before the view parked.)
    EXPECT_GE(arr.overflow_pending_objects(),
              static_cast<std::size_t>(kResizes - 1));
    EXPECT_GT(sm.monitor.overflow_bytes(), 0u);
  }
  arr.reclaim_overflow();
  EXPECT_EQ(arr.overflow_pending_objects(), 0u);
}

TEST(EraContrast, QsbrDeferralsGrowLinearlyUnderLaggardParticipant) {
  rt::ThreadRegistry registry;
  reclaim::Qsbr qsbr(registry);
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rcua::RCUArray<int, rcua::QsbrPolicy>::Options opts;
  opts.block_size = 64;
  opts.qsbr = &qsbr;
  rcua::RCUArray<int, rcua::QsbrPolicy> arr(cluster, 64, opts);

  constexpr int kResizes = 24;
  // This thread is a participant (every array op registers it) that
  // never checkpoints: the safe-epoch minimum is pinned, and every
  // deferred spine stays unreclaimed — linear growth in the laggard's
  // stall duration.
  (void)arr.read(0);
  for (int r = 0; r < kResizes; ++r) arr.resize_add(64);
  const auto s = qsbr.stats();
  EXPECT_GE(s.defers, static_cast<std::uint64_t>(kResizes));
  EXPECT_EQ(s.reclaimed, 0u);
  EXPECT_GE(qsbr.pending_total(), static_cast<std::size_t>(kResizes));
  // The laggard checkpoints, then the surviving workers checkpoint
  // (defer lists are per-thread). A pool worker that already exited
  // leaves its deferrals stranded on a parked record no checkpoint
  // will visit — flush_unsafe() takes that remainder (legal: no live
  // readers) — so the robust drain is checkpoints plus a final flush,
  // measured by pending_total().
  qsbr.checkpoint();
  cluster.coforall_locales([&](std::uint32_t) { qsbr.checkpoint(); });
  qsbr.checkpoint();
  qsbr.flush_unsafe();
  EXPECT_EQ(qsbr.pending_total(), 0u);
}
