// Unit tests for src/platform: alignment, backoff, locks, barrier, RNG,
// timing, topology.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "platform/align.hpp"
#include "platform/backoff.hpp"
#include "platform/barrier.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "platform/timing.hpp"
#include "platform/topology.hpp"

namespace plat = rcua::plat;

TEST(Align, CacheAlignedHasFullLineAlignment) {
  EXPECT_EQ(alignof(plat::CacheAligned<int>), plat::kCacheLine);
  EXPECT_EQ(alignof(plat::CacheAligned<std::uint64_t>), plat::kCacheLine);
  EXPECT_EQ(sizeof(plat::CacheAligned<char>) % plat::kCacheLine, 0u);
}

TEST(Align, AdjacentElementsAreOnDistinctLines) {
  plat::CacheAligned<std::uint64_t> pair[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&pair[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&pair[1].value);
  EXPECT_GE(b - a, plat::kCacheLine);
}

TEST(Align, AccessorsReachTheValue) {
  plat::CacheAligned<int> x{41};
  EXPECT_EQ(*x, 41);
  *x += 1;
  EXPECT_EQ(x.value, 42);
}

TEST(Align, RoundUpPow2) {
  EXPECT_EQ(plat::round_up_pow2(0, 64), 0u);
  EXPECT_EQ(plat::round_up_pow2(1, 64), 64u);
  EXPECT_EQ(plat::round_up_pow2(64, 64), 64u);
  EXPECT_EQ(plat::round_up_pow2(65, 64), 128u);
}

TEST(Align, IsPow2) {
  EXPECT_FALSE(plat::is_pow2(0));
  EXPECT_TRUE(plat::is_pow2(1));
  EXPECT_TRUE(plat::is_pow2(1024));
  EXPECT_FALSE(plat::is_pow2(1000));
}

TEST(Backoff, EscalatesToYield) {
  plat::Backoff b(/*yield_threshold=*/8);
  EXPECT_FALSE(b.is_yielding());
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_TRUE(b.is_yielding());
  b.reset();
  EXPECT_FALSE(b.is_yielding());
}

TEST(Spinlock, BasicLockUnlock) {
  plat::Spinlock lock;
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, MutualExclusionUnderContention) {
  plat::Spinlock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<plat::Spinlock> guard(lock);
        ++counter;  // data race iff the lock is broken
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(TicketLock, MutualExclusionUnderContention) {
  plat::TicketLock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<plat::TicketLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(TicketLock, TryLockOnlySucceedsWhenFree) {
  plat::TicketLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::uint32_t kThreads = 6;
  constexpr int kPhases = 20;
  plat::SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, everyone must have bumped for this phase.
        if (phase_counter.load() < (p + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(phase_counter.load(), kPhases * static_cast<int>(kThreads));
}

TEST(SpinBarrier, ReportsParticipants) {
  plat::SpinBarrier barrier(3);
  EXPECT_EQ(barrier.participants(), 3u);
}

TEST(Rng, SplitMixIsDeterministic) {
  plat::SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  plat::Xoshiro256 a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowStaysInRange) {
  plat::Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  plat::Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversSmallRangeUniformly) {
  plat::Xoshiro256 rng(2024);
  constexpr std::uint64_t kBound = 16;
  constexpr int kSamples = 32000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBound)];
  for (std::uint64_t v = 0; v < kBound; ++v) {
    // Expect 2000 per bin; allow generous slack.
    EXPECT_GT(counts[v], 1500) << "bin " << v;
    EXPECT_LT(counts[v], 2500) << "bin " << v;
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  plat::Xoshiro256 rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, Mix64IsAPermutationOnSamples) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(plat::mix64(i));
  EXPECT_EQ(outs.size(), 1000u);  // injective on this sample
}

TEST(Timing, MonotonicClockAdvances) {
  const auto a = plat::now_ns();
  const auto b = plat::now_ns();
  EXPECT_GE(b, a);
}

TEST(Timing, TimerMeasuresSpin) {
  plat::Timer timer;
  plat::spin_for_ns(2'000'000);  // 2 ms
  EXPECT_GE(timer.elapsed_ns(), 1'500'000u);
}

TEST(Timing, ThreadCpuClockAdvancesUnderWork) {
  const auto a = plat::thread_cpu_ns();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    sink = sink + static_cast<std::uint64_t>(i);
  }
  const auto b = plat::thread_cpu_ns();
  EXPECT_GT(b, a);
}

TEST(Topology, ReportsAtLeastOneThread) {
  EXPECT_GE(plat::hardware_threads(), 1u);
  EXPECT_TRUE(plat::oversubscribed(plat::hardware_threads() + 1));
}
