// Concurrency tests for RCUArray: reads/updates racing resizes, the
// lost-update property (Lemma 6), snapshot liveness (Lemma 1), and
// QSBR checkpoint integration.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/rcu_array.hpp"
#include "platform/rng.hpp"

using rcua::EbrPolicy;
using rcua::HazardErasPolicy;
using rcua::IbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;
namespace rt = rcua::rt;

namespace {

template <typename Policy>
struct RcuArrayConc : public ::testing::Test {
  using Array = RCUArray<std::uint64_t, Policy>;
};

using Policies =
    ::testing::Types<EbrPolicy, QsbrPolicy, IbrPolicy, HazardErasPolicy>;
TYPED_TEST_SUITE(RcuArrayConc, Policies);

void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

}  // namespace

TYPED_TEST(RcuArrayConc, ReadersRunConcurrentlyWithResizes) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 3});
  typename TestFixture::Array arr(cluster, 64, {.block_size = 64});
  for (std::size_t i = 0; i < 64; ++i) arr.write(i, i ^ 0xABCD);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      rcua::plat::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t i = rng.next_below(64);  // always-valid region
        if (arr.read(i) != (i ^ 0xABCD)) bad.fetch_add(1);
        reads.fetch_add(1, std::memory_order_relaxed);
        if (TestFixture::Array::uses_qsbr && (reads.load() % 64 == 0)) {
          rcua::reclaim::Qsbr::global().checkpoint();
        }
      }
      if (TestFixture::Array::uses_qsbr) {
        rcua::reclaim::Qsbr::global().checkpoint();
      }
    });
  }

  for (int r = 0; r < 40; ++r) {
    arr.resize_add(64);
    std::this_thread::yield();
  }
  while (reads.load() < 1000) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(arr.capacity(), 64u + 40 * 64u);
  drain_qsbr();
}

TYPED_TEST(RcuArrayConc, UpdatesThroughReferencesSurviveResize) {
  // Lemma 6 end-to-end: take a reference, resize underneath it, write
  // through the old reference, and observe the write through the new
  // snapshot on every locale.
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 3 * 64, {.block_size = 64});

  std::uint64_t& ref = arr.index(100);
  arr.resize_add(3 * 64);  // clone + swap on every locale
  ref = 4242;              // write through the pre-resize reference

  cluster.coforall_locales(
      [&](std::uint32_t) { EXPECT_EQ(arr.read(100), 4242u); });
  drain_qsbr();
}

TYPED_TEST(RcuArrayConc, ConcurrentWritersToDistinctSlotsAllLand) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  constexpr std::size_t kPerTask = 512;
  typename TestFixture::Array arr(cluster, 4 * kPerTask, {.block_size = 256});

  cluster.coforall_tasks(2, [&](std::uint32_t l, std::uint32_t t) {
    const std::size_t base = (l * 2 + t) * kPerTask;
    for (std::size_t i = 0; i < kPerTask; ++i) {
      arr.write(base + i, base + i + 7);
    }
  });
  for (std::size_t i = 0; i < 4 * kPerTask; ++i) {
    ASSERT_EQ(arr.read(i), i + 7);
  }
  drain_qsbr();
}

TYPED_TEST(RcuArrayConc, ResizersSerializeViaWriteLock) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 3});
  typename TestFixture::Array arr(cluster, 0, {.block_size = 64});
  std::vector<std::thread> resizers;
  for (int t = 0; t < 4; ++t) {
    resizers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) arr.resize_add(64);
    });
  }
  for (auto& t : resizers) t.join();
  EXPECT_EQ(arr.capacity(), 40 * 64u);
  EXPECT_EQ(arr.resize_count(), 40u);
  EXPECT_GE(arr.write_lock().acquisitions(), 40u);
  drain_qsbr();
}

TEST(RcuArrayEbrConc, AtMostTwoSpinesPerLocaleDuringStress) {
  // Lemma 1: with EBR (synchronous reclamation) a resize holds at most
  // two live spines per locale; between resizes exactly one.
  const auto base = rcua::Snapshot<std::uint64_t>::live_count();
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 3});
  RCUArray<std::uint64_t, EbrPolicy> arr(cluster, 64, {.block_size = 64});

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> max_seen{0};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto live = rcua::Snapshot<std::uint64_t>::live_count() - base;
      std::uint64_t prev = max_seen.load();
      while (live > prev && !max_seen.compare_exchange_weak(prev, live)) {
      }
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 30; ++i) arr.resize_add(64);
  stop.store(true);
  observer.join();

  // 2 locales x at most 2 live spines each, mid-swap.
  EXPECT_LE(max_seen.load(), 4u);
  // Quiescent: exactly one spine per locale.
  EXPECT_EQ(rcua::Snapshot<std::uint64_t>::live_count() - base, 2u);
}

TEST(RcuArrayEbrConc, ReadersNeverSeeTornCapacity) {
  // Snapshots are immutable: a reader's view of num_blocks can only be
  // one of the published spine lengths, never an intermediate state.
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 3});
  RCUArray<std::uint64_t, EbrPolicy> arr(cluster, 64, {.block_size = 64});

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> observations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::size_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t n = arr.num_blocks();
        if (n < last) bad.fetch_add(1);  // capacity must be monotone
        last = n;
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 50; ++i) arr.resize_add(64);
  while (observations.load() < 500) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(RcuArrayQsbrConc, SpinesAccumulateUntilCheckpoint) {
  const auto base = rcua::Snapshot<std::uint64_t>::live_count();
  rt::ThreadRegistry reg;
  rcua::reclaim::Qsbr qsbr(reg);
  {
    rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
    RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 0,
                                            {.block_size = 64, .qsbr = &qsbr});
    for (int i = 0; i < 5; ++i) arr.resize_add(64);
    // 5 retired spines + 1 current. Workers may have flushed some at
    // park (paper behaviour), so live count is between 1 and 6.
    const auto live = rcua::Snapshot<std::uint64_t>::live_count() - base;
    EXPECT_GE(live, 1u);
    EXPECT_LE(live, 6u);
  }
  qsbr.flush_unsafe();
  EXPECT_EQ(rcua::Snapshot<std::uint64_t>::live_count(), base);
}

TEST(RcuArrayStress, MixedReadUpdateResizeWorkload) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 256, {.block_size = 128});

  // Invariant: every slot holds either 0 or a value encoding its index.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> ops{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      rcua::plat::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7 + 1);
      int local_ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t cap = arr.capacity();
        const std::size_t i = rng.next_below(cap);
        if (rng.next_below(2) == 0) {
          arr.write(i, (i << 8) | 0x5A);
        } else {
          const std::uint64_t v = arr.read(i);
          if (v != 0 && v != ((static_cast<std::uint64_t>(i) << 8) | 0x5A)) {
            violations.fetch_add(1);
          }
        }
        ops.fetch_add(1, std::memory_order_relaxed);
        if (++local_ops % 128 == 0) {
          rcua::reclaim::Qsbr::global().checkpoint();
        }
      }
      rcua::reclaim::Qsbr::global().checkpoint();
    });
  }
  for (int r = 0; r < 20; ++r) {
    arr.resize_add(128);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  while (ops.load() < 5000) std::this_thread::yield();
  stop.store(true);
  for (auto& t : workers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(arr.capacity(), 256u + 20 * 128u);
  drain_qsbr();
}
