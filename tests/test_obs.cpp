// Tier-1 coverage for the observability subsystem (DESIGN.md §12):
// registry correctness under concurrent striped increments, histogram
// bucket boundaries, snapshot isolation, trace ring wrap semantics,
// Chrome-JSON export shape, and the no-sink overhead guard — enabling
// the registry+trace must not move a single deterministic counter or
// virtual nanosecond.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rcu_array.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reclaim/qsbr.hpp"
#include "runtime/cluster.hpp"
#include "sim/task_clock.hpp"

namespace {

using rcua::obs::Agg;
using rcua::obs::Counter;
using rcua::obs::Histogram;
using rcua::obs::Registry;
using rcua::obs::TraceEvent;

TEST(ObsRegistry, CounterSumsConcurrentIncrementsAcrossStripes) {
  Registry reg(8);
  Counter& c = reg.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsRegistry, CounterStripeAttributionIsExact) {
  Registry reg;
  Counter& c = reg.counter("test.per_locale", /*stripes=*/4);
  c.add_at(0, 7);
  c.add_at(2, 5);
  c.add_at(2, 1);
  EXPECT_EQ(c.at(0), 7u);
  EXPECT_EQ(c.at(1), 0u);
  EXPECT_EQ(c.at(2), 6u);
  EXPECT_EQ(c.value(), 13u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, MaxAggCounterFoldsByMax) {
  Registry reg;
  Counter& hwm = reg.counter("test.hwm", 4, Agg::kMax);
  hwm.raise_at(0, 3);
  hwm.raise_at(1, 9);
  hwm.raise_at(1, 4);  // lower: must not regress the high-water mark
  hwm.raise_at(3, 6);
  EXPECT_EQ(hwm.at(1), 9u);
  EXPECT_EQ(hwm.value(), 9u);
}

TEST(ObsRegistry, FindOrCreateReturnsStableHandles) {
  Registry reg;
  Counter& a = reg.counter("same.name");
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
}

TEST(ObsRegistry, GaugeSetAddAndUpdateMax) {
  Registry reg;
  auto& g = reg.gauge("test.gauge");
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12u);
  g.update_max(40);
  g.update_max(2);  // lower: no effect
  EXPECT_EQ(g.value(), 40u);
}

TEST(ObsHistogram, BucketBoundariesAreBitWidths) {
  // Bucket b holds values with bit_width b; bucket 0 is exactly 0.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(255), 8u);
  EXPECT_EQ(Histogram::bucket_index(256), 9u);
  EXPECT_EQ(Histogram::bucket_index(~0ULL), 64u);

  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(Histogram::bucket_lower_bound(3), 4u);
  EXPECT_EQ(Histogram::bucket_lower_bound(9), 256u);

  // Every boundary value lands in the bucket whose lower bound it is.
  for (std::size_t b = 1; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(b)), b);
  }
}

TEST(ObsHistogram, RecordCountSumAndPercentiles) {
  Registry reg;
  Histogram& h = reg.histogram("test.hist");
  EXPECT_EQ(h.percentile_lower_bound(0.5), 0u);  // empty
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(100);  // bit_width 7, bucket lower bound 64
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(7), 1u);
  EXPECT_EQ(h.percentile_lower_bound(0.0), 0u);
  EXPECT_EQ(h.percentile_lower_bound(1.0), 64u);
  // Median of {0, 1, 2, 2, 64-bucket}: rank 3 => bucket 2.
  EXPECT_EQ(h.percentile_lower_bound(0.5), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(ObsRegistry, SnapshotIsSortedIsolatedAndTyped) {
  Registry reg;
  Counter& c = reg.counter("b.counter");
  auto& g = reg.gauge("a.gauge");
  Histogram& h = reg.histogram("c.hist");
  c.add(4);
  g.set(11);
  h.record(5);

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, Registry::Snapshot::Kind::kGauge);
  EXPECT_EQ(snap[0].value, 11u);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].kind, Registry::Snapshot::Kind::kCounter);
  EXPECT_EQ(snap[1].value, 4u);
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_EQ(snap[2].kind, Registry::Snapshot::Kind::kHistogram);
  EXPECT_EQ(snap[2].value, 1u);
  EXPECT_EQ(snap[2].sum, 5u);
  ASSERT_EQ(snap[2].buckets.size(), 1u);
  EXPECT_EQ(snap[2].buckets[0].first, Histogram::bucket_index(5));
  EXPECT_EQ(snap[2].buckets[0].second, 1u);

  // Snapshot isolation: later mutations do not reach into the copy.
  c.add(100);
  g.set(0);
  EXPECT_EQ(snap[1].value, 4u);
  EXPECT_EQ(snap[0].value, 11u);
}

TEST(ObsStatLine, BuildsKeyValueLine) {
  rcua::obs::StatLine line("obs_stat");
  line.kv("bench", "fig2a").kv("n", std::uint64_t{2048}).kv_fixed("theta",
                                                                  0.99, 2);
  EXPECT_EQ(line.str(), "obs_stat bench=fig2a n=2048 theta=0.99");
}

/// Events recorded by THIS test, identified by the static name pointer.
std::vector<TraceEvent> own_events(const char* name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : rcua::obs::trace_snapshot()) {
    if (e.name != nullptr && std::strcmp(e.name, name) == 0) {
      out.push_back(e);
    }
  }
  return out;
}

TEST(ObsTrace, RingWrapDiscardsOldestWithoutTearing) {
  rcua::obs::trace_reset();
  const std::size_t cap = rcua::obs::trace_capacity();
  const std::size_t total = cap + cap / 2;
  rcua::obs::set_trace_enabled(true);
  for (std::size_t i = 0; i < total; ++i) {
    // arg is 1-based so every recorded slot has a nonzero payload.
    rcua::obs::trace_instant("obs.test.wrap", "test", i + 1);
  }
  rcua::obs::set_trace_enabled(false);

  const auto events = own_events("obs.test.wrap");
  ASSERT_EQ(events.size(), cap) << "ring must hold exactly its capacity";
  // Discard-oldest: the survivors are the LAST `cap` events, contiguous
  // and in order — a torn slot would break the sequence.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, total - cap + i + 1);
    EXPECT_EQ(events[i].phase, 'i');
  }
  EXPECT_GE(rcua::obs::trace_dropped(), total - cap);
  rcua::obs::trace_reset();
  EXPECT_TRUE(rcua::obs::trace_snapshot().empty());
  EXPECT_EQ(rcua::obs::trace_dropped(), 0u);
}

TEST(ObsTrace, ChromeJsonExportHasMinimalSchema) {
  rcua::obs::trace_reset();
  rcua::obs::set_trace_enabled(true);
  {
    rcua::obs::TraceSpan span("obs.test.span", "test", 7);
    rcua::obs::trace_instant("obs.test.tick", "test");
  }
  rcua::obs::set_trace_enabled(false);

  std::ostringstream os;
  rcua::obs::trace_write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs.test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Instants need a scope for the Perfetto importer.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":7}"), std::string::npos);
  // Required keys on every event.
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  // The array closes and the document balances.
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  rcua::obs::trace_reset();
}

TEST(ObsHealth, GaugesAndHistogramsLiveInGlobalRegistry) {
  // Handles resolve into Registry::global() under the documented names.
  rcua::obs::health::grace_ns().record(1000);
  rcua::obs::health::epoch_lag().update_max(3);
  bool saw_grace = false, saw_lag = false;
  for (const auto& s : Registry::global().snapshot()) {
    if (s.name == "rcua.rcu.grace_ns") saw_grace = true;
    if (s.name == "rcua.rcu.epoch_lag") {
      saw_lag = true;
      EXPECT_GE(s.value, 3u);
    }
  }
  EXPECT_TRUE(saw_grace);
  EXPECT_TRUE(saw_lag);
}

struct WorkloadResult {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t executes = 0;
  std::uint64_t vtime_ns = 0;
  std::uint64_t checksum = 0;
};

namespace sim = rcua::sim;

/// A deterministic single-task mixed read/write workload over a
/// two-locale array, measured under a virtual clock.
WorkloadResult run_workload() {
  rcua::rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  rcua::RCUArray<std::uint64_t, rcua::QsbrPolicy> arr(cluster, 1024,
                                                      {.block_size = 64});
  WorkloadResult r;
  sim::TaskClock clock;
  {
    sim::ClockScope scope(clock);
    for (std::uint64_t i = 0; i < 1024; ++i) {
      arr.write(i, i * 3 + 1);
    }
    for (std::uint64_t rep = 0; rep < 4; ++rep) {
      for (std::uint64_t i = 0; i < 1024; i += 7) {
        r.checksum += arr.read(i);
      }
    }
  }
  r.gets = cluster.comm().total_gets();
  r.puts = cluster.comm().total_puts();
  r.executes = cluster.comm().total_executes();
  r.vtime_ns = clock.vtime_ns;
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return r;
}

TEST(ObsOverhead, TracingOnAddsZeroCounterAndVtimeDrift) {
  // Baseline: registry always on (it cannot be turned off), tracing off.
  rcua::obs::set_trace_enabled(false);
  const WorkloadResult off = run_workload();

  // Same workload with tracing recording into live rings.
  rcua::obs::trace_reset();
  rcua::obs::set_trace_enabled(true);
  const WorkloadResult on = run_workload();
  rcua::obs::set_trace_enabled(false);

  // Observability must never charge virtual time or touch a counter:
  // bit-identical comm counters and task virtual time, not "close".
  EXPECT_EQ(on.gets, off.gets);
  EXPECT_EQ(on.puts, off.puts);
  EXPECT_EQ(on.executes, off.executes);
  EXPECT_EQ(on.vtime_ns, off.vtime_ns);
  EXPECT_EQ(on.checksum, off.checksum);
  // And the trace actually observed the run's remote traffic.
  EXPECT_FALSE(own_events("comm.put").empty());
  rcua::obs::trace_reset();

  // Pinned overhead bound: the workload makes no progress claim beyond
  // determinism, but the virtual cost of the traced run must equal the
  // untraced run exactly — the "bounded virtual-time overhead" is zero
  // by construction, and this asserts the construction.
  EXPECT_GT(off.vtime_ns, 0u);
}

}  // namespace
