// Unit tests for src/util: env parsing, statistics, tables, histograms.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/env.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace util = rcua::util;

namespace {
struct EnvGuard {
  std::string name;
  explicit EnvGuard(const char* n, const char* value) : name(n) {
    setenv(n, value, 1);
  }
  ~EnvGuard() { unsetenv(name.c_str()); }
};
}  // namespace

TEST(Env, U64ParsesAndFallsBack) {
  EXPECT_EQ(util::env_u64("RCUA_TEST_UNSET_VAR", 7), 7u);
  EnvGuard g("RCUA_TEST_U64", "1234");
  EXPECT_EQ(util::env_u64("RCUA_TEST_U64", 7), 1234u);
}

TEST(Env, U64FallsBackOnGarbage) {
  EnvGuard g("RCUA_TEST_U64", "not-a-number");
  EXPECT_EQ(util::env_u64("RCUA_TEST_U64", 9), 9u);
}

TEST(Env, F64Parses) {
  EnvGuard g("RCUA_TEST_F64", "2.5");
  EXPECT_DOUBLE_EQ(util::env_f64("RCUA_TEST_F64", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(util::env_f64("RCUA_TEST_F64_UNSET", 1.5), 1.5);
}

TEST(Env, BoolAcceptsCommonSpellings) {
  {
    EnvGuard g("RCUA_TEST_BOOL", "TRUE");
    EXPECT_TRUE(util::env_bool("RCUA_TEST_BOOL", false));
  }
  {
    EnvGuard g("RCUA_TEST_BOOL", "0");
    EXPECT_FALSE(util::env_bool("RCUA_TEST_BOOL", true));
  }
  {
    EnvGuard g("RCUA_TEST_BOOL", "whatever");
    EXPECT_TRUE(util::env_bool("RCUA_TEST_BOOL", true));
  }
}

TEST(Env, U64ListParsesCsv) {
  EnvGuard g("RCUA_TEST_LIST", "1,2,4,8");
  const auto v = util::env_u64_list("RCUA_TEST_LIST", {3});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[3], 8u);
}

TEST(Env, U64ListSkipsGarbageElements) {
  EnvGuard g("RCUA_TEST_LIST", "1,x,4");
  const auto v = util::env_u64_list("RCUA_TEST_LIST", {});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 4u);
}

TEST(Env, U64RejectsTrailingGarbage) {
  // "12junk" must NOT silently parse as 12 — partial parses are the
  // classic stoull footgun this layer hardens away.
  EnvGuard g("RCUA_TEST_U64_TRAIL", "12junk");
  EXPECT_EQ(util::env_u64("RCUA_TEST_U64_TRAIL", 5), 5u);
}

TEST(Env, U64RejectsNegative) {
  // stoull would wrap "-1" to 2^64-1; the hardened parser refuses signs.
  EnvGuard g("RCUA_TEST_U64_NEG", "-1");
  EXPECT_EQ(util::env_u64("RCUA_TEST_U64_NEG", 5), 5u);
}

TEST(Env, U64RejectsOverflow) {
  EnvGuard g("RCUA_TEST_U64_OVER", "99999999999999999999999999");  // > 2^64
  EXPECT_EQ(util::env_u64("RCUA_TEST_U64_OVER", 5), 5u);
}

TEST(Env, U64RejectsEmptyAndWhitespace) {
  {
    EnvGuard g("RCUA_TEST_U64_EMPTY", "");
    EXPECT_EQ(util::env_u64("RCUA_TEST_U64_EMPTY", 5), 5u);
  }
  {
    EnvGuard g("RCUA_TEST_U64_WS", "   ");
    EXPECT_EQ(util::env_u64("RCUA_TEST_U64_WS", 5), 5u);
  }
  {
    // Surrounding whitespace around a valid number is tolerated.
    EnvGuard g("RCUA_TEST_U64_PAD", "  42  ");
    EXPECT_EQ(util::env_u64("RCUA_TEST_U64_PAD", 5), 42u);
  }
}

TEST(Env, MalformedValuesWarnOncePerVariable) {
  const std::uint64_t before = util::env_parse_warnings();
  EnvGuard g("RCUA_TEST_WARN_ONCE", "garbage");
  util::env_u64("RCUA_TEST_WARN_ONCE", 1);
  util::env_u64("RCUA_TEST_WARN_ONCE", 1);
  util::env_u64("RCUA_TEST_WARN_ONCE", 1);
  EXPECT_EQ(util::env_parse_warnings(), before + 1)
      << "three bad reads of one variable must warn exactly once";
  EnvGuard h("RCUA_TEST_WARN_TWICE", "also-garbage");
  util::env_u64("RCUA_TEST_WARN_TWICE", 1);
  EXPECT_EQ(util::env_parse_warnings(), before + 2)
      << "a distinct variable gets its own warning";
}

TEST(Env, F64RejectsTrailingGarbage) {
  EnvGuard g("RCUA_TEST_F64_TRAIL", "2.5x");
  EXPECT_DOUBLE_EQ(util::env_f64("RCUA_TEST_F64_TRAIL", 1.0), 1.0);
}

TEST(Env, BoolWarnsOnUnrecognizedToken) {
  const std::uint64_t before = util::env_parse_warnings();
  EnvGuard g("RCUA_TEST_BOOL_BAD", "maybe");
  EXPECT_TRUE(util::env_bool("RCUA_TEST_BOOL_BAD", true));
  EXPECT_FALSE(util::env_bool("RCUA_TEST_BOOL_BAD", false));
  EXPECT_EQ(util::env_parse_warnings(), before + 1);
}

TEST(Env, U64ListFallsBackWhenUnsetOrEmpty) {
  const auto v = util::env_u64_list("RCUA_TEST_LIST_UNSET", {5, 6});
  ASSERT_EQ(v.size(), 2u);
  EnvGuard g("RCUA_TEST_LIST", "x,y");
  const auto w = util::env_u64_list("RCUA_TEST_LIST", {9});
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 9u);
}

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = util::summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SummaryOfEmptyAndSingle) {
  EXPECT_EQ(util::summarize({}).n, 0u);
  const std::vector<double> one{42};
  const auto s = util::summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 42);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
  EXPECT_DOUBLE_EQ(s.p99, 42);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(util::quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(util::quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(util::quantile_sorted(xs, 1.0), 10.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(util::geomean(xs), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(util::geomean({}), 0.0);
}

TEST(Stats, OnlineMatchesBatch) {
  const std::vector<double> xs{3.5, -1.0, 7.25, 0.0, 2.5, 9.0};
  util::OnlineStats acc;
  for (double x : xs) acc.add(x);
  const auto s = util::summarize(xs);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_EQ(acc.count(), xs.size());
}

TEST(Table, AlignedPrintContainsAllCells) {
  util::Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat) {
  util::Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  util::Table t({"x", "y", "z"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y,z\n1,,\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(util::Table::num(0), "0");
  EXPECT_EQ(util::Table::num(12.345), "12.35");
  EXPECT_EQ(util::Table::fixed(1.23456, 2), "1.23");
  // Large numbers go scientific.
  EXPECT_NE(util::Table::num(5.93e8).find("e"), std::string::npos);
}

TEST(Histogram, RecordsAndCounts) {
  util::LatencyHistogram h;
  h.record(10);
  h.record(100);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max_ns(), 1000u);
  EXPECT_NEAR(h.mean_ns(), (10 + 100 + 1000) / 3.0, 1e-9);
}

TEST(Histogram, QuantileIsMonotone) {
  util::LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 1024; ++i) h.record(i);
  EXPECT_LE(h.quantile_ns(0.1), h.quantile_ns(0.5));
  EXPECT_LE(h.quantile_ns(0.5), h.quantile_ns(0.99));
}

TEST(Histogram, MergeAccumulates) {
  util::LatencyHistogram a, b;
  a.record(5);
  b.record(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max_ns(), 500u);
}

TEST(Histogram, RenderShowsBuckets) {
  util::LatencyHistogram h;
  EXPECT_NE(h.render().find("empty"), std::string::npos);
  h.record(64);
  EXPECT_NE(h.render().find("#"), std::string::npos);
}
