// Tests for the cluster collectives and the AutoCheckpoint pacer.

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "reclaim/auto_checkpoint.hpp"
#include "runtime/collectives.hpp"
#include "runtime/this_task.hpp"

namespace rt = rcua::rt;

TEST(Collectives, BarrierRunsOnEveryLocale) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 1});
  rt::cluster_barrier(cluster);  // must terminate
  SUCCEED();
}

TEST(Collectives, AllreduceSums) {
  rt::Cluster cluster({.num_locales = 5, .workers_per_locale = 1});
  const int total = rt::allreduce<int>(
      cluster, [](std::uint32_t l) { return static_cast<int>(l) + 1; }, 0,
      [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 1 + 2 + 3 + 4 + 5);
}

TEST(Collectives, AllreduceMax) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 1});
  const int max = rt::allreduce<int>(
      cluster, [](std::uint32_t l) { return static_cast<int>(l * 7); }, -1,
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(max, 21);
}

TEST(Collectives, AllreduceRunsOnEachLocale) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 1});
  std::atomic<int> misplaced{0};
  rt::allreduce<int>(
      cluster,
      [&](std::uint32_t l) {
        if (rt::this_task().locale_id != l) misplaced.fetch_add(1);
        return 0;
      },
      0, [](int a, int b) { return a + b; });
  EXPECT_EQ(misplaced.load(), 0);
}

TEST(Collectives, GatherIndexesByLocale) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 1});
  const auto out = rt::gather<std::string>(cluster, [](std::uint32_t l) {
    return "locale-" + std::to_string(l);
  });
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "locale-0");
  EXPECT_EQ(out[3], "locale-3");
}

TEST(Collectives, BroadcastDeliversEverywhere) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 1});
  std::atomic<int> received{0};
  rt::broadcast<int>(cluster, 99, [&](std::uint32_t, const int& v) {
    if (v == 99) received.fetch_add(1);
  });
  EXPECT_EQ(received.load(), 4);
}

TEST(AutoCheckpoint, ChecksOnCadence) {
  rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr(registry);
  const auto before = qsbr.stats().checkpoints;
  {
    rcua::reclaim::AutoCheckpoint pacer(4, qsbr);
    int fired = 0;
    for (int i = 0; i < 12; ++i) {
      if (pacer.tick()) ++fired;
    }
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(pacer.ticks(), 12u);
  }
  // Destructor adds one final checkpoint.
  EXPECT_EQ(qsbr.stats().checkpoints, before + 4);
}

TEST(AutoCheckpoint, ZeroCadenceClampsToOne) {
  rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr(registry);
  rcua::reclaim::AutoCheckpoint pacer(0, qsbr);
  EXPECT_EQ(pacer.cadence(), 1u);
  EXPECT_TRUE(pacer.tick());
}

TEST(AutoCheckpoint, DrivesReclamation) {
  static std::atomic<int> freed{0};
  freed.store(0);
  struct Counted {
    ~Counted() { freed.fetch_add(1); }
  };
  rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr(registry);
  {
    rcua::reclaim::AutoCheckpoint pacer(8, qsbr);
    for (int i = 0; i < 64; ++i) {
      qsbr.defer_delete(new Counted);
      pacer.tick();
    }
  }
  EXPECT_EQ(freed.load(), 64);
}
