// Schedule-exploration tests for the per-locale block cache's coherence
// protocol (rt::BlockCache under RCUArray::read, DESIGN.md §11).
//
// The protocol line under test is the tag compare in BlockCache::lookup:
// an entry is only served when its snapshot-version tag matches the
// reader's pinned version AND its write-generation tag matches the
// block's current generation. The `cache_use_after_invalidate` mutation
// drops the compare — plausible (the bytes were copied under a pinned
// snapshot, and Lemma 6's recycling means block indices "still mean the
// same thing" across resize_add) — and the harness must find the
// schedule where a remote write() lands between the fill and the next
// lookup, so the invalidated-but-present entry is served as a stale
// read.
//
// The resize_remove arm of the protocol (the eviction interlock:
// invalidate_tail drops cached copies of removed blocks BEFORE their
// memory is freed, and a post-replacement read must see the replacement
// block's values, never the dead block's copy) is exercised by the same
// scenario and asserted by the final read plus the byte-ledger check.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/rcu_array.hpp"
#include "runtime/cluster.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::EbrPolicy;
using rcua::RCUArray;
using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

constexpr std::uint32_t kLocales = 2;
constexpr std::size_t kBlock = 4;

rcua::rt::ClusterConfig small_cluster() {
  rcua::rt::ClusterConfig cfg;
  cfg.num_locales = kLocales;
  cfg.workers_per_locale = 1;
  return cfg;
}

struct State {
  explicit State(rcua::rt::Cluster& c)
      : arr(c, 0,
            {.block_size = kBlock, .cache_capacity_bytes = 1u << 20}) {}

  RCUArray<int, EbrPolicy> arr;
  std::atomic<bool> ready{false};
  std::atomic<bool> updated{false};
  std::atomic<bool> refilled{false};
};

/// Writer: grow to two blocks (block 0 on locale 0, block 1 on locale 1
/// — remote from the scheduled tasks, which run as locale 0), fill via
/// the aggregated write path, signal the reader, then (a) overwrite one
/// element of the remote block — the write-through PUT plus the
/// generation bump that must invalidate any cached copy — and (b) if
/// `replacement`, replace the whole block via resize_remove +
/// resize_add + refill, so a cached copy of the DEAD block would be
/// detectably wrong. The random explorer runs the full scenario; the
/// bounded-DFS test drops the replacement phase (its two extra resizes
/// roughly double the schedule-point count, pushing the
/// preemption-bounded tree past any practical budget) — the mutation's
/// findable window (fill -> generation bump -> lookup) lives entirely
/// in the core phases.
void writer_task(const std::shared_ptr<State>& st, bool replacement) {
  st->arr.resize_add(2 * kBlock);
  std::vector<int> vals(2 * kBlock);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<int>(i) + 1;
  }
  st->arr.bulk_write(0, std::span<const int>(vals.data(), vals.size()));
  st->ready.store(true, std::memory_order_seq_cst);
  st->arr.write(kBlock, 999);  // remote write-through + generation bump
  st->updated.store(true, std::memory_order_seq_cst);
  if (!replacement) {
    return;
  }
  st->arr.resize_remove(kBlock);  // frees block 1 (after invalidate_tail)
  st->arr.resize_add(kBlock);     // a DIFFERENT block now backs index 1
  std::vector<int> fresh(kBlock, 777);
  st->arr.bulk_write(kBlock, std::span<const int>(fresh.data(),
                                                  fresh.size()));
  st->refilled.store(true, std::memory_order_seq_cst);
}

/// Reader: three cached reads of element kBlock (the remote block's
/// first element), each bracketed by the writer's phases, each asserting
/// exactly the values the coherence protocol allows at that point.
void reader_task(const std::shared_ptr<State>& st, bool replacement) {
  rcua::testing::sched_await("test.wait_ready", [st] {
    return st->ready.load(std::memory_order_seq_cst);
  });
  // Read 1: fills the cache with a copy of block 1. The scheduler may
  // delay it past ANY writer phase, so every value the writer ever
  // stores at this index is legitimate: the bulk fill, the overwrite,
  // the replacement block's zero fill, or the refill.
  try {
    const int r1 = st->arr.read(kBlock);
    if (r1 != static_cast<int>(kBlock) + 1 && r1 != 999 && r1 != 0 &&
        r1 != 777) {
      rcua::testing::sched_violation(
          "cached read returned a value never written to the block");
      return;
    }
  } catch (const std::out_of_range&) {
    // resize_remove won the race before this read pinned its snapshot.
  }
  rcua::testing::sched_await("test.wait_updated", [st] {
    return st->updated.load(std::memory_order_seq_cst);
  });
  // Read 2: the write landed before `updated` was set, so a fresh (or
  // tag-validated) copy can see 999, the replacement block's zero fill,
  // or 777 — but NEVER the pre-write value: that is exactly the stale
  // cached copy the generation compare exists to reject.
  try {
    const int r2 = st->arr.read(kBlock);
    if (r2 == static_cast<int>(kBlock) + 1) {
      rcua::testing::sched_violation(
          "stale cached copy served after the write-generation bump "
          "invalidated it");
      return;
    }
    if (r2 != 999 && r2 != 0 && r2 != 777) {
      rcua::testing::sched_violation(
          "cached read returned a value never written to the block");
      return;
    }
  } catch (const std::out_of_range&) {
    // Pinned a truncated snapshot mid-replacement; legitimate.
  }
  if (!replacement) {
    return;
  }
  rcua::testing::sched_await("test.wait_refilled", [st] {
    return st->refilled.load(std::memory_order_seq_cst);
  });
  // Read 3: the replacement block is published and refilled; any cached
  // copy of the FREED block was dropped by the eviction interlock, so
  // this must observe the replacement's value.
  const int r3 = st->arr.read(kBlock);
  if (r3 != 777) {
    rcua::testing::sched_violation(
        "read after block replacement served a dead block's cached copy");
  }
}

void cache_invalidate_scenario(rcua::rt::Cluster& cluster,
                               Scheduler& sched,
                               bool replacement = true) {
  auto st = std::make_shared<State>(cluster);
  sched.spawn("reader", [st, replacement] { reader_task(st, replacement); });
  sched.spawn("writer", [st, replacement] { writer_task(st, replacement); });
  sched.on_finish([st](Scheduler& s) {
    // Byte-ledger invariant: every byte ever inserted was either evicted
    // (capacity, staleness, or the resize interlock) or is still
    // resident. A violation here means an entry was dropped without
    // being accounted — the interlock lost track of cached bytes.
    for (std::uint32_t l = 0; l < kLocales; ++l) {
      const auto cs = st->arr.cache_stats_at(l);
      if (cs.inserted_bytes !=
          cs.evicted_bytes + st->arr.cache_bytes_used_at(l)) {
        s.violation("cache byte ledger does not balance");
        return;
      }
    }
  });
}

}  // namespace

TEST(SchedCache, MutationUseAfterInvalidateFound) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(
      &rcua::testing::mutations().cache_use_after_invalidate);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 4000;
  const ExploreResult result = rcua::testing::explore(
      opts,
      [&cluster](Scheduler& s) { cache_invalidate_scenario(cluster, s); });
  ASSERT_TRUE(result.found)
      << "serving a cached copy without the version/generation tag "
         "compare must be caught";

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again = rcua::testing::explore(
      replay,
      [&cluster](Scheduler& s) { cache_invalidate_scenario(cluster, s); });
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedCache, MutationUseAfterInvalidateFoundByDfs) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(
      &rcua::testing::mutations().cache_use_after_invalidate);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 20000;
  opts.preemption_bound = 2;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) {
        cache_invalidate_scenario(cluster, s, /*replacement=*/false);
      });
  ASSERT_TRUE(result.found)
      << "the fill->write->lookup window needs two preemptions; bounded "
         "DFS must reach it (ran "
      << result.schedules_run << " schedules)";
}

TEST(SchedCache, NegativeControlRandom) {
  // Unmutated: the tag compare rejects every invalidated entry, the
  // interlock drops dead blocks' copies before their memory goes, and
  // fills drain inside the pinned section — no schedule may produce a
  // stale read, a value never written, or an unbalanced byte ledger.
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 400;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts,
      [&cluster](Scheduler& s) { cache_invalidate_scenario(cluster, s); });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedCache, NegativeControlDfs) {
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 2000;
  opts.preemption_bound = 1;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts,
      [&cluster](Scheduler& s) { cache_invalidate_scenario(cluster, s); });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}
