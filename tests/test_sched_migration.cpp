// Schedule-exploration tests for live shard migration
// (RCUArray::rehome, DESIGN.md §14).
//
// Two protocol lines are under test, each with its own mutation:
//
//  * copy-before-publish: the replacement spine may only become visible
//    once every pipelined block-copy completion has drained
//    (`migrate_publish_before_copy_complete` breaks it) — otherwise a
//    reader routed to a replacement block reads a value the array never
//    stored;
//  * migrate -> invalidate -> drain: the replaced source blocks may only
//    be freed after every reader of the old block mapping drained
//    (`migrate_reclaim_before_mapping_drain` breaks it) — otherwise a
//    section that pinned the old spine holds pointers into freed blocks.
//
// Detection never touches reclaimed memory: the reader tells the old
// spine from the replacement by the block's data pointer (recorded
// before the migration through a Lemma 6 stable reference), and a
// premature free shows up as a drop in the source locale's byte ledger
// — checked BEFORE the data would be dereferenced. Replacement blocks
// are zero-initialized at allocation, so a pre-copy read is a
// deterministic wrong value, not uninitialized garbage.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/rcu_array.hpp"
#include "runtime/cluster.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::EbrPolicy;
using rcua::RCUArray;
using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

constexpr std::uint32_t kLocales = 2;
constexpr std::size_t kBlock = 4;

rcua::rt::ClusterConfig small_cluster() {
  rcua::rt::ClusterConfig cfg;
  cfg.num_locales = kLocales;
  cfg.workers_per_locale = 1;
  return cfg;
}

struct State {
  // Cache pinned OFF: this suite proves the migration mutations are
  // findable through the plain read path; a cache-enabled read could
  // serve the block from a local copy instead of the pinned spine under
  // test. home_locale pins the block to locale 0 so rehome(1) moves it.
  explicit State(rcua::rt::Cluster& c)
      : cluster(c), arr(c, 0,
                        {.block_size = kBlock,
                         .cache_capacity_bytes = 0,
                         .home_locale = 0}) {}

  rcua::rt::Cluster& cluster;
  RCUArray<int, EbrPolicy> arr;
  std::atomic<bool> ready{false};
  /// Data pointer of the source block, via a pre-migration reference —
  /// how the reader tells "pinned the old spine" from "pinned the
  /// replacement spine" without consulting racy metadata.
  std::atomic<int*> old_data{nullptr};
  /// Locale 0's live bytes once the source block exists: the ledger
  /// drops below this exactly when the source block is freed.
  std::atomic<std::uint64_t> fill_bytes{0};
  /// Snapshot version the fill ran under (the pre-migration spine);
  /// rehome's clone_replace publishes fill_version + 1.
  std::uint64_t fill_version = 0;
  std::atomic<bool> migrated{false};
  std::atomic<std::size_t> visited{0};
};

/// Writer: materialize one block homed on locale 0, fill it, signal the
/// reader, then live-migrate the array to locale 1.
void writer_task(const std::shared_ptr<State>& st) {
  st->arr.resize_add(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    st->arr.write(i, static_cast<int>(i) + 7);
  }
  st->old_data.store(&st->arr.index(0), std::memory_order_seq_cst);
  st->fill_bytes.store(st->cluster.locale(0).bytes_live(),
                       std::memory_order_seq_cst);
  st->fill_version = st->arr.view().version();
  st->ready.store(true, std::memory_order_seq_cst);
  if (!st->arr.rehome(1)) {
    rcua::testing::sched_violation("rehome rolled back without a fault");
    return;
  }
  st->migrated.store(true, std::memory_order_seq_cst);
}

/// Reader: one pinned section over the block's range, concurrent with
/// the migration. The version pinned by the View says which spine this
/// section holds: the pre-migration spine (the fill's version) or the
/// replacement. Each branch checks its own protocol line, and neither
/// ever dereferences memory a premature free could have reclaimed — the
/// old-spine branch reads through the raw pointer recorded before the
/// migration (no Block metadata), gated by the ledger check.
void reader_task(const std::shared_ptr<State>& st) {
  rcua::testing::sched_await("test.wait_ready", [st] {
    return st->ready.load(std::memory_order_seq_cst);
  });
  auto view = st->arr.view();
  const std::uint64_t pinned = view.version();
  // The yield the mutations need: the whole publish (and, mutated, the
  // premature free) can land between this section's pin and its reads.
  rcua::testing::sched_point("test.reader.pinned");
  if (pinned == st->fill_version) {
    // Pinned the OLD spine: this section is exactly what the §14 drain
    // must wait out, so the source block must still be live — its free
    // would drop locale 0's byte ledger. No yields below the check, so
    // the free cannot slip between the check and the reads.
    if (st->cluster.locale(0).bytes_live() <
        st->fill_bytes.load(std::memory_order_seq_cst)) {
      rcua::testing::sched_violation(
          "source blocks freed before the old mapping's readers drained");
      return;  // do NOT touch the data: the block is really freed
    }
    const int* data = st->old_data.load(std::memory_order_seq_cst);
    for (std::size_t k = 0; k < kBlock; ++k) {
      if (data[k] != static_cast<int>(k) + 7) {
        rcua::testing::sched_violation(
            "migration disturbed the source block's values");
        return;
      }
    }
  } else {
    // Pinned the REPLACEMENT spine: copy-before-publish means every
    // copied value is in place. A zero is the replacement block's
    // allocation fill — the spine was published before its copy landed.
    for (std::size_t k = 0; k < kBlock; ++k) {
      if (view[k] != static_cast<int>(k) + 7) {
        rcua::testing::sched_violation(
            "migration exposed a value the array never stored "
            "(replacement spine published before its copy drained)");
        return;
      }
    }
  }
  st->visited.fetch_add(kBlock, std::memory_order_seq_cst);
}

void migration_scenario(rcua::rt::Cluster& cluster, Scheduler& sched) {
  auto st = std::make_shared<State>(cluster);
  sched.spawn("reader", [st] { reader_task(st); });
  sched.spawn("writer", [st] { writer_task(st); });
  sched.on_finish([st](Scheduler& s) {
    if (s.violated()) return;
    // Completeness: the one block must have been visited exactly once,
    // and the migration must have completed (no spurious rollback).
    if (st->visited.load() != kBlock) {
      s.violation("migration lost or duplicated the block's elements");
    }
    if (!st->migrated.load()) {
      s.violation("rehome did not complete");
    }
  });
}

}  // namespace

TEST(SchedMigration, MutationPublishBeforeCopyCompleteFound) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(
      &rcua::testing::mutations().migrate_publish_before_copy_complete);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 4000;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  ASSERT_TRUE(result.found)
      << "publishing the replacement spine before the pipelined copies "
         "drained must be caught";

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again = rcua::testing::explore(
      replay, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedMigration, MutationPublishBeforeCopyCompleteFoundByDfs) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(
      &rcua::testing::mutations().migrate_publish_before_copy_complete);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 20000;
  opts.preemption_bound = 2;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  ASSERT_TRUE(result.found)
      << "the publish->reader-pin->copy-drain window needs two "
         "preemptions; bounded DFS must reach it (ran "
      << result.schedules_run << " schedules)";
}

TEST(SchedMigration, MutationReclaimBeforeMappingDrainFound) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(
      &rcua::testing::mutations().migrate_reclaim_before_mapping_drain);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 4000;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  ASSERT_TRUE(result.found)
      << "freeing the replaced source blocks before the old mapping's "
         "readers drained must be caught";

  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again = rcua::testing::explore(
      replay, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedMigration, MutationReclaimBeforeMappingDrainFoundByDfs) {
  rcua::rt::Cluster cluster(small_cluster());
  ScopedMutation mut(
      &rcua::testing::mutations().migrate_reclaim_before_mapping_drain);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 20000;
  opts.preemption_bound = 2;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  ASSERT_TRUE(result.found)
      << "the pin->publish->free window needs two preemptions; bounded "
         "DFS must reach it (ran "
      << result.schedules_run << " schedules)";
}

TEST(SchedMigration, NegativeControlRandom) {
  // Unmutated: copies drain before the publish and the source blocks
  // outlive every old-mapping reader, so no schedule may observe a
  // never-stored value, a premature free, or a lost element.
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 400;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedMigration, NegativeControlDfs) {
  rcua::rt::Cluster cluster(small_cluster());

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 2000;
  opts.preemption_bound = 1;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts, [&cluster](Scheduler& s) { migration_scenario(cluster, s); });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}
