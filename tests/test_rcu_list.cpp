// Tests for RcuList: the classic RCU linked list on the TLS-free EBR.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "containers/rcu_list.hpp"

using rcua::cont::RcuList;

TEST(RcuList, PushFindRemove) {
  RcuList<int> list;
  EXPECT_TRUE(list.empty());
  list.push_front(1);
  list.push_front(2);
  list.push_front(3);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.contains(2));
  EXPECT_FALSE(list.contains(9));
  EXPECT_TRUE(list.remove_if([](int v) { return v == 2; }));
  EXPECT_FALSE(list.contains(2));
  EXPECT_FALSE(list.remove_if([](int v) { return v == 2; }));
  EXPECT_EQ(list.size(), 2u);
}

TEST(RcuList, ForEachVisitsAllInLifoOrder) {
  RcuList<int> list;
  for (int i = 0; i < 5; ++i) list.push_front(i);
  std::vector<int> seen;
  const std::size_t n = list.for_each([&](const int& v) { seen.push_back(v); });
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(seen, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(RcuList, FindReturnsCopy) {
  RcuList<std::pair<int, int>> list;
  list.push_front({1, 10});
  list.push_front({2, 20});
  const auto hit =
      list.find_if([](const auto& p) { return p.first == 1; });
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, 10);
}

TEST(RcuList, RemoveHeadMiddleTail) {
  RcuList<int> list;
  for (int i = 1; i <= 3; ++i) list.push_front(i);  // [3,2,1]
  EXPECT_TRUE(list.remove_if([](int v) { return v == 3; }));  // head
  EXPECT_TRUE(list.remove_if([](int v) { return v == 1; }));  // tail
  EXPECT_TRUE(list.remove_if([](int v) { return v == 2; }));  // last
  EXPECT_TRUE(list.empty());
}

TEST(RcuList, DestructorFreesRemaining) {
  static std::atomic<int> live{0};
  struct Tracked {
    Tracked() { live.fetch_add(1); }
    Tracked(const Tracked&) { live.fetch_add(1); }
    ~Tracked() { live.fetch_sub(1); }
  };
  {
    RcuList<Tracked> list;
    for (int i = 0; i < 10; ++i) list.push_front(Tracked{});
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(RcuList, ReadersSurviveConcurrentRemoval) {
  struct Canary {
    std::uint64_t magic = 0xA11CE5ED;
    int value = 0;
  };
  RcuList<Canary> list;
  for (int i = 0; i < 64; ++i) list.push_front(Canary{.value = i});

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> traversals{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        list.for_each([&](const Canary& c) {
          if (c.magic != 0xA11CE5ED) violations.fetch_add(1);
        });
        traversals.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer removes and re-adds elements continuously.
  for (int round = 0; round < 100; ++round) {
    list.remove_if([&](const Canary& c) { return c.value == round % 64; });
    list.push_front(Canary{.value = round % 64});
  }
  while (traversals.load() < 50) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(list.size(), 64u);
}

TEST(RcuList, ConcurrentWritersSerialize) {
  RcuList<int> list;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) list.push_front(t * 1000 + i);
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(list.size(), 800u);
  std::set<int> all;
  list.for_each([&](const int& v) { all.insert(v); });
  EXPECT_EQ(all.size(), 800u);
}

TEST(RcuList, GracePeriodsAdvanceOnRemoval) {
  RcuList<int> list;
  list.push_front(1);
  const auto e0 = list.ebr().epoch();
  list.remove_if([](int v) { return v == 1; });
  EXPECT_GT(list.ebr().epoch(), e0);
}
