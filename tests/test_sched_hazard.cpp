// Schedule-exploration tests for the hazard-pointer baseline
// (reclaim::HazardDomain, the protection protocol under
// baselines/hazard_array.hpp): Guard's publish-then-verify loop must
// hold its slot for the whole guarded section.
//
// The `hazard_clear_before_access` mutation drops the slot as soon as
// the verified pointer is in hand — the classic premature hazard
// release. With the retire threshold at 1, the very next retire scans,
// sees no protection, and frees the object under the live guard; the
// harness must find that schedule. The negative controls run the same
// scenario unmutated (flag arena and the real HazardArray) and assert
// liveness: everything retired is reclaimed once the guards are gone.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "baselines/hazard_array.hpp"
#include "reclaim/hazard.hpp"
#include "runtime/cluster.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

void flag_free(void* p) {
  static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_seq_cst);
}

/// Flag arena (reclamation = flipping a freed-flag). Threshold 1 makes
/// every retire scan immediately, so the mutation's window is one
/// preemption wide.
struct Arena {
  Arena() {
    dom.set_retire_threshold(1);
    current.store(&freed[0], std::memory_order_relaxed);
  }

  rcua::reclaim::HazardDomain dom;
  std::atomic<bool> freed[8] = {};
  std::atomic<std::atomic<bool>*> current{nullptr};
};

void reader_once(Arena& a) {
  rcua::reclaim::HazardDomain::Guard<std::atomic<bool>> guard(a.dom,
                                                              a.current);
  rcua::testing::sched_point("test.reader.deref");
  if (guard.get()->load(std::memory_order_seq_cst)) {
    rcua::testing::sched_violation(
        "reader dereferenced a hazard-reclaimed object");
  }
}

void writer_rounds(Arena& a, std::size_t rounds) {
  for (std::size_t r = 1; r <= rounds; ++r) {
    std::atomic<bool>* old = a.current.load(std::memory_order_seq_cst);
    rcua::testing::sched_point("test.writer.publish");
    a.current.store(&a.freed[r], std::memory_order_seq_cst);
    a.dom.retire_raw(old, &flag_free);  // threshold 1: scans right here
  }
}

void two_round_scenario(Scheduler& sched) {
  auto a = std::make_shared<Arena>();
  sched.spawn("reader", [a] { reader_once(*a); });
  sched.spawn("writer", [a] { writer_rounds(*a, 2); });
  sched.on_finish([a](Scheduler& s) {
    // Retired entries live on the (exited) writer's record; the
    // unconditional flush is the teardown-time drain. Liveness: nothing
    // may be left unreclaimed once every guard is gone.
    a->dom.flush_unsafe();
    if (!a->freed[0].load() || !a->freed[1].load()) {
      s.violation("a retired object was never reclaimed");
    }
  });
}

}  // namespace

TEST(SchedHazard, MutationClearBeforeAccessFound) {
  ScopedMutation mut(&rcua::testing::mutations().hazard_clear_before_access);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  ASSERT_TRUE(result.found)
      << "releasing the hazard slot before the guarded access must be "
         "caught";

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again =
      rcua::testing::explore(replay, two_round_scenario);
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.schedules_run, 1u);
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedHazard, MutationClearBeforeAccessFoundByDfs) {
  ScopedMutation mut(&rcua::testing::mutations().hazard_clear_before_access);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  ASSERT_TRUE(result.found)
      << "the premature-release race needs one preemption; bounded DFS "
         "must reach it";
}

TEST(SchedHazard, NegativeControlRandom) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedHazard, NegativeControlDfs) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

TEST(SchedHazard, HazardArrayReadsDuringResizeStaySafe) {
  // The real baseline on the unmutated protocol: concurrent read(0)s
  // while a writer doubles the array twice. Snapshot spines retire
  // through the same Guard/scan machinery the flag arena models; no
  // schedule may corrupt a read or leak a spine.
  struct ArrArena {
    ArrArena()
        : cluster({.num_locales = 1, .workers_per_locale = 1}),
          arr(cluster, /*initial_capacity=*/8, /*block_size=*/8, &dom) {
      dom.set_retire_threshold(1);
    }
    rcua::rt::Cluster cluster;
    rcua::reclaim::HazardDomain dom;
    rcua::baseline::HazardArray<int> arr;
  };

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 1000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto a = std::make_shared<ArrArena>();
        sched.spawn("reader", [a] {
          for (int i = 0; i < 2; ++i) {
            if (a->arr.read(0) != 0) {
              rcua::testing::sched_violation(
                  "hazard-protected read returned a corrupted element");
            }
          }
        });
        sched.spawn("writer", [a] {
          a->arr.resize_add(8);
          a->arr.resize_add(8);
        });
        sched.on_finish([a](Scheduler& s) {
          if (a->arr.capacity() != 24) {
            s.violation("resize train lost an append");
          }
        });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}
