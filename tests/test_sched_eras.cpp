// Schedule-exploration tests for the era reclaimers' read-side protocol
// (reclaim::Ibr / reclaim::HazardEras): ReadGuard::protect's
// publish-then-reverify loop is what pins the loaded object's lifetime
// tags against the reservation, and each scheme has its own tempting
// wrong version:
//
//   ibr_reserve_after_load  — load the pointer first, then reserve the
//     era that was seen (no reverify). A writer interleaved between the
//     load and the publish retires + scans against an empty reservation
//     table and frees the loaded object.
//   he_clear_before_access  — drop the hazard-era slot as soon as the
//     pointer is in hand, before the section's accesses. The very next
//     retire + scan sees no overlapping reservation and frees the object
//     under the live guard.
//
// The harness must find a violating schedule for each mutation (random
// and bounded DFS), the unmutated protocol must survive the same budget
// clean, and — since each mutation is compiled only into its own shape's
// protect() — running a mutation against the *other* scheme must find
// nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "reclaim/eras.hpp"
#include "testing/scheduler.hpp"

namespace {

using rcua::testing::ExploreMode;
using rcua::testing::ExploreOptions;
using rcua::testing::ExploreResult;
using rcua::testing::ScopedMutation;
using rcua::testing::Scheduler;

void flag_free(void* p) {
  static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_seq_cst);
}

/// "Reclamation" flips a freed-flag, so a protocol bug is detected as a
/// flag read, not a real use-after-free. Two reservation slots keep the
/// claim path deterministic across machines.
template <typename Dom>
struct Arena {
  Arena() : dom(0, /*slot_count=*/2) {
    current.store(&freed[0], std::memory_order_relaxed);
  }

  Dom dom;
  std::atomic<bool> freed[8] = {};
  std::atomic<std::atomic<bool>*> current{nullptr};
  /// Writer-private: era current when the live object was published.
  std::uint64_t live_birth = 0;
};

template <typename Dom>
void reader_once(Arena<Dom>& a) {
  typename Dom::ReadGuard guard(a.dom);
  std::atomic<bool>* p = guard.protect(a.current);
  rcua::testing::sched_point("test.reader.deref");
  if (p->load(std::memory_order_seq_cst)) {
    rcua::testing::sched_violation(
        "reader dereferenced an era-reclaimed object");
  }
}

/// Writer with the interval retire protocol RCUArray's resize uses:
/// sample the successor's birth era BEFORE publishing it, retire the old
/// object under its own [birth, retire] tags (era bump + scan are inside
/// retire, cadence 1).
template <typename Dom>
void writer_rounds(Arena<Dom>& a, std::size_t rounds) {
  for (std::size_t r = 1; r <= rounds; ++r) {
    std::atomic<bool>* old = a.current.load(std::memory_order_seq_cst);
    const std::uint64_t fresh_birth = a.dom.current_era();
    rcua::testing::sched_point("test.writer.publish");
    a.current.store(&a.freed[r], std::memory_order_seq_cst);
    a.dom.retire(&flag_free, old, /*bytes=*/1,
                 std::exchange(a.live_birth, fresh_birth));
  }
}

template <typename Dom>
void two_round_scenario(Scheduler& sched) {
  auto a = std::make_shared<Arena<Dom>>();
  sched.spawn("reader", [a] { reader_once(*a); });
  sched.spawn("writer", [a] { writer_rounds(*a, 2); });
  sched.on_finish([a](Scheduler& s) {
    // Liveness half of the bounded-memory contract: with every
    // reservation released, one more scan must drain the retire list.
    a->dom.scan();
    if (a->dom.pending_objects() != 0) {
      s.violation("era retire list never drained after readers left");
    }
    if (!a->freed[0].load() || !a->freed[1].load()) {
      s.violation("a retired object was never reclaimed");
    }
  });
}

}  // namespace

// -- IBR: reserve-after-load -------------------------------------------

TEST(SchedEras, IbrMutationReserveAfterLoadFound) {
  ScopedMutation mut(&rcua::testing::mutations().ibr_reserve_after_load);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario<rcua::reclaim::Ibr>);
  ASSERT_TRUE(result.found)
      << "reserving after the pointer load (no reverify) must be caught";

  // The printed seed replays the violating schedule deterministically.
  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again =
      rcua::testing::explore(replay, two_round_scenario<rcua::reclaim::Ibr>);
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.schedules_run, 1u);
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedEras, IbrMutationReserveAfterLoadFoundByDfs) {
  ScopedMutation mut(&rcua::testing::mutations().ibr_reserve_after_load);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario<rcua::reclaim::Ibr>);
  ASSERT_TRUE(result.found)
      << "the load/reserve race needs one preemption; bounded DFS must "
         "reach it";
}

TEST(SchedEras, IbrNegativeControlRandom) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario<rcua::reclaim::Ibr>);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedEras, IbrNegativeControlDfs) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, two_round_scenario<rcua::reclaim::Ibr>);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

// -- Hazard eras: clear-before-access ----------------------------------

TEST(SchedEras, HeMutationClearBeforeAccessFound) {
  ScopedMutation mut(&rcua::testing::mutations().he_clear_before_access);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 10000;
  const ExploreResult result = rcua::testing::explore(
      opts, two_round_scenario<rcua::reclaim::HazardEras>);
  ASSERT_TRUE(result.found)
      << "clearing the era slot before the section's access must be caught";

  ExploreOptions replay;
  replay.mode = ExploreMode::kRandom;
  replay.schedules = 1;
  replay.base_seed = result.seed;
  replay.quiet = true;
  const ExploreResult again = rcua::testing::explore(
      replay, two_round_scenario<rcua::reclaim::HazardEras>);
  ASSERT_TRUE(again.found) << "seed " << result.seed << " did not replay";
  EXPECT_EQ(again.schedules_run, 1u);
  EXPECT_EQ(again.message, result.message);
}

TEST(SchedEras, HeMutationClearBeforeAccessFoundByDfs) {
  ScopedMutation mut(&rcua::testing::mutations().he_clear_before_access);

  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  const ExploreResult result = rcua::testing::explore(
      opts, two_round_scenario<rcua::reclaim::HazardEras>);
  ASSERT_TRUE(result.found)
      << "the premature-release race needs one preemption; bounded DFS "
         "must reach it";
}

TEST(SchedEras, HeNegativeControlRandom) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts, two_round_scenario<rcua::reclaim::HazardEras>);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  EXPECT_EQ(result.schedules_run,
            rcua::testing::effective_schedule_budget(opts));
}

TEST(SchedEras, HeNegativeControlDfs) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kDfs;
  opts.schedules = 200000;
  opts.preemption_bound = 3;
  opts.stop_on_violation = false;
  const ExploreResult result = rcua::testing::explore(
      opts, two_round_scenario<rcua::reclaim::HazardEras>);
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}

// -- Mutations are shape-gated -----------------------------------------

TEST(SchedEras, MutationsDoNotLeakAcrossShapes) {
  // Each mutation is compiled only into its own shape's protect():
  // running it against the other scheme is one more negative control.
  {
    ScopedMutation mut(&rcua::testing::mutations().ibr_reserve_after_load);
    ExploreOptions opts;
    opts.mode = ExploreMode::kRandom;
    opts.schedules = 2000;
    opts.stop_on_violation = false;
    const ExploreResult result = rcua::testing::explore(
        opts, two_round_scenario<rcua::reclaim::HazardEras>);
    EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  }
  {
    ScopedMutation mut(&rcua::testing::mutations().he_clear_before_access);
    ExploreOptions opts;
    opts.mode = ExploreMode::kRandom;
    opts.schedules = 2000;
    opts.stop_on_violation = false;
    const ExploreResult result =
        rcua::testing::explore(opts, two_round_scenario<rcua::reclaim::Ibr>);
    EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
  }
}

TEST(SchedEras, TwoReadersAcrossSlotsStaySafe) {
  // The scan snapshots EVERY claimed slot; two concurrent readers (the
  // domain's full slot budget) must both gate retirement.
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.schedules = 2000;
  opts.stop_on_violation = false;
  const ExploreResult result =
      rcua::testing::explore(opts, [](Scheduler& sched) {
        auto a = std::make_shared<Arena<rcua::reclaim::Ibr>>();
        for (int r = 0; r < 2; ++r) {
          sched.spawn("reader", [a] { reader_once(*a); });
        }
        sched.spawn("writer", [a] { writer_rounds(*a, 2); });
      });
  EXPECT_FALSE(result.found) << result.message << "\n" << result.trace;
}
