// Tests for RcuCell — the decoupled TLS-free EBR cell (the paper's named
// future-work artifact).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/rcu_cell.hpp"

using rcua::RcuCell;

TEST(RcuCell, LoadInitialValue) {
  RcuCell<int> cell(5);
  EXPECT_EQ(cell.load(), 5);
}

TEST(RcuCell, DefaultConstructsValue) {
  RcuCell<std::string> cell;
  EXPECT_EQ(cell.load(), "");
}

TEST(RcuCell, UpdateAppliesMutation) {
  RcuCell<int> cell(1);
  cell.update([](int& v) { v += 41; });
  EXPECT_EQ(cell.load(), 42);
}

TEST(RcuCell, StoreReplaces) {
  RcuCell<std::string> cell("a");
  cell.store("b");
  EXPECT_EQ(cell.load(), "b");
}

TEST(RcuCell, ReadPassesConstReference) {
  RcuCell<std::vector<int>> cell(std::vector<int>{1, 2, 3});
  const int sum = cell.read([](const std::vector<int>& v) {
    int s = 0;
    for (int x : v) s += x;
    return s;
  });
  EXPECT_EQ(sum, 6);
}

TEST(RcuCell, UpdatesAdvanceEpoch) {
  RcuCell<int> cell(0);
  const auto e0 = cell.ebr().epoch();
  cell.update([](int& v) { ++v; });
  cell.update([](int& v) { ++v; });
  EXPECT_EQ(cell.ebr().epoch(), e0 + 2);
}

TEST(RcuCell, ConcurrentReadersSeeConsistentVersions) {
  // The value is a pair encoded so that any torn/mixed version is
  // detectable: (x, 1000 - x) must always sum to 1000.
  struct Pair {
    int a = 0;
    int b = 1000;
  };
  RcuCell<Pair> cell(Pair{});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        cell.read([&](const Pair& p) {
          if (p.a + p.b != 1000) bad.fetch_add(1);
        });
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 1; i <= 300; ++i) {
    cell.update([i](Pair& p) {
      p.a = i;
      p.b = 1000 - i;
    });
  }
  while (reads.load() < 500) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(cell.load().a, 300);
}

TEST(RcuCell, ConcurrentWritersSerialize) {
  RcuCell<std::uint64_t> cell(0);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        cell.update([](std::uint64_t& v) { ++v; });
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(cell.load(), 2000u);
}
