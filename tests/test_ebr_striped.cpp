// Tests specific to the striped reader-counter bank: stripe-count
// selection (ctor arg, env knob, pow2 rounding), cross-stripe drain
// summation, Lemma 2 across several bank widths, and the stats
// aggregation across stripes when compiled in.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "platform/topology.hpp"
#include "reclaim/ebr.hpp"

namespace reclaim = rcua::reclaim;

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Scoped setenv/unsetenv so a failing assertion cannot leak the knob
/// into later tests.
struct ScopedEnv {
  explicit ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  const char* name_;
};

}  // namespace

TEST(StripedEbr, DefaultStripeCountIsPow2) {
  reclaim::Ebr ebr;
  EXPECT_TRUE(is_pow2(ebr.stripe_count()));
  EXPECT_GE(ebr.stripe_count(), 1u);
  EXPECT_LE(ebr.stripe_count(), 256u);
}

TEST(StripedEbr, ExplicitStripeCountRoundsUpToPow2) {
  reclaim::Ebr a(0, 3);
  EXPECT_EQ(a.stripe_count(), 4u);
  reclaim::Ebr b(0, 8);
  EXPECT_EQ(b.stripe_count(), 8u);
  reclaim::Ebr c(0, 1);
  EXPECT_EQ(c.stripe_count(), 1u);
}

TEST(StripedEbr, EnvKnobOverridesDefaultStripeCount) {
  {
    ScopedEnv env("RCUA_EBR_STRIPES", "6");
    reclaim::Ebr ebr;  // default_ebr_stripes() is re-read per construction
    EXPECT_EQ(ebr.stripe_count(), 8u);
  }
  {
    ScopedEnv env("RCUA_EBR_STRIPES", "1");
    reclaim::Ebr ebr;
    EXPECT_EQ(ebr.stripe_count(), 1u);
  }
  {
    // Absurd values clamp to the 256-stripe ceiling.
    ScopedEnv env("RCUA_EBR_STRIPES", "100000");
    reclaim::Ebr ebr;
    EXPECT_EQ(ebr.stripe_count(), 256u);
  }
  // An explicit ctor argument beats the env knob.
  {
    ScopedEnv env("RCUA_EBR_STRIPES", "16");
    reclaim::Ebr ebr(0, 2);
    EXPECT_EQ(ebr.stripe_count(), 2u);
  }
}

TEST(StripedEbr, LegacyLayoutAlwaysUsesOneStripe) {
  reclaim::LegacyEbr ebr(0, 16);  // stripe request ignored by design
  EXPECT_EQ(ebr.stripe_count(), 1u);
}

TEST(StripedEbr, StripeIndexStaysInRange) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                        std::size_t{64}}) {
    EXPECT_LT(rcua::plat::stripe_index(n), n) << "stripes=" << n;
  }
  // Stable within a thread: the stripe is a pure function of the thread
  // identity, so repeated calls agree (the line stays cache-resident).
  EXPECT_EQ(rcua::plat::stripe_index(64), rcua::plat::stripe_index(64));
}

TEST(StripedEbr, AnnouncementLandsOnThePinnedStripe) {
  reclaim::Ebr ebr(0, 4);
  ebr.test_stripe_override = 2;
  const auto parity = static_cast<std::size_t>(ebr.epoch() % 2);
  {
    reclaim::Ebr::ReadGuard guard(ebr);
    EXPECT_EQ(ebr.readers_at_stripe(2, parity), 1u);
    EXPECT_EQ(ebr.readers_at_stripe(0, parity), 0u);
    EXPECT_EQ(ebr.readers_at_stripe(1, parity), 0u);
    EXPECT_EQ(ebr.readers_at_stripe(3, parity), 0u);
    // The column view sums the bank.
    EXPECT_EQ(ebr.readers_at(parity), 1u);
  }
  EXPECT_EQ(ebr.readers_at(parity), 0u);
}

TEST(StripedEbr, DrainSumsTheColumnAcrossStripes) {
  // A reader announced on stripe 3 must block a drain even though
  // stripes 0-2 are empty: wait_for_readers sums the whole column.
  reclaim::Ebr ebr(0, 4);
  ebr.test_stripe_override = 3;

  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_release{false};
  std::atomic<bool> writer_done{false};

  std::thread reader([&] {
    reclaim::Ebr::ReadGuard guard(ebr);
    reader_in.store(true);
    while (!reader_release.load()) std::this_thread::yield();
  });
  while (!reader_in.load()) std::this_thread::yield();

  std::thread writer([&] {
    const auto old_epoch = ebr.advance_epoch();
    ebr.wait_for_readers(old_epoch);
    writer_done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(writer_done.load());

  reader_release.store(true);
  reader.join();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(StripedEbr, NewParityReaderOnAnotherStripeDoesNotBlockDrain) {
  reclaim::Ebr ebr(0, 4);
  const auto old_epoch = ebr.advance_epoch();
  ebr.test_stripe_override = 1;
  reclaim::Ebr::ReadGuard guard(ebr);  // records under the new parity
  ebr.wait_for_readers(old_epoch);     // must not deadlock
  SUCCEED();
}

// Lemma 2 is orthogonal to striping: parity survives epoch wrap-around
// at every bank width.
TEST(StripedEbrOverflow, ParityPreservedAcrossWrapAtSeveralWidths) {
  for (std::size_t stripes : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    reclaim::BasicEbr<std::uint8_t> ebr(/*initial_epoch=*/250, stripes);
    // Pin successive reads onto rotating stripes so the wrap is exercised
    // on more than one slot pair.
    for (int i = 0; i < 600; ++i) {  // > 2 full wraps of a uint8 epoch
      ebr.test_stripe_override =
          static_cast<std::int32_t>(i % static_cast<int>(stripes));
      const std::uint8_t before = ebr.epoch();
      ebr.read([&] {
        EXPECT_GE(ebr.readers_at(ebr.epoch() % 2) +
                      ebr.readers_at((ebr.epoch() + 1) % 2),
                  1u);
        return 0;
      });
      ebr.synchronize();
      EXPECT_EQ(static_cast<std::uint8_t>(before + 1), ebr.epoch());
    }
    EXPECT_EQ(ebr.readers_at(0), 0u) << "stripes=" << stripes;
    EXPECT_EQ(ebr.readers_at(1), 0u) << "stripes=" << stripes;
  }
}

TEST(StripedEbr, StatsAggregateAcrossStripes) {
  reclaim::Ebr ebr(0, 4);
  for (std::int32_t s = 0; s < 4; ++s) {
    ebr.test_stripe_override = s;
    for (int i = 0; i < 5; ++i) ebr.read([] { return 0; });
  }
  if constexpr (reclaim::Ebr::kStatsEnabled) {
    EXPECT_EQ(ebr.stats().reads, 20u);
  } else {
    // Default build: the per-read counters compile out of the hot path.
    EXPECT_EQ(ebr.stats().reads, 0u);
  }
  // Write-side counters stay on in every build.
  ebr.synchronize();
  EXPECT_EQ(ebr.stats().epoch_advances, 1u);
}

TEST(StripedEbrStress, ConcurrentReadersAcrossStripesNoUseAfterFree) {
  struct Canary {
    std::atomic<std::uint32_t> alive{1};
    ~Canary() { alive.store(0); }
  };

  reclaim::Ebr ebr(0, 8);
  std::atomic<Canary*> snapshot{new Canary};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ebr.read([&] {
          Canary* c = snapshot.load(std::memory_order_acquire);
          if (c->alive.load(std::memory_order_relaxed) != 1) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }

  for (int i = 0; i < 200; ++i) {
    auto* fresh = new Canary;
    Canary* old = snapshot.exchange(fresh, std::memory_order_acq_rel);
    ebr.synchronize();
    delete old;
  }

  while (reads.load() == 0) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  delete snapshot.load();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(ebr.readers_at(0), 0u);
  EXPECT_EQ(ebr.readers_at(1), 0u);
}
