// Functional tests for RCUArray under both reclamation policies (typed
// test suite): construction, indexing, resizing, distribution, locality.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/rcu_array.hpp"

using rcua::EbrPolicy;
using rcua::HazardErasPolicy;
using rcua::IbrPolicy;
using rcua::QsbrPolicy;
using rcua::RCUArray;
namespace rt = rcua::rt;

namespace {

template <typename Policy>
struct RcuArrayTyped : public ::testing::Test {
  using Array = RCUArray<std::uint64_t, Policy>;
};

using Policies =
    ::testing::Types<EbrPolicy, QsbrPolicy, IbrPolicy, HazardErasPolicy>;
TYPED_TEST_SUITE(RcuArrayTyped, Policies);

void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }

}  // namespace

TYPED_TEST(RcuArrayTyped, EmptyConstruction) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster);
  EXPECT_EQ(arr.capacity(), 0u);
  EXPECT_EQ(arr.num_blocks(), 0u);
  EXPECT_EQ(arr.resize_count(), 0u);
}

TYPED_TEST(RcuArrayTyped, InitialCapacityRoundsUpToBlocks) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 100, {.block_size = 64});
  EXPECT_EQ(arr.block_size(), 64u);
  EXPECT_EQ(arr.num_blocks(), 2u);
  EXPECT_EQ(arr.capacity(), 128u);
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, ZeroBlockSizeThrows) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  using Array = typename TestFixture::Array;
  EXPECT_THROW(Array(cluster, 0, {.block_size = 0}), std::invalid_argument);
}

TYPED_TEST(RcuArrayTyped, WriteThenReadRoundTrips) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 256, {.block_size = 64});
  for (std::size_t i = 0; i < 256; ++i) arr.write(i, i * 3);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(arr.read(i), i * 3);
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, IndexReturnsStableReference) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 64, {.block_size = 64});
  std::uint64_t& ref = arr.index(5);
  ref = 77;
  EXPECT_EQ(arr.read(5), 77u);
  EXPECT_EQ(&arr.index(5), &ref);
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, AtThrowsOutOfRange) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 64, {.block_size = 64});
  EXPECT_NO_THROW(arr.at(63));
  EXPECT_THROW(arr.at(64), std::out_of_range);
  EXPECT_THROW(arr.at(1 << 20), std::out_of_range);
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, ResizeGrowsAndPreservesContents) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 64, {.block_size = 64});
  for (std::size_t i = 0; i < 64; ++i) arr.write(i, i + 1);
  arr.resize_add(128);
  EXPECT_EQ(arr.capacity(), 192u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(arr.read(i), i + 1);
  // New region readable and zero-initialized.
  for (std::size_t i = 64; i < 192; ++i) EXPECT_EQ(arr.read(i), 0u);
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, ResizeByPartialBlockRoundsUp) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 0, {.block_size = 64});
  arr.resize_add(1);
  EXPECT_EQ(arr.capacity(), 64u);
  arr.resize_add(65);
  EXPECT_EQ(arr.capacity(), 192u);
  EXPECT_EQ(arr.resize_count(), 2u);
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, ResizeZeroIsNoop) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 64, {.block_size = 64});
  arr.resize_add(0);
  EXPECT_EQ(arr.capacity(), 64u);
  EXPECT_EQ(arr.resize_count(), 1u);  // only the initial sizing
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, BlocksDistributedRoundRobin) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 8 * 64, {.block_size = 64});
  // Blocks 0..7 must land on locales 0,1,2,3,0,1,2,3.
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_EQ(arr.block_owner(b * 64), b % 4) << "block " << b;
  }
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, RoundRobinContinuesAcrossResizes) {
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 0, {.block_size = 64});
  for (int step = 0; step < 6; ++step) arr.resize_add(64);  // one block each
  for (std::size_t b = 0; b < 6; ++b) {
    EXPECT_EQ(arr.block_owner(b * 64), b % 4) << "block " << b;
  }
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, SnapshotsReplicatedPerLocale) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  typename TestFixture::Array arr(cluster, 3 * 64, {.block_size = 64});
  arr.write(10, 555);
  // Each locale's privatized copy sees the same capacity and data.
  cluster.coforall_locales([&](std::uint32_t) {
    EXPECT_EQ(arr.capacity(), 3 * 64u);
    EXPECT_EQ(arr.read(10), 555u);
  });
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, LocalBlockAccessIsCommunicationFree) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  // Cache pinned off: this test asserts the UNCACHED read protocol's
  // exact comm counters, which the nightly RCUA_CACHE_CAPACITY_BYTES
  // sweep would otherwise change (a cached remote read records a fill,
  // not a GET).
  typename TestFixture::Array arr(cluster, 2 * 64,
                                  {.block_size = 64,
                                   .cache_capacity_bytes = 0});
  cluster.comm().reset();
  // Block 0 lives on locale 0; access from locale 0 must not count comm.
  ASSERT_EQ(arr.block_owner(0), 0u);
  arr.read(0);
  EXPECT_EQ(cluster.comm().total_gets(), 0u);
  // Block 1 lives on locale 1: reading it from here is one GET.
  arr.read(64);
  EXPECT_EQ(cluster.comm().total_gets(), 1u);
  // Writing it is one PUT.
  arr.write(65, 1);
  EXPECT_EQ(cluster.comm().total_puts(), 1u);
  drain_qsbr();
}

TYPED_TEST(RcuArrayTyped, DestructionFreesAllBlocksAndSpines) {
  const auto blocks_before = rcua::Block<std::uint64_t>::live_count();
  const auto spines_before = rcua::Snapshot<std::uint64_t>::live_count();
  {
    rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
    typename TestFixture::Array arr(cluster, 4 * 64, {.block_size = 64});
    arr.resize_add(2 * 64);
    drain_qsbr();  // retired spines from the resizes
  }
  drain_qsbr();
  EXPECT_EQ(rcua::Block<std::uint64_t>::live_count(), blocks_before);
  EXPECT_EQ(rcua::Snapshot<std::uint64_t>::live_count(), spines_before);
}

TYPED_TEST(RcuArrayTyped, AllocationAccountedToOwningLocales) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  {
    typename TestFixture::Array arr(cluster, 4 * 64, {.block_size = 64});
    EXPECT_EQ(cluster.locale(0).allocations(), 2u);
    EXPECT_EQ(cluster.locale(1).allocations(), 2u);
    EXPECT_EQ(cluster.locale(0).bytes_live(),
              2 * 64 * sizeof(std::uint64_t));
  }
  drain_qsbr();
  EXPECT_EQ(cluster.locale(0).bytes_live(), 0u);
  EXPECT_EQ(cluster.locale(1).bytes_live(), 0u);
}

TEST(RcuArrayPolicy, PolicyNamesAndFlags) {
  EXPECT_STREQ(EbrPolicy::name, "EBR");
  EXPECT_STREQ(QsbrPolicy::name, "QSBR");
  const bool ebr_flag = RCUArray<int, EbrPolicy>::uses_qsbr;
  const bool qsbr_flag = RCUArray<int, QsbrPolicy>::uses_qsbr;
  EXPECT_FALSE(ebr_flag);
  EXPECT_TRUE(qsbr_flag);
}

TEST(RcuArrayEbr, ReadsGoThroughEpochProtocol) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  RCUArray<std::uint64_t, EbrPolicy> arr(cluster, 64, {.block_size = 64});
  for (int i = 0; i < 10; ++i) arr.read(0);
  if constexpr (rcua::reclaim::Ebr::kStatsEnabled) {
    EXPECT_GE(arr.ebr_stats_at(0).reads, 10u);
  } else {
    // Stats compiled out (default): the per-read counters are zero, but
    // the stats shape stays available so callers need no ifdefs.
    EXPECT_EQ(arr.ebr_stats_at(0).reads, 0u);
  }
}

TEST(RcuArrayQsbr, ResizeDefersOldSpines) {
  rt::ThreadRegistry reg;
  rcua::reclaim::Qsbr qsbr(reg);
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  RCUArray<std::uint64_t, QsbrPolicy> arr(cluster, 0,
                                          {.block_size = 64, .qsbr = &qsbr});
  const auto before = qsbr.stats().defers;
  arr.resize_add(64);
  // One old spine deferred per locale.
  EXPECT_EQ(qsbr.stats().defers, before + 2);
}
