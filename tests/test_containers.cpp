// Tests for the containers built on RCUArray: DistVector, DistIdTable,
// DistHashMap.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "containers/dist_hash_map.hpp"
#include "containers/dist_id_table.hpp"
#include "containers/dist_vector.hpp"

namespace rt = rcua::rt;
using rcua::cont::DistHashMap;
using rcua::cont::DistIdTable;
using rcua::cont::DistVector;

namespace {
void drain_qsbr() { rcua::reclaim::Qsbr::global().flush_unsafe(); }
}  // namespace

TEST(DistVector, PushBackAndIndex) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistVector<std::uint64_t> vec(cluster, {.block_size = 16});
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(vec.push_back(i * 5), i);
  }
  EXPECT_EQ(vec.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(vec[i], i * 5);
  drain_qsbr();
}

TEST(DistVector, GrowsPastManyBlocks) {
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 2});
  DistVector<std::uint64_t> vec(cluster, {.block_size = 8});
  for (std::uint64_t i = 0; i < 500; ++i) vec.push_back(i);
  EXPECT_GE(vec.capacity(), 500u);
  EXPECT_GT(vec.backing().num_blocks(), 10u);
  EXPECT_EQ(vec[499], 499u);
  drain_qsbr();
}

TEST(DistVector, AtThrowsPastSize) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  DistVector<std::uint64_t> vec(cluster, {.block_size = 8});
  vec.push_back(1);
  EXPECT_NO_THROW(vec.at(0));
  EXPECT_THROW(vec.at(1), std::out_of_range);
  drain_qsbr();
}

TEST(DistVector, ConcurrentPushersReserveDistinctSlots) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  DistVector<std::uint64_t> vec(cluster, {.block_size = 32});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        vec.push_back(static_cast<std::uint64_t>(t) * kPerThread + i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(vec.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Every pushed value appears exactly once.
  std::multiset<std::uint64_t> seen;
  for (std::size_t i = 0; i < vec.size(); ++i) seen.insert(vec[i]);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(seen.count(static_cast<std::uint64_t>(t) * kPerThread + i + 1),
                1u);
    }
  }
  drain_qsbr();
}

TEST(DistIdTable, AllocateGetRelease) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistIdTable<std::uint64_t> table(cluster, {.block_size = 16});
  const auto id1 = table.allocate(100);
  const auto id2 = table.allocate(200);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(table.get(id1), 100u);
  EXPECT_EQ(table.get(id2), 200u);
  EXPECT_EQ(table.live(), 2u);
  table.release(id1);
  EXPECT_EQ(table.live(), 1u);
  // Released ids are recycled.
  const auto id3 = table.allocate(300);
  EXPECT_EQ(id3, id1);
  EXPECT_EQ(table.get(id3), 300u);
  drain_qsbr();
}

TEST(DistIdTable, GrowsBeyondInitialBlocks) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistIdTable<std::uint64_t> table(cluster, {.block_size = 8});
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto id = table.allocate(i);
    EXPECT_EQ(table.get(id), i);
  }
  EXPECT_EQ(table.high_water(), 200u);
  EXPECT_GE(table.capacity(), 200u);
  drain_qsbr();
}

TEST(DistIdTable, ConcurrentAllocatorsGetUniqueIds) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  DistIdTable<std::uint64_t> table(cluster, {.block_size = 32});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::vector<std::vector<std::size_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ids[t].push_back(
            table.allocate(static_cast<std::uint64_t>(t * kPerThread + i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::size_t> uniq;
  for (const auto& v : ids) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Values readable through their ids.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(table.get(ids[t][i]),
                static_cast<std::uint64_t>(t * kPerThread + i));
    }
  }
  drain_qsbr();
}

TEST(DistHashMap, InsertFindUpdate) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 64, .block_size = 64});
  EXPECT_TRUE(map.insert(1, 10));
  EXPECT_TRUE(map.insert(2, 20));
  EXPECT_FALSE(map.insert(1, 11));  // update
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.find(1), std::optional<std::uint64_t>(11));
  EXPECT_EQ(map.find(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(map.find(3), std::nullopt);
  drain_qsbr();
}

TEST(DistHashMap, EraseAndRevive) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 16, .block_size = 64});
  EXPECT_TRUE(map.insert(5, 50));
  EXPECT_TRUE(map.erase(5));
  EXPECT_FALSE(map.erase(5));
  EXPECT_EQ(map.find(5), std::nullopt);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.insert(5, 51));  // revives the tombstone
  EXPECT_EQ(map.find(5), std::optional<std::uint64_t>(51));
  drain_qsbr();
}

TEST(DistHashMap, CollisionChainsWork) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});
  // One bucket: everything chains.
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 1, .block_size = 64});
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(map.insert(k, k * 2));
  EXPECT_EQ(map.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(map.find(k), std::optional<std::uint64_t>(k * 2));
  }
  EXPECT_EQ(map.find(100), std::nullopt);
  drain_qsbr();
}

TEST(DistHashMap, GrowsSlabUnderLoad) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 2});
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 8, .block_size = 16});
  for (std::uint64_t k = 0; k < 400; ++k) map.insert(k, k);
  EXPECT_GT(map.growths(), 0u);
  for (std::uint64_t k = 0; k < 400; ++k) {
    ASSERT_EQ(map.find(k), std::optional<std::uint64_t>(k)) << k;
  }
  drain_qsbr();
}

TEST(DistHashMap, ConcurrentInsertersDisjointKeys) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 64, .block_size = 64});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto k = static_cast<std::uint64_t>(t) * kPerThread + i;
        map.insert(k, k + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_EQ(map.find(k), std::optional<std::uint64_t>(k + 1)) << k;
  }
  drain_qsbr();
}

TEST(DistHashMap, ConcurrentSameKeyInsertsCountOnce) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 4});
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 4, .block_size = 64});
  std::atomic<int> new_inserts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < 100; ++k) {
        if (map.insert(k, static_cast<std::uint64_t>(t))) {
          new_inserts.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(new_inserts.load(), 100);
  EXPECT_EQ(map.size(), 100u);
  drain_qsbr();
}

TEST(DistHashMap, MixedChurnStress) {
  rt::Cluster cluster({.num_locales = 2, .workers_per_locale = 4});
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 32, .block_size = 32});
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> bad{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      rcua::plat::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 11);
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t k = rng.next_below(64);
        switch (rng.next_below(3)) {
          case 0:
            map.insert(k, k * 1000 + 1);
            break;
          case 1:
            map.erase(k);
            break;
          default: {
            auto v = map.find(k);
            if (v && *v != k * 1000 + 1) bad.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0u);
  // Post-quiescence sanity: size equals the number of present keys.
  std::size_t present = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    if (map.contains(k)) ++present;
  }
  EXPECT_EQ(map.size(), present);
  drain_qsbr();
}

TEST(DistHashMap, GrowthRaceRegression) {
  // Regression for the cross-locale replication gap: chains may reference
  // overflow slots in blocks another locale's snapshot replica has not
  // observed yet. Tiny blocks force constant growth; every thread chases
  // chains through just-linked slots. Crashed (heap-buffer-overflow on
  // the spine) before DistHashMap::slot_at waited out the gap.
  rt::Cluster cluster({.num_locales = 4, .workers_per_locale = 4});
  DistHashMap<std::uint64_t, std::uint64_t> map(
      cluster, {.num_buckets = 4, .block_size = 8});
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> wrong{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < 600; ++k) {
        const std::uint64_t key = k * 6 + static_cast<std::uint64_t>(t);
        map.insert(key, key + 1);
        const auto v = map.find(key);
        if (!v || *v != key + 1) wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(map.size(), 3600u);
  EXPECT_GT(map.growths(), 3u);
  drain_qsbr();
}

TEST(DistVector, CrossThreadIndexPublicationRegression) {
  // A consumer reading indices published by producers must tolerate its
  // locale replica lagging the growth that created them.
  rt::Cluster cluster({.num_locales = 3, .workers_per_locale = 4});
  DistVector<std::uint64_t> vec(cluster, {.block_size = 4});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> wrong{0};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = vec.size();
      if (n == 0) continue;
      // Read the most recently published slot. size() only covers fully
      // written slots (in-order release publication), so the value must
      // always be a completed producer write — never 0, never torn.
      const std::uint64_t v = vec[n - 1];
      if (v < 1 || v > 4000) wrong.fetch_add(1);
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        vec.push_back(static_cast<std::uint64_t>(t) * 1000 + i + 1);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(vec.size(), 4000u);
  drain_qsbr();
}
