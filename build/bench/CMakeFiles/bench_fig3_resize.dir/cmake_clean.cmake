file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_resize.dir/bench_fig3_resize.cpp.o"
  "CMakeFiles/bench_fig3_resize.dir/bench_fig3_resize.cpp.o.d"
  "bench_fig3_resize"
  "bench_fig3_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
