# Empty dependencies file for bench_fig3_resize.
# This may be replaced when dependencies are built.
