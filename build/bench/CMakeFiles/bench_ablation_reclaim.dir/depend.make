# Empty dependencies file for bench_ablation_reclaim.
# This may be replaced when dependencies are built.
