file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reclaim.dir/bench_ablation_reclaim.cpp.o"
  "CMakeFiles/bench_ablation_reclaim.dir/bench_ablation_reclaim.cpp.o.d"
  "bench_ablation_reclaim"
  "bench_ablation_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
