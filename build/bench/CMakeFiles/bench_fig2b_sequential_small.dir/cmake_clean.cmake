file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_sequential_small.dir/bench_fig2b_sequential_small.cpp.o"
  "CMakeFiles/bench_fig2b_sequential_small.dir/bench_fig2b_sequential_small.cpp.o.d"
  "bench_fig2b_sequential_small"
  "bench_fig2b_sequential_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_sequential_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
