# Empty dependencies file for bench_fig2b_sequential_small.
# This may be replaced when dependencies are built.
