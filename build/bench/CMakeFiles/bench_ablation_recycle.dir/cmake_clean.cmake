file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_recycle.dir/bench_ablation_recycle.cpp.o"
  "CMakeFiles/bench_ablation_recycle.dir/bench_ablation_recycle.cpp.o.d"
  "bench_ablation_recycle"
  "bench_ablation_recycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
