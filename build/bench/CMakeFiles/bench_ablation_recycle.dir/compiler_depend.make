# Empty compiler generated dependencies file for bench_ablation_recycle.
# This may be replaced when dependencies are built.
