file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_random_large.dir/bench_fig2c_random_large.cpp.o"
  "CMakeFiles/bench_fig2c_random_large.dir/bench_fig2c_random_large.cpp.o.d"
  "bench_fig2c_random_large"
  "bench_fig2c_random_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_random_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
