# Empty compiler generated dependencies file for bench_fig2c_random_large.
# This may be replaced when dependencies are built.
