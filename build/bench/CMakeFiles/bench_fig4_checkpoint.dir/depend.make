# Empty dependencies file for bench_fig4_checkpoint.
# This may be replaced when dependencies are built.
