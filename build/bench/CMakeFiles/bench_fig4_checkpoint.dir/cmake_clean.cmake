file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_checkpoint.dir/bench_fig4_checkpoint.cpp.o"
  "CMakeFiles/bench_fig4_checkpoint.dir/bench_fig4_checkpoint.cpp.o.d"
  "bench_fig4_checkpoint"
  "bench_fig4_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
