# Empty compiler generated dependencies file for bench_fig2a_random_small.
# This may be replaced when dependencies are built.
