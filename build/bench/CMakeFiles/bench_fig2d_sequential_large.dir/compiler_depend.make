# Empty compiler generated dependencies file for bench_fig2d_sequential_large.
# This may be replaced when dependencies are built.
