file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_privatization.dir/bench_ablation_privatization.cpp.o"
  "CMakeFiles/bench_ablation_privatization.dir/bench_ablation_privatization.cpp.o.d"
  "bench_ablation_privatization"
  "bench_ablation_privatization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_privatization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
