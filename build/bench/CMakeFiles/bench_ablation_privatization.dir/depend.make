# Empty dependencies file for bench_ablation_privatization.
# This may be replaced when dependencies are built.
