# Empty compiler generated dependencies file for test_global_lock.
# This may be replaced when dependencies are built.
