file(REMOVE_RECURSE
  "CMakeFiles/test_global_lock.dir/test_global_lock.cpp.o"
  "CMakeFiles/test_global_lock.dir/test_global_lock.cpp.o.d"
  "test_global_lock"
  "test_global_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
