# Empty dependencies file for test_rcu_array_basic.
# This may be replaced when dependencies are built.
