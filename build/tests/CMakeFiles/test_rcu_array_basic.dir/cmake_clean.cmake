file(REMOVE_RECURSE
  "CMakeFiles/test_rcu_array_basic.dir/test_rcu_array_basic.cpp.o"
  "CMakeFiles/test_rcu_array_basic.dir/test_rcu_array_basic.cpp.o.d"
  "test_rcu_array_basic"
  "test_rcu_array_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu_array_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
