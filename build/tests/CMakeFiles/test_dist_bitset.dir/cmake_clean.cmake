file(REMOVE_RECURSE
  "CMakeFiles/test_dist_bitset.dir/test_dist_bitset.cpp.o"
  "CMakeFiles/test_dist_bitset.dir/test_dist_bitset.cpp.o.d"
  "test_dist_bitset"
  "test_dist_bitset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_bitset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
