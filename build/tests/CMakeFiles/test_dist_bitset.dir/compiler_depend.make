# Empty compiler generated dependencies file for test_dist_bitset.
# This may be replaced when dependencies are built.
