# Empty compiler generated dependencies file for test_charging.
# This may be replaced when dependencies are built.
