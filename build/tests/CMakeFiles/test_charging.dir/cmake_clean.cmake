file(REMOVE_RECURSE
  "CMakeFiles/test_charging.dir/test_charging.cpp.o"
  "CMakeFiles/test_charging.dir/test_charging.cpp.o.d"
  "test_charging"
  "test_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
