# Empty dependencies file for test_dsi.
# This may be replaced when dependencies are built.
