file(REMOVE_RECURSE
  "CMakeFiles/test_dsi.dir/test_dsi.cpp.o"
  "CMakeFiles/test_dsi.dir/test_dsi.cpp.o.d"
  "test_dsi"
  "test_dsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
