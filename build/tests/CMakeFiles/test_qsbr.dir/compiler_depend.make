# Empty compiler generated dependencies file for test_qsbr.
# This may be replaced when dependencies are built.
