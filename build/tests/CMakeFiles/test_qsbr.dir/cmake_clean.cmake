file(REMOVE_RECURSE
  "CMakeFiles/test_qsbr.dir/test_qsbr.cpp.o"
  "CMakeFiles/test_qsbr.dir/test_qsbr.cpp.o.d"
  "test_qsbr"
  "test_qsbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qsbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
