# Empty compiler generated dependencies file for test_array_ops.
# This may be replaced when dependencies are built.
