file(REMOVE_RECURSE
  "CMakeFiles/test_array_ops.dir/test_array_ops.cpp.o"
  "CMakeFiles/test_array_ops.dir/test_array_ops.cpp.o.d"
  "test_array_ops"
  "test_array_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
