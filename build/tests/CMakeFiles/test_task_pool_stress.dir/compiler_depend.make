# Empty compiler generated dependencies file for test_task_pool_stress.
# This may be replaced when dependencies are built.
