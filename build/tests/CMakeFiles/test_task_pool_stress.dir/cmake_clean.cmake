file(REMOVE_RECURSE
  "CMakeFiles/test_task_pool_stress.dir/test_task_pool_stress.cpp.o"
  "CMakeFiles/test_task_pool_stress.dir/test_task_pool_stress.cpp.o.d"
  "test_task_pool_stress"
  "test_task_pool_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_pool_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
