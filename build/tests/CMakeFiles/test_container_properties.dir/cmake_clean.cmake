file(REMOVE_RECURSE
  "CMakeFiles/test_container_properties.dir/test_container_properties.cpp.o"
  "CMakeFiles/test_container_properties.dir/test_container_properties.cpp.o.d"
  "test_container_properties"
  "test_container_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
