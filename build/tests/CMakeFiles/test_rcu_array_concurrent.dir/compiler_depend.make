# Empty compiler generated dependencies file for test_rcu_array_concurrent.
# This may be replaced when dependencies are built.
