file(REMOVE_RECURSE
  "CMakeFiles/test_rcu_array_concurrent.dir/test_rcu_array_concurrent.cpp.o"
  "CMakeFiles/test_rcu_array_concurrent.dir/test_rcu_array_concurrent.cpp.o.d"
  "test_rcu_array_concurrent"
  "test_rcu_array_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu_array_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
