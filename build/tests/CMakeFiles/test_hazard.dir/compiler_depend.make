# Empty compiler generated dependencies file for test_hazard.
# This may be replaced when dependencies are built.
