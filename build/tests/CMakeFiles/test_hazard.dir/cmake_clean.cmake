file(REMOVE_RECURSE
  "CMakeFiles/test_hazard.dir/test_hazard.cpp.o"
  "CMakeFiles/test_hazard.dir/test_hazard.cpp.o.d"
  "test_hazard"
  "test_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
