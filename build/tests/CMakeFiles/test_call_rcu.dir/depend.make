# Empty dependencies file for test_call_rcu.
# This may be replaced when dependencies are built.
