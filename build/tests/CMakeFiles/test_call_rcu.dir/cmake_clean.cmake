file(REMOVE_RECURSE
  "CMakeFiles/test_call_rcu.dir/test_call_rcu.cpp.o"
  "CMakeFiles/test_call_rcu.dir/test_call_rcu.cpp.o.d"
  "test_call_rcu"
  "test_call_rcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_call_rcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
