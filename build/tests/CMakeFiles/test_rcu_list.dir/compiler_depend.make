# Empty compiler generated dependencies file for test_rcu_list.
# This may be replaced when dependencies are built.
