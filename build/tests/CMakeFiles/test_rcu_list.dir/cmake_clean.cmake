file(REMOVE_RECURSE
  "CMakeFiles/test_rcu_list.dir/test_rcu_list.cpp.o"
  "CMakeFiles/test_rcu_list.dir/test_rcu_list.cpp.o.d"
  "test_rcu_list"
  "test_rcu_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
