file(REMOVE_RECURSE
  "CMakeFiles/test_thread_registry.dir/test_thread_registry.cpp.o"
  "CMakeFiles/test_thread_registry.dir/test_thread_registry.cpp.o.d"
  "test_thread_registry"
  "test_thread_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
