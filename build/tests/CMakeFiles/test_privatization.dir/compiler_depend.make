# Empty compiler generated dependencies file for test_privatization.
# This may be replaced when dependencies are built.
