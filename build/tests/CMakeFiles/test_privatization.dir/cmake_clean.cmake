file(REMOVE_RECURSE
  "CMakeFiles/test_privatization.dir/test_privatization.cpp.o"
  "CMakeFiles/test_privatization.dir/test_privatization.cpp.o.d"
  "test_privatization"
  "test_privatization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_privatization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
