# Empty dependencies file for test_ebr.
# This may be replaced when dependencies are built.
