file(REMOVE_RECURSE
  "CMakeFiles/test_ebr.dir/test_ebr.cpp.o"
  "CMakeFiles/test_ebr.dir/test_ebr.cpp.o.d"
  "test_ebr"
  "test_ebr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
