file(REMOVE_RECURSE
  "CMakeFiles/test_rcu_cell.dir/test_rcu_cell.cpp.o"
  "CMakeFiles/test_rcu_cell.dir/test_rcu_cell.cpp.o.d"
  "test_rcu_cell"
  "test_rcu_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
