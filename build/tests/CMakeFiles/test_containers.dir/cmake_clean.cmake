file(REMOVE_RECURSE
  "CMakeFiles/test_containers.dir/test_containers.cpp.o"
  "CMakeFiles/test_containers.dir/test_containers.cpp.o.d"
  "test_containers"
  "test_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
