# Empty compiler generated dependencies file for connection_table.
# This may be replaced when dependencies are built.
