file(REMOVE_RECURSE
  "CMakeFiles/connection_table.dir/connection_table.cpp.o"
  "CMakeFiles/connection_table.dir/connection_table.cpp.o.d"
  "connection_table"
  "connection_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connection_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
