# Empty compiler generated dependencies file for telemetry_ingest.
# This may be replaced when dependencies are built.
