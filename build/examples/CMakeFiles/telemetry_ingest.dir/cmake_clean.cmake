file(REMOVE_RECURSE
  "CMakeFiles/telemetry_ingest.dir/telemetry_ingest.cpp.o"
  "CMakeFiles/telemetry_ingest.dir/telemetry_ingest.cpp.o.d"
  "telemetry_ingest"
  "telemetry_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
