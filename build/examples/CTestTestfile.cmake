# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_telemetry_ingest "/root/repo/build/examples/telemetry_ingest" "2000")
set_tests_properties(example_telemetry_ingest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/kv_store" "5000")
set_tests_properties(example_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_connection_table "/root/repo/build/examples/connection_table" "2000")
set_tests_properties(example_connection_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_log_analytics "/root/repo/build/examples/log_analytics" "20000")
set_tests_properties(example_log_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_bfs "/root/repo/build/examples/graph_bfs" "5000" "6")
set_tests_properties(example_graph_bfs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
