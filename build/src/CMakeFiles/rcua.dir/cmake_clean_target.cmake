file(REMOVE_RECURSE
  "librcua.a"
)
