# Empty compiler generated dependencies file for rcua.
# This may be replaced when dependencies are built.
